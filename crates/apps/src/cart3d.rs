//! Cart3D proxy: an inviscid cell-centered finite-volume Euler solver on
//! a Cartesian mesh with cut cells, pure OpenMP (paper Section 3.7.2,
//! Figure 21).
//!
//! The solver is runnable: compressible Euler equations with a Rusanov
//! (local Lax–Friedrichs) flux, reflective walls on the domain boundary
//! and on blanked (body) cells, and explicit two-stage Runge–Kutta time
//! stepping over an *active-cell list* — the indirect indexing that makes
//! the real Cart3D gather-heavy and poorly vectorized, which the paper
//! identifies as the reason a Phi card reaches only half the host's
//! performance with its optimum at 4 threads/core.

use maia_modes::{KernelProfile, PerfModel};
use maia_omp::Team;

/// Ratio of specific heats.
pub const GAMMA: f64 = 1.4;
/// Conserved variables per cell.
pub const NCONS: usize = 5;

/// Problem definition: a box grid with an embedded spherical body.
#[derive(Debug, Clone)]
pub struct Cart3dCase {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Body radius as a fraction of the box edge (0 disables the body).
    pub body_radius: f64,
    /// Freestream Mach number.
    pub mach: f64,
    /// CFL-like time step (fraction of cell crossing time).
    pub cfl: f64,
    /// Domain boundary treatment: reflective walls (closed box) or
    /// far-field freestream (external aerodynamics, the Cart3D use case).
    pub farfield: bool,
}

impl Cart3dCase {
    /// A small wing-in-box style case for tests.
    pub fn small() -> Self {
        Cart3dCase {
            nx: 16,
            ny: 16,
            nz: 16,
            body_radius: 0.2,
            mach: 0.3,
            cfl: 0.3,
            farfield: false,
        }
    }

    /// The small case with far-field boundaries: steady external flow
    /// around the body exists, so convergence acceleration is measurable.
    pub fn small_farfield() -> Self {
        let mut c = Self::small();
        c.farfield = true;
        c
    }

    /// An OneraM6-like case (6M cells) for the figure model.
    pub fn onera_m6_like() -> Self {
        Cart3dCase {
            nx: 182,
            ny: 182,
            nz: 182,
            body_radius: 0.15,
            mach: 0.84,
            cfl: 0.5,
            farfield: true,
        }
    }

    /// Total cells in the bounding box.
    pub fn box_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// The solver state.
pub struct Cart3dSolver {
    pub case: Cart3dCase,
    /// Conserved state per box cell (blanked cells hold freestream).
    pub u: Vec<[f64; NCONS]>,
    /// Flat indices of active (non-blanked) cells.
    pub active: Vec<u32>,
    /// Blanking mask.
    pub blanked: Vec<bool>,
    /// Extra per-active-cell source term added to the residual — the FAS
    /// multigrid forcing (`None` on the fine grid).
    forcing: Option<Vec<[f64; NCONS]>>,
    team: Team,
    dt: f64,
}

/// Freestream conserved state at a given Mach number (ρ=1, p=1/γ so that
/// the speed of sound is 1; velocity along +x).
pub fn freestream(mach: f64) -> [f64; NCONS] {
    let rho = 1.0;
    let u = mach;
    let p = 1.0 / GAMMA;
    let e = p / (GAMMA - 1.0) + 0.5 * rho * u * u;
    [rho, rho * u, 0.0, 0.0, e]
}

/// Pressure from a conserved state.
#[inline]
pub fn pressure(q: &[f64; NCONS]) -> f64 {
    let rho = q[0];
    let ke = (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / (2.0 * rho);
    (GAMMA - 1.0) * (q[4] - ke)
}

/// Rusanov flux through a face with unit normal along axis `axis`,
/// oriented from `l` to `r`.
fn rusanov_flux(l: &[f64; NCONS], r: &[f64; NCONS], axis: usize) -> [f64; NCONS] {
    let phys = |q: &[f64; NCONS]| -> ([f64; NCONS], f64) {
        let rho = q[0];
        let vel = [q[1] / rho, q[2] / rho, q[3] / rho];
        let p = pressure(q);
        let vn = vel[axis];
        let mut f = [
            rho * vn,
            q[1] * vn,
            q[2] * vn,
            q[3] * vn,
            (q[4] + p) * vn,
        ];
        f[1 + axis] += p;
        let a = (GAMMA * p / rho).sqrt();
        (f, vn.abs() + a)
    };
    let (fl, sl) = phys(l);
    let (fr, sr) = phys(r);
    let s = sl.max(sr);
    let mut out = [0.0; NCONS];
    for m in 0..NCONS {
        out[m] = 0.5 * (fl[m] + fr[m]) - 0.5 * s * (r[m] - l[m]);
    }
    out
}

/// Wall (reflective) flux for the cell state `q` on a face with outward
/// normal along `axis` (sign `dir`): only the pressure term survives.
fn wall_flux(q: &[f64; NCONS], axis: usize, dir: f64) -> [f64; NCONS] {
    let p = pressure(q);
    let mut f = [0.0; NCONS];
    f[1 + axis] = dir * p;
    f
}

impl Cart3dSolver {
    /// Build the mesh, blank the body, and set freestream everywhere.
    pub fn new(case: Cart3dCase, threads: usize) -> Self {
        let n = case.box_cells();
        let fs = freestream(case.mach);
        let mut blanked = vec![false; n];
        let (cx, cy, cz) = (
            case.nx as f64 / 2.0,
            case.ny as f64 / 2.0,
            case.nz as f64 / 2.0,
        );
        let r = case.body_radius * case.nx as f64;
        let mut active = Vec::with_capacity(n);
        for k in 0..case.nz {
            for j in 0..case.ny {
                for i in 0..case.nx {
                    let idx = (k * case.ny + j) * case.nx + i;
                    let d2 = (i as f64 + 0.5 - cx).powi(2)
                        + (j as f64 + 0.5 - cy).powi(2)
                        + (k as f64 + 0.5 - cz).powi(2);
                    if d2 < r * r {
                        blanked[idx] = true;
                    } else {
                        active.push(idx as u32);
                    }
                }
            }
        }
        let dt = case.cfl / (1.0 + case.mach); // unit cells, sound speed 1
        Cart3dSolver {
            case,
            u: vec![fs; n],
            active,
            blanked,
            forcing: None,
            team: Team::new(threads),
            dt,
        }
    }

    /// Active cell count.
    pub fn active_cells(&self) -> usize {
        self.active.len()
    }

    fn neighbor(&self, idx: usize, axis: usize, dir: isize) -> Option<usize> {
        let (nx, ny, nz) = (self.case.nx, self.case.ny, self.case.nz);
        let i = idx % nx;
        let j = (idx / nx) % ny;
        let k = idx / (nx * ny);
        let (mut ii, mut jj, mut kk) = (i as isize, j as isize, k as isize);
        match axis {
            0 => ii += dir,
            1 => jj += dir,
            _ => kk += dir,
        }
        if ii < 0 || jj < 0 || kk < 0 || ii >= nx as isize || jj >= ny as isize || kk >= nz as isize
        {
            None
        } else {
            Some((kk as usize * ny + jj as usize) * nx + ii as usize)
        }
    }

    /// Residual (−divergence of flux) for every active cell: the
    /// gather-over-neighbors loop.
    fn residual(&self, out: &mut [[f64; NCONS]]) {
        let active = &self.active;
        let u = &self.u;
        let blanked = &self.blanked;
        self.team.parallel_chunks(out, |start, chunk| {
            for (off, res) in chunk.iter_mut().enumerate() {
                let idx = active[start + off] as usize;
                let q = &u[idx];
                let mut acc = [0.0; NCONS];
                for axis in 0..3 {
                    for (dir, sign) in [(1isize, 1.0f64), (-1, -1.0)] {
                        let f = match self.neighbor(idx, axis, dir) {
                            Some(nb) if !blanked[nb] => {
                                if dir > 0 {
                                    rusanov_flux(q, &u[nb], axis)
                                } else {
                                    rusanov_flux(&u[nb], q, axis)
                                }
                            }
                            // Body surface: always a reflective wall.
                            Some(_) => wall_flux(q, axis, sign),
                            // Domain edge: wall or far-field freestream.
                            None => {
                                if self.case.farfield {
                                    let fs = freestream(self.case.mach);
                                    if dir > 0 {
                                        rusanov_flux(q, &fs, axis)
                                    } else {
                                        rusanov_flux(&fs, q, axis)
                                    }
                                } else {
                                    wall_flux(q, axis, sign)
                                }
                            }
                        };
                        for m in 0..NCONS {
                            acc[m] -= sign * f[m];
                        }
                    }
                }
                if let Some(forcing) = &self.forcing {
                    for m in 0..NCONS {
                        acc[m] += forcing[start + off][m];
                    }
                }
                *res = acc;
            }
        });
    }

    /// Current residual L2 norm over active cells (no state change).
    pub fn residual_norm(&self) -> f64 {
        let mut r = vec![[0.0; NCONS]; self.active.len()];
        self.residual(&mut r);
        r.iter()
            .flat_map(|v| v.iter())
            .map(|x| x * x)
            .sum::<f64>()
            .sqrt()
    }

    /// Advance one two-stage Runge–Kutta step; returns the residual L2
    /// norm (computed in a fixed order, so runs are thread-invariant).
    pub fn step(&mut self) -> f64 {
        let n_act = self.active.len();
        let mut r = vec![[0.0; NCONS]; n_act];

        // Stage 1: u* = u + dt·R(u).
        self.residual(&mut r);
        let u0: Vec<[f64; NCONS]> = self.active.iter().map(|&a| self.u[a as usize]).collect();
        for (c, &a) in self.active.iter().enumerate() {
            for (um, &rv) in self.u[a as usize].iter_mut().zip(&r[c]) {
                *um += self.dt * rv;
            }
        }
        // Stage 2: u = (u0 + u* + dt·R(u*)) / 2.
        let mut r2 = vec![[0.0; NCONS]; n_act];
        self.residual(&mut r2);
        for (c, &a) in self.active.iter().enumerate() {
            let idx = a as usize;
            for m in 0..NCONS {
                self.u[idx][m] = 0.5 * (u0[c][m] + self.u[idx][m] + self.dt * r2[c][m]);
            }
        }

        r.iter()
            .flat_map(|v| v.iter())
            .map(|x| x * x)
            .sum::<f64>()
            .sqrt()
    }

    /// One FAS (full approximation scheme) two-level multigrid cycle —
    /// the "multi-grid accelerated Runge–Kutta" of the paper's Cart3D
    /// description: `pre` fine RK smoothing steps, a coarse-grid
    /// correction solve of `coarse_steps` RK steps on the FAS-forced
    /// equation, damped prolongation of the correction, and `post` fine
    /// steps. Returns the fine residual norm afterwards.
    ///
    /// # Panics
    /// Panics unless the grid dimensions are even.
    pub fn fas_cycle(&mut self, pre: usize, coarse_steps: usize, post: usize) -> f64 {
        assert!(
            self.case.nx.is_multiple_of(2) && self.case.ny.is_multiple_of(2) && self.case.nz.is_multiple_of(2),
            "FAS coarsening needs even grid dimensions"
        );
        for _ in 0..pre {
            self.step();
        }
        // Fine residual.
        let mut r_f = vec![[0.0; NCONS]; self.active.len()];
        self.residual(&mut r_f);
        // Scatter to box layout for restriction.
        let mut r_box = vec![[0.0; NCONS]; self.case.box_cells()];
        for (c, &a) in self.active.iter().enumerate() {
            r_box[a as usize] = r_f[c];
        }

        // Coarse solver: same geometry at half resolution.
        let mut coarse_case = self.case.clone();
        coarse_case.nx /= 2;
        coarse_case.ny /= 2;
        coarse_case.nz /= 2;
        let mut coarse = Cart3dSolver::new(coarse_case, self.team.num_threads());

        // Restrict the fine state (8-child average over unblanked
        // children) and the fine residual (child average, scaled by 2 for
        // the doubled mesh spacing).
        let (fnx, fny) = (self.case.nx, self.case.ny);
        let (cnx, cny) = (coarse.case.nx, coarse.case.ny);
        let coarse_active = coarse.active.clone();
        let mut u_c0 = Vec::with_capacity(coarse_active.len());
        let mut r_restricted = Vec::with_capacity(coarse_active.len());
        for &ca in &coarse_active {
            let ca = ca as usize;
            let (ci, cj, ck) = (ca % cnx, (ca / cnx) % cny, ca / (cnx * cny));
            let mut su = [0.0; NCONS];
            let mut sr = [0.0; NCONS];
            let mut live = 0.0;
            for dk in 0..2 {
                for dj in 0..2 {
                    for di in 0..2 {
                        let fi = ((2 * ck + dk) * fny + (2 * cj + dj)) * fnx + (2 * ci + di);
                        if !self.blanked[fi] {
                            live += 1.0;
                            for m in 0..NCONS {
                                su[m] += self.u[fi][m];
                                sr[m] += r_box[fi][m];
                            }
                        }
                    }
                }
            }
            if live == 0.0 {
                su = freestream(self.case.mach);
            } else {
                for m in 0..NCONS {
                    su[m] /= live;
                    sr[m] *= 2.0 / live;
                }
            }
            u_c0.push(su);
            r_restricted.push(sr);
        }
        for (slot, &ca) in coarse_active.iter().enumerate() {
            coarse.u[ca as usize] = u_c0[slot];
        }
        // FAS forcing: du/dt = N_c(u) - (N_c(u_c0) - R r_f).
        let mut n_c0 = vec![[0.0; NCONS]; coarse_active.len()];
        coarse.residual(&mut n_c0);
        let forcing: Vec<[f64; NCONS]> = n_c0
            .iter()
            .zip(&r_restricted)
            .map(|(nc, rr)| {
                let mut t = [0.0; NCONS];
                for m in 0..NCONS {
                    t[m] = rr[m] - nc[m];
                }
                t
            })
            .collect();
        coarse.forcing = Some(forcing);
        for _ in 0..coarse_steps {
            coarse.step();
        }

        // Damped injection of the coarse correction.
        const DAMP: f64 = 0.6;
        for (slot, &ca) in coarse_active.iter().enumerate() {
            let ca = ca as usize;
            let (ci, cj, ck) = (ca % cnx, (ca / cnx) % cny, ca / (cnx * cny));
            let mut corr = [0.0; NCONS];
            for m in 0..NCONS {
                corr[m] = DAMP * (coarse.u[ca][m] - u_c0[slot][m]);
            }
            for dk in 0..2 {
                for dj in 0..2 {
                    for di in 0..2 {
                        let fi = ((2 * ck + dk) * fny + (2 * cj + dj)) * fnx + (2 * ci + di);
                        if !self.blanked[fi] {
                            for (um, &cv) in self.u[fi].iter_mut().zip(&corr) {
                                *um += cv;
                            }
                        }
                    }
                }
            }
        }

        for _ in 0..post {
            self.step();
        }
        self.residual_norm()
    }

    /// Total mass over active cells (conserved by the scheme: walls pass
    /// no mass flux).
    pub fn total_mass(&self) -> f64 {
        self.active.iter().map(|&a| self.u[a as usize][0]).sum()
    }

    /// Minimum density (positivity check).
    pub fn min_density(&self) -> f64 {
        self.active
            .iter()
            .map(|&a| self.u[a as usize][0])
            .fold(f64::INFINITY, f64::min)
    }
}

/// The OneraM6 Class workload profile for the figure model: barely
/// vectorized, heavily gather-indexed, moderate traffic.
pub fn cart3d_profile() -> KernelProfile {
    let cells = 6.0e6;
    let flops = cells * 1500.0; // per multigrid cycle
    KernelProfile {
        name: "cart3d-oneram6".into(),
        flops,
        dram_bytes: flops * 1.5,
        // "Cart3D is not heavily vectorized."
        vector_fraction: 0.15,
        // Cut-cell and face gathers dominate the vector work.
        gather_fraction: 0.45,
        parallel_fraction: 0.999,
        parallel_extent: None,
        phi_traffic_multiplier: 1.5,
    }
}

/// One Figure 21 data point: performance (cycles/second, scaled to the
/// host-16T baseline = 1.0) at a thread count on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig21Point {
    pub device_label: &'static str,
    pub threads: u32,
    pub relative_perf: f64,
}

/// The Figure 21 series: host at 16 threads, Phi at 59/118/177/236.
pub fn fig21_series() -> Vec<Fig21Point> {
    let k = cart3d_profile();
    let host = PerfModel::host();
    let phi = PerfModel::phi();
    let base = 1.0 / host.unit_time_s(&k, 16);
    let mut out = vec![Fig21Point {
        device_label: "host",
        threads: 16,
        relative_perf: 1.0,
    }];
    for t in [59u32, 118, 177, 236] {
        out.push(Fig21Point {
            device_label: "phi0",
            threads: t,
            relative_perf: (1.0 / phi.unit_time_s(&k, t)) / base,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freestream_is_preserved_without_a_body() {
        let mut case = Cart3dCase::small();
        case.body_radius = 0.0;
        let mut s = Cart3dSolver::new(case, 4);
        let mass0 = s.total_mass();
        for _ in 0..5 {
            let r = s.step();
            // Uniform flow in a closed box is NOT steady (walls reflect),
            // but interior fluxes must cancel; residual comes only from
            // the walls. Just require stability and conservation here.
            assert!(r.is_finite());
        }
        assert!((s.total_mass() - mass0).abs() < 1e-9 * mass0);
        assert!(s.min_density() > 0.5);
    }

    #[test]
    fn mass_is_conserved_with_a_body() {
        let mut s = Cart3dSolver::new(Cart3dCase::small(), 4);
        let mass0 = s.total_mass();
        for _ in 0..10 {
            s.step();
        }
        assert!(
            (s.total_mass() - mass0).abs() < 1e-9 * mass0,
            "mass drifted: {} -> {}",
            mass0,
            s.total_mass()
        );
        assert!(s.min_density() > 0.1, "density {}", s.min_density());
    }

    #[test]
    fn body_blanks_cells() {
        let s = Cart3dSolver::new(Cart3dCase::small(), 2);
        let blanked = s.case.box_cells() - s.active_cells();
        // A radius-0.2 sphere in a unit box blanks ~3.3% of cells.
        assert!(blanked > 50 && blanked < 500, "blanked {blanked}");
    }

    #[test]
    fn thread_count_invariance() {
        let run = |threads| {
            let mut s = Cart3dSolver::new(Cart3dCase::small(), threads);
            let mut last = 0.0;
            for _ in 0..3 {
                last = s.step();
            }
            (last, s.total_mass())
        };
        let a = run(1);
        let b = run(6);
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }

    #[test]
    fn farfield_flow_converges_toward_steady_state() {
        let mut s = Cart3dSolver::new(Cart3dCase::small_farfield(), 4);
        let r0 = s.step();
        let mut last = r0;
        for _ in 0..60 {
            last = s.step();
        }
        assert!(last < 0.8 * r0, "no convergence: {r0} -> {last}");
        assert!(s.min_density() > 0.1);
    }

    #[test]
    fn fas_multigrid_accelerates_convergence() {
        // Same fine-step budget: the FAS cycles must reach a lower
        // residual than plain RK marching ("multi-grid accelerated
        // Runge-Kutta", paper Section 3.7.2).
        let case = Cart3dCase::small_farfield();
        let mut plain = Cart3dSolver::new(case.clone(), 4);
        for _ in 0..40 {
            plain.step();
        }
        let plain_r = plain.residual_norm();
        let mut mg = Cart3dSolver::new(case, 4);
        for _ in 0..4 {
            mg.fas_cycle(5, 10, 5);
        }
        let mg_r = mg.residual_norm();
        assert!(
            mg_r < 0.75 * plain_r,
            "FAS did not accelerate: {mg_r} vs plain {plain_r}"
        );
        assert!(mg.min_density() > 0.1, "FAS destabilized the flow");
    }

    #[test]
    fn fas_is_thread_count_invariant() {
        let run = |threads| {
            let mut s = Cart3dSolver::new(Cart3dCase::small_farfield(), threads);
            s.fas_cycle(2, 4, 2)
        };
        assert_eq!(run(1).to_bits(), run(5).to_bits());
    }

    #[test]
    #[should_panic(expected = "even grid")]
    fn fas_rejects_odd_grids() {
        let mut case = Cart3dCase::small_farfield();
        case.nx = 15;
        let mut s = Cart3dSolver::new(case, 2);
        let _ = s.fas_cycle(1, 1, 1);
    }

    #[test]
    fn figure21_host_twice_best_phi() {
        let series = fig21_series();
        let best_phi = series
            .iter()
            .filter(|p| p.device_label == "phi0")
            .map(|p| p.relative_perf)
            .fold(0.0f64, f64::max);
        let ratio = 1.0 / best_phi;
        assert!(
            (1.6..2.6).contains(&ratio),
            "host should be ~2x best Phi, got {ratio}"
        );
    }

    #[test]
    fn figure21_phi_peaks_at_4_threads_per_core() {
        let series = fig21_series();
        let phi: Vec<&Fig21Point> = series.iter().filter(|p| p.device_label == "phi0").collect();
        // Monotone increasing through 236 threads: 4/core is optimal,
        // "unlike the NPBs where 3 is generally the best value".
        for w in phi.windows(2) {
            assert!(
                w[1].relative_perf > w[0].relative_perf,
                "Cart3D should keep speeding up to 236 threads: {:?}",
                phi
            );
        }
    }
}
