//! OVERFLOW in true hybrid MPI+OpenMP form: zones distributed across
//! simulated MPI ranks, Chimera donor planes carried as *real payloads*
//! over the modeled fabric, OpenMP threads working inside each rank's
//! zones. This is the execution structure the paper runs in native and
//! symmetric modes — here the numerics are verifiable against the
//! shared-memory solver while the discrete-event engine prices the
//! communication on host shared memory or PCIe.

use std::sync::Arc;

use parking_lot::Mutex;

use maia_mpi::{MpiWorld, WorldSpec};
use maia_omp::Team;
use maia_sim::SimDuration;

use crate::overflow::{
    adi_zone, apply_planes, extract_planes, mismatch_sq, zone_forcing, zone_interior_sq,
    OverflowCase,
};

/// Result of a distributed OVERFLOW run.
#[derive(Debug, Clone, PartialEq)]
pub struct OverflowMpiResult {
    /// Interior residual after the last step.
    pub final_residual: f64,
    /// Interface mismatch before the last exchange.
    pub final_mismatch: f64,
    /// Virtual wall seconds of the whole world.
    pub wall_s: f64,
    /// Mean communication fraction across ranks (comm / (comm+compute)).
    pub comm_fraction: f64,
}

const TAG_DONOR_RIGHT: i32 = 100_000; // left zone's interior -> right rank
const TAG_DONOR_LEFT: i32 = 200_000; // right zone's planes [1,2,3] -> left rank

/// Run `steps` of the multi-zone solver with zones dealt in contiguous
/// blocks to the ranks of `spec`, `threads_per_rank` OpenMP threads each.
///
/// # Panics
/// Panics if there are fewer zones than ranks.
pub fn run_mpi(
    case: &OverflowCase,
    steps: usize,
    threads_per_rank: usize,
    spec: &WorldSpec,
) -> OverflowMpiResult {
    let p = spec.size();
    assert!(case.zones >= p, "need at least one zone per rank");
    let case = case.clone();
    let out: Arc<Mutex<Option<(f64, f64)>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);

    let res = MpiWorld::run(spec, move |mut rank| {
        let out2 = Arc::clone(&out2);
        let case = case.clone();
        async move {
        let me = rank.rank();
        let p = rank.size();
        let z_lo = case.zones * me / p;
        let z_hi = case.zones * (me + 1) / p;
        let n = case.zone_n;
        let team = Team::new(threads_per_rank);
        let mut zones: Vec<maia_npb::flow::State5> = (z_lo..z_hi)
            .map(|_| maia_npb::flow::State5::zeros(n))
            .collect();
        let forcing: Vec<maia_npb::flow::State5> =
            (z_lo..z_hi).map(|zi| zone_forcing(&case, zi)).collect();
        // ~130 flops per grid point per implicit update.
        let zone_flops = (n * n * n) as f64 * 130.0;

        let mut last = (0.0f64, 0.0f64);
        for step in 0..steps {
            // 1. Implicit update of every owned zone.
            for (local, zi) in (z_lo..z_hi).enumerate() {
                adi_zone(
                    &team,
                    &mut zones[local],
                    &forcing[local],
                    zi > 0,
                    zi + 1 < case.zones,
                );
            }
            let gflops = if rank.placement().device.is_phi() { 1.0 } else { 4.0 };
            rank.compute(SimDuration::from_secs_f64(
                (z_hi - z_lo) as f64 * zone_flops
                    / (gflops * 1e9 * threads_per_rank as f64),
            ))
            .await;

            let step_tag = (step as i32) << 8;
            let mut mismatch_acc = 0.0;

            // 2. Cross-rank donor exchange: send before receive (sends
            // never block), so no ordering deadlock is possible.
            let has_left_neighbor = z_lo > 0;
            let has_right_neighbor = z_hi < case.zones;
            if has_right_neighbor {
                // My last zone is the left side of a cross-rank overlap.
                let donor = extract_planes(zones.last().expect("owns zones"), &[n - 4, n - 3]);
                rank.send_data(me + 1, TAG_DONOR_RIGHT + step_tag, &donor).await;
            }
            if has_left_neighbor {
                // My first zone is the right side: ship planes [1,2,3]
                // (plane 1 feeds the mismatch metric, 2 and 3 the donors).
                let donor = extract_planes(&zones[0], &[1, 2, 3]);
                rank.send_data(me - 1, TAG_DONOR_LEFT + step_tag, &donor).await;
            }

            // 3. Intra-rank boundaries: same arithmetic as the
            // shared-memory solver.
            for local in 0..zones.len().saturating_sub(1) {
                let right_p1 = extract_planes(&zones[local + 1], &[1]);
                mismatch_acc += mismatch_sq(&zones[local], &right_p1);
                let donor_right = extract_planes(&zones[local], &[n - 4, n - 3]);
                let donor_left = extract_planes(&zones[local + 1], &[2, 3]);
                apply_planes(&mut zones[local + 1], &[0, 1], &donor_right);
                apply_planes(&mut zones[local], &[n - 2, n - 1], &donor_left);
            }

            // 4. Receive and apply the cross-rank donors.
            if has_right_neighbor {
                let (_, planes123) =
                    rank.recv_data(Some(me + 1), TAG_DONOR_LEFT + step_tag).await;
                let per_plane = planes123.len() / 3;
                mismatch_acc += mismatch_sq(
                    zones.last().expect("owns zones"),
                    &planes123[..per_plane],
                );
                apply_planes(
                    zones.last_mut().expect("owns zones"),
                    &[n - 2, n - 1],
                    &planes123[per_plane..],
                );
            }
            if has_left_neighbor {
                let (_, donor) =
                    rank.recv_data(Some(me - 1), TAG_DONOR_RIGHT + step_tag).await;
                apply_planes(&mut zones[0], &[0, 1], &donor);
            }

            // 5. Global convergence metrics. Only the final step's
            // values are reported, so the interior-residual scan (a full
            // stencil sweep per zone) runs only then; the allreduce
            // still happens every step, carrying the same byte count, so
            // virtual time is unchanged.
            let local_sq: f64 = if step + 1 == steps {
                (z_lo..z_hi)
                    .enumerate()
                    .map(|(local, zi)| {
                        zone_interior_sq(
                            &team,
                            &zones[local],
                            &forcing[local],
                            zi > 0,
                            zi + 1 < case.zones,
                        )
                    })
                    .sum()
            } else {
                0.0
            };
            let mut buf = vec![local_sq, mismatch_acc];
            rank.allreduce_sum_data(&mut buf).await;
            last = (buf[0].sqrt(), buf[1].sqrt());
        }
        if me == 0 {
            *out2.lock() = Some(last);
        }
        rank
        }
    })
    .expect("OVERFLOW world deadlocked");

    let (final_residual, final_mismatch) = {
        let mut guard = out.lock();
        guard.take().expect("rank 0 stored the metrics")
    };
    let total_comm: f64 = res.rank_stats.iter().map(|s| s.comm_s).sum();
    let total_compute: f64 = res.rank_stats.iter().map(|s| s.compute_s).sum();
    OverflowMpiResult {
        final_residual,
        final_mismatch,
        wall_s: res.end_time.as_secs_f64(),
        comm_fraction: total_comm / (total_comm + total_compute),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overflow::OverflowSolver;
    use maia_arch::Device;
    use maia_interconnect::SoftwareStack;

    /// The distributed solver computes the same residual/mismatch
    /// trajectory as the shared-memory solver (the arithmetic per zone is
    /// identical; only global-sum association differs).
    #[test]
    fn distributed_matches_shared_memory() {
        let case = OverflowCase::small();
        let steps = 6;
        let mut shared = OverflowSolver::new(case.clone(), 2);
        let mut reference = (0.0, 0.0);
        for _ in 0..steps {
            reference = shared.step();
        }
        let spec = WorldSpec::all_on(Device::Host, 3);
        let dist = run_mpi(&case, steps, 2, &spec);
        assert!(
            (dist.final_residual - reference.0).abs() < 1e-9 * (1.0 + reference.0),
            "residual: dist {} vs shared {}",
            dist.final_residual,
            reference.0
        );
        assert!(
            (dist.final_mismatch - reference.1).abs() < 1e-9 * (1.0 + reference.1),
            "mismatch: dist {} vs shared {}",
            dist.final_mismatch,
            reference.1
        );
    }

    #[test]
    fn symmetric_layout_pays_pcie() {
        let case = OverflowCase {
            zone_n: 10,
            zones: 4,
        };
        let host = run_mpi(&case, 3, 1, &WorldSpec::all_on(Device::Host, 4));
        let sym = run_mpi(
            &case,
            3,
            1,
            &WorldSpec::symmetric(2, 1, SoftwareStack::PostUpdate),
        );
        assert!(
            sym.wall_s > host.wall_s,
            "symmetric {} vs host {}",
            sym.wall_s,
            host.wall_s
        );
        assert!(
            sym.comm_fraction > host.comm_fraction,
            "comm fraction: sym {} vs host {}",
            sym.comm_fraction,
            host.comm_fraction
        );
    }

    #[test]
    fn single_rank_degenerates_to_shared_memory() {
        let case = OverflowCase::small();
        let spec = WorldSpec::all_on(Device::Host, 1);
        let dist = run_mpi(&case, 4, 2, &spec);
        let mut shared = OverflowSolver::new(case, 2);
        let mut reference = (0.0, 0.0);
        for _ in 0..4 {
            reference = shared.step();
        }
        assert!((dist.final_residual - reference.0).abs() < 1e-12);
        assert!((dist.final_mismatch - reference.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one zone per rank")]
    fn too_many_ranks_rejected() {
        let case = OverflowCase {
            zone_n: 8,
            zones: 2,
        };
        let _ = run_mpi(&case, 1, 1, &WorldSpec::all_on(Device::Host, 4));
    }
}
