//! OVERFLOW proxy: a multi-zone overset-grid implicit solver in hybrid
//! MPI+OpenMP (paper Sections 3.7.1, 6.9.1.2, 6.9.1.3).
//!
//! **Runnable solver.** A chain of cubic zones overlapping by two planes
//! (the Chimera pattern): each time step performs scalar-pentadiagonal
//! ADI sweeps per zone (the same factorization as NPB SP, OVERFLOW's
//! closest kernel relative) and then exchanges donor planes across the
//! overlaps. Convergence is measured both by per-zone residuals and by
//! the interface mismatch, the overset-specific quantity.
//!
//! **Figure model.** Calibrated (I ranks × J threads) step-time model for
//! the DLRF6 cases: on the host, MPI-heavy layouts win (OpenMP loop
//! threading pays NUMA and serial-section costs), while on the Phi,
//! OpenMP-heavy layouts win (each extra MPI rank taxes the card's memory
//! and progress engines) — reproducing Figure 22's "best 16×1 on host,
//! best 8×28 on Phi" and Figure 23's symmetric-mode outcomes.

use maia_arch::Device;
use maia_interconnect::SoftwareStack;
use maia_modes::{KernelProfile, PerfModel, SymmetricLayout};
use maia_mpi::transport::intra_device_params;
use maia_npb::flow::{add_assign, residual, State5, NVAR};
use maia_npb::sp::{penta_coeffs, solve_penta};
use maia_omp::Team;

/// Runnable problem definition.
#[derive(Debug, Clone)]
pub struct OverflowCase {
    /// Zone edge (each zone is `zone_n³`).
    pub zone_n: usize,
    /// Zones chained along x with 2-plane overlaps.
    pub zones: usize,
}

impl OverflowCase {
    /// A small case for tests.
    pub fn small() -> Self {
        OverflowCase {
            zone_n: 12,
            zones: 3,
        }
    }
}

/// The multi-zone solver.
pub struct OverflowSolver {
    pub case: OverflowCase,
    pub zones: Vec<State5>,
    forcing: Vec<State5>,
    team: Team,
}

/// Global forcing for zone `zi`: smooth over the *composite* domain so
/// that adjacent zones solve one consistent problem.
pub(crate) fn zone_forcing(case: &OverflowCase, zi: usize) -> State5 {
    let n = case.zone_n;
    // Zones overlap by four planes (two donor planes at each end), so
    // consecutive zone origins are n-4 apart in the composite domain.
    let total_x = (case.zones * (n - 4) + 4) as f64;
    let mut f = State5::zeros(n);
    let h = 1.0 / (n - 1) as f64;
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let xg = (zi * (n - 4) + i) as f64 / total_x;
                let (y, z) = (j as f64 * h, k as f64 * h);
                let shape = xg * (1.0 - xg) * y * (1.0 - y) * z * (1.0 - z);
                for m in 0..NVAR {
                    let idx = f.idx(i, j, k, m);
                    f.data[idx] = shape * (1.0 + m as f64 * 0.3);
                }
            }
        }
    }
    f
}

/// Pseudo-time step (matches the SP proxy).
const TAU: f64 = 0.8;

impl OverflowSolver {
    /// Build the zone chain.
    pub fn new(case: OverflowCase, threads: usize) -> Self {
        assert!(case.zones >= 1 && case.zone_n >= 8);
        let zones = (0..case.zones).map(|_| State5::zeros(case.zone_n)).collect();
        let forcing = (0..case.zones).map(|zi| zone_forcing(&case, zi)).collect();
        OverflowSolver {
            case,
            zones,
            forcing,
            team: Team::new(threads),
        }
    }

    fn adi_update(&mut self, zi: usize) {
        let lo_frozen = zi > 0;
        let hi_frozen = zi + 1 < self.case.zones;
        adi_zone(
            &self.team,
            &mut self.zones[zi],
            &self.forcing[zi],
            lo_frozen,
            hi_frozen,
        );
    }

    /// Mismatch across all overlaps (before donor exchange): the overset
    /// convergence metric.
    pub fn interface_mismatch(&self) -> f64 {
        let mut acc = 0.0;
        for z in 0..self.case.zones.saturating_sub(1) {
            // Right zone's plane 1 should equal left zone's plane n-3
            // (they represent the same physical plane).
            let right_plane1 = extract_planes(&self.zones[z + 1], &[1]);
            acc += mismatch_sq(&self.zones[z], &right_plane1);
        }
        acc.sqrt()
    }

    /// Donor-plane exchange: each zone's overlap planes are overwritten
    /// by its neighbor's interior.
    pub fn chimera_exchange(&mut self) {
        for z in 0..self.case.zones.saturating_sub(1) {
            let donor_right = extract_planes(&self.zones[z], &[self.case.zone_n - 4, self.case.zone_n - 3]);
            let donor_left = extract_planes(&self.zones[z + 1], &[2, 3]);
            apply_planes(&mut self.zones[z + 1], &[0, 1], &donor_right);
            let n = self.case.zone_n;
            apply_planes(&mut self.zones[z], &[n - 2, n - 1], &donor_left);
        }
    }

    /// Residual norm over the cells each zone truly owns — overlap planes
    /// act as donor-imposed boundary conditions, so they are excluded
    /// (measuring them would charge the interface data against the
    /// zone-local operator).
    pub fn interior_residual(&self) -> f64 {
        let mut acc = 0.0;
        for zi in 0..self.case.zones {
            acc += zone_interior_sq(
                &self.team,
                &self.zones[zi],
                &self.forcing[zi],
                zi > 0,
                zi + 1 < self.case.zones,
            );
        }
        acc.sqrt()
    }

    /// One time step over all zones; returns (interior residual norm,
    /// interface mismatch before the exchange).
    pub fn step(&mut self) -> (f64, f64) {
        for zi in 0..self.case.zones {
            self.adi_update(zi);
        }
        let mismatch = self.interface_mismatch();
        self.chimera_exchange();
        (self.interior_residual(), mismatch)
    }
}

/// Flatten the given x-planes of a zone into a contiguous buffer
/// (the payload of a Chimera donor message).
pub fn extract_planes(zone: &State5, planes: &[usize]) -> Vec<f64> {
    let n = zone.n;
    let mut out = Vec::with_capacity(planes.len() * n * n * NVAR);
    for &i in planes {
        for k in 0..n {
            for j in 0..n {
                for m in 0..NVAR {
                    out.push(zone.data[zone.idx(i, j, k, m)]);
                }
            }
        }
    }
    out
}

/// Inverse of [`extract_planes`]: write a donor buffer into the given
/// x-planes.
///
/// # Panics
/// Panics if the buffer length does not match the plane count.
pub fn apply_planes(zone: &mut State5, planes: &[usize], data: &[f64]) {
    let n = zone.n;
    assert_eq!(data.len(), planes.len() * n * n * NVAR, "donor buffer size");
    let mut it = data.iter();
    for &i in planes {
        for k in 0..n {
            for j in 0..n {
                for m in 0..NVAR {
                    let idx = zone.idx(i, j, k, m);
                    zone.data[idx] = *it.next().expect("sized above");
                }
            }
        }
    }
}

/// One implicit ADI update of a single zone: RHS evaluation, the three
/// factored pentadiagonal sweeps, donor-plane freezing, and the state
/// update. Shared by the threaded solver and the distributed-MPI runner.
pub(crate) fn adi_zone(
    team: &Team,
    zone: &mut State5,
    forcing: &State5,
    lo_frozen: bool,
    hi_frozen: bool,
) {
    let n = zone.n;
    let mut r = State5::zeros(n);
    residual(team, zone, forcing, &mut r);
    team.parallel_chunks(&mut r.data, |_s, chunk| {
        for v in chunk.iter_mut() {
            *v *= TAU;
        }
    });
    let coeffs = penta_coeffs();
    let sweep = |team: &Team, s: &mut State5| {
        maia_npb::flow::for_each_line(team, s, |line| {
            // One scratch buffer per worker thread, not per line.
            thread_local! {
                static SCRATCH: std::cell::RefCell<Vec<f64>> =
                    const { std::cell::RefCell::new(Vec::new()) };
            }
            SCRATCH.with(|cell| {
                let mut scratch = cell.borrow_mut();
                scratch.resize(n, 0.0);
                for m in 0..NVAR {
                    for i in 0..n {
                        scratch[i] = line[i * NVAR + m];
                    }
                    solve_penta(coeffs, &mut scratch);
                    for i in 0..n {
                        line[i * NVAR + m] = scratch[i];
                    }
                }
            });
        });
    };
    sweep(team, &mut r);
    let mut rr = r.rotate(team);
    sweep(team, &mut rr);
    let mut rrr = rr.rotate(team);
    sweep(team, &mut rrr);
    r = rrr.rotate(team);
    // Donor planes are boundary conditions: freeze them (the Chimera
    // exchange owns their values).
    if lo_frozen || hi_frozen {
        for k in 0..n {
            for j in 0..n {
                for m in 0..NVAR {
                    if lo_frozen {
                        let i0 = r.idx(0, j, k, m);
                        let i1 = r.idx(1, j, k, m);
                        r.data[i0] = 0.0;
                        r.data[i1] = 0.0;
                    }
                    if hi_frozen {
                        let i0 = r.idx(n - 2, j, k, m);
                        let i1 = r.idx(n - 1, j, k, m);
                        r.data[i0] = 0.0;
                        r.data[i1] = 0.0;
                    }
                }
            }
        }
    }
    add_assign(team, zone, &r);
}

/// Sum of squared differences between a left zone's plane `n-3` and the
/// right neighbor's plane 1 (delivered as a flat buffer) — one overlap's
/// mismatch contribution.
pub(crate) fn mismatch_sq(left: &State5, right_plane1: &[f64]) -> f64 {
    let n = left.n;
    let mine = extract_planes(left, &[n - 3]);
    assert_eq!(mine.len(), right_plane1.len(), "plane buffer size");
    mine.iter()
        .zip(right_plane1)
        .map(|(a, b)| (a - b) * (a - b))
        .sum()
}

/// Sum of squared interior residuals of one zone, excluding donor planes
/// on the trimmed sides.
pub(crate) fn zone_interior_sq(
    team: &Team,
    zone: &State5,
    forcing: &State5,
    trim_lo: bool,
    trim_hi: bool,
) -> f64 {
    let n = zone.n;
    let mut r = State5::zeros(n);
    residual(team, zone, forcing, &mut r);
    let lo = if trim_lo { 2 } else { 0 };
    let hi = if trim_hi { n - 2 } else { n };
    let mut acc = 0.0;
    for k in 0..n {
        for j in 0..n {
            for i in lo..hi {
                for m in 0..NVAR {
                    let v = r.data[r.idx(i, j, k, m)];
                    acc += v * v;
                }
            }
        }
    }
    acc
}

// ---------------------------------------------------------------------
// Figure models
// ---------------------------------------------------------------------

/// The OVERFLOW workload profile for a grid of `points` vertices
/// (10.8e6 for DLRF6-Medium, 35.9e6 for DLRF6-Large).
pub fn overflow_profile(points: f64) -> KernelProfile {
    let flops = points * 2000.0; // per time step
    KernelProfile {
        name: format!("overflow-{:.1}M", points / 1e6),
        flops,
        dram_bytes: flops * 3.0, // implicit sweeps stream the big arrays
        vector_fraction: 0.85,
        // Overset interpolation + implicit solves index indirectly.
        gather_fraction: 0.35,
        parallel_fraction: 0.9995,
        parallel_extent: None,
        phi_traffic_multiplier: 1.3,
    }
}

/// One Figure 22 layout measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutPoint {
    pub device: Device,
    pub ranks: u32,
    pub threads_per_rank: u32,
    pub seconds_per_step: f64,
}

/// Step time of the DLRF6-Medium case under an (I × J) layout.
pub fn step_time_s(device: Device, ranks: u32, threads_per_rank: u32) -> f64 {
    assert!(ranks >= 1 && threads_per_rank >= 1);
    let k = overflow_profile(10.8e6);
    let total = ranks * threads_per_rank;
    let model = match device {
        Device::Host => PerfModel::host(),
        _ => PerfModel::phi(),
    };
    let mut compute = model.unit_time_s(&k, total);

    match device {
        Device::Host => {
            // Loop-level OpenMP pays serial sections and, past one socket,
            // NUMA traffic; MPI ranks are nearly free over shared memory.
            compute *= 1.0 + 0.04 * (threads_per_rank as f64 - 1.0);
            compute *= 1.0 + 0.001 * (ranks as f64 - 1.0);
            if threads_per_rank > 8 {
                compute *= 1.2;
            }
        }
        _ => {
            // OpenMP threading is cheap on the card; every extra MPI rank
            // costs library memory and progress-engine interference.
            compute *= 1.0 + 0.003 * (threads_per_rank as f64 - 1.0);
            compute *= 1.0 + 0.012 * (ranks as f64 - 1.0);
        }
    }

    // Halo exchange: two neighbors per rank, one zone face each.
    let face_bytes = (10.8e6 / 23.0_f64).powf(2.0 / 3.0) * 5.0 * 8.0;
    let tpc = match device {
        Device::Host => 1 + (total > 16) as u32,
        _ => total.div_ceil(59).min(4),
    };
    let (lat_us, bw_gbs) = intra_device_params(device, tpc);
    let halo = 2.0 * (lat_us * 1e-6 + face_bytes / (bw_gbs * 1e9));
    compute + halo
}

/// The Figure 22 sweep: host and Phi (I × J) layouts.
pub fn fig22_series() -> Vec<LayoutPoint> {
    let mut out = Vec::new();
    for (i, j) in [(16u32, 1u32), (8, 2), (4, 4), (2, 8), (1, 16)] {
        out.push(LayoutPoint {
            device: Device::Host,
            ranks: i,
            threads_per_rank: j,
            seconds_per_step: step_time_s(Device::Host, i, j),
        });
    }
    for (i, j) in [(4u32, 14u32), (8, 14), (16, 14), (4, 28), (8, 28)] {
        out.push(LayoutPoint {
            device: Device::Phi0,
            ranks: i,
            threads_per_rank: j,
            seconds_per_step: step_time_s(Device::Phi0, i, j),
        });
    }
    out
}

/// One Figure 23 point: symmetric-mode DLRF6-Large step time under both
/// software stacks and the post-update gain.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig23Point {
    pub host_ranks: u32,
    pub phi_ranks: u32,
    pub phi_threads: u32,
    pub pre_s: f64,
    pub post_s: f64,
    pub gain_percent: f64,
}

/// The Figure 23 sweep over symmetric layouts.
pub fn fig23_series() -> Vec<Fig23Point> {
    let k = overflow_profile(35.9e6);
    // DLRF6-Large solution field is ~2 GB over 23 zones; a face exchange
    // per step moves tens of MB across PCIe.
    let halo: u64 = 24 << 20;
    let mut out = Vec::new();
    for (phi_ranks, phi_threads) in [(4u32, 14u32), (8, 14), (4, 28), (8, 28)] {
        let mk = |stack| SymmetricLayout {
            host_ranks: 16,
            host_threads_per_rank: 1,
            phi_ranks,
            phi_threads_per_rank: phi_threads,
            stack,
            imbalance: 0.25,
        };
        let pre = mk(SoftwareStack::PreUpdate).step(&k, halo).step_s;
        let post = mk(SoftwareStack::PostUpdate).step(&k, halo).step_s;
        out.push(Fig23Point {
            host_ranks: 16,
            phi_ranks,
            phi_threads,
            pre_s: pre,
            post_s: post,
            gain_percent: (pre / post - 1.0) * 100.0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_converge_and_interfaces_match_up() {
        let mut s = OverflowSolver::new(OverflowCase::small(), 4);
        let (r0, m0) = s.step();
        let mut last = (r0, m0);
        for _ in 0..20 {
            last = s.step();
        }
        assert!(
            last.0 < 0.2 * r0,
            "zone residuals failed to converge: {r0} -> {}",
            last.0
        );
        assert!(
            last.1 < 0.5 * m0.max(1e-30) || last.1 < 1e-6,
            "interface mismatch failed to shrink: {m0} -> {}",
            last.1
        );
    }

    #[test]
    fn thread_count_invariance() {
        let run = |threads| {
            let mut s = OverflowSolver::new(OverflowCase::small(), threads);
            let mut last = (0.0, 0.0);
            for _ in 0..4 {
                last = s.step();
            }
            last
        };
        let a = run(1);
        let b = run(5);
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }

    #[test]
    fn figure22_host_best_is_pure_mpi() {
        let pts = fig22_series();
        let host: Vec<&LayoutPoint> =
            pts.iter().filter(|p| p.device == Device::Host).collect();
        let best = host
            .iter()
            .min_by(|a, b| a.seconds_per_step.total_cmp(&b.seconds_per_step))
            .unwrap();
        let worst = host
            .iter()
            .max_by(|a, b| a.seconds_per_step.total_cmp(&b.seconds_per_step))
            .unwrap();
        assert_eq!((best.ranks, best.threads_per_rank), (16, 1), "host best");
        assert_eq!((worst.ranks, worst.threads_per_rank), (1, 16), "host worst");
    }

    #[test]
    fn figure22_phi_best_is_8x28() {
        let pts = fig22_series();
        let phi: Vec<&LayoutPoint> =
            pts.iter().filter(|p| p.device == Device::Phi0).collect();
        let best = phi
            .iter()
            .min_by(|a, b| a.seconds_per_step.total_cmp(&b.seconds_per_step))
            .unwrap();
        assert_eq!((best.ranks, best.threads_per_rank), (8, 28), "phi best");
        let worst = phi
            .iter()
            .max_by(|a, b| a.seconds_per_step.total_cmp(&b.seconds_per_step))
            .unwrap();
        assert_eq!((worst.ranks, worst.threads_per_rank), (4, 14), "phi worst");
    }

    #[test]
    fn figure22_host_best_beats_phi_best_by_about_1_8() {
        let pts = fig22_series();
        let best = |d: Device| {
            pts.iter()
                .filter(|p| p.device == d)
                .map(|p| p.seconds_per_step)
                .fold(f64::INFINITY, f64::min)
        };
        let factor = best(Device::Phi0) / best(Device::Host);
        assert!(
            (1.5..2.2).contains(&factor),
            "paper says host best = 1.8x phi best; got {factor}"
        );
    }

    #[test]
    fn figure23_gains_and_best_layout() {
        let series = fig23_series();
        for p in &series {
            assert!(
                (1.0..32.0).contains(&p.gain_percent),
                "update gain {}% outside the paper's 2-28% band for {}x{}",
                p.gain_percent,
                p.phi_ranks,
                p.phi_threads
            );
            assert!(p.post_s < p.pre_s);
        }
        // Best symmetric layout is 8 ranks x 28 threads per Phi.
        let best = series
            .iter()
            .min_by(|a, b| a.post_s.total_cmp(&b.post_s))
            .unwrap();
        assert_eq!((best.phi_ranks, best.phi_threads), (8, 28));
    }

    #[test]
    fn figure23_symmetric_beats_native_host() {
        let k = overflow_profile(35.9e6);
        let layout = SymmetricLayout {
            host_ranks: 16,
            host_threads_per_rank: 1,
            phi_ranks: 8,
            phi_threads_per_rank: 28,
            stack: SoftwareStack::PostUpdate,
            imbalance: 0.25,
        };
        let sym = layout.step(&k, 24 << 20).step_s;
        let native = layout.native_host_step(&k);
        let boost = native / sym;
        assert!(
            (1.6..2.2).contains(&boost),
            "paper reports a 1.9x boost; got {boost}"
        );
        // ...but two hosts over InfiniBand are still faster.
        assert!(layout.two_host_step(&k, 24 << 20) < sym);
    }
}
