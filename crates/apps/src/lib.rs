//! # maia-apps — the two production CFD applications of the paper
//!
//! * [`cart3d`] — a proxy for NASA's Cart3D: an inviscid cell-centered
//!   finite-volume Euler solver on a Cartesian mesh with cut cells
//!   (blanked bodies) and Runge–Kutta time stepping, pure OpenMP. The
//!   active-cell list makes its flux loops gather-heavy, which is the
//!   characteristic the paper identifies for its 2× host-over-Phi gap
//!   (Figure 21) and its 4-threads/core optimum.
//! * [`overflow`] — a proxy for OVERFLOW-2: a multi-zone overset-grid
//!   implicit solver (scalar-pentadiagonal ADI sweeps per zone, halo
//!   exchange between zones) in hybrid MPI+OpenMP, covering the paper's
//!   native (Figure 22) and symmetric (Figure 23) studies.
//!
//! Each module provides a *runnable* solver (tests exercise conservation,
//! convergence and determinism) and a calibrated figure model built on
//! `maia-modes`' performance engine.

pub mod cart3d;
pub mod overflow;
pub mod overflow_mpi;

pub use cart3d::{Cart3dCase, Cart3dSolver};
pub use overflow::{OverflowCase, OverflowSolver};
pub use overflow_mpi::{run_mpi as overflow_run_mpi, OverflowMpiResult};
