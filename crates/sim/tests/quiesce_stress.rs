//! Loom-style serialized stress tests for engine/pool teardown.
//!
//! The worker pool reuses OS threads across engines, which made engine
//! drop *asynchronous*: a pooled worker could still be unwinding a dead
//! engine's process closure — still holding `Arc`s into the world's
//! shared state — after `drop(engine)` returned. Reusing workers across
//! the wheels of a partitioned run turns that latent race into a
//! use-after-assumed-release. `Engine::quiesce` (also invoked by `Drop`)
//! now waits for every worker's acknowledgement that the closure has been
//! dropped; these tests pin that by checking `Arc::strong_count` the
//! instant teardown returns, many times in a row so a racy regression
//! cannot hide behind a lucky schedule.

use std::sync::Arc;

use maia_sim::channel::SimChannel;
use maia_sim::{Engine, SimDuration, SimError};

const ITERS: usize = 200;

/// Never-started processes: each worker is parked waiting for its first
/// resume. Dropping the engine must synchronously release every closure.
#[test]
fn dropping_unrun_engine_releases_closure_state_immediately() {
    for i in 0..ITERS {
        let payload = Arc::new(());
        let mut eng = Engine::new();
        for p in 0..4 {
            let payload = Arc::clone(&payload);
            eng.spawn(format!("p{p}"), move |ctx| {
                let _keep = payload;
                ctx.advance(SimDuration::from_us(1.0));
            });
        }
        drop(eng);
        assert_eq!(
            Arc::strong_count(&payload),
            1,
            "iteration {i}: a pooled worker still holds closure state after drop"
        );
    }
}

/// Deadlocked processes are parked inside `recv`; the engine consumed by
/// `run` must still quiesce them before the error is returned.
#[test]
fn deadlocked_engine_quiesces_before_reporting() {
    for i in 0..ITERS {
        let payload = Arc::new(());
        let ch = SimChannel::<u8>::new("never");
        let mut eng = Engine::new();
        for p in 0..3 {
            let payload = Arc::clone(&payload);
            let ch = ch.clone();
            eng.spawn(format!("stuck{p}"), move |ctx| {
                let _keep = payload;
                let _ = ch.recv(ctx);
            });
        }
        match eng.run() {
            Err(SimError::Deadlock { blocked, .. }) => assert_eq!(blocked.len(), 3),
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert_eq!(
            Arc::strong_count(&payload),
            1,
            "iteration {i}: a parked worker survived the deadlocked engine"
        );
    }
}

/// Mixed outcomes — finished, blocked, and never-started processes — all
/// quiesce on an explicit `quiesce()` call between windows.
#[test]
fn explicit_quiesce_between_windows_releases_all_workers() {
    for i in 0..ITERS {
        let payload = Arc::new(());
        let ch = SimChannel::<u8>::new("half");
        let mut eng = Engine::new();
        {
            let payload = Arc::clone(&payload);
            eng.spawn("finisher", move |ctx| {
                let _keep = payload;
                ctx.advance(SimDuration::from_ns(10.0));
            });
        }
        {
            let payload = Arc::clone(&payload);
            let ch = ch.clone();
            eng.spawn("blocker", move |ctx| {
                let _keep = payload;
                let _ = ch.recv(ctx);
            });
        }
        // Run one bounded window: the finisher completes, the blocker
        // parks. Quiesce must release both workers' closures.
        eng.run_window(maia_sim::SimTime::ZERO + SimDuration::from_us(1.0))
            .unwrap();
        eng.quiesce();
        assert_eq!(
            Arc::strong_count(&payload),
            1,
            "iteration {i}: quiesce returned with a worker still live"
        );
        drop(eng); // idempotent: the second quiesce must not hang
    }
}

/// A process that panics mid-run: the erroring engine must still release
/// the surviving processes' closures when it is dropped.
#[test]
fn panicking_world_still_quiesces() {
    for i in 0..ITERS / 4 {
        let payload = Arc::new(());
        let ch = SimChannel::<u8>::new("never");
        let mut eng = Engine::new();
        {
            let payload = Arc::clone(&payload);
            let ch = ch.clone();
            eng.spawn("victim", move |ctx| {
                let _keep = payload;
                let _ = ch.recv(ctx);
            });
        }
        eng.spawn("bomb", |ctx| {
            ctx.advance(SimDuration::from_ns(5.0));
            panic!("scheduled demise");
        });
        match eng.run() {
            Err(SimError::ProcessPanicked { name, .. }) => assert_eq!(name, "bomb"),
            other => panic!("expected panic error, got {other:?}"),
        }
        assert_eq!(
            Arc::strong_count(&payload),
            1,
            "iteration {i}: victim's worker still live after the run failed"
        );
    }
}
