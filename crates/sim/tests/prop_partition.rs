//! Property-based tests for the partition window-sync protocol:
//! causality (no delivery into a partition's past), termination, multiset
//! conservation (delivered == sent), and partition-layout invariance of
//! the simulated timeline.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use maia_sim::channel::SimChannel;
use maia_sim::partition::{local_bus, run_partitioned, Outbox, RemoteMsg, Wheel};
use maia_sim::{Engine, InjectCtx, SimDuration};

/// Number of simulated domains (fixed; the *wheel count* varies).
const DOMAINS: usize = 4;
/// Conservative lookahead: every cross-domain message costs at least this.
const LOOKAHEAD_PS: u64 = 1_000_000; // 1 us

/// One step of a domain's program.
#[derive(Debug, Clone)]
enum Op {
    /// Consume virtual time (picoseconds).
    Advance(u64),
    /// Send to domain `(self + hop) % DOMAINS` with cost `LOOKAHEAD + extra`.
    Send { hop: usize, extra_ps: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..5_000_000).prop_map(Op::Advance),
        ((1usize..DOMAINS), (0u64..3_000_000))
            .prop_map(|(hop, extra_ps)| Op::Send { hop, extra_ps }),
    ]
}

/// A delivered message: (sender domain, sender sequence, arrival ps,
/// receive-completion ps).
type Delivery = (usize, u64, u64, u64);

/// Run the program set with domains folded onto `wheels` event wheels
/// (domain d on wheel d % wheels). Returns (end ps, per-domain delivery
/// logs sorted by the deterministic message key).
fn run_folded(programs: &[Vec<Op>], wheels: usize) -> (u64, Vec<Vec<Delivery>>) {
    assert_eq!(programs.len(), DOMAINS);
    // Expected inbound message count per domain, so receivers know when
    // to stop and the world cannot deadlock.
    let mut expect: [usize; DOMAINS] = [0; DOMAINS];
    for (d, prog) in programs.iter().enumerate() {
        for op in prog {
            if let Op::Send { hop, .. } = op {
                expect[(d + hop) % DOMAINS] += 1;
            }
        }
    }

    let inboxes: Vec<SimChannel<(usize, u64, u64)>> = (0..DOMAINS)
        .map(|d| SimChannel::new(format!("inbox-{d}")))
        .collect();
    let logs: Arc<Vec<Mutex<Vec<Delivery>>>> =
        Arc::new((0..DOMAINS).map(|_| Mutex::new(Vec::new())).collect());

    let mut wheel_worlds = Vec::new();
    for w in 0..wheels {
        let outbox = Outbox::<(usize, u64, u64)>::new(wheels);
        let mut engine = Engine::new();
        for d in 0..DOMAINS {
            if d % wheels != w {
                continue;
            }
            let prog = programs[d].clone();
            let inbox = inboxes[d].clone();
            let outbox = outbox.clone();
            let logs = Arc::clone(&logs);
            let n_in = expect[d];
            engine.spawn(format!("rank-{d}"), move |ctx| {
                let mut seq = 0u64;
                for op in &prog {
                    match op {
                        Op::Advance(ps) => ctx.advance(SimDuration::from_ps(*ps)),
                        Op::Send { hop, extra_ps } => {
                            let dest = (d + hop) % DOMAINS;
                            let arrival =
                                ctx.now() + SimDuration::from_ps(LOOKAHEAD_PS + extra_ps);
                            outbox.send(
                                dest % wheels,
                                RemoteMsg {
                                    arrival,
                                    dest_slot: dest,
                                    order: (d as u64, seq),
                                    payload: (d, seq, arrival.as_ps()),
                                },
                            );
                            seq += 1;
                            ctx.advance(SimDuration::from_ps(LOOKAHEAD_PS + extra_ps));
                        }
                    }
                }
                for _ in 0..n_in {
                    let (src, sseq, arrival_ps) = inbox.recv(ctx);
                    // Causality: a message is never received before its
                    // stamped arrival.
                    assert!(
                        ctx.now().as_ps() >= arrival_ps,
                        "rank-{d} received a message from rank-{src} before its arrival"
                    );
                    logs[d].lock().push((src, sseq, arrival_ps, ctx.now().as_ps()));
                }
            });
        }
        let deliver_inboxes = inboxes.clone();
        wheel_worlds.push(Wheel {
            engine,
            outbox,
            deliver: Arc::new(move |ictx: &InjectCtx<'_>, slot: usize, payload: (usize, u64, u64)| {
                // Causality at the wheel boundary: the injection runs
                // exactly at the stamped arrival, never in the past.
                assert_eq!(ictx.now().as_ps(), payload.2);
                deliver_inboxes[slot].send_injected(ictx, payload);
            }),
        });
    }

    let (end, stats) = run_partitioned(
        wheel_worlds,
        local_bus(wheels),
        SimDuration::from_ps(LOOKAHEAD_PS),
        None,
    )
    .expect("window protocol must terminate without deadlock");
    assert_eq!(stats.partitions, wheels);

    let mut out = Vec::new();
    for d in 0..DOMAINS {
        let mut log = logs[d].lock().clone();
        log.sort_unstable();
        out.push(log);
    }
    (end.as_ps(), out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delivered multiset equals sent multiset, and every delivery
    /// respects causality (asserted inside the world).
    #[test]
    fn deliveries_conserve_the_sent_multiset(
        programs in prop::collection::vec(
            prop::collection::vec(op_strategy(), 0..10),
            DOMAINS,
        )
    ) {
        let (_, logs) = run_folded(&programs, 2);
        // Reconstruct the sent multiset per destination from the programs.
        let mut sent: Vec<Vec<(usize, u64)>> = vec![Vec::new(); DOMAINS];
        let mut seqs = [0u64; DOMAINS];
        for (d, prog) in programs.iter().enumerate() {
            for op in prog {
                if let Op::Send { hop, .. } = op {
                    sent[(d + hop) % DOMAINS].push((d, seqs[d]));
                    seqs[d] += 1;
                }
            }
        }
        for d in 0..DOMAINS {
            let mut got: Vec<(usize, u64)> =
                logs[d].iter().map(|&(src, seq, _, _)| (src, seq)).collect();
            got.sort_unstable();
            sent[d].sort_unstable();
            prop_assert_eq!(&got, &sent[d], "domain {} delivery multiset", d);
        }
    }

    /// The simulated timeline is bit-identical no matter how the domains
    /// are folded onto wheels: 1, 2, or one wheel per domain.
    #[test]
    fn timeline_is_invariant_across_wheel_counts(
        programs in prop::collection::vec(
            prop::collection::vec(op_strategy(), 0..10),
            DOMAINS,
        )
    ) {
        let (end1, logs1) = run_folded(&programs, 1);
        let (end2, logs2) = run_folded(&programs, 2);
        let (end4, logs4) = run_folded(&programs, DOMAINS);
        prop_assert_eq!(end1, end2);
        prop_assert_eq!(end1, end4);
        prop_assert_eq!(&logs1, &logs2);
        prop_assert_eq!(&logs1, &logs4);
    }

    /// Re-running the same fold is bit-identical (no OS-scheduling leak
    /// through the barrier protocol).
    #[test]
    fn partitioned_runs_are_deterministic(
        programs in prop::collection::vec(
            prop::collection::vec(op_strategy(), 0..10),
            DOMAINS,
        )
    ) {
        let a = run_folded(&programs, 2);
        let b = run_folded(&programs, 2);
        prop_assert_eq!(a, b);
    }
}
