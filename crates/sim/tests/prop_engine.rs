//! Property-based tests for the simulation engine: determinism and clock
//! monotonicity under arbitrary interleavings of compute and messaging.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use maia_sim::channel::SimChannel;
use maia_sim::{Engine, SimDuration};

/// A tiny process program: a list of steps, each either "advance by d ns"
/// or "send token to the shared channel" or "receive a token".
#[derive(Debug, Clone)]
enum Step {
    Advance(u32),
    Send,
    Recv,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u32..10_000).prop_map(Step::Advance),
        Just(Step::Send),
        Just(Step::Recv),
    ]
}

/// Run a set of process programs; returns (end time ps, trace of
/// (process, step index, now ps)). One token is pre-seeded per `Recv` so no
/// program ordering can deadlock (extra `Send` tokens are harmless).
fn run_programs(programs: &[Vec<Step>]) -> (u64, Vec<(usize, usize, u64)>) {
    let recvs: usize = programs
        .iter()
        .flatten()
        .filter(|s| matches!(s, Step::Recv))
        .count();

    let mut eng = Engine::new();
    let ch = SimChannel::<u8>::new("tokens");
    let trace = Arc::new(Mutex::new(Vec::new()));

    let seed = recvs;
    {
        let ch = ch.clone();
        eng.spawn("seeder", move |ctx| {
            for _ in 0..seed {
                ch.send(ctx, 0);
            }
        });
    }

    for (pi, prog) in programs.iter().enumerate() {
        let prog = prog.clone();
        let ch = ch.clone();
        let trace = Arc::clone(&trace);
        eng.spawn(format!("p{pi}"), move |ctx| {
            for (si, step) in prog.iter().enumerate() {
                match step {
                    Step::Advance(ns) => ctx.advance(SimDuration::from_ns(*ns as f64)),
                    Step::Send => ch.send(ctx, 1),
                    Step::Recv => {
                        let _ = ch.recv(ctx);
                    }
                }
                trace.lock().push((pi, si, ctx.now().as_ps()));
            }
        });
    }

    let end = eng.run().expect("seeded program set must not deadlock");
    let t = trace.lock().clone();
    (end.as_ps(), t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same program set always produces bit-identical traces: OS thread
    /// scheduling must not leak into virtual time.
    #[test]
    fn engine_is_deterministic(
        programs in prop::collection::vec(
            prop::collection::vec(step_strategy(), 0..12),
            1..6,
        )
    ) {
        let (end1, trace1) = run_programs(&programs);
        let (end2, trace2) = run_programs(&programs);
        prop_assert_eq!(end1, end2);
        prop_assert_eq!(trace1, trace2);
    }

    /// Per-process local time never decreases, and the end time equals the
    /// maximum observed clock.
    #[test]
    fn clocks_are_monotone(
        programs in prop::collection::vec(
            prop::collection::vec(step_strategy(), 0..12),
            1..6,
        )
    ) {
        let (end, trace) = run_programs(&programs);
        let nprocs = programs.len();
        for p in 0..nprocs {
            let times: Vec<u64> = trace
                .iter()
                .filter(|&&(pi, _, _)| pi == p)
                .map(|&(_, _, t)| t)
                .collect();
            for w in times.windows(2) {
                prop_assert!(w[0] <= w[1], "process {} clock went backwards", p);
            }
        }
        let max_seen = trace.iter().map(|&(_, _, t)| t).max().unwrap_or(0);
        prop_assert_eq!(end, max_seen);
    }
}
