//! Partitioned (sharded) execution of a simulated world.
//!
//! One [`Engine`] — one *event wheel* — per partition, each driven by its
//! own pooled OS worker, synchronized by conservative lookahead windows:
//! no wheel processes an event at or past the current window boundary
//! until every cross-partition message generated in the previous window
//! has been exchanged and scheduled for delivery. The window width is the
//! *lookahead* `L`, the minimum virtual-time cost of any cross-domain
//! message in the cost model: a message handed to the communicator at
//! send time `s` arrives no earlier than `s + L`, so a window `[T, T+L)`
//! can never produce a delivery inside itself or inside any window that
//! has already run.
//!
//! Between windows the wheels perform a barrier exchange through a
//! [`SimCommunicator`]: each partition ships its outbound messages plus a
//! *floor* — the earliest virtual time at which it could next act (its
//! local queue head, or the earliest arrival among messages it just
//! sent). Every partition computes the identical global minimum floor, so
//! all wheels agree on the next window `[next, next+L)` without a
//! coordinator, idle stretches are skipped in one hop, and the run
//! terminates when the global floor is infinite. The
//! [`LocalChannelCommunicator`] backend connects wheels over in-process
//! channels; the trait leaves room for a cross-process backend later.
//!
//! Determinism: within a wheel the engine's `(time, seq)` total order
//! applies as ever; ingested messages are sorted by
//! `(arrival, order, dest_slot)` — where `order` is a partition-layout-
//! independent key chosen by the caller (e.g. `(global sender rank,
//! per-sender sequence)`) — before being scheduled, so the injected event
//! order does not depend on how domains are folded onto wheels. Runs are
//! therefore bit-for-bit identical across partition counts *and* across
//! repeated runs.

pub mod process;

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::engine::{Engine, InjectCtx, ProcessId, SimError};
use crate::probe::Probe;
use crate::time::{SimDuration, SimTime};

pub use process::{ProcessCommunicator, ProcessConfig, WorkerEndpoint, WorkerLoss};

/// A cross-partition simulated message in flight.
#[derive(Debug)]
pub struct RemoteMsg<T> {
    /// Virtual arrival time at the destination (stamped by the sender:
    /// send-start time plus full transfer cost, hence ≥ send time + the
    /// lookahead).
    pub arrival: SimTime,
    /// Destination inbox slot, interpreted by the wheel's deliver hook
    /// (the MPI layer uses the destination's global rank).
    pub dest_slot: usize,
    /// Partition-layout-independent ordering key — e.g. `(global sender
    /// rank, per-sender sequence)` — used to sort same-instant deliveries
    /// identically regardless of the domain→wheel folding.
    pub order: (u64, u64),
    /// The message itself.
    pub payload: T,
}

/// What a window-barrier exchange produced.
pub enum ExchangeOutcome<T> {
    /// At least one partition still has work: `inbound` holds every
    /// message destined for this partition, and `next` is the global
    /// minimum floor — the start of the next window, identical on every
    /// partition.
    Continue {
        inbound: Vec<RemoteMsg<T>>,
        next: SimTime,
    },
    /// Every partition's floor is infinite: the world has no pending
    /// events and no in-flight messages.
    Done,
    /// A peer aborted (its wheel failed); this partition should stop
    /// without reporting its own error.
    Aborted,
}

/// Transport between partitions for the window-barrier exchange.
///
/// `LocalChannelCommunicator` is the in-process backend; the trait is the
/// seam where a cross-process (socket/shared-memory) backend would slot
/// in.
pub trait SimCommunicator<T>: Send {
    /// This partition's index.
    fn partition(&self) -> usize;
    /// Total number of partitions.
    fn partitions(&self) -> usize;
    /// Barrier exchange: ship `outbound[j]` to partition `j` together
    /// with this partition's `floor` (earliest possible next action, in
    /// picoseconds; `None` = infinity), collect every peer's batch, and
    /// return the union of inbound messages plus the global minimum
    /// floor. `outbound[self.partition()]` holds cross-*domain* messages
    /// whose sender and receiver were folded onto the same wheel; they
    /// are returned in `inbound` untouched so routing is identical for
    /// every partition count.
    fn exchange(&mut self, outbound: Vec<Vec<RemoteMsg<T>>>, floor: Option<u64>)
        -> ExchangeOutcome<T>;
    /// Tell every peer this partition died, so their blocking exchanges
    /// return [`ExchangeOutcome::Aborted`] instead of hanging.
    fn abort(&mut self);
}

/// A mutable borrow drives the protocol exactly like the owned value —
/// lets callers keep the communicator (e.g. to collect worker reports)
/// after [`drive_wheel`] returns.
impl<T, C: SimCommunicator<T>> SimCommunicator<T> for &mut C {
    fn partition(&self) -> usize {
        (**self).partition()
    }
    fn partitions(&self) -> usize {
        (**self).partitions()
    }
    fn exchange(&mut self, outbound: Vec<Vec<RemoteMsg<T>>>, floor: Option<u64>)
        -> ExchangeOutcome<T> {
        (**self).exchange(outbound, floor)
    }
    fn abort(&mut self) {
        (**self).abort()
    }
}

enum Packet<T> {
    Batch {
        floor: Option<u64>,
        msgs: Vec<RemoteMsg<T>>,
    },
    Abort,
}

/// In-process [`SimCommunicator`] backend: one dedicated channel per
/// ordered partition pair, so batches from different windows can never
/// interleave and each barrier consumes exactly one batch per peer.
pub struct LocalChannelCommunicator<T> {
    idx: usize,
    /// `to_peers[j]` sends to partition `j` (`None` at `j == idx`).
    to_peers: Vec<Option<Sender<Packet<T>>>>,
    /// `from_peers[j]` receives from partition `j` (`None` at `j == idx`).
    from_peers: Vec<Option<Receiver<Packet<T>>>>,
    aborted: bool,
}

/// Build a fully-connected bus of `n` local communicators.
pub fn local_bus<T: Send>(n: usize) -> Vec<LocalChannelCommunicator<T>> {
    assert!(n >= 1, "a partitioned world needs at least one partition");
    let mut to: Vec<Vec<Option<Sender<Packet<T>>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut from: Vec<Vec<Option<Receiver<Packet<T>>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let (tx, rx) = unbounded();
                to[i][j] = Some(tx);
                from[j][i] = Some(rx);
            }
        }
    }
    to.into_iter()
        .zip(from)
        .enumerate()
        .map(|(idx, (to_peers, from_peers))| LocalChannelCommunicator {
            idx,
            to_peers,
            from_peers,
            aborted: false,
        })
        .collect()
}

impl<T> LocalChannelCommunicator<T> {
    fn send_abort_to_peers(&self) {
        for tx in self.to_peers.iter().flatten() {
            let _ = tx.send(Packet::Abort);
        }
    }
}

impl<T: Send> SimCommunicator<T> for LocalChannelCommunicator<T> {
    fn partition(&self) -> usize {
        self.idx
    }

    fn partitions(&self) -> usize {
        self.to_peers.len()
    }

    fn exchange(
        &mut self,
        mut outbound: Vec<Vec<RemoteMsg<T>>>,
        floor: Option<u64>,
    ) -> ExchangeOutcome<T> {
        let n = self.to_peers.len();
        debug_assert_eq!(outbound.len(), n, "one outbound bucket per partition");
        if self.aborted {
            return ExchangeOutcome::Aborted;
        }
        // Same-wheel cross-domain messages skip the wire entirely.
        let mut inbound: Vec<RemoteMsg<T>> = std::mem::take(&mut outbound[self.idx]);
        let mut global = floor;
        for (j, bucket) in outbound.into_iter().enumerate() {
            if j == self.idx {
                continue;
            }
            let tx = self.to_peers[j].as_ref().expect("peer sender exists");
            if tx.send(Packet::Batch { floor, msgs: bucket }).is_err() {
                // A peer vanished without an explicit abort packet.
                self.abort();
                return ExchangeOutcome::Aborted;
            }
        }
        for j in 0..n {
            if j == self.idx {
                continue;
            }
            let rx = self.from_peers[j].as_ref().expect("peer receiver exists");
            match rx.recv() {
                Ok(Packet::Batch { floor: f, msgs }) => {
                    global = match (global, f) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    inbound.extend(msgs);
                }
                Ok(Packet::Abort) | Err(_) => {
                    self.abort();
                    return ExchangeOutcome::Aborted;
                }
            }
        }
        match global {
            None => ExchangeOutcome::Done,
            Some(next_ps) => ExchangeOutcome::Continue {
                inbound,
                next: SimTime(next_ps),
            },
        }
    }

    fn abort(&mut self) {
        if !self.aborted {
            self.aborted = true;
            self.send_abort_to_peers();
        }
    }
}

struct OutboxInner<T> {
    per_peer: Vec<Vec<RemoteMsg<T>>>,
}

/// Per-wheel staging area for outbound cross-domain messages. Simulated
/// code records a message here at send *start* (with the fully-costed
/// arrival stamp); the wheel driver drains it at each window barrier.
pub struct Outbox<T> {
    inner: Arc<Mutex<OutboxInner<T>>>,
}

impl<T> Clone for Outbox<T> {
    fn clone(&self) -> Self {
        Outbox {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Outbox<T> {
    /// An empty outbox with one bucket per partition.
    pub fn new(partitions: usize) -> Self {
        Outbox {
            inner: Arc::new(Mutex::new(OutboxInner {
                per_peer: (0..partitions).map(|_| Vec::new()).collect(),
            })),
        }
    }

    /// Record a message for the window-barrier exchange.
    pub fn send(&self, dest_partition: usize, msg: RemoteMsg<T>) {
        self.inner.lock().per_peer[dest_partition].push(msg);
    }

    /// Drain all buckets, returning them and the earliest outbound
    /// arrival (the outbox's contribution to the partition floor).
    fn drain(&self) -> (Vec<Vec<RemoteMsg<T>>>, Option<u64>) {
        let mut inner = self.inner.lock();
        let n = inner.per_peer.len();
        let buckets = std::mem::replace(
            &mut inner.per_peer,
            (0..n).map(|_| Vec::new()).collect(),
        );
        let min_arrival = buckets
            .iter()
            .flatten()
            .map(|m| m.arrival.as_ps())
            .min();
        (buckets, min_arrival)
    }
}

/// Pid-remapping probe wrapper for one wheel of a partitioned run.
///
/// A partitioned world shares ONE underlying experiment probe across all
/// wheels so the virtual-side telemetry is identical to a single-wheel
/// run of the same world, for every partition count:
///
/// * local pids are remapped to the caller's global process indices
///   (the caller pre-registers every process name in global order via
///   [`register_global_process`]; per-wheel `process_spawned` calls are
///   suppressed);
/// * `event_fired` reports queue depth 0 — per-wheel queue depths depend
///   on the partition layout, so the only layout-invariant depth is none;
/// * `run_complete` is suppressed; [`run_partitioned`] reports the global
///   end once;
/// * spans are buffered and flushed globally sorted after the run, since
///   concurrent wheels would otherwise interleave them
///   nondeterministically.
pub struct PartitionProbe {
    inner: Arc<dyn Probe>,
    /// Local pid index → global process index.
    map: Vec<usize>,
    spans: Mutex<Vec<BufferedSpan>>,
}

struct BufferedSpan {
    name: String,
    start_ps: u64,
    end_ps: u64,
    global: usize,
}

impl PartitionProbe {
    /// Wrap `inner` for a wheel whose local pid `k` is global process
    /// `map[k]`. `map` must cover every process spawned on the wheel, in
    /// spawn order.
    pub fn new(inner: Arc<dyn Probe>, map: Vec<usize>) -> Self {
        PartitionProbe {
            inner,
            map,
            spans: Mutex::new(Vec::new()),
        }
    }

    fn global(&self, pid: ProcessId) -> ProcessId {
        ProcessId::from_index(
            *self
                .map
                .get(pid.index())
                .expect("PartitionProbe map must cover every spawned process"),
        )
    }

    fn take_spans(&self) -> Vec<BufferedSpan> {
        std::mem::take(&mut *self.spans.lock())
    }
}

impl Probe for PartitionProbe {
    fn process_spawned(&self, _pid: ProcessId, _name: &str) {
        // Suppressed: the caller registers names in global order up front.
    }

    fn event_scheduled(&self, at_ps: u64, pid: ProcessId) {
        self.inner.event_scheduled(at_ps, self.global(pid));
    }

    fn event_fired(&self, now_ps: u64, pid: ProcessId, _queue_depth: usize) {
        self.inner.event_fired(now_ps, self.global(pid), 0);
    }

    fn advanced(&self, now_ps: u64, pid: ProcessId, dur_ps: u64) {
        self.inner.advanced(now_ps, self.global(pid), dur_ps);
    }

    fn blocked(&self, now_ps: u64, pid: ProcessId) {
        self.inner.blocked(now_ps, self.global(pid));
    }

    fn finished(&self, now_ps: u64, pid: ProcessId) {
        self.inner.finished(now_ps, self.global(pid));
    }

    fn run_complete(&self, _end_ps: u64) {
        // Suppressed: the orchestrator reports the global end once.
    }

    fn resource_wait(&self, name: &str, pid: ProcessId, wait_ps: u64) {
        self.inner.resource_wait(name, self.global(pid), wait_ps);
    }

    fn resource_service(&self, name: &str, pid: ProcessId, held_ps: u64) {
        self.inner.resource_service(name, self.global(pid), held_ps);
    }

    fn span(&self, name: &str, start_ps: u64, end_ps: u64, pid: ProcessId) {
        self.spans.lock().push(BufferedSpan {
            name: name.to_string(),
            start_ps,
            end_ps,
            global: self.global(pid).index(),
        });
    }
}

/// Register a process name with a probe under an explicit *global* index,
/// before the partitioned run begins. Pair with [`PartitionProbe`]: the
/// per-wheel spawn notifications are suppressed, so global registration
/// keeps `process_spawned` order — and any probe-side pid→name table —
/// identical to a single-wheel run.
pub fn register_global_process(probe: &dyn Probe, index: usize, name: &str) {
    probe.process_spawned(ProcessId::from_index(index), name);
}

/// Delivery hook of a [`Wheel`]: place a payload into an inbox slot
/// (waking a blocked receiver through the [`InjectCtx`]).
pub type DeliverFn<T> = Arc<dyn Fn(&InjectCtx<'_>, usize, T) + Send + Sync>;

/// One partition of a sharded world, ready to drive.
pub struct Wheel<T> {
    /// The wheel's engine, with every local process already spawned.
    pub engine: Engine,
    /// Staging area the wheel's processes record cross-domain sends into.
    pub outbox: Outbox<T>,
    /// Delivery hook for inbound cross-domain payloads.
    pub deliver: DeliverFn<T>,
}

/// Shared-probe bookkeeping for a partitioned run (absent when the run is
/// unprobed).
pub struct ProbeBundle {
    /// The single underlying experiment probe.
    pub inner: Arc<dyn Probe>,
    /// One remapping wrapper per wheel, in wheel order.
    pub wheel_probes: Vec<Arc<PartitionProbe>>,
}

/// Per-wheel statistics of a partitioned run (wall-side telemetry; these
/// legitimately vary with the partition count and machine load).
#[derive(Debug, Clone, Default)]
pub struct WheelStats {
    /// Final virtual time reached by this wheel.
    pub end_ps: u64,
    /// Cross-domain messages this wheel sent.
    pub messages_out: u64,
    /// Wall-clock nanoseconds this wheel spent stalled in window-barrier
    /// exchanges.
    pub stall_wall_ns: u64,
}

/// Statistics of a whole partitioned run.
#[derive(Debug, Clone, Default)]
pub struct PartitionRunStats {
    /// Number of wheels.
    pub partitions: usize,
    /// Lookahead windows executed (identical on every wheel).
    pub windows: u64,
    /// Total cross-domain messages exchanged.
    pub messages: u64,
    /// Per-wheel buckets, in wheel order.
    pub wheels: Vec<WheelStats>,
}

/// How one wheel's drive loop ended.
#[derive(Debug)]
pub enum DriveStatus {
    /// The global floor went infinite: the world completed.
    Completed,
    /// This wheel's engine failed.
    Error(SimError),
    /// A peer aborted; this wheel stopped without an error of its own.
    PeerAborted,
}

/// Everything [`finalize_partitioned`] needs to know about one wheel's
/// run — produced locally by [`drive_wheel`], or decoded from a worker
/// process's report frame.
pub struct WheelReport {
    /// How the drive loop ended.
    pub status: DriveStatus,
    /// Processes still blocked when the wheel stopped.
    pub blocked: Vec<String>,
    /// The wheel's final virtual time.
    pub end: SimTime,
    /// Lookahead windows executed.
    pub windows: u64,
    /// Wall-side statistics.
    pub stats: WheelStats,
}

/// Drive one wheel of a sharded world to completion through `comm` —
/// the per-wheel loop [`run_partitioned`] runs on each pooled worker,
/// public so a *worker process* can drive its single wheel against a
/// [`WorkerEndpoint`].
pub fn drive_wheel<T, C>(mut wheel: Wheel<T>, mut comm: C, lookahead: SimDuration) -> WheelReport
where
    T: Send + 'static,
    C: SimCommunicator<T>,
{
    assert!(
        lookahead.as_ps() > 0,
        "partition lookahead must be positive: a zero-latency cross-domain link \
         admits no conservative window"
    );
    let mut windows = 0u64;
    let mut messages_out = 0u64;
    let mut stall_wall_ns = 0u64;
    let mut limit = SimTime::ZERO + lookahead;
    let status = loop {
        if let Err(e) = wheel.engine.run_window(limit) {
            comm.abort();
            break DriveStatus::Error(e);
        }
        windows += 1;
        let (outbound, out_floor) = wheel.outbox.drain();
        messages_out += outbound.iter().map(Vec::len).sum::<usize>() as u64;
        let local_next = wheel.engine.next_event_time().map(SimTime::as_ps);
        let floor = match (local_next, out_floor) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let barrier = Instant::now();
        match comm.exchange(outbound, floor) {
            ExchangeOutcome::Continue { mut inbound, next } => {
                stall_wall_ns += barrier.elapsed().as_nanos() as u64;
                // Sort by a partition-layout-independent key so injected
                // event order — and thus the engine's seq assignment — is
                // identical for every domain→wheel folding.
                inbound.sort_by(|a, b| {
                    (a.arrival, a.order, a.dest_slot).cmp(&(b.arrival, b.order, b.dest_slot))
                });
                for m in inbound {
                    let deliver = Arc::clone(&wheel.deliver);
                    let slot = m.dest_slot;
                    let payload = m.payload;
                    wheel
                        .engine
                        .schedule_injection(m.arrival, move |ictx| deliver(ictx, slot, payload));
                }
                limit = next + lookahead;
            }
            ExchangeOutcome::Done => {
                stall_wall_ns += barrier.elapsed().as_nanos() as u64;
                break DriveStatus::Completed;
            }
            ExchangeOutcome::Aborted => break DriveStatus::PeerAborted,
        }
    };
    let blocked = wheel.engine.blocked_processes();
    let end = wheel.engine.now();
    // Quiesce at the final barrier: no pooled worker may still hold this
    // wheel's closures when the wheel (and the world behind it) drops.
    wheel.engine.quiesce();
    WheelReport {
        status,
        blocked,
        end,
        windows,
        stats: WheelStats {
            end_ps: end.as_ps(),
            messages_out,
            stall_wall_ns,
        },
    }
}

/// Run a sharded world to completion: one pooled OS worker per wheel
/// (wheel 0 drives on the calling thread), window-synchronized through
/// the given communicators.
///
/// Returns the global end time — the maximum over wheels, equal to the
/// single-wheel end time of the same world — and the run statistics.
///
/// # Panics
/// Panics if `lookahead` is zero (a zero-latency cross-domain link would
/// livelock the window protocol: windows could never contain an event)
/// or if `wheels` and `comms` disagree about the partition layout.
pub fn run_partitioned<T, C>(
    wheels: Vec<Wheel<T>>,
    comms: Vec<C>,
    lookahead: SimDuration,
    probes: Option<ProbeBundle>,
) -> Result<(SimTime, PartitionRunStats), SimError>
where
    T: Send + 'static,
    C: SimCommunicator<T> + 'static,
{
    assert!(
        lookahead.as_ps() > 0,
        "partition lookahead must be positive: a zero-latency cross-domain link \
         admits no conservative window"
    );
    let n = wheels.len();
    assert_eq!(n, comms.len(), "one communicator per wheel");
    for (i, c) in comms.iter().enumerate() {
        assert_eq!(c.partition(), i, "communicator order must match wheel order");
        assert_eq!(c.partitions(), n, "communicator bus size must match wheel count");
    }

    let mut reports: Vec<Option<WheelReport>> = (0..n).map(|_| None).collect();
    let (done_tx, done_rx) = unbounded::<(usize, WheelReport)>();
    let mut pairs: Vec<(Wheel<T>, C)> = wheels.into_iter().zip(comms).collect();
    let head = pairs.remove(0);
    for (i, (wheel, comm)) in pairs.into_iter().enumerate() {
        let done_tx = done_tx.clone();
        crate::pool::run_job(Box::new(move || {
            let report = drive_wheel(wheel, comm, lookahead);
            let _ = done_tx.send((i + 1, report));
        }));
    }
    reports[0] = Some(drive_wheel(head.0, head.1, lookahead));
    for _ in 1..n {
        let (i, report) = done_rx.recv().expect("wheel driver vanished");
        reports[i] = Some(report);
    }
    let reports: Vec<WheelReport> = reports.into_iter().map(|r| r.expect("all wheels reported")).collect();
    finalize_partitioned(reports, probes)
}

/// Merge per-wheel reports into the run result: earliest real error
/// wins (by virtual time, then wheel index), leftover blocked processes
/// merge into one deadlock, buffered probe spans flush globally sorted.
/// Shared by [`run_partitioned`] and the process backend, whose worker
/// reports arrive over the wire instead of from pooled threads.
pub fn finalize_partitioned(
    reports: Vec<WheelReport>,
    probes: Option<ProbeBundle>,
) -> Result<(SimTime, PartitionRunStats), SimError> {
    let n = reports.len();
    // A wheel that saw PeerAborted stopped because of someone else's
    // failure; surface the earliest real error (by virtual time, then
    // wheel index) so the reported failure is deterministic.
    let mut first_error: Option<SimError> = None;
    for r in &reports {
        if let DriveStatus::Error(e) = &r.status {
            let key = |err: &SimError| match err {
                SimError::Deadlock { at, .. } | SimError::ProcessPanicked { at, .. } => *at,
            };
            if first_error.as_ref().is_none_or(|best| key(e) < key(best)) {
                first_error = Some(e.clone());
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    if reports
        .iter()
        .any(|r| matches!(r.status, DriveStatus::PeerAborted))
    {
        // Should be unreachable: an abort implies a real error somewhere.
        return Err(SimError::ProcessPanicked {
            name: "partition-exchange".to_string(),
            message: "a partition aborted without reporting an error".to_string(),
            at: SimTime::ZERO,
        });
    }

    let end = reports.iter().map(|r| r.end).max().unwrap_or(SimTime::ZERO);
    let blocked: Vec<String> = reports.iter().flat_map(|r| r.blocked.clone()).collect();
    if !blocked.is_empty() {
        return Err(SimError::Deadlock { blocked, at: end });
    }

    if let Some(bundle) = probes {
        // Flush buffered spans in one globally-sorted pass, then report
        // the single global run completion.
        let mut spans: Vec<BufferedSpan> = bundle
            .wheel_probes
            .iter()
            .flat_map(|p| p.take_spans())
            .collect();
        spans.sort_by(|a, b| {
            (a.start_ps, a.end_ps, a.global, &a.name).cmp(&(b.start_ps, b.end_ps, b.global, &b.name))
        });
        for s in spans {
            bundle
                .inner
                .span(&s.name, s.start_ps, s.end_ps, ProcessId::from_index(s.global));
        }
        bundle.inner.run_complete(end.as_ps());
    }

    let stats = PartitionRunStats {
        partitions: n,
        windows: reports.first().map_or(0, |r| r.windows),
        messages: reports.iter().map(|r| r.stats.messages_out).sum(),
        wheels: reports.into_iter().map(|r| r.stats).collect(),
    };
    Ok((end, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::SimChannel;
    use parking_lot::Mutex as PlMutex;

    /// Two wheels, one rank each, ping-pong over the communicator: the
    /// end time must equal the single-wheel rendezvous timing.
    #[test]
    fn cross_partition_ping_pong_matches_single_wheel_timing() {
        let lookahead = SimDuration::from_us(1.0);
        let cost = SimDuration::from_us(3.0); // per message, >= lookahead

        // Partitioned: rank 0 on wheel 0 sends at t=0 (arrival 3us);
        // rank 1 on wheel 1 receives, replies (arrival 6us).
        let mut wheels = Vec::new();
        let got = Arc::new(PlMutex::new(None::<u64>));
        for w in 0..2usize {
            let inbox = SimChannel::<u32>::new(format!("inbox-{w}"));
            let outbox = Outbox::<u32>::new(2);
            let mut engine = Engine::new();
            {
                let inbox = inbox.clone();
                let outbox = outbox.clone();
                let got = Arc::clone(&got);
                engine.spawn(format!("rank-{w}"), move |ctx| {
                    if w == 0 {
                        outbox.send(
                            1,
                            RemoteMsg {
                                arrival: ctx.now() + cost,
                                dest_slot: 1,
                                order: (0, 0),
                                payload: 7,
                            },
                        );
                        ctx.advance(cost);
                        let x = inbox.recv(ctx);
                        assert_eq!(x, 8);
                        *got.lock() = Some(ctx.now().as_ps());
                    } else {
                        let x = inbox.recv(ctx);
                        outbox.send(
                            0,
                            RemoteMsg {
                                arrival: ctx.now() + cost,
                                dest_slot: 0,
                                order: (1, 0),
                                payload: x + 1,
                            },
                        );
                        ctx.advance(cost);
                    }
                });
            }
            let deliver_inbox = inbox.clone();
            wheels.push(Wheel {
                engine,
                outbox,
                deliver: Arc::new(move |ictx: &InjectCtx<'_>, _slot, v| {
                    deliver_inbox.send_injected(ictx, v);
                }),
            });
        }
        let comms = local_bus::<u32>(2);
        let (end, stats) = run_partitioned(wheels, comms, lookahead, None).unwrap();
        assert_eq!(end.as_us(), 6.0);
        assert_eq!(*got.lock(), Some(6_000_000));
        assert_eq!(stats.partitions, 2);
        assert_eq!(stats.messages, 2);
        assert!(stats.windows >= 2);
    }

    /// The same-wheel bucket of the exchange loops back untouched, so a
    /// single-partition run still works through the full protocol.
    #[test]
    fn single_partition_loopback_delivers() {
        let lookahead = SimDuration::from_us(1.0);
        let inbox = SimChannel::<u32>::new("inbox");
        let outbox = Outbox::<u32>::new(1);
        let mut engine = Engine::new();
        let got = Arc::new(PlMutex::new(None::<(u32, u64)>));
        {
            let outbox = outbox.clone();
            engine.spawn("tx", move |ctx| {
                outbox.send(
                    0,
                    RemoteMsg {
                        arrival: ctx.now() + SimDuration::from_us(2.0),
                        dest_slot: 0,
                        order: (0, 0),
                        payload: 41,
                    },
                );
                ctx.advance(SimDuration::from_us(2.0));
            });
        }
        {
            let inbox_rx = inbox.clone();
            let got = Arc::clone(&got);
            engine.spawn("rx", move |ctx| {
                let v = inbox_rx.recv(ctx);
                *got.lock() = Some((v, ctx.now().as_ps()));
            });
        }
        let deliver_inbox = inbox.clone();
        let wheels = vec![Wheel {
            engine,
            outbox,
            deliver: Arc::new(move |ictx: &InjectCtx<'_>, _slot, v| {
                deliver_inbox.send_injected(ictx, v);
            }),
        }];
        let (end, _) = run_partitioned(wheels, local_bus::<u32>(1), lookahead, None).unwrap();
        assert_eq!(end.as_us(), 2.0);
        assert_eq!(*got.lock(), Some((41, 2_000_000)));
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_is_rejected_at_construction() {
        let engine = Engine::new();
        let wheels = vec![Wheel {
            engine,
            outbox: Outbox::<u8>::new(1),
            deliver: Arc::new(|_ictx: &InjectCtx<'_>, _slot, _v: u8| {}),
        }];
        let _ = run_partitioned(wheels, local_bus::<u8>(1), SimDuration::ZERO, None);
    }

    /// A panic on one wheel must surface as that wheel's error while the
    /// other wheels unblock via the abort protocol instead of hanging.
    #[test]
    fn panic_on_one_wheel_aborts_the_others() {
        let lookahead = SimDuration::from_us(1.0);
        let mut wheels = Vec::new();
        for w in 0..2usize {
            let inbox = SimChannel::<u8>::new(format!("inbox-{w}"));
            let outbox = Outbox::<u8>::new(2);
            let mut engine = Engine::new();
            {
                let inbox = inbox.clone();
                engine.spawn(format!("rank-{w}"), move |ctx| {
                    if w == 0 {
                        ctx.advance(SimDuration::from_us(0.5));
                        panic!("wheel zero dies");
                    } else {
                        // Waits forever for a message wheel 0 never sends.
                        let _ = inbox.recv(ctx);
                    }
                });
            }
            let deliver_inbox = inbox.clone();
            wheels.push(Wheel {
                engine,
                outbox,
                deliver: Arc::new(move |ictx: &InjectCtx<'_>, _slot, v| {
                    deliver_inbox.send_injected(ictx, v);
                }),
            });
        }
        match run_partitioned(wheels, local_bus::<u8>(2), lookahead, None) {
            Err(SimError::ProcessPanicked { name, message, .. }) => {
                assert_eq!(name, "rank-0");
                assert!(message.contains("wheel zero dies"));
            }
            other => panic!("expected the panicking wheel's error, got {other:?}"),
        }
    }

    /// Deadlocked-but-otherwise-complete worlds report a merged deadlock.
    #[test]
    fn blocked_processes_merge_into_one_deadlock() {
        let lookahead = SimDuration::from_us(1.0);
        let mut wheels = Vec::new();
        for w in 0..2usize {
            let inbox = SimChannel::<u8>::new(format!("inbox-{w}"));
            let mut engine = Engine::new();
            {
                let inbox = inbox.clone();
                engine.spawn(format!("stuck-{w}"), move |ctx| {
                    let _ = inbox.recv(ctx);
                });
            }
            let deliver_inbox = inbox.clone();
            wheels.push(Wheel {
                engine,
                outbox: Outbox::<u8>::new(2),
                deliver: Arc::new(move |ictx: &InjectCtx<'_>, _slot, v| {
                    deliver_inbox.send_injected(ictx, v);
                }),
            });
        }
        match run_partitioned(wheels, local_bus::<u8>(2), lookahead, None) {
            Err(SimError::Deadlock { blocked, at }) => {
                assert_eq!(blocked, vec!["stuck-0".to_string(), "stuck-1".to_string()]);
                assert_eq!(at, SimTime::ZERO);
            }
            other => panic!("expected a merged deadlock, got {other:?}"),
        }
    }
}
