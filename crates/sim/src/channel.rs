//! Message channels in virtual time.
//!
//! A [`SimChannel`] is an unbounded FIFO between simulated processes.
//! `send` never blocks and consumes no virtual time — wire/transport time
//! is a property of the *fabric*, so callers model it explicitly (the MPI
//! layer advances the clock for latency and occupies link resources for
//! bandwidth before delivering the payload). `recv` blocks the calling
//! process in virtual time until a message is available.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{InjectCtx, ProcCtx, ProcessId, SimCtx};

struct Inner<T> {
    queue: VecDeque<T>,
    /// Processes parked in `recv`, in arrival order.
    waiters: VecDeque<ProcessId>,
}

/// An unbounded FIFO channel between simulated processes.
///
/// Cloning is cheap and shares the underlying queue.
pub struct SimChannel<T> {
    /// Immutable after construction, so it lives outside the mutex:
    /// reading it never takes the queue lock or allocates.
    name: Arc<str>,
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            name: Arc::clone(&self.name),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> SimChannel<T> {
    /// Create a named channel (the name appears in diagnostics).
    pub fn new(name: impl Into<String>) -> Self {
        SimChannel {
            name: name.into().into(),
            inner: Arc::new(Mutex::new(Inner {
                queue: VecDeque::new(),
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Diagnostic name of this channel, borrowed — no lock, no clone.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enqueue a message and wake the longest-waiting receiver, if any.
    /// Takes zero virtual time.
    pub fn send(&self, ctx: &ProcCtx, value: T) {
        let mut inner = self.inner.lock();
        inner.queue.push_back(value);
        if let Some(pid) = inner.waiters.pop_front() {
            ctx.wake(pid);
        }
    }

    /// Enqueue a message from a scheduled injection (a cross-partition
    /// delivery) and wake the longest-waiting receiver, if any. Identical
    /// to [`SimChannel::send`] except the waker is the injection, not a
    /// running process.
    pub fn send_injected(&self, ictx: &InjectCtx<'_>, value: T) {
        let mut inner = self.inner.lock();
        inner.queue.push_back(value);
        if let Some(pid) = inner.waiters.pop_front() {
            ictx.wake(pid);
        }
    }

    /// Dequeue a message, blocking in virtual time until one is available.
    pub fn recv(&self, ctx: &mut ProcCtx) -> T {
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(v) = inner.queue.pop_front() {
                    return v;
                }
                inner.waiters.push_back(ctx.pid());
            }
            ctx.block();
            // On wake-up the message may have been taken by a receiver that
            // was scheduled earlier in the same instant; loop and re-check.
        }
    }

    /// [`SimChannel::send`] for inline (state-machine) processes.
    /// Enqueues a message and wakes the longest-waiting receiver, if any.
    /// Takes zero virtual time and never suspends, so it is not `async`.
    pub fn send_inline(&self, ctx: &SimCtx, value: T) {
        let mut inner = self.inner.lock();
        inner.queue.push_back(value);
        if let Some(pid) = inner.waiters.pop_front() {
            ctx.wake(pid);
        }
    }

    /// [`SimChannel::recv`] for inline (state-machine) processes: dequeue
    /// a message, suspending in virtual time until one is available.
    pub async fn recv_inline(&self, ctx: &SimCtx) -> T {
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(v) = inner.queue.pop_front() {
                    return v;
                }
                inner.waiters.push_back(ctx.pid());
            }
            ctx.block().await;
            // On wake-up the message may have been taken by a receiver that
            // was scheduled earlier in the same instant; loop and re-check.
        }
    }

    /// Dequeue a message if one is immediately available.
    pub fn try_recv(&self, _ctx: &ProcCtx) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }

    /// Number of queued (undelivered) messages.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::time::SimDuration;
    use parking_lot::Mutex as PlMutex;

    #[test]
    fn fifo_order_is_preserved() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u32>::new("fifo");
        let got = Arc::new(PlMutex::new(Vec::new()));
        {
            let ch = ch.clone();
            eng.spawn("sender", move |ctx| {
                for i in 0..8 {
                    ch.send(ctx, i);
                    ctx.advance(SimDuration::from_ns(1.0));
                }
            });
        }
        {
            let got = Arc::clone(&got);
            eng.spawn("receiver", move |ctx| {
                for _ in 0..8 {
                    got.lock().push(ch.recv(ctx));
                }
            });
        }
        eng.run().unwrap();
        assert_eq!(*got.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_receivers_share_one_stream() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u32>::new("shared");
        let total = Arc::new(PlMutex::new(0u32));
        for r in 0..4 {
            let ch = ch.clone();
            let total = Arc::clone(&total);
            eng.spawn(format!("rx{r}"), move |ctx| {
                let v = ch.recv(ctx);
                *total.lock() += v;
            });
        }
        {
            let ch = ch.clone();
            eng.spawn("tx", move |ctx| {
                for i in 1..=4 {
                    ctx.advance(SimDuration::from_ns(10.0));
                    ch.send(ctx, i);
                }
            });
        }
        eng.run().unwrap();
        assert_eq!(*total.lock(), 10);
    }

    #[test]
    fn try_recv_does_not_block() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u8>::new("try");
        let saw = Arc::new(PlMutex::new((false, false)));
        {
            let ch = ch.clone();
            let saw = Arc::clone(&saw);
            eng.spawn("poller", move |ctx| {
                saw.lock().0 = ch.try_recv(ctx).is_some(); // nothing yet
                ctx.advance(SimDuration::from_us(2.0));
                saw.lock().1 = ch.try_recv(ctx) == Some(5);
            });
        }
        eng.spawn("sender", move |ctx| {
            ctx.advance(SimDuration::from_us(1.0));
            ch.send(ctx, 5);
        });
        eng.run().unwrap();
        assert_eq!(*saw.lock(), (false, true));
    }

    #[test]
    fn send_costs_no_virtual_time() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u8>::new("free");
        eng.spawn("tx", move |ctx| {
            for _ in 0..100 {
                ch.send(ctx, 0);
            }
            assert_eq!(ctx.now().as_ps(), 0);
        });
        eng.run().unwrap();
    }
}
