//! Arena-backed hierarchical timer wheel — the engine's event queue.
//!
//! Replaces the `BinaryHeap<Reverse<(SimTime, u64, EvTarget)>>` the engine
//! shipped with: every pending event lives in a slab arena (`Vec<Slot<T>>`
//! recycled through an intrusive freelist), threaded into per-bucket
//! singly-linked lists of a 7-level × 64-slot timer wheel keyed by
//! picosecond buckets. Level `l` buckets are `2^(6l)` ps wide, so the wheel
//! spans `2^42` ps (~4.4 simulated seconds) ahead of the cursor; events
//! beyond that horizon park in a sorted overflow heap and are promoted in
//! blocks when the wheel drains down to them. Steady-state, a world run
//! allocates O(max in-flight events) slots once and then recycles them —
//! no per-event heap traffic.
//!
//! ## Ordering and determinism
//!
//! Pop order is total and identical to the old binary heap: ascending
//! `(t, seq)` where `seq` is the wheel-assigned push sequence number
//! (`prop_wheel` in the test module pins this against a `BinaryHeap` for
//! random batches including same-timestamp ties). The level of an event is
//! `level_for(cursor, t)`: the index of the highest 6-bit digit in which
//! `t` differs from the cursor (the tokio/hashed-wheel placement rule).
//! Three facts make the lazy cascade correct:
//!
//! 1. **First occupied level holds the minimum.** A level-`l` event differs
//!    from the cursor at bit ≥ 6l, i.e. lies at or beyond the next
//!    `2^(6l)`-aligned boundary, while every level-`(l-1)` event lies
//!    before it. Scanning levels upward and stopping at the first occupied
//!    one is therefore exact.
//! 2. **Slot wrap cannot occur.** Within a level, the next occupied slot at
//!    or after the cursor's slot (a rotate + trailing_zeros on the
//!    occupancy bitmap) has deadline ≥ cursor: an event placed at level
//!    `l` shares the cursor's `2^(6(l+1))`-aligned block, so its slot index
//!    never sits "behind" the cursor within that block. The `deadline <
//!    cursor` boost below is defensive only.
//! 3. **Overflow is strictly later than the wheel.** Wheel events share the
//!    cursor's `2^42`-aligned block; overflow events differ above bit 42,
//!    so promotion only happens when the wheel is empty, and promoted
//!    blocks re-enter with their original `seq` preserved.
//!
//! Draining a level-0 slot yields events that all share one timestamp
//! (each level-0 bucket is a single picosecond); they are sorted by `seq`
//! into the `ready` queue. Draining a level-`>0` slot redistributes its
//! events to strictly lower levels (their XOR distance to the new cursor
//! shrank below the slot width), preserving `seq`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
const LEVELS: usize = 7;
/// Events with `cursor ^ t >= HORIZON` (2^42 ps ahead) park in overflow.
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);

const NIL: u32 = u32::MAX;

/// Per-push/per-level counters, surfaced as the `sched.*` telemetry bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Events pushed from outside (cascade redistributions not included).
    pub pushed: u64,
    /// Events popped in final `(t, seq)` order.
    pub popped: u64,
    /// Arena/overflow insertions per level; index 7 counts the sorted
    /// overflow level. Cascade redistributions count again at their new
    /// (lower) level, so the histogram reflects total wheel activity.
    pub level_pushes: [u64; LEVELS + 1],
}

struct Slot<T> {
    t: u64,
    seq: u64,
    item: T,
    /// Next arena index in this bucket's list (or the freelist), NIL-terminated.
    next: u32,
}

pub(crate) struct EventWheel<T> {
    arena: Vec<Slot<T>>,
    /// Head of the freelist threaded through `Slot::next`.
    free: u32,
    /// Most-recently-pushed entry per bucket.
    heads: [[u32; SLOTS]; LEVELS],
    /// Bit `s` set ⇔ `heads[l][s]` is non-NIL.
    occupied: [u64; LEVELS],
    /// Pop front. Never exceeds the timestamp of any pending event.
    cursor: u64,
    /// Monotone tie-break assigned at push; total order is `(t, seq)`.
    seq: u64,
    /// Events due at the cursor, already in `(t, seq)` order.
    ready: VecDeque<(u64, u64, T)>,
    /// Far-future events, ordered min-first by `(t, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64, T)>>,
    /// Reused drain buffer — avoids a per-pop allocation.
    scratch: Vec<(u64, u64, T)>,
    len: usize,
    stats: WheelStats,
}

impl<T: Copy + Ord> EventWheel<T> {
    pub fn new() -> Self {
        EventWheel {
            arena: Vec::new(),
            free: NIL,
            heads: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            cursor: 0,
            seq: 0,
            ready: VecDeque::new(),
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            len: 0,
            stats: WheelStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn stats(&self) -> WheelStats {
        self.stats
    }

    /// Queue `item` at absolute time `t` (≥ every previously popped time),
    /// assigning it the next tie-break sequence number.
    pub fn push(&mut self, t: u64, item: T) {
        debug_assert!(
            t >= self.cursor,
            "event scheduled at t={t} behind the wheel cursor {}",
            self.cursor
        );
        let seq = self.seq;
        self.seq += 1;
        self.stats.pushed += 1;
        self.len += 1;
        self.insert(t, seq, item);
    }

    /// Place an event into overflow, a wheel bucket, or (when already due
    /// at the cursor) directly into `ready`, keeping its original `seq`.
    fn insert(&mut self, t: u64, seq: u64, item: T) {
        if (self.cursor ^ t) >= HORIZON {
            self.stats.level_pushes[LEVELS] += 1;
            self.overflow.push(Reverse((t, seq, item)));
            return;
        }
        let level = level_for(self.cursor, t);
        self.stats.level_pushes[level] += 1;
        let slot = ((t >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        let next = self.heads[level][slot];
        let idx = match self.free {
            NIL => {
                self.arena.push(Slot { t, seq, item, next });
                (self.arena.len() - 1) as u32
            }
            idx => {
                let s = &mut self.arena[idx as usize];
                self.free = s.next;
                *s = Slot { t, seq, item, next };
                idx
            }
        };
        self.heads[level][slot] = idx;
        self.occupied[level] |= 1 << slot;
    }

    /// First-expiring `(level, slot, deadline)`, or None if the wheel part
    /// is empty (overflow may still hold events).
    fn next_expiration(&self) -> Option<(usize, usize, u64)> {
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let now_slot = ((self.cursor >> shift) & SLOT_MASK) as u32;
            let slot = ((occ.rotate_right(now_slot).trailing_zeros() + now_slot)
                % SLOTS as u32) as usize;
            let slot_size = 1u64 << shift;
            let level_range = slot_size << SLOT_BITS;
            let level_start = self.cursor & !(level_range - 1);
            let mut deadline = level_start + slot as u64 * slot_size;
            if deadline < self.cursor {
                // Defensive: unreachable under the XOR placement rule
                // (module docs, fact 2), but a wrapped slot would belong
                // to the next level_range block.
                deadline += level_range;
            }
            return Some((level, slot, deadline));
        }
        None
    }

    /// Timestamp of the next event without disturbing the wheel.
    ///
    /// Unlike `next_expiration` (which returns a bucket deadline that may
    /// undershoot for coarse levels), this walks the first-expiring
    /// bucket's list and reports the true minimum event time — it is the
    /// engine's `next_event_time()`, which the partition layer uses for
    /// lookahead decisions.
    pub fn peek_time(&self) -> Option<u64> {
        if let Some(&(t, _, _)) = self.ready.front() {
            return Some(t);
        }
        if let Some((level, slot, _)) = self.next_expiration() {
            let mut idx = self.heads[level][slot];
            let mut best = u64::MAX;
            while idx != NIL {
                let s = &self.arena[idx as usize];
                best = best.min(s.t);
                idx = s.next;
            }
            return Some(best);
        }
        self.overflow.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Remove and return the globally minimal `(t, seq)` event.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        loop {
            if let Some((t, _, item)) = self.ready.pop_front() {
                debug_assert!(t >= self.cursor);
                self.cursor = t;
                self.stats.popped += 1;
                self.len -= 1;
                return Some((t, item));
            }
            if let Some((level, slot, deadline)) = self.next_expiration() {
                self.cursor = deadline;
                self.drain_slot(level, slot);
                continue;
            }
            // Wheel empty: promote the overflow block around the earliest
            // far-future event, then fall through to pop it via the wheel.
            let Reverse((t, seq, item)) = self.overflow.pop()?;
            self.cursor = t;
            self.insert(t, seq, item);
            while let Some(Reverse((t, _, _))) = self.overflow.peek() {
                if (self.cursor ^ t) >= HORIZON {
                    break;
                }
                let Reverse((t, seq, item)) = self.overflow.pop().expect("peeked");
                self.insert(t, seq, item);
            }
        }
    }

    fn drain_slot(&mut self, level: usize, slot: usize) {
        let mut idx = self.heads[level][slot];
        self.heads[level][slot] = NIL;
        self.occupied[level] &= !(1 << slot);
        if level == 0 {
            // Every event here shares one picosecond; order by seq.
            debug_assert!(self.scratch.is_empty());
            while idx != NIL {
                let s = &self.arena[idx as usize];
                let (t, seq, item, next) = (s.t, s.seq, s.item, s.next);
                self.release(idx);
                self.scratch.push((t, seq, item));
                idx = next;
            }
            self.scratch.sort_unstable();
            self.ready.extend(self.scratch.drain(..));
        } else {
            // Cascade: relative to the new cursor each event's XOR distance
            // dropped below this level's slot width ⇒ strictly lower level.
            while idx != NIL {
                let s = &self.arena[idx as usize];
                let (t, seq, item, next) = (s.t, s.seq, s.item, s.next);
                self.release(idx);
                debug_assert!(level_for(self.cursor, t) < level);
                self.insert(t, seq, item);
                idx = next;
            }
        }
    }

    fn release(&mut self, idx: u32) {
        self.arena[idx as usize].next = self.free;
        self.free = idx;
    }
}

/// Index of the highest 6-bit digit in which `t` differs from `cursor`
/// (0 if they share all digits above the lowest). Caller guarantees
/// `cursor ^ t < HORIZON`.
fn level_for(cursor: u64, t: u64) -> usize {
    let masked = (cursor ^ t) | SLOT_MASK;
    ((63 - masked.leading_zeros()) / SLOT_BITS) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Oracle: the exact queue the engine used before this module existed.
    struct HeapQueue {
        heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
        seq: u64,
    }

    impl HeapQueue {
        fn new() -> Self {
            HeapQueue { heap: BinaryHeap::new(), seq: 0 }
        }
        fn push(&mut self, t: u64, item: u32) {
            self.heap.push(Reverse((t, self.seq, item)));
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(u64, u32)> {
            self.heap.pop().map(|Reverse((t, _, item))| (t, item))
        }
        fn peek_time(&self) -> Option<u64> {
            self.heap.peek().map(|Reverse((t, _, _))| *t)
        }
    }

    #[test]
    fn empty_wheel() {
        let mut w: EventWheel<u32> = EventWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn same_timestamp_ties_pop_in_push_order() {
        let mut w = EventWheel::new();
        for i in 0..10u32 {
            w.push(42, i);
        }
        for i in 0..10 {
            assert_eq!(w.pop(), Some((42, i)));
        }
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_events_cross_the_overflow_horizon() {
        let mut w = EventWheel::new();
        w.push(3 * HORIZON + 5, 0u32); // overflow
        w.push(7, 1);
        w.push(3 * HORIZON + 5, 2); // overflow tie
        w.push(3 * HORIZON + 4, 3);
        assert_eq!(w.peek_time(), Some(7));
        assert_eq!(w.pop(), Some((7, 1)));
        assert_eq!(w.peek_time(), Some(3 * HORIZON + 4));
        assert_eq!(w.pop(), Some((3 * HORIZON + 4, 3)));
        assert_eq!(w.pop(), Some((3 * HORIZON + 5, 0)));
        assert_eq!(w.pop(), Some((3 * HORIZON + 5, 2)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_matches_heap_with_lcg() {
        // Deterministic mixed workload: pushes always at/after the last
        // popped time (the engine's invariant), interleaved with pops.
        let mut w = EventWheel::new();
        let mut h = HeapQueue::new();
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut lcg = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        let mut item = 0u32;
        for _ in 0..5000 {
            let r = lcg();
            if r % 3 != 0 || w.is_empty() {
                // Spread: same-instant, near, mid, far, and overflow-range.
                let dt = match r % 7 {
                    0 => 0,
                    1 => lcg() % 4,
                    2 => lcg() % 1000,
                    3 => lcg() % 1_000_000,
                    4 => lcg() % (HORIZON / 2),
                    _ => lcg() % (4 * HORIZON),
                };
                w.push(now + dt, item);
                h.push(now + dt, item);
                item += 1;
            } else {
                assert_eq!(w.peek_time(), h.peek_time());
                let got = w.pop();
                let want = h.pop();
                assert_eq!(got, want);
                now = got.expect("non-empty").0;
            }
        }
        while let Some(want) = h.pop() {
            assert_eq!(w.pop(), Some(want));
        }
        assert!(w.is_empty());
        let stats = w.stats();
        assert_eq!(stats.pushed, stats.popped);
        assert_eq!(stats.pushed, u64::from(item));
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut w = EventWheel::new();
        for round in 0..100u64 {
            for i in 0..8u32 {
                w.push(round * 1000 + u64::from(i % 3), i);
            }
            for _ in 0..8 {
                w.pop().expect("eight pending");
            }
        }
        // 8 concurrent events, 800 total: the arena must not grow per event.
        assert!(w.arena.len() <= 16, "arena grew to {} slots", w.arena.len());
    }

    proptest! {
        /// Satellite: wheel pop order is identical to the old BinaryHeap
        /// for random (time, seq) batches, including same-timestamp ties
        /// (duplicate `t` draws are likely under these small ranges).
        #[test]
        fn pop_order_matches_binary_heap(
            batches in prop::collection::vec(
                prop::collection::vec((0u64..200, 0u32..1000), 1..40),
                1..8,
            ),
        ) {
            let mut w = EventWheel::new();
            let mut h = HeapQueue::new();
            let mut now = 0u64;
            for batch in batches {
                for (dt, item) in batch {
                    w.push(now + dt, item);
                    h.push(now + dt, item);
                }
                // Drain half the queue between batches so later pushes
                // land relative to an advanced cursor.
                for _ in 0..h.heap.len() / 2 {
                    prop_assert_eq!(w.peek_time(), h.peek_time());
                    let got = w.pop();
                    let want = h.pop();
                    prop_assert_eq!(got, want);
                    now = want.expect("non-empty").0;
                }
            }
            while let Some(want) = h.pop() {
                prop_assert_eq!(w.pop(), Some(want));
            }
            prop_assert!(w.is_empty());
        }
    }
}
