//! Instrumentation hook points for the simulation engine.
//!
//! A [`Probe`] observes the scheduler from outside: every event push/pop,
//! every virtual-time advance, process block/finish, and resource
//! wait/service interval is reported through it. The engine never depends
//! on what a probe does with the callbacks — probes must not affect
//! virtual time — so simulations are bit-identical with and without one
//! attached.
//!
//! Probes are attached through a process-wide *factory* rather than a
//! single global probe: [`Engine::new`](crate::Engine::new) (and
//! [`Resource::new`](crate::resource::Resource::new)) call the factory on
//! the constructing thread, which lets an instrumentation layer hand out
//! a different sink per logical task (e.g. per experiment of a parallel
//! sweep) via thread-local state. With no factory installed the cost is
//! one relaxed atomic load per construction and zero per event.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use crate::engine::ProcessId;

/// End-of-run scheduler counters, reported once per completed
/// [`Engine::run`](crate::Engine::run) through [`Probe::sched_stats`] —
/// the raw material of the `sched.*` telemetry bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events pushed onto the timer wheel (spawns, advances, injections,
    /// wakes).
    pub events_pushed: u64,
    /// Events popped in `(time, seq)` order.
    pub events_popped: u64,
    /// Wheel insertions per level (index 7 is the sorted far-future
    /// overflow level; cascade redistributions count again at their new
    /// level).
    pub wheel_level_pushes: [u64; 8],
    /// Processes executed as inline state machines on the scheduler
    /// thread.
    pub procs_inline: u64,
    /// Processes executed as closures on pooled worker threads.
    pub procs_threaded: u64,
}

/// Observer of engine/resource activity. All methods have no-op defaults;
/// implement the subset you need. Calls may come from any thread, but —
/// because the engine runs processes strictly one at a time — calls
/// belonging to one engine are totally ordered and deterministic.
pub trait Probe: Send + Sync {
    /// A process was registered with [`crate::Engine::spawn`].
    fn process_spawned(&self, _pid: ProcessId, _name: &str) {}
    /// An event was pushed onto the queue for `pid` at virtual time
    /// `at_ps`.
    fn event_scheduled(&self, _at_ps: u64, _pid: ProcessId) {}
    /// The scheduler popped an event and resumed `pid`; `queue_depth` is
    /// the number of events still pending (excluding the popped one).
    fn event_fired(&self, _now_ps: u64, _pid: ProcessId, _queue_depth: usize) {}
    /// `pid` consumed `dur_ps` of virtual time starting at `now_ps`.
    fn advanced(&self, _now_ps: u64, _pid: ProcessId, _dur_ps: u64) {}
    /// `pid` blocked on a channel or resource.
    fn blocked(&self, _now_ps: u64, _pid: ProcessId) {}
    /// `pid`'s closure returned.
    fn finished(&self, _now_ps: u64, _pid: ProcessId) {}
    /// End-of-run scheduler counters, reported just before
    /// [`Probe::run_complete`] on a successful complete run (windowed
    /// partition runs report no per-wheel stats: their accounting belongs
    /// to the orchestrator).
    fn sched_stats(&self, _stats: &SchedStats) {}
    /// The engine drained its queue; `end_ps` is the final virtual time.
    fn run_complete(&self, _end_ps: u64) {}
    /// `pid` acquired a unit of resource `name` after waiting `wait_ps`
    /// of virtual time (0 when a unit was free immediately).
    fn resource_wait(&self, _name: &str, _pid: ProcessId, _wait_ps: u64) {}
    /// `pid` held a unit of resource `name` for `held_ps` of virtual time
    /// (reported by [`crate::resource::Resource::use_for`]).
    fn resource_service(&self, _name: &str, _pid: ProcessId, _held_ps: u64) {}
    /// An explicit annotation span `[start_ps, end_ps]` named by the
    /// simulated code itself (e.g. one MPI rank's program).
    fn span(&self, _name: &str, _start_ps: u64, _end_ps: u64, _pid: ProcessId) {}
}

/// Produces the probe for engines/resources constructed on the calling
/// thread; return `None` to leave a particular construction unprobed.
pub type ProbeFactory = dyn Fn() -> Option<Arc<dyn Probe>> + Send + Sync;

static FACTORY_SET: AtomicBool = AtomicBool::new(false);
static FACTORY: RwLock<Option<Arc<ProbeFactory>>> = RwLock::new(None);

/// Install (or, with `None`, remove) the process-wide probe factory.
pub fn set_probe_factory(factory: Option<Arc<ProbeFactory>>) {
    let mut slot = FACTORY.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    FACTORY_SET.store(factory.is_some(), Ordering::Release);
    *slot = factory;
}

/// Whether a probe factory is currently installed process-wide.
///
/// Engine-selection layers use this to detect an attached trace/metrics
/// consumer: with a factory installed, analytic fast paths must yield to
/// the full discrete-event engine so the probe sees every event.
pub fn factory_installed() -> bool {
    FACTORY_SET.load(Ordering::Acquire)
}

/// The probe for a construction happening on the current thread, if any.
pub fn probe_for_current_thread() -> Option<Arc<dyn Probe>> {
    if !FACTORY_SET.load(Ordering::Acquire) {
        return None;
    }
    let slot = FACTORY.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    slot.as_ref().and_then(|f| f())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::Engine;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[derive(Default)]
    struct CountingProbe {
        scheduled: AtomicU64,
        fired: AtomicU64,
        advanced_ps: AtomicU64,
        finished: AtomicU64,
        end_ps: AtomicU64,
        spawned: Mutex<Vec<String>>,
    }

    impl Probe for CountingProbe {
        fn process_spawned(&self, _pid: ProcessId, name: &str) {
            self.spawned.lock().unwrap().push(name.to_string());
        }
        fn event_scheduled(&self, _at_ps: u64, _pid: ProcessId) {
            self.scheduled.fetch_add(1, Ordering::Relaxed);
        }
        fn event_fired(&self, _now_ps: u64, _pid: ProcessId, _depth: usize) {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        fn advanced(&self, _now_ps: u64, _pid: ProcessId, dur_ps: u64) {
            self.advanced_ps.fetch_add(dur_ps, Ordering::Relaxed);
        }
        fn finished(&self, _now_ps: u64, _pid: ProcessId) {
            self.finished.fetch_add(1, Ordering::Relaxed);
        }
        fn run_complete(&self, end_ps: u64) {
            self.end_ps.store(end_ps, Ordering::Relaxed);
        }
    }

    #[test]
    fn engine_reports_through_installed_factory() {
        let probe = Arc::new(CountingProbe::default());
        {
            let probe = Arc::clone(&probe);
            set_probe_factory(Some(Arc::new(move || {
                Some(Arc::clone(&probe) as Arc<dyn Probe>)
            })));
        }
        let mut eng = Engine::new();
        set_probe_factory(None); // engine already captured its probe
        eng.spawn("a", |ctx| {
            ctx.advance(SimDuration::from_ns(5.0));
            ctx.advance(SimDuration::from_ns(3.0));
        });
        let end = eng.run().unwrap();
        assert_eq!(end.as_ns(), 8.0);
        assert_eq!(probe.spawned.lock().unwrap().as_slice(), &["a".to_string()]);
        // Initial spawn event + two advances.
        assert_eq!(probe.scheduled.load(Ordering::Relaxed), 3);
        assert_eq!(probe.fired.load(Ordering::Relaxed), 3);
        assert_eq!(probe.advanced_ps.load(Ordering::Relaxed), 8_000);
        assert_eq!(probe.finished.load(Ordering::Relaxed), 1);
        assert_eq!(probe.end_ps.load(Ordering::Relaxed), 8_000);
    }

    #[test]
    fn no_factory_means_no_probe() {
        set_probe_factory(None);
        assert!(probe_for_current_thread().is_none());
    }
}
