//! A process-wide pool of reusable OS worker threads for simulated
//! processes.
//!
//! [`Engine::spawn`](crate::Engine::spawn) used to create one fresh
//! `std::thread` per simulated process, so a 236-rank collective world
//! paid 236 thread creations — and a sweep over dozens of such worlds
//! paid that over and over. The pool keeps finished workers parked on a
//! private channel and hands the next process body to one of them, so
//! the same OS threads are reused across engines.
//!
//! Determinism is unaffected: a job runs on exactly one dedicated worker
//! for its entire life, and the engine's one-process-at-a-time handshake
//! is unchanged. The pool only changes *which* OS thread hosts a process,
//! never *when* it runs.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Idle workers, each represented by the sender half of its private job
/// channel. A worker parks in `recv` on that channel; sending it a job
/// wakes it. LIFO keeps recently-used (cache-warm) workers busiest.
static IDLE: Mutex<Vec<Sender<Job>>> = Mutex::new(Vec::new());

/// Cap on parked workers: a finishing worker beyond this exits instead
/// of re-registering, bounding idle-thread memory after one huge world.
const MAX_IDLE: usize = 512;

/// Run `job` on a pooled worker thread, reusing an idle one if possible.
pub(crate) fn run_job(mut job: Job) {
    loop {
        let idle = IDLE.lock().pop();
        match idle {
            Some(tx) => match tx.send(job) {
                Ok(()) => return,
                // The worker died between registering and receiving;
                // recover the job and try the next idle worker.
                Err(e) => job = e.0,
            },
            None => {
                spawn_worker(job);
                return;
            }
        }
    }
}

fn spawn_worker(first: Job) {
    std::thread::Builder::new()
        .name("maia-sim-worker".to_string())
        .spawn(move || {
            let mut job = first;
            loop {
                job();
                let (tx, rx) = unbounded::<Job>();
                {
                    let mut idle = IDLE.lock();
                    if idle.len() >= MAX_IDLE {
                        return;
                    }
                    idle.push(tx);
                }
                match rx.recv() {
                    Ok(next) => job = next,
                    Err(_) => return,
                }
            }
        })
        .expect("failed to spawn simulation worker thread");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::mpsc;
    use std::thread::ThreadId;

    #[test]
    fn sequential_jobs_reuse_worker_threads() {
        let (tx, rx) = mpsc::channel::<ThreadId>();
        let mut seen = HashSet::new();
        for _ in 0..50 {
            let tx = tx.clone();
            run_job(Box::new(move || {
                tx.send(std::thread::current().id()).unwrap();
            }));
            seen.insert(rx.recv().unwrap());
            // Give the worker a moment to park itself back on the idle
            // stack before the next job is submitted.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // Without reuse this would be 50 distinct threads. Concurrent
        // tests may interleave their own workers, so only assert that
        // *some* reuse happened rather than an exact count.
        assert!(seen.len() < 50, "no worker reuse: {} distinct threads", seen.len());
    }
}
