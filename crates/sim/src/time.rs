//! Virtual time for the simulation engine.
//!
//! Time is kept as an integer count of picoseconds so that event ordering is
//! exact and runs are reproducible: no floating-point summation order can
//! perturb the schedule. One `u64` of picoseconds covers ~213 days of
//! simulated time, far beyond any experiment in this repository.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

const PS_PER_NS: u64 = 1_000;
const PS_PER_US: u64 = 1_000_000;
const PS_PER_MS: u64 = 1_000_000_000;
const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant on the virtual clock, in picoseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub(crate) u64);

/// A span of virtual time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub(crate) u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw picosecond count.
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Time in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Time in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; virtual time never runs
    /// backwards, so this indicates a logic error in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw picoseconds.
    pub fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from nanoseconds (rounded to the nearest picosecond).
    pub fn from_ns(ns: f64) -> Self {
        Self::from_secs_f64(ns * 1e-9)
    }

    /// Construct from microseconds (rounded to the nearest picosecond).
    pub fn from_us(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// Construct from milliseconds (rounded to the nearest picosecond).
    pub fn from_ms(ms: f64) -> Self {
        Self::from_secs_f64(ms * 1e-3)
    }

    /// Construct from seconds (rounded to the nearest picosecond).
    ///
    /// # Panics
    /// Panics on negative or non-finite input: durations model physical
    /// service times and must be well-formed.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        let ps = secs * PS_PER_S as f64;
        assert!(
            ps <= u64::MAX as f64,
            "SimDuration overflow: {secs} s exceeds the u64 picosecond range"
        );
        SimDuration(ps.round() as u64)
    }

    /// Raw picosecond count.
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// Span in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Span in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Span in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Span in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating multiplication by an integer count (e.g. per-iteration
    /// cost times iteration count).
    pub fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulated time exceeded the u64 picosecond range"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

fn format_ps(ps: u64) -> String {
    if ps >= PS_PER_S {
        format!("{:.6}s", ps as f64 / PS_PER_S as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let d = SimDuration::from_us(3.5);
        assert_eq!(d.as_ps(), 3_500_000);
        assert!((d.as_us() - 3.5).abs() < 1e-12);
        assert!((d.as_ns() - 3500.0).abs() < 1e-9);
        assert!((d.as_secs_f64() - 3.5e-6).abs() < 1e-18);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_ns(10.0) + SimDuration::from_ns(5.0);
        assert_eq!(t.as_ps(), 15_000);
        assert_eq!(t.since(SimTime::ZERO).as_ns(), 15.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimDuration::from_ns(1.5)), "1.500ns");
        assert_eq!(format!("{}", SimDuration::from_us(2.0)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(7.25)), "7.250ms");
        assert_eq!(format!("{}", SimDuration::from_secs_f64(1.0)), "1.000000s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_rejects_backwards_time() {
        let early = SimTime::ZERO;
        let late = early + SimDuration::from_ns(1.0);
        let _ = early.since(late);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_ns(i as f64)).sum();
        assert_eq!(total.as_ns(), 10.0);
    }

    #[test]
    fn saturating_mul_caps_at_max() {
        let d = SimDuration::from_ps(u64::MAX / 2);
        assert_eq!(d.saturating_mul(4).as_ps(), u64::MAX);
    }
}
