//! # maia-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate for every timed experiment in the Maia
//! reproduction. It provides:
//!
//! * a virtual clock with picosecond resolution ([`SimTime`], [`SimDuration`]),
//! * a conservative process-oriented engine ([`Engine`]) over an
//!   arena-backed hierarchical timer wheel, in which processes execute
//!   strictly one at a time, in a total order defined by `(time, sequence)`,
//!   so every run is bit-for-bit deterministic,
//! * blocking message channels in virtual time ([`channel::SimChannel`]),
//! * FIFO resources for modeling contended links and servers
//!   ([`resource::Resource`]).
//!
//! Simulated code comes in two equivalent styles. The hot path is an
//! `async` body spawned with [`Engine::spawn_inline`]: it receives a
//! [`SimCtx`], awaits [`SimCtx::advance`] to consume virtual time or
//! `SimChannel::recv_inline` to wait for a message, and runs as a poll
//! state machine directly on the scheduler thread. The fallback is
//! ordinary blocking Rust spawned with [`Engine::spawn`] on a pooled
//! worker thread: the process receives a [`ProcCtx`] and calls
//! [`ProcCtx::advance`] / `SimChannel::recv` / `Resource::acquire`.
//! Either style lets the MPI layer implement real collective algorithms
//! (binomial trees, recursive doubling, pairwise exchange) as
//! straight-line code whose *virtual* timing is measured by the engine.
//!
//! ```
//! use maia_sim::{Engine, SimDuration};
//!
//! let mut eng = Engine::new();
//! let ping = maia_sim::channel::SimChannel::<u32>::new("ping");
//! let pong = maia_sim::channel::SimChannel::<u32>::new("pong");
//! {
//!     let (ping, pong) = (ping.clone(), pong.clone());
//!     eng.spawn("client", move |ctx| {
//!         ping.send(ctx, 7);
//!         let x = pong.recv(ctx);
//!         assert_eq!(x, 8);
//!     });
//! }
//! eng.spawn("server", move |ctx| {
//!     let x = ping.recv(ctx);
//!     ctx.advance(SimDuration::from_us(1.0)); // 1 us of service time
//!     pong.send(ctx, x + 1);
//! });
//! let end = eng.run().unwrap();
//! assert_eq!(end.as_us(), 1.0);
//! ```

pub mod channel;
pub mod engine;
pub mod partition;
mod pool;
pub mod probe;
pub mod resource;
pub mod time;
mod wheel;

pub use engine::{Engine, InjectCtx, ProcCtx, ProcessId, SimCtx, SimError, TraceKind, TraceRecord};
pub use probe::{factory_installed, set_probe_factory, Probe, SchedStats};
pub use time::{SimDuration, SimTime};
