//! Contended resources in virtual time.
//!
//! A [`Resource`] models a server with a fixed number of identical units —
//! a PCIe link (capacity 1), a set of DMA engines, an I/O daemon pool.
//! Processes `acquire` a unit (blocking in virtual time while all units are
//! busy), hold it across explicit `advance` calls, and `release` it.
//!
//! Wake-ups are queued FIFO but acquisition is re-checked on wake, so a
//! process resumed in the same instant as a competing acquirer may requeue;
//! ordering is near-FIFO and, crucially, deterministic.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{ProcCtx, ProcessId};
use crate::probe::Probe;
use crate::time::SimDuration;

struct Inner {
    name: String,
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<ProcessId>,
}

/// Telemetry probe captured at construction (see [`crate::probe`]);
/// kept outside `Inner` so probe callbacks never run under the lock.
struct Probed(Option<Arc<dyn Probe>>);

/// A counted resource shared by simulated processes.
pub struct Resource {
    inner: Arc<Mutex<Inner>>,
    probe: Arc<Probed>,
}

impl Clone for Resource {
    fn clone(&self) -> Self {
        Resource {
            inner: Arc::clone(&self.inner),
            probe: Arc::clone(&self.probe),
        }
    }
}

impl Resource {
    /// Create a resource with `capacity` identical units.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-capacity resource can never be
    /// acquired and would deadlock any user.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "Resource capacity must be positive");
        Resource {
            inner: Arc::new(Mutex::new(Inner {
                name: name.into(),
                capacity,
                in_use: 0,
                waiters: VecDeque::new(),
            })),
            probe: Arc::new(Probed(crate::probe::probe_for_current_thread())),
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> String {
        self.inner.lock().name.clone()
    }

    /// Total number of units.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Units currently held.
    pub fn in_use(&self) -> usize {
        self.inner.lock().in_use
    }

    /// Acquire one unit, blocking in virtual time while none is free.
    pub fn acquire(&self, ctx: &mut ProcCtx) {
        let entered = ctx.now();
        loop {
            {
                let mut inner = self.inner.lock();
                if inner.in_use < inner.capacity {
                    inner.in_use += 1;
                    break;
                }
                inner.waiters.push_back(ctx.pid());
            }
            ctx.block();
        }
        if let Some(p) = &self.probe.0 {
            let wait_ps = ctx.now().as_ps() - entered.as_ps();
            let name = self.inner.lock().name.clone();
            p.resource_wait(&name, ctx.pid(), wait_ps);
        }
    }

    /// Release one unit and wake the longest waiter, if any.
    ///
    /// # Panics
    /// Panics if no unit is held — releases must pair with acquires.
    pub fn release(&self, ctx: &ProcCtx) {
        let mut inner = self.inner.lock();
        assert!(
            inner.in_use > 0,
            "Resource '{}': release without matching acquire",
            inner.name
        );
        inner.in_use -= 1;
        if let Some(pid) = inner.waiters.pop_front() {
            ctx.wake(pid);
        }
    }

    /// Convenience: acquire, hold for `dur` of virtual time, release.
    /// This is the canonical pattern for occupying a link while bytes are
    /// on the wire.
    pub fn use_for(&self, ctx: &mut ProcCtx, dur: SimDuration) {
        self.acquire(ctx);
        ctx.advance(dur);
        self.release(ctx);
        if let Some(p) = &self.probe.0 {
            let name = self.inner.lock().name.clone();
            p.resource_service(&name, ctx.pid(), dur.as_ps());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use parking_lot::Mutex as PlMutex;

    #[test]
    fn exclusive_link_serializes_transfers() {
        let mut eng = Engine::new();
        let link = Resource::new("link", 1);
        let finish = Arc::new(PlMutex::new(Vec::new()));
        for i in 0..3 {
            let link = link.clone();
            let finish = Arc::clone(&finish);
            eng.spawn(format!("t{i}"), move |ctx| {
                link.use_for(ctx, SimDuration::from_us(10.0));
                finish.lock().push((i, ctx.now().as_us()));
            });
        }
        let end = eng.run().unwrap();
        // Three 10 us transfers over one link take 30 us total.
        assert_eq!(end.as_us(), 30.0);
        let times: Vec<f64> = finish.lock().iter().map(|&(_, t)| t).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn capacity_two_allows_two_concurrent_holders() {
        let mut eng = Engine::new();
        let pool = Resource::new("pool", 2);
        for i in 0..4 {
            let pool = pool.clone();
            eng.spawn(format!("t{i}"), move |ctx| {
                pool.use_for(ctx, SimDuration::from_us(10.0));
            });
        }
        // Four 10 us jobs, two at a time: 20 us.
        assert_eq!(eng.run().unwrap().as_us(), 20.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Resource::new("bad", 0);
    }

    #[test]
    fn release_without_acquire_is_a_process_panic() {
        let mut eng = Engine::new();
        let r = Resource::new("r", 1);
        eng.spawn("bad", move |ctx| {
            r.release(ctx);
        });
        let err = eng.run().unwrap_err();
        match err {
            crate::engine::SimError::ProcessPanicked { message, .. } => {
                assert!(message.contains("without matching acquire"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn in_use_tracks_holders() {
        let mut eng = Engine::new();
        let r = Resource::new("r", 3);
        let observed = Arc::new(PlMutex::new(0usize));
        for i in 0..3 {
            let r = r.clone();
            let observed = Arc::clone(&observed);
            eng.spawn(format!("t{i}"), move |ctx| {
                r.acquire(ctx);
                ctx.advance(SimDuration::from_us(1.0));
                {
                    let mut o = observed.lock();
                    *o = (*o).max(r.in_use());
                }
                r.release(ctx);
            });
        }
        eng.run().unwrap();
        assert_eq!(*observed.lock(), 3);
    }
}
