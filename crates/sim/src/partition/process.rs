//! Cross-process [`SimCommunicator`] backend: domain wheels sharded
//! across child OS processes over a length-prefixed pipe protocol.
//!
//! The paper's rack gets its fault isolation from separate OS images;
//! this backend gives the partitioned DES the same property. One
//! *hub* process hosts wheel 0 and routes every window-barrier
//! exchange; each remaining wheel lives in a worker process connected
//! to the hub by a byte pipe pair (conventionally the child's
//! stdin/stdout). The virtual-time protocol is exactly the one
//! [`super::LocalChannelCommunicator`] runs over in-process channels —
//! same floors, same windows, same message routing — so figures and
//! virtual telemetry are bit-identical across backends.
//!
//! # Wire protocol
//!
//! Every frame is `[u32 len (LE)] [u8 tag] [len-1 bytes payload]`.
//! Integers are little-endian; `f64` travels as `to_bits`; strings are
//! `u32` length + UTF-8. Tags:
//!
//! | tag | name      | direction | payload |
//! |-----|-----------|-----------|---------|
//! | 1   | Hello     | worker→hub | `u32 version`, `u32 wheel`, `u32 partitions` |
//! | 2   | Job       | hub→worker | opaque bytes (the caller's job spec) |
//! | 3   | Batch     | worker→hub | `u8 has_floor`, `u64 floor`, non-empty non-self buckets as `u32 dest`, `u32 count`, messages |
//! | 4   | Window    | hub→worker | `u64 next_ps`, `u32 count`, messages routed to this wheel |
//! | 5   | Done      | hub→worker | empty — global floor is infinite |
//! | 6   | Abort     | both      | empty — sender's side failed |
//! | 7   | Heartbeat | worker→hub | empty, sent every `heartbeat_interval` |
//! | 8   | Report    | worker→hub | encoded [`WheelReport`] + opaque extra bytes |
//!
//! A message is `u64 arrival_ps`, `u32 dest_slot`, `u64 order.0`,
//! `u64 order.1`, then the payload via [`WireItem`].
//!
//! # Failure semantics
//!
//! The hub watches each worker two ways: a broken/EOF pipe is a
//! *crash*, and a quiet pipe past `heartbeat_deadline` is a *hang*
//! (workers heartbeat from a dedicated thread even while their wheel
//! computes, so a live-but-slow window never trips the deadline — only
//! a frozen or stopped process does). Either one aborts the run and is
//! reported as a [`WorkerLoss`] naming the wheel, the window, and the
//! last global floor (the virtual time the world had reached). Retry,
//! backoff and degradation policy live a layer up, in the supervisor.

use std::io::{self, Read, Write};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};

use parking_lot::Mutex;

use super::{
    DriveStatus, ExchangeOutcome, RemoteMsg, SimCommunicator, WheelReport, WheelStats,
};
use crate::engine::{ProcessId, SimError};
use crate::probe::{Probe, SchedStats};
use crate::time::SimTime;

/// Protocol version carried in the Hello frame; both sides must match.
pub const WIRE_VERSION: u32 = 1;

/// Frames above this size indicate a desynchronized stream, not data.
const MAX_FRAME: u32 = 1 << 30;

const TAG_HELLO: u8 = 1;
const TAG_JOB: u8 = 2;
const TAG_BATCH: u8 = 3;
const TAG_WINDOW: u8 = 4;
const TAG_DONE: u8 = 5;
const TAG_ABORT: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;
const TAG_REPORT: u8 = 8;

// ---------------------------------------------------------------------------
// Wire primitives
// ---------------------------------------------------------------------------

/// Byte-level encoding helpers shared by every frame (and by payload
/// codecs in higher crates).
pub mod wire {
    /// Append a `u32`, little-endian.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its bit pattern (lossless round-trip).
    pub fn put_f64(out: &mut Vec<u8>, v: f64) {
        put_u64(out, v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(out: &mut Vec<u8>, s: &str) {
        put_u32(out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }

    /// Append length-prefixed opaque bytes.
    pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
        put_u32(out, b.len() as u32);
        out.extend_from_slice(b);
    }

    /// Sequential decoder over a byte slice; every `take_*` returns
    /// `None` on underrun instead of panicking, so a truncated frame is
    /// a protocol error, not a crash.
    pub struct Reader<'a> {
        buf: &'a [u8],
    }

    impl<'a> Reader<'a> {
        /// Start decoding `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf }
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len()
        }

        fn take(&mut self, n: usize) -> Option<&'a [u8]> {
            if self.buf.len() < n {
                return None;
            }
            let (head, tail) = self.buf.split_at(n);
            self.buf = tail;
            Some(head)
        }

        /// Decode a `u8`.
        pub fn take_u8(&mut self) -> Option<u8> {
            self.take(1).map(|b| b[0])
        }

        /// Decode a little-endian `u32`.
        pub fn take_u32(&mut self) -> Option<u32> {
            self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        }

        /// Decode a little-endian `u64`.
        pub fn take_u64(&mut self) -> Option<u64> {
            self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        }

        /// Decode an `f64` from its bit pattern.
        pub fn take_f64(&mut self) -> Option<f64> {
            self.take_u64().map(f64::from_bits)
        }

        /// Decode a length-prefixed UTF-8 string.
        pub fn take_str(&mut self) -> Option<String> {
            let n = self.take_u32()? as usize;
            let b = self.take(n)?;
            String::from_utf8(b.to_vec()).ok()
        }

        /// Decode length-prefixed opaque bytes.
        pub fn take_bytes(&mut self) -> Option<Vec<u8>> {
            let n = self.take_u32()? as usize;
            self.take(n).map(<[u8]>::to_vec)
        }
    }
}

/// A payload type that can cross the process boundary. Implemented by
/// the layer that owns the message type (e.g. `maia_mpi` for its
/// `Msg`); encoding must be lossless so figures stay bit-identical.
pub trait WireItem: Sized + Send {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value, or `None` on malformed input.
    fn decode(r: &mut wire::Reader<'_>) -> Option<Self>;
}

fn encode_msg<T: WireItem>(m: &RemoteMsg<T>, out: &mut Vec<u8>) {
    wire::put_u64(out, m.arrival.as_ps());
    wire::put_u32(out, m.dest_slot as u32);
    wire::put_u64(out, m.order.0);
    wire::put_u64(out, m.order.1);
    m.payload.encode(out);
}

fn decode_msg<T: WireItem>(r: &mut wire::Reader<'_>) -> Option<RemoteMsg<T>> {
    let arrival = SimTime(r.take_u64()?);
    let dest_slot = r.take_u32()? as usize;
    let order = (r.take_u64()?, r.take_u64()?);
    let payload = T::decode(r)?;
    Some(RemoteMsg {
        arrival,
        dest_slot,
        order,
        payload,
    })
}

fn write_frame(w: &mut dyn Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32 + 1;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)?;
    w.flush()
}

fn read_frame(r: &mut dyn Read) -> io::Result<(u8, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    let tag = buf[0];
    buf.remove(0);
    Ok((tag, buf))
}

// ---------------------------------------------------------------------------
// Report codec
// ---------------------------------------------------------------------------

/// Encode a [`WheelReport`] plus caller-defined `extra` bytes (rank
/// results, recorded probe activity, ...) for the Report frame.
pub fn encode_report(report: &WheelReport, extra: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    match &report.status {
        DriveStatus::Completed => out.push(0),
        DriveStatus::PeerAborted => out.push(1),
        DriveStatus::Error(SimError::Deadlock { blocked, at }) => {
            out.push(2);
            wire::put_u32(&mut out, blocked.len() as u32);
            for b in blocked {
                wire::put_str(&mut out, b);
            }
            wire::put_u64(&mut out, at.as_ps());
        }
        DriveStatus::Error(SimError::ProcessPanicked { name, message, at }) => {
            out.push(3);
            wire::put_str(&mut out, name);
            wire::put_str(&mut out, message);
            wire::put_u64(&mut out, at.as_ps());
        }
    }
    wire::put_u32(&mut out, report.blocked.len() as u32);
    for b in &report.blocked {
        wire::put_str(&mut out, b);
    }
    wire::put_u64(&mut out, report.end.as_ps());
    wire::put_u64(&mut out, report.windows);
    wire::put_u64(&mut out, report.stats.end_ps);
    wire::put_u64(&mut out, report.stats.messages_out);
    wire::put_u64(&mut out, report.stats.stall_wall_ns);
    wire::put_bytes(&mut out, extra);
    out
}

/// Decode a Report frame back into the report and its extra bytes.
pub fn decode_report(bytes: &[u8]) -> Option<(WheelReport, Vec<u8>)> {
    let mut r = wire::Reader::new(bytes);
    let status = match r.take_u8()? {
        0 => DriveStatus::Completed,
        1 => DriveStatus::PeerAborted,
        2 => {
            let n = r.take_u32()? as usize;
            let blocked = (0..n).map(|_| r.take_str()).collect::<Option<Vec<_>>>()?;
            DriveStatus::Error(SimError::Deadlock {
                blocked,
                at: SimTime(r.take_u64()?),
            })
        }
        3 => DriveStatus::Error(SimError::ProcessPanicked {
            name: r.take_str()?,
            message: r.take_str()?,
            at: SimTime(r.take_u64()?),
        }),
        _ => return None,
    };
    let n = r.take_u32()? as usize;
    let blocked = (0..n).map(|_| r.take_str()).collect::<Option<Vec<_>>>()?;
    let end = SimTime(r.take_u64()?);
    let windows = r.take_u64()?;
    let stats = WheelStats {
        end_ps: r.take_u64()?,
        messages_out: r.take_u64()?,
        stall_wall_ns: r.take_u64()?,
    };
    let extra = r.take_bytes()?;
    Some((
        WheelReport {
            status,
            blocked,
            end,
            windows,
            stats,
        },
        extra,
    ))
}

// ---------------------------------------------------------------------------
// Configuration and failure descriptions
// ---------------------------------------------------------------------------

/// Timing knobs of the process backend.
#[derive(Debug, Clone, Copy)]
pub struct ProcessConfig {
    /// How often a worker's heartbeat thread writes a Heartbeat frame.
    pub heartbeat_interval: Duration,
    /// How long the hub tolerates a silent worker (no frame of any
    /// kind) before declaring it hung.
    pub heartbeat_deadline: Duration,
    /// How long the hub waits for a worker's Hello at connect.
    pub handshake_deadline: Duration,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        ProcessConfig {
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_deadline: Duration::from_millis(2_000),
            handshake_deadline: Duration::from_secs(20),
        }
    }
}

/// A worker the hub gave up on: which wheel, at which exchange window,
/// and the last global floor — the virtual time the world had reached
/// when the loss was declared.
#[derive(Debug, Clone)]
pub struct WorkerLoss {
    /// The lost worker's wheel index.
    pub wheel: usize,
    /// Exchange windows completed before the loss (0 = lost during
    /// handshake).
    pub window: u64,
    /// Last agreed global floor, picoseconds of virtual time.
    pub at_ps: u64,
    /// What happened (`connection closed`, `heartbeat deadline ...`).
    pub detail: String,
}

impl std::fmt::Display for WorkerLoss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker for wheel {} lost at window {} (virtual time {} ps): {}",
            self.wheel, self.window, self.at_ps, self.detail
        )
    }
}

// ---------------------------------------------------------------------------
// Hub side
// ---------------------------------------------------------------------------

struct Link {
    wheel: usize,
    writer: Box<dyn Write + Send>,
    frames: Receiver<(u8, Vec<u8>)>,
    last_seen: Arc<Mutex<Instant>>,
}

enum LinkRecv {
    Frame(u8, Vec<u8>),
    /// `true` when at least one heartbeat interval passed with no frame.
    Lost(String),
}

impl Link {
    fn spawn(wheel: usize, mut reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Link {
        let (tx, frames) = channel();
        let last_seen = Arc::new(Mutex::new(Instant::now()));
        let seen = Arc::clone(&last_seen);
        std::thread::Builder::new()
            .name(format!("maia-hub-rx-{wheel}"))
            .spawn(move || {
                while let Ok(frame) = read_frame(&mut *reader) {
                    *seen.lock() = Instant::now();
                    if tx.send(frame).is_err() {
                        break;
                    }
                }
                // EOF/error: dropping `tx` disconnects the channel, which
                // the hub reads as a crash.
            })
            .expect("failed to spawn hub reader thread");
        Link {
            wheel,
            writer,
            frames,
            last_seen,
        }
    }

    /// Block for the next frame, enforcing the heartbeat deadline.
    /// `missed` counts polls that found the worker silent for at least
    /// one heartbeat interval.
    fn recv(&self, cfg: &ProcessConfig, deadline: Duration, missed: &mut u64) -> LinkRecv {
        let poll = cfg.heartbeat_interval.max(Duration::from_millis(10));
        loop {
            match self.frames.recv_timeout(poll) {
                Ok((tag, payload)) => return LinkRecv::Frame(tag, payload),
                Err(RecvTimeoutError::Timeout) => {
                    let idle = self.last_seen.lock().elapsed();
                    if idle >= cfg.heartbeat_interval {
                        *missed += 1;
                    }
                    if idle >= deadline {
                        return LinkRecv::Lost(format!(
                            "heartbeat deadline exceeded ({} ms silent)",
                            idle.as_millis()
                        ));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return LinkRecv::Lost("connection closed".to_string());
                }
            }
        }
    }
}

/// Hub-side [`SimCommunicator`]: wheel 0's communicator *and* the
/// router every worker exchange flows through. Construct with
/// [`ProcessCommunicator::connect`], drive wheel 0 against it (by
/// `&mut`, so it survives the drive), then call
/// [`ProcessCommunicator::collect_reports`].
pub struct ProcessCommunicator<T> {
    links: Vec<Link>,
    partitions: usize,
    cfg: ProcessConfig,
    aborted: bool,
    loss: Option<WorkerLoss>,
    missed_heartbeats: u64,
    window: u64,
    last_floor_ps: u64,
    /// Report frames that arrived before `collect_reports` asked.
    early_reports: Vec<Option<Vec<u8>>>,
    _t: PhantomData<fn() -> T>,
}

impl<T: WireItem> ProcessCommunicator<T> {
    /// Handshake with `workers` — pipe pairs in wheel order, wheel
    /// `i + 1` for `workers[i]` — and ship each its job payload.
    /// `jobs[i]` is delivered verbatim to wheel `i + 1`.
    pub fn connect(
        partitions: usize,
        workers: Vec<(Box<dyn Read + Send>, Box<dyn Write + Send>)>,
        jobs: Vec<Vec<u8>>,
        cfg: ProcessConfig,
    ) -> Result<Self, WorkerLoss> {
        assert!(partitions >= 1);
        assert_eq!(workers.len(), partitions - 1, "one worker per non-hub wheel");
        assert_eq!(jobs.len(), workers.len(), "one job per worker");
        let mut links: Vec<Link> = workers
            .into_iter()
            .enumerate()
            .map(|(i, (r, w))| Link::spawn(i + 1, r, w))
            .collect();
        let mut hub = ProcessCommunicator {
            early_reports: (0..links.len()).map(|_| None).collect(),
            links: Vec::new(),
            partitions,
            cfg,
            aborted: false,
            loss: None,
            missed_heartbeats: 0,
            window: 0,
            last_floor_ps: 0,
            _t: PhantomData,
        };
        let mut missed = 0u64;
        for (i, link) in links.iter_mut().enumerate() {
            let wheel = i + 1;
            let fail = |detail: String| WorkerLoss {
                wheel,
                window: 0,
                at_ps: 0,
                detail,
            };
            match link.recv(&cfg, cfg.handshake_deadline, &mut missed) {
                LinkRecv::Frame(TAG_HELLO, payload) => {
                    let mut r = wire::Reader::new(&payload);
                    let (version, w, n) = match (r.take_u32(), r.take_u32(), r.take_u32()) {
                        (Some(v), Some(w), Some(n)) => (v, w, n),
                        _ => return Err(fail("malformed hello".to_string())),
                    };
                    if version != WIRE_VERSION {
                        return Err(fail(format!(
                            "wire version mismatch: hub {WIRE_VERSION}, worker {version}"
                        )));
                    }
                    if w as usize != wheel || n as usize != partitions {
                        return Err(fail(format!(
                            "layout mismatch: worker claims wheel {w} of {n}, expected \
                             wheel {wheel} of {partitions}"
                        )));
                    }
                }
                LinkRecv::Frame(tag, _) => {
                    return Err(fail(format!("expected hello, got frame tag {tag}")));
                }
                LinkRecv::Lost(detail) => {
                    return Err(fail(format!("no hello: {detail}")));
                }
            }
            if let Err(e) = write_frame(&mut *link.writer, TAG_JOB, &jobs[i]) {
                return Err(fail(format!("sending job failed: {e}")));
            }
        }
        hub.missed_heartbeats = missed;
        hub.links = links;
        Ok(hub)
    }

    /// The loss that aborted the run, if one did.
    pub fn loss(&self) -> Option<&WorkerLoss> {
        self.loss.as_ref()
    }

    /// Polls that found a worker silent for at least one heartbeat
    /// interval — the `supervise.missed-heartbeats` raw material.
    pub fn missed_heartbeats(&self) -> u64 {
        self.missed_heartbeats
    }

    /// Exchange windows completed so far.
    pub fn window(&self) -> u64 {
        self.window
    }

    fn send_abort_all(&mut self) {
        for link in &mut self.links {
            let _ = write_frame(&mut *link.writer, TAG_ABORT, &[]);
        }
    }

    fn declare_loss(&mut self, wheel: usize, detail: String) {
        if self.loss.is_none() {
            self.loss = Some(WorkerLoss {
                wheel,
                window: self.window,
                at_ps: self.last_floor_ps,
                detail,
            });
        }
        self.aborted = true;
        self.send_abort_all();
    }

    /// After the wheel-0 drive returns, pull every worker's Report
    /// frame: `(report, extra)` in wheel order `1..partitions`.
    pub fn collect_reports(&mut self) -> Result<Vec<(WheelReport, Vec<u8>)>, WorkerLoss> {
        let mut out = Vec::with_capacity(self.links.len());
        for i in 0..self.links.len() {
            let wheel = self.links[i].wheel;
            if let Some(bytes) = self.early_reports[i].take() {
                match decode_report(&bytes) {
                    Some(pair) => {
                        out.push(pair);
                        continue;
                    }
                    None => {
                        self.declare_loss(wheel, "malformed report frame".to_string());
                        return Err(self.loss.clone().unwrap());
                    }
                }
            }
            loop {
                let deadline = self.cfg.heartbeat_deadline;
                let recv = {
                    let mut missed = 0u64;
                    let r = self.links[i].recv(&self.cfg, deadline, &mut missed);
                    self.missed_heartbeats += missed;
                    r
                };
                match recv {
                    LinkRecv::Frame(TAG_REPORT, payload) => match decode_report(&payload) {
                        Some(pair) => {
                            out.push(pair);
                            break;
                        }
                        None => {
                            self.declare_loss(wheel, "malformed report frame".to_string());
                            return Err(self.loss.clone().unwrap());
                        }
                    },
                    // Stale window traffic and heartbeats racing the
                    // shutdown are expected; skip to the report.
                    LinkRecv::Frame(TAG_HEARTBEAT | TAG_BATCH | TAG_ABORT, _) => {}
                    LinkRecv::Frame(tag, _) => {
                        self.declare_loss(wheel, format!("unexpected frame tag {tag} before report"));
                        return Err(self.loss.clone().unwrap());
                    }
                    LinkRecv::Lost(detail) => {
                        self.declare_loss(wheel, format!("no report: {detail}"));
                        return Err(self.loss.clone().unwrap());
                    }
                }
            }
        }
        Ok(out)
    }
}

impl<T: WireItem> SimCommunicator<T> for ProcessCommunicator<T> {
    fn partition(&self) -> usize {
        0
    }

    fn partitions(&self) -> usize {
        self.partitions
    }

    fn exchange(
        &mut self,
        mut outbound: Vec<Vec<RemoteMsg<T>>>,
        floor: Option<u64>,
    ) -> ExchangeOutcome<T> {
        let n = self.partitions;
        debug_assert_eq!(outbound.len(), n, "one outbound bucket per partition");
        if self.aborted {
            return ExchangeOutcome::Aborted;
        }
        // Wheel 0's own loopback bucket plus its contributions to each
        // worker wheel.
        let mut inbound: Vec<RemoteMsg<T>> = std::mem::take(&mut outbound[0]);
        let mut per_wheel: Vec<Vec<RemoteMsg<T>>> = outbound;
        let mut global = floor;

        // Collect one Batch per worker; route its buckets.
        for i in 0..self.links.len() {
            let wheel = self.links[i].wheel;
            loop {
                let recv = {
                    let mut missed = 0u64;
                    let r = self.links[i].recv(&self.cfg, self.cfg.heartbeat_deadline, &mut missed);
                    self.missed_heartbeats += missed;
                    r
                };
                match recv {
                    LinkRecv::Frame(TAG_BATCH, payload) => {
                        let mut r = wire::Reader::new(&payload);
                        let decoded = (|| {
                            let has_floor = r.take_u8()?;
                            let f = r.take_u64()?;
                            let wfloor = (has_floor != 0).then_some(f);
                            let mut buckets = Vec::new();
                            while r.remaining() > 0 {
                                let dest = r.take_u32()? as usize;
                                let count = r.take_u32()? as usize;
                                let mut msgs = Vec::with_capacity(count);
                                for _ in 0..count {
                                    msgs.push(decode_msg::<T>(&mut r)?);
                                }
                                buckets.push((dest, msgs));
                            }
                            Some((wfloor, buckets))
                        })();
                        let Some((wfloor, buckets)) = decoded else {
                            self.declare_loss(wheel, "malformed batch frame".to_string());
                            return ExchangeOutcome::Aborted;
                        };
                        global = match (global, wfloor) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        for (dest, msgs) in buckets {
                            if dest >= n {
                                self.declare_loss(wheel, format!("batch routes to wheel {dest} of {n}"));
                                return ExchangeOutcome::Aborted;
                            }
                            if dest == 0 {
                                inbound.extend(msgs);
                            } else {
                                per_wheel[dest].extend(msgs);
                            }
                        }
                        break;
                    }
                    LinkRecv::Frame(TAG_HEARTBEAT, _) => {}
                    LinkRecv::Frame(TAG_ABORT, _) => {
                        // The worker's wheel failed; its Report carries
                        // the error. Not a supervision loss.
                        self.aborted = true;
                        self.send_abort_all();
                        return ExchangeOutcome::Aborted;
                    }
                    LinkRecv::Frame(TAG_REPORT, payload) => {
                        // A worker finishing early would be a protocol
                        // violation mid-window, but stash it: the abort
                        // path may still want its contents.
                        self.early_reports[i] = Some(payload);
                        self.declare_loss(wheel, "report frame arrived mid-window".to_string());
                        return ExchangeOutcome::Aborted;
                    }
                    LinkRecv::Frame(tag, _) => {
                        self.declare_loss(wheel, format!("unexpected frame tag {tag} mid-window"));
                        return ExchangeOutcome::Aborted;
                    }
                    LinkRecv::Lost(detail) => {
                        self.declare_loss(wheel, detail);
                        return ExchangeOutcome::Aborted;
                    }
                }
            }
        }

        self.window += 1;
        match global {
            None => {
                for link in &mut self.links {
                    if write_frame(&mut *link.writer, TAG_DONE, &[]).is_err() {
                        // The worker will be caught (if truly gone) by
                        // collect_reports; nothing to route anyway.
                    }
                }
                ExchangeOutcome::Done
            }
            Some(next_ps) => {
                self.last_floor_ps = next_ps;
                for i in 0..self.links.len() {
                    let wheel = self.links[i].wheel;
                    let mut payload = Vec::new();
                    wire::put_u64(&mut payload, next_ps);
                    let msgs = std::mem::take(&mut per_wheel[wheel]);
                    wire::put_u32(&mut payload, msgs.len() as u32);
                    for m in &msgs {
                        encode_msg(m, &mut payload);
                    }
                    if let Err(e) = write_frame(&mut *self.links[i].writer, TAG_WINDOW, &payload) {
                        self.declare_loss(wheel, format!("sending window failed: {e}"));
                        return ExchangeOutcome::Aborted;
                    }
                }
                ExchangeOutcome::Continue {
                    inbound,
                    next: SimTime(next_ps),
                }
            }
        }
    }

    fn abort(&mut self) {
        if !self.aborted {
            self.aborted = true;
            self.send_abort_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Worker-side [`SimCommunicator`]: one wheel in a child process,
/// talking to the hub over a pipe pair (conventionally its own
/// stdin/stdout). A dedicated thread heartbeats while the wheel
/// computes, so the hub can tell "slow window" from "dead process".
pub struct WorkerEndpoint<T> {
    wheel: usize,
    partitions: usize,
    reader: Box<dyn Read + Send>,
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
    hb_stop: Arc<AtomicBool>,
    hb_thread: Option<std::thread::JoinHandle<()>>,
    aborted: bool,
    _t: PhantomData<fn() -> T>,
}

impl<T: WireItem> WorkerEndpoint<T> {
    /// Send the Hello, wait for the Job frame, start the heartbeat
    /// thread, and return the endpoint plus the opaque job payload.
    pub fn connect(
        wheel: usize,
        partitions: usize,
        mut reader: Box<dyn Read + Send>,
        writer: Box<dyn Write + Send>,
        cfg: ProcessConfig,
    ) -> io::Result<(Self, Vec<u8>)> {
        assert!(wheel >= 1 && wheel < partitions, "hub owns wheel 0");
        let writer: Arc<Mutex<Box<dyn Write + Send>>> = Arc::new(Mutex::new(writer));
        let mut hello = Vec::new();
        wire::put_u32(&mut hello, WIRE_VERSION);
        wire::put_u32(&mut hello, wheel as u32);
        wire::put_u32(&mut hello, partitions as u32);
        write_frame(&mut **writer.lock(), TAG_HELLO, &hello)?;
        let job = match read_frame(&mut *reader)? {
            (TAG_JOB, payload) => payload,
            (TAG_ABORT, _) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "hub aborted during handshake",
                ))
            }
            (tag, _) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected job frame, got tag {tag}"),
                ))
            }
        };
        let hb_stop = Arc::new(AtomicBool::new(false));
        let hb_thread = {
            let writer = Arc::clone(&writer);
            let stop = Arc::clone(&hb_stop);
            std::thread::Builder::new()
                .name(format!("maia-worker-hb-{wheel}"))
                .spawn(move || loop {
                    std::thread::sleep(cfg.heartbeat_interval);
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    if write_frame(&mut **writer.lock(), TAG_HEARTBEAT, &[]).is_err() {
                        break;
                    }
                })
                .expect("failed to spawn heartbeat thread")
        };
        Ok((
            WorkerEndpoint {
                wheel,
                partitions,
                reader,
                writer,
                hb_stop,
                hb_thread: Some(hb_thread),
                aborted: false,
                _t: PhantomData,
            },
            job,
        ))
    }

    /// Stop emitting heartbeats without stopping the wheel — the
    /// chaos hook behind the "worker that stops heartbeating" drill.
    pub fn stop_heartbeats(&self) {
        self.hb_stop.store(true, Ordering::Release);
    }

    /// Finish the session: stop heartbeats and ship the wheel's report
    /// (plus caller-defined extra bytes) to the hub.
    pub fn finish(mut self, report: &WheelReport, extra: &[u8]) -> io::Result<()> {
        self.join_heartbeat();
        let payload = encode_report(report, extra);
        write_frame(&mut **self.writer.lock(), TAG_REPORT, &payload)
    }

    fn join_heartbeat(&mut self) {
        self.hb_stop.store(true, Ordering::Release);
        if let Some(h) = self.hb_thread.take() {
            let _ = h.join();
        }
    }
}

impl<T> Drop for WorkerEndpoint<T> {
    fn drop(&mut self) {
        self.hb_stop.store(true, Ordering::Release);
        if let Some(h) = self.hb_thread.take() {
            let _ = h.join();
        }
    }
}

impl<T: WireItem> SimCommunicator<T> for WorkerEndpoint<T> {
    fn partition(&self) -> usize {
        self.wheel
    }

    fn partitions(&self) -> usize {
        self.partitions
    }

    fn exchange(
        &mut self,
        mut outbound: Vec<Vec<RemoteMsg<T>>>,
        floor: Option<u64>,
    ) -> ExchangeOutcome<T> {
        debug_assert_eq!(outbound.len(), self.partitions);
        if self.aborted {
            return ExchangeOutcome::Aborted;
        }
        // Loopback bucket stays local, exactly like the channel backend.
        let mut inbound: Vec<RemoteMsg<T>> = std::mem::take(&mut outbound[self.wheel]);
        let mut payload = Vec::new();
        payload.push(u8::from(floor.is_some()));
        wire::put_u64(&mut payload, floor.unwrap_or(0));
        for (dest, msgs) in outbound.iter().enumerate() {
            if dest == self.wheel || msgs.is_empty() {
                continue;
            }
            wire::put_u32(&mut payload, dest as u32);
            wire::put_u32(&mut payload, msgs.len() as u32);
            for m in msgs {
                encode_msg(m, &mut payload);
            }
        }
        if write_frame(&mut **self.writer.lock(), TAG_BATCH, &payload).is_err() {
            self.aborted = true;
            return ExchangeOutcome::Aborted;
        }
        match read_frame(&mut *self.reader) {
            Ok((TAG_WINDOW, payload)) => {
                let mut r = wire::Reader::new(&payload);
                let decoded = (|| {
                    let next_ps = r.take_u64()?;
                    let count = r.take_u32()? as usize;
                    let mut msgs = Vec::with_capacity(count);
                    for _ in 0..count {
                        msgs.push(decode_msg::<T>(&mut r)?);
                    }
                    Some((next_ps, msgs))
                })();
                let Some((next_ps, msgs)) = decoded else {
                    self.aborted = true;
                    return ExchangeOutcome::Aborted;
                };
                inbound.extend(msgs);
                ExchangeOutcome::Continue {
                    inbound,
                    next: SimTime(next_ps),
                }
            }
            Ok((TAG_DONE, _)) => ExchangeOutcome::Done,
            Ok((TAG_ABORT, _)) | Err(_) => {
                self.aborted = true;
                ExchangeOutcome::Aborted
            }
            Ok((_, _)) => {
                // Unknown hub frame: treat as protocol failure.
                self.aborted = true;
                ExchangeOutcome::Aborted
            }
        }
    }

    fn abort(&mut self) {
        if !self.aborted {
            self.aborted = true;
            let _ = write_frame(&mut **self.writer.lock(), TAG_ABORT, &[]);
        }
    }
}

// ---------------------------------------------------------------------------
// Probe recording / replay
// ---------------------------------------------------------------------------

const OP_SPAWNED: u8 = 1;
const OP_SCHEDULED: u8 = 2;
const OP_FIRED: u8 = 3;
const OP_ADVANCED: u8 = 4;
const OP_BLOCKED: u8 = 5;
const OP_FINISHED: u8 = 6;
const OP_RUN_COMPLETE: u8 = 7;
const OP_RES_WAIT: u8 = 8;
const OP_RES_SERVICE: u8 = 9;
const OP_SPAN: u8 = 10;
const OP_SCHED_STATS: u8 = 11;

/// A [`Probe`] that records every callback as a compact byte stream, so
/// a worker process can ship its wheel's probe activity to the hub in
/// the Report frame; [`replay_probe`] re-issues the calls against the
/// hub's real probe (typically the wheel's [`super::PartitionProbe`],
/// which remaps pids and buffers spans). All consumers of probe data
/// aggregate order-insensitively across wheels, so replay-after-run is
/// observationally identical to the channel backend's live forwarding.
#[derive(Default)]
pub struct RecordingProbe {
    buf: Mutex<Vec<u8>>,
}

impl RecordingProbe {
    /// An empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the recorded byte stream (resets the buffer).
    pub fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.buf.lock())
    }
}

impl Probe for RecordingProbe {
    fn process_spawned(&self, pid: ProcessId, name: &str) {
        let mut b = self.buf.lock();
        b.push(OP_SPAWNED);
        wire::put_u32(&mut b, pid.index() as u32);
        wire::put_str(&mut b, name);
    }
    fn event_scheduled(&self, at_ps: u64, pid: ProcessId) {
        let mut b = self.buf.lock();
        b.push(OP_SCHEDULED);
        wire::put_u64(&mut b, at_ps);
        wire::put_u32(&mut b, pid.index() as u32);
    }
    fn event_fired(&self, now_ps: u64, pid: ProcessId, queue_depth: usize) {
        let mut b = self.buf.lock();
        b.push(OP_FIRED);
        wire::put_u64(&mut b, now_ps);
        wire::put_u32(&mut b, pid.index() as u32);
        wire::put_u64(&mut b, queue_depth as u64);
    }
    fn advanced(&self, now_ps: u64, pid: ProcessId, dur_ps: u64) {
        let mut b = self.buf.lock();
        b.push(OP_ADVANCED);
        wire::put_u64(&mut b, now_ps);
        wire::put_u32(&mut b, pid.index() as u32);
        wire::put_u64(&mut b, dur_ps);
    }
    fn blocked(&self, now_ps: u64, pid: ProcessId) {
        let mut b = self.buf.lock();
        b.push(OP_BLOCKED);
        wire::put_u64(&mut b, now_ps);
        wire::put_u32(&mut b, pid.index() as u32);
    }
    fn finished(&self, now_ps: u64, pid: ProcessId) {
        let mut b = self.buf.lock();
        b.push(OP_FINISHED);
        wire::put_u64(&mut b, now_ps);
        wire::put_u32(&mut b, pid.index() as u32);
    }
    fn sched_stats(&self, stats: &SchedStats) {
        let mut b = self.buf.lock();
        b.push(OP_SCHED_STATS);
        wire::put_u64(&mut b, stats.events_pushed);
        wire::put_u64(&mut b, stats.events_popped);
        for lvl in stats.wheel_level_pushes {
            wire::put_u64(&mut b, lvl);
        }
        wire::put_u64(&mut b, stats.procs_inline);
        wire::put_u64(&mut b, stats.procs_threaded);
    }
    fn run_complete(&self, end_ps: u64) {
        let mut b = self.buf.lock();
        b.push(OP_RUN_COMPLETE);
        wire::put_u64(&mut b, end_ps);
    }
    fn resource_wait(&self, name: &str, pid: ProcessId, wait_ps: u64) {
        let mut b = self.buf.lock();
        b.push(OP_RES_WAIT);
        wire::put_str(&mut b, name);
        wire::put_u32(&mut b, pid.index() as u32);
        wire::put_u64(&mut b, wait_ps);
    }
    fn resource_service(&self, name: &str, pid: ProcessId, held_ps: u64) {
        let mut b = self.buf.lock();
        b.push(OP_RES_SERVICE);
        wire::put_str(&mut b, name);
        wire::put_u32(&mut b, pid.index() as u32);
        wire::put_u64(&mut b, held_ps);
    }
    fn span(&self, name: &str, start_ps: u64, end_ps: u64, pid: ProcessId) {
        let mut b = self.buf.lock();
        b.push(OP_SPAN);
        wire::put_str(&mut b, name);
        wire::put_u64(&mut b, start_ps);
        wire::put_u64(&mut b, end_ps);
        wire::put_u32(&mut b, pid.index() as u32);
    }
}

/// Re-issue a recorded probe stream against `probe`. Returns `false`
/// when the stream is malformed (remaining records are dropped).
pub fn replay_probe(bytes: &[u8], probe: &dyn Probe) -> bool {
    let mut r = wire::Reader::new(bytes);
    let pid = |r: &mut wire::Reader<'_>| r.take_u32().map(|v| ProcessId::from_index(v as usize));
    while r.remaining() > 0 {
        let ok = (|| {
            match r.take_u8()? {
                OP_SPAWNED => {
                    let p = pid(&mut r)?;
                    let name = r.take_str()?;
                    probe.process_spawned(p, &name);
                }
                OP_SCHEDULED => {
                    let at = r.take_u64()?;
                    probe.event_scheduled(at, pid(&mut r)?);
                }
                OP_FIRED => {
                    let now = r.take_u64()?;
                    let p = pid(&mut r)?;
                    let depth = r.take_u64()? as usize;
                    probe.event_fired(now, p, depth);
                }
                OP_ADVANCED => {
                    let now = r.take_u64()?;
                    let p = pid(&mut r)?;
                    let dur = r.take_u64()?;
                    probe.advanced(now, p, dur);
                }
                OP_BLOCKED => {
                    let now = r.take_u64()?;
                    probe.blocked(now, pid(&mut r)?);
                }
                OP_FINISHED => {
                    let now = r.take_u64()?;
                    probe.finished(now, pid(&mut r)?);
                }
                OP_SCHED_STATS => {
                    let mut stats = SchedStats {
                        events_pushed: r.take_u64()?,
                        events_popped: r.take_u64()?,
                        ..SchedStats::default()
                    };
                    for lvl in &mut stats.wheel_level_pushes {
                        *lvl = r.take_u64()?;
                    }
                    stats.procs_inline = r.take_u64()?;
                    stats.procs_threaded = r.take_u64()?;
                    probe.sched_stats(&stats);
                }
                OP_RUN_COMPLETE => probe.run_complete(r.take_u64()?),
                OP_RES_WAIT => {
                    let name = r.take_str()?;
                    let p = pid(&mut r)?;
                    let wait = r.take_u64()?;
                    probe.resource_wait(&name, p, wait);
                }
                OP_RES_SERVICE => {
                    let name = r.take_str()?;
                    let p = pid(&mut r)?;
                    let held = r.take_u64()?;
                    probe.resource_service(&name, p, held);
                }
                OP_SPAN => {
                    let name = r.take_str()?;
                    let start = r.take_u64()?;
                    let end = r.take_u64()?;
                    probe.span(&name, start, end, pid(&mut r)?);
                }
                _ => return None,
            }
            Some(())
        })();
        if ok.is_none() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::os::unix::net::UnixStream;

    impl WireItem for u32 {
        fn encode(&self, out: &mut Vec<u8>) {
            wire::put_u32(out, *self);
        }
        fn decode(r: &mut wire::Reader<'_>) -> Option<Self> {
            r.take_u32()
        }
    }

    type PipeEnd = (Box<dyn Read + Send>, Box<dyn Write + Send>);

    fn pipe_pair() -> (PipeEnd, PipeEnd) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let a2 = a.try_clone().unwrap();
        let b2 = b.try_clone().unwrap();
        ((Box::new(a), Box::new(a2)), (Box::new(b), Box::new(b2)))
    }

    fn fast_cfg() -> ProcessConfig {
        ProcessConfig {
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_deadline: Duration::from_millis(400),
            handshake_deadline: Duration::from_secs(5),
        }
    }

    /// Two participants (hub wheel 0, worker wheel 1 on a thread) run a
    /// two-window exchange; floors, routing and termination must match
    /// the channel backend's semantics.
    #[test]
    fn hub_and_worker_exchange_windows() {
        let (hub_io, worker_io) = pipe_pair();
        let worker = std::thread::spawn(move || {
            let (mut ep, job) = WorkerEndpoint::<u32>::connect(
                1,
                2,
                worker_io.0,
                worker_io.1,
                fast_cfg(),
            )
            .expect("connect");
            assert_eq!(job, b"job-bytes");
            // Window 1: send 7 to wheel 0, floor 100.
            let out = vec![
                vec![RemoteMsg {
                    arrival: SimTime(150),
                    dest_slot: 0,
                    order: (1, 0),
                    payload: 7u32,
                }],
                Vec::new(),
            ];
            match ep.exchange(out, Some(100)) {
                ExchangeOutcome::Continue { inbound, next } => {
                    assert_eq!(next, SimTime(50)); // hub's floor wins
                    assert_eq!(inbound.len(), 1);
                    assert_eq!(inbound[0].payload, 41);
                }
                _ => panic!("expected Continue"),
            }
            // Window 2: nothing left anywhere.
            match ep.exchange(vec![Vec::new(), Vec::new()], None) {
                ExchangeOutcome::Done => {}
                _ => panic!("expected Done"),
            }
            let report = WheelReport {
                status: DriveStatus::Completed,
                blocked: Vec::new(),
                end: SimTime(150),
                windows: 2,
                stats: WheelStats {
                    end_ps: 150,
                    messages_out: 1,
                    stall_wall_ns: 0,
                },
            };
            ep.finish(&report, b"extra").expect("finish");
        });

        let mut hub = ProcessCommunicator::<u32>::connect(
            2,
            vec![hub_io],
            vec![b"job-bytes".to_vec()],
            fast_cfg(),
        )
        .expect("handshake");
        // Window 1: hub sends 41 to wheel 1, floor 50.
        let out = vec![
            Vec::new(),
            vec![RemoteMsg {
                arrival: SimTime(90),
                dest_slot: 3,
                order: (0, 0),
                payload: 41u32,
            }],
        ];
        match hub.exchange(out, Some(50)) {
            ExchangeOutcome::Continue { inbound, next } => {
                assert_eq!(next, SimTime(50));
                assert_eq!(inbound.len(), 1);
                assert_eq!(inbound[0].payload, 7);
                assert_eq!(inbound[0].order, (1, 0));
            }
            _ => panic!("expected Continue"),
        }
        match hub.exchange(vec![Vec::new(), Vec::new()], None) {
            ExchangeOutcome::Done => {}
            _ => panic!("expected Done"),
        }
        let reports = hub.collect_reports().expect("reports");
        assert_eq!(reports.len(), 1);
        assert!(matches!(reports[0].0.status, DriveStatus::Completed));
        assert_eq!(reports[0].0.stats.messages_out, 1);
        assert_eq!(reports[0].1, b"extra");
        assert!(hub.loss().is_none());
        worker.join().unwrap();
    }

    /// A worker whose pipe closes mid-window is a crash: the hub
    /// reports the loss with the wheel, window and virtual floor.
    #[test]
    fn dropped_worker_is_reported_as_loss() {
        let (hub_io, worker_io) = pipe_pair();
        let worker = std::thread::spawn(move || {
            let (mut ep, _job) =
                WorkerEndpoint::<u32>::connect(1, 2, worker_io.0, worker_io.1, fast_cfg())
                    .expect("connect");
            // One clean window, then vanish (drop without report).
            match ep.exchange(vec![Vec::new(), Vec::new()], Some(100)) {
                ExchangeOutcome::Continue { next, .. } => assert_eq!(next, SimTime(100)),
                _ => panic!("expected Continue"),
            }
            drop(ep); // connection closes with no further frames
        });
        let mut hub =
            ProcessCommunicator::<u32>::connect(2, vec![hub_io], vec![Vec::new()], fast_cfg())
                .expect("handshake");
        match hub.exchange(vec![Vec::new(), Vec::new()], None) {
            ExchangeOutcome::Continue { next, .. } => assert_eq!(next, SimTime(100)),
            _ => panic!("expected Continue"),
        }
        // Next window never gets the worker's batch.
        match hub.exchange(vec![Vec::new(), Vec::new()], Some(200)) {
            ExchangeOutcome::Aborted => {}
            _ => panic!("expected Aborted"),
        }
        let loss = hub.loss().expect("loss recorded").clone();
        assert_eq!(loss.wheel, 1);
        assert_eq!(loss.window, 1);
        assert_eq!(loss.at_ps, 100);
        assert!(loss.detail.contains("connection closed"), "{}", loss.detail);
        worker.join().unwrap();
    }

    /// A worker that stops heartbeating (but keeps its pipe open) trips
    /// the heartbeat deadline and is declared hung.
    #[test]
    fn silent_worker_trips_heartbeat_deadline() {
        let (hub_io, worker_io) = pipe_pair();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            let (ep, _job) =
                WorkerEndpoint::<u32>::connect(1, 2, worker_io.0, worker_io.1, fast_cfg())
                    .expect("connect");
            ep.stop_heartbeats();
            // Keep the connection open, silent, until the test ends.
            let _ = release_rx.recv();
            drop(ep);
        });
        let mut hub =
            ProcessCommunicator::<u32>::connect(2, vec![hub_io], vec![Vec::new()], fast_cfg())
                .expect("handshake");
        match hub.exchange(vec![Vec::new(), Vec::new()], Some(10)) {
            ExchangeOutcome::Aborted => {}
            _ => panic!("expected Aborted"),
        }
        let loss = hub.loss().expect("loss recorded");
        assert!(
            loss.detail.contains("heartbeat deadline"),
            "{}",
            loss.detail
        );
        assert!(hub.missed_heartbeats() > 0);
        let _ = release_tx.send(());
        worker.join().unwrap();
    }

    #[test]
    fn report_roundtrips_through_the_codec() {
        let report = WheelReport {
            status: DriveStatus::Error(SimError::ProcessPanicked {
                name: "rank-3".to_string(),
                message: "boom".to_string(),
                at: SimTime(42),
            }),
            blocked: vec!["rank-9".to_string()],
            end: SimTime(77),
            windows: 5,
            stats: WheelStats {
                end_ps: 77,
                messages_out: 12,
                stall_wall_ns: 999,
            },
        };
        let bytes = encode_report(&report, b"opaque");
        let (back, extra) = decode_report(&bytes).expect("decode");
        match back.status {
            DriveStatus::Error(SimError::ProcessPanicked { name, message, at }) => {
                assert_eq!(name, "rank-3");
                assert_eq!(message, "boom");
                assert_eq!(at, SimTime(42));
            }
            _ => panic!("status lost in roundtrip"),
        }
        assert_eq!(back.blocked, vec!["rank-9".to_string()]);
        assert_eq!(back.end, SimTime(77));
        assert_eq!(back.windows, 5);
        assert_eq!(back.stats.messages_out, 12);
        assert_eq!(extra, b"opaque");
    }

    #[test]
    fn probe_recording_replays_identically() {
        use std::sync::Mutex as StdMutex;

        #[derive(Default)]
        struct Log(StdMutex<Vec<String>>);
        impl Probe for Log {
            fn process_spawned(&self, pid: ProcessId, name: &str) {
                self.0.lock().unwrap().push(format!("spawn {} {}", pid.index(), name));
            }
            fn advanced(&self, now_ps: u64, pid: ProcessId, dur_ps: u64) {
                self.0
                    .lock()
                    .unwrap()
                    .push(format!("adv {} {} {}", now_ps, pid.index(), dur_ps));
            }
            fn span(&self, name: &str, start_ps: u64, end_ps: u64, pid: ProcessId) {
                self.0
                    .lock()
                    .unwrap()
                    .push(format!("span {name} {start_ps} {end_ps} {}", pid.index()));
            }
        }

        let rec = RecordingProbe::new();
        rec.process_spawned(ProcessId::from_index(2), "rank-2");
        rec.advanced(10, ProcessId::from_index(2), SimDuration::from_ns(1.0).as_ps());
        rec.span("rank-2", 0, 1000, ProcessId::from_index(2));
        let bytes = rec.take();

        let log = Log::default();
        assert!(replay_probe(&bytes, &log));
        assert_eq!(
            *log.0.lock().unwrap(),
            vec![
                "spawn 2 rank-2".to_string(),
                "adv 10 2 1000".to_string(),
                "span rank-2 0 1000 2".to_string(),
            ]
        );
    }
}
