//! The conservative process-oriented simulation engine.
//!
//! Each simulated process runs on its own OS thread (drawn from a reusable
//! worker-thread pool, so short-lived worlds do not pay per-rank thread
//! creation), but the scheduler
//! enforces strict one-at-a-time execution: it resumes exactly one process,
//! waits for that process to yield (by advancing time, blocking, or
//! finishing), and only then picks the next event. Events are totally
//! ordered by `(virtual time, sequence number)`, so simulations are
//! deterministic regardless of OS thread scheduling.
//!
//! Processes written against [`ProcCtx`] look like ordinary blocking code;
//! the virtual clock only moves via [`ProcCtx::advance`] and the wake-ups
//! triggered through channels and resources.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};

use crossbeam::channel::{unbounded, Receiver, Sender};

use parking_lot::Mutex;

use crate::probe::Probe;
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated process within one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// Dense index of this process within its engine (spawn order).
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Errors surfaced by [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while some processes were still blocked:
    /// every named process is waiting on a channel or resource that no
    /// runnable process can ever satisfy.
    Deadlock {
        /// Names of the blocked processes.
        blocked: Vec<String>,
        /// Virtual time at which the simulation stalled.
        at: SimTime,
    },
    /// A process panicked; the simulation cannot continue.
    ProcessPanicked {
        /// Name given to [`Engine::spawn`].
        name: String,
        /// Rendered panic payload.
        message: String,
        /// Virtual time at which the process was running when it died.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked, at } => {
                write!(f, "simulation deadlocked at {at}; blocked: {}", blocked.join(", "))
            }
            SimError::ProcessPanicked { name, message, at } => {
                write!(f, "simulated process '{name}' panicked at {at}: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Sent by the scheduler to resume a process at a given virtual time.
struct Resume {
    now: SimTime,
}

/// Sent by a process thread back to the scheduler when it yields.
enum YieldMsg {
    /// The process consumed `dur` of virtual time and wants to continue.
    Advance { pid: ProcessId, dur: SimDuration },
    /// The process is blocked on a channel/resource and must be woken via
    /// [`Shared::wakes`].
    Blocked { pid: ProcessId },
    /// The process closure returned.
    Finished { pid: ProcessId },
    /// The process closure panicked.
    Panicked { pid: ProcessId, message: String },
}

/// Target of a queued event: a process resume, or a scheduled injection
/// (e.g. a cross-partition message delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvTarget {
    Proc(usize),
    Inject(usize),
}

/// A scheduled injection body; runs on the scheduler thread at its
/// virtual time.
type Injection = Box<dyn FnOnce(&InjectCtx<'_>) + Send>;

/// State shared between the scheduler and the (single) running process.
#[derive(Default)]
pub(crate) struct Shared {
    /// Wake requests raised by the running process (e.g. a channel send to a
    /// blocked receiver). Drained by the scheduler every time the running
    /// process yields; because virtual time does not pass while a process
    /// runs, deferring the wake to yield time is exact.
    wakes: Mutex<Vec<ProcessId>>,
    /// Telemetry probe captured at engine construction, reachable from
    /// process threads for explicit span annotations.
    probe: Option<Arc<dyn Probe>>,
}

/// Private token used to unwind a process thread when the engine shuts down
/// before the process has finished (e.g. after a deadlock or early drop).
struct EngineShutdown;

fn install_quiet_shutdown_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            // Engine-initiated unwinds are part of normal teardown; keep the
            // default hook's output for genuine panics only.
            if info.payload().downcast_ref::<EngineShutdown>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Execution context handed to every simulated process.
///
/// All interaction with virtual time flows through this handle. It is
/// deliberately `!Clone`: a process has exactly one identity on the clock.
pub struct ProcCtx {
    pid: ProcessId,
    now: SimTime,
    shared: Arc<Shared>,
    yield_tx: Sender<YieldMsg>,
    resume_rx: Receiver<Resume>,
}

impl ProcCtx {
    /// Identifier of this process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Consume `dur` of virtual time (e.g. compute, memory traffic, wire
    /// time). Other processes may run in the interim.
    pub fn advance(&mut self, dur: SimDuration) {
        self.yield_and_wait(YieldMsg::Advance { pid: self.pid, dur });
    }

    /// Block until another process wakes this one (used by channels and
    /// resources). Returns at the waker's virtual time.
    pub(crate) fn block(&mut self) {
        self.yield_and_wait(YieldMsg::Blocked { pid: self.pid });
    }

    /// Request that `pid` be made runnable at the current virtual time.
    /// The request takes effect when the running process next yields.
    pub(crate) fn wake(&self, pid: ProcessId) {
        self.shared.wakes.lock().push(pid);
    }

    /// Report a named virtual-time span `[since, now]` to the engine's
    /// telemetry probe, if one is attached. Used by higher layers (e.g.
    /// MPI rank programs) to annotate timelines; a no-op otherwise.
    pub fn emit_span(&self, name: &str, since: SimTime) {
        if let Some(p) = &self.shared.probe {
            p.span(name, since.as_ps(), self.now.as_ps(), self.pid);
        }
    }

    fn yield_and_wait(&mut self, msg: YieldMsg) {
        if self.yield_tx.send(msg).is_err() {
            // Scheduler is gone: unwind quietly.
            panic::panic_any(EngineShutdown);
        }
        match self.resume_rx.recv() {
            Ok(Resume { now }) => self.now = now,
            Err(_) => panic::panic_any(EngineShutdown),
        }
    }
}

/// Context handed to a scheduled injection (see
/// [`Engine::schedule_injection`]). Unlike [`ProcCtx`] it cannot consume
/// virtual time: an injection only deposits state (e.g. a message into a
/// [`SimChannel`](crate::channel::SimChannel)) and wakes blocked processes
/// at the injection instant.
pub struct InjectCtx<'a> {
    now: SimTime,
    shared: &'a Shared,
}

impl InjectCtx<'_> {
    /// Virtual time at which the injection runs.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Request that `pid` be made runnable at the injection's virtual
    /// time. Drained by the scheduler right after the injection body.
    pub(crate) fn wake(&self, pid: ProcessId) {
        self.shared.wakes.lock().push(pid);
    }
}

/// Sends one quiesce acknowledgement when the worker's job closure — and
/// with it the process closure's captured state — has been dropped.
/// Declared first inside the job body so it drops last.
struct AckGuard {
    tx: Sender<()>,
}

impl Drop for AckGuard {
    fn drop(&mut self) {
        let _ = self.tx.send(());
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Has an event in the queue.
    Queued,
    /// Currently executing (the scheduler is waiting for its yield).
    Running,
    /// Waiting for a wake-up.
    Blocked,
    Finished,
}

struct ProcEntry {
    name: String,
    resume_tx: Sender<Resume>,
    state: ProcState,
}

/// One recorded scheduler action (see [`Engine::enable_tracing`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the action, picoseconds.
    pub at_ps: u64,
    /// Which process.
    pub pid: ProcessId,
    /// What happened.
    pub kind: TraceKind,
}

/// The kinds of scheduler actions a trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    Resumed,
    Advanced,
    Blocked,
    Finished,
}

/// The simulation engine: owns the event queue and all process threads.
///
/// Typical lifecycle: construct, [`spawn`](Engine::spawn) every process,
/// then [`run`](Engine::run) to completion. Results are communicated out of
/// processes through shared state (`Arc<Mutex<..>>`) captured by the
/// closures.
pub struct Engine {
    procs: Vec<ProcEntry>,
    shared: Arc<Shared>,
    yield_tx: Sender<YieldMsg>,
    yield_rx: Receiver<YieldMsg>,
    /// Min-heap over (time, seq, target).
    queue: BinaryHeap<Reverse<(SimTime, u64, EvTarget)>>,
    seq: u64,
    /// Virtual time of the last processed event; persists across
    /// [`Engine::run_window`] calls.
    now: SimTime,
    ran: bool,
    /// Slab of pending injections, indexed by [`EvTarget::Inject`].
    injections: Vec<Option<Injection>>,
    ack_tx: Sender<()>,
    ack_rx: Receiver<()>,
    quiesced: bool,
    trace: Option<Vec<TraceRecord>>,
    probe: Option<Arc<dyn Probe>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Create an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        // The probe is captured once; the factory resolves
        // per-construction-thread so a parallel sweep can attribute each
        // engine to its own experiment.
        Self::with_probe(crate::probe::probe_for_current_thread())
    }

    /// Like [`Engine::new`] but with an explicit probe, bypassing the
    /// per-thread factory. The partition layer uses this to hand every
    /// wheel a pid-remapping view of one shared experiment probe.
    pub fn with_probe(probe: Option<Arc<dyn Probe>>) -> Self {
        install_quiet_shutdown_hook();
        let (yield_tx, yield_rx) = unbounded();
        let (ack_tx, ack_rx) = unbounded();
        Engine {
            procs: Vec::new(),
            shared: Arc::new(Shared {
                wakes: Mutex::new(Vec::new()),
                probe: probe.clone(),
            }),
            yield_tx,
            yield_rx,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            ran: false,
            injections: Vec::new(),
            ack_tx,
            ack_rx,
            quiesced: false,
            trace: None,
            probe,
        }
    }

    /// Record every scheduler action; retrieve the trace from
    /// [`Engine::run_traced`].
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Number of spawned processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Spawn a simulated process. All processes start at virtual time zero,
    /// in spawn order. Must be called before [`run`](Engine::run).
    pub fn spawn<F>(&mut self, name: impl Into<String>, f: F) -> ProcessId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        assert!(!self.ran, "Engine::spawn called after Engine::run");
        let pid = ProcessId(self.procs.len());
        let (resume_tx, resume_rx) = unbounded::<Resume>();
        let yield_tx = self.yield_tx.clone();
        let shared = Arc::clone(&self.shared);
        let name: String = name.into();
        let ack = AckGuard {
            tx: self.ack_tx.clone(),
        };
        // The process body runs on a pooled worker thread (reused across
        // engines); diagnostics identify processes by `ProcEntry::name`,
        // never by OS thread name, so pooling is invisible to callers.
        crate::pool::run_job(Box::new(move || {
            let _ack = ack; // first in, so it drops after everything else
            // Wait for the first resume before touching anything.
            let Ok(Resume { now }) = resume_rx.recv() else {
                // Never started: `f` is still an unmoved capture of this
                // job closure, and captures drop only after the body's
                // locals — i.e. after `_ack` has already acknowledged.
                // Drop it by hand so the ack really is last.
                drop(f);
                return;
            };
            let mut ctx = ProcCtx {
                pid,
                now,
                shared,
                yield_tx: yield_tx.clone(),
                resume_rx,
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
            match result {
                Ok(()) => {
                    let _ = yield_tx.send(YieldMsg::Finished { pid });
                }
                Err(payload) => {
                    if payload.downcast_ref::<EngineShutdown>().is_some() {
                        // Quiet teardown; the scheduler is already gone
                        // or no longer cares about this process.
                        return;
                    }
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    let _ = yield_tx.send(YieldMsg::Panicked { pid, message });
                }
            }
        }));

        if let Some(p) = &self.probe {
            p.process_spawned(pid, &name);
        }
        self.push_event(SimTime::ZERO, EvTarget::Proc(pid.0));
        self.procs.push(ProcEntry {
            name,
            resume_tx,
            state: ProcState::Queued,
        });
        pid
    }

    /// Schedule `action` to run on the event wheel at virtual time `at`
    /// (offset from time zero) — the injection point for *timed* faults:
    /// the action fires in deterministic `(time, seq)` order with every
    /// other event, so a fault plan replays identically across runs.
    ///
    /// Implemented as a plain process that advances to `at` and runs the
    /// action, so it needs no new scheduler machinery and shows up in
    /// traces/probes like any other process.
    pub fn schedule_fault<F>(&mut self, name: impl Into<String>, at: SimDuration, action: F) -> ProcessId
    where
        F: FnOnce() + Send + 'static,
    {
        self.spawn(name, move |ctx| {
            ctx.advance(at);
            action();
        })
    }

    fn push_event(&mut self, at: SimTime, target: EvTarget) {
        // Injections are not reported to probes: the single-wheel
        // equivalent of a cross-partition delivery is a plain channel send
        // by the running sender, which schedules no event of its own —
        // only the wake-up it triggers is probed, on both paths.
        if let EvTarget::Proc(pid) = target {
            if let Some(p) = &self.probe {
                p.event_scheduled(at.as_ps(), ProcessId(pid));
            }
        }
        self.queue.push(Reverse((at, self.seq, target)));
        self.seq += 1;
    }

    /// Schedule `deliver` to run on the event wheel at virtual time `at`.
    /// The partition layer uses this to deliver cross-partition messages:
    /// the closure runs on the scheduler thread, in deterministic
    /// `(time, seq)` order with every other event, and may wake blocked
    /// processes through [`InjectCtx`] (e.g. via
    /// [`SimChannel::send_injected`](crate::channel::SimChannel::send_injected)).
    ///
    /// # Panics
    /// Panics if `at` lies before the engine's current virtual time:
    /// conservative synchronization must never deliver into the past.
    pub fn schedule_injection<F>(&mut self, at: SimTime, deliver: F)
    where
        F: FnOnce(&InjectCtx<'_>) + Send + 'static,
    {
        assert!(
            at >= self.now,
            "injection scheduled at {at}, before the engine clock {}",
            self.now
        );
        let slot = self.injections.len();
        self.injections.push(Some(Box::new(deliver)));
        self.push_event(at, EvTarget::Inject(slot));
    }

    /// Virtual time of the last processed event ([`SimTime::ZERO`] before
    /// the first).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Virtual time of the earliest pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Names of the processes currently blocked, in spawn order.
    pub fn blocked_processes(&self) -> Vec<String> {
        self.procs
            .iter()
            .filter(|p| p.state == ProcState::Blocked)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Run the simulation to completion.
    ///
    /// Returns the virtual time of the last event on success. Fails with
    /// [`SimError::Deadlock`] if processes remain blocked with no runnable
    /// work, or [`SimError::ProcessPanicked`] if any process panics.
    pub fn run(self) -> Result<SimTime, SimError> {
        self.run_traced().map(|(t, _)| t)
    }

    /// Like [`Engine::run`], also returning the recorded trace (empty
    /// unless [`Engine::enable_tracing`] was called).
    pub fn run_traced(mut self) -> Result<(SimTime, Vec<TraceRecord>), SimError> {
        self.step_until(None)?;
        let blocked = self.blocked_processes();
        if blocked.is_empty() {
            if let Some(p) = &self.probe {
                p.run_complete(self.now.as_ps());
            }
            Ok((self.now, self.trace.take().unwrap_or_default()))
        } else {
            Err(SimError::Deadlock {
                blocked,
                at: self.now,
            })
        }
    }

    /// Process every event with virtual time strictly below `limit`, then
    /// return. Pending events at or past `limit` — and blocked processes —
    /// are left in place for subsequent windows; the partition layer calls
    /// this once per conservative lookahead window, ingesting
    /// cross-partition messages between calls via
    /// [`Engine::schedule_injection`]. Unlike [`Engine::run`] this emits
    /// no `run_complete` and reports no deadlock: end-of-run accounting
    /// belongs to the orchestrator that owns all the wheels.
    pub fn run_window(&mut self, limit: SimTime) -> Result<(), SimError> {
        self.step_until(Some(limit))
    }

    fn step_until(&mut self, limit: Option<SimTime>) -> Result<(), SimError> {
        self.ran = true;
        loop {
            match self.queue.peek() {
                None => return Ok(()),
                Some(Reverse((t, _, _))) => {
                    if limit.is_some_and(|lim| *t >= lim) {
                        return Ok(());
                    }
                }
            }
            let Reverse((t, _seq, target)) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(t >= self.now, "event queue went backwards in time");
            self.now = t;
            match target {
                EvTarget::Inject(slot) => {
                    let deliver = self.injections[slot]
                        .take()
                        .expect("injection event fired twice");
                    deliver(&InjectCtx {
                        now: self.now,
                        shared: &self.shared,
                    });
                }
                EvTarget::Proc(pidx) => self.step_proc(pidx)?,
            }
            self.drain_wakes();
        }
    }

    fn step_proc(&mut self, pidx: usize) -> Result<(), SimError> {
        let now = self.now;
        debug_assert_eq!(
            self.procs[pidx].state,
            ProcState::Queued,
            "popped an event for process '{}' in state {:?}",
            self.procs[pidx].name,
            self.procs[pidx].state
        );
        self.procs[pidx].state = ProcState::Running;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord { at_ps: now.as_ps(), pid: ProcessId(pidx), kind: TraceKind::Resumed });
        }
        if let Some(p) = &self.probe {
            p.event_fired(now.as_ps(), ProcessId(pidx), self.queue.len());
        }
        if self.procs[pidx].resume_tx.send(Resume { now }).is_err() {
            return Err(SimError::ProcessPanicked {
                name: self.procs[pidx].name.clone(),
                message: "process thread exited without yielding".to_string(),
                at: now,
            });
        }
        let msg = self
            .yield_rx
            .recv()
            .expect("yield channel closed while a process was running");
        match msg {
            YieldMsg::Advance { pid, dur } => {
                self.procs[pid.0].state = ProcState::Queued;
                let at = now + dur;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceRecord { at_ps: now.as_ps(), pid, kind: TraceKind::Advanced });
                }
                if let Some(p) = &self.probe {
                    p.advanced(now.as_ps(), pid, dur.as_ps());
                }
                self.push_event(at, EvTarget::Proc(pid.0));
            }
            YieldMsg::Blocked { pid } => {
                self.procs[pid.0].state = ProcState::Blocked;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceRecord { at_ps: now.as_ps(), pid, kind: TraceKind::Blocked });
                }
                if let Some(p) = &self.probe {
                    p.blocked(now.as_ps(), pid);
                }
            }
            YieldMsg::Finished { pid } => {
                self.procs[pid.0].state = ProcState::Finished;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceRecord { at_ps: now.as_ps(), pid, kind: TraceKind::Finished });
                }
                if let Some(p) = &self.probe {
                    p.finished(now.as_ps(), pid);
                }
                // The worker that hosted this process returns itself
                // to the pool; there is no thread to join.
            }
            YieldMsg::Panicked { pid, message } => {
                return Err(SimError::ProcessPanicked {
                    name: self.procs[pid.0].name.clone(),
                    message,
                    at: now,
                });
            }
        }
        Ok(())
    }

    /// Apply wake requests raised while a process ran (or an injection
    /// delivered).
    fn drain_wakes(&mut self) {
        let wakes: Vec<ProcessId> = std::mem::take(&mut *self.shared.wakes.lock());
        for w in wakes {
            if self.procs[w.0].state == ProcState::Blocked {
                self.procs[w.0].state = ProcState::Queued;
                self.push_event(self.now, EvTarget::Proc(w.0));
            }
            // A wake for a Queued/Running/Finished process is spurious
            // (e.g. two senders raced in the same instant); ignore it —
            // the target will re-check its wait condition anyway.
        }
    }

    /// Quiesce every process worker: unwind all still-parked processes and
    /// wait until each worker has dropped its job closure — and with it
    /// the captured state of the process body — before returning.
    /// Idempotent, and invoked by `Drop`, so by the time an engine is gone
    /// no pooled worker still holds references into its world. (The worker
    /// pool had made teardown asynchronous: a pooled worker could still be
    /// unwinding a dead engine's closure while the caller inspected state
    /// those closures captured.)
    ///
    /// Must not be called while a process is executing; between windows
    /// and after a run, every process is parked or finished.
    pub fn quiesce(&mut self) {
        if self.quiesced {
            return;
        }
        self.quiesced = true;
        for p in &mut self.procs {
            // Dropping the real resume sender makes a parked process
            // unwind via the quiet EngineShutdown token.
            let (dead_tx, _) = unbounded::<Resume>();
            p.resume_tx = dead_tx;
        }
        // One acknowledgement per spawned process, sent by its AckGuard
        // when the job closure is dropped (finished processes sent theirs
        // already; the channel buffers them).
        for _ in 0..self.procs.len() {
            let _ = self.ack_rx.recv();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.quiesce();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::SimChannel;
    use parking_lot::Mutex as PlMutex;

    #[test]
    fn empty_engine_completes_at_zero() {
        let eng = Engine::new();
        assert_eq!(eng.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn single_process_advances_clock() {
        let mut eng = Engine::new();
        eng.spawn("p", |ctx| {
            ctx.advance(SimDuration::from_us(5.0));
            ctx.advance(SimDuration::from_us(2.5));
        });
        let end = eng.run().unwrap();
        assert_eq!(end.as_us(), 7.5);
    }

    #[test]
    fn processes_interleave_deterministically() {
        let order = Arc::new(PlMutex::new(Vec::new()));
        let mut eng = Engine::new();
        for (name, step) in [("a", 3.0), ("b", 2.0)] {
            let order = Arc::clone(&order);
            eng.spawn(name, move |ctx| {
                for i in 0..3 {
                    ctx.advance(SimDuration::from_us(step));
                    order.lock().push((name, i, ctx.now().as_us()));
                }
            });
        }
        eng.run().unwrap();
        let got = order.lock().clone();
        // b ticks at 2,4,6; a at 3,6,9. At t=6, a's event was queued first
        // (a advanced from t=3 before b advanced from t=4).
        let expected = vec![
            ("b", 0, 2.0),
            ("a", 0, 3.0),
            ("b", 1, 4.0),
            ("a", 1, 6.0),
            ("b", 2, 6.0),
            ("a", 2, 9.0),
        ];
        assert_eq!(got, expected);
    }

    #[test]
    fn rendezvous_over_channel() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u64>::new("ch");
        let out = Arc::new(PlMutex::new(None));
        {
            let ch = ch.clone();
            eng.spawn("producer", move |ctx| {
                ctx.advance(SimDuration::from_us(10.0));
                ch.send(ctx, 42);
            });
        }
        {
            let out = Arc::clone(&out);
            eng.spawn("consumer", move |ctx| {
                let v = ch.recv(ctx);
                *out.lock() = Some((v, ctx.now().as_us()));
            });
        }
        eng.run().unwrap();
        assert_eq!(*out.lock(), Some((42, 10.0)));
    }

    #[test]
    fn deadlock_is_reported_with_names() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u8>::new("never");
        eng.spawn("stuck", move |ctx| {
            let _ = ch.recv(ctx);
        });
        match eng.run() {
            Err(SimError::Deadlock { blocked, at }) => {
                assert_eq!(blocked, vec!["stuck".to_string()]);
                assert_eq!(at, SimTime::ZERO);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_captured() {
        let mut eng = Engine::new();
        eng.spawn("boom", |_ctx| panic!("kaboom {}", 9));
        match eng.run() {
            Err(SimError::ProcessPanicked { name, message, at }) => {
                assert_eq!(name, "boom");
                assert!(message.contains("kaboom 9"));
                assert_eq!(at, SimTime::ZERO);
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn scheduled_fault_fires_at_its_virtual_time() {
        let fired = Arc::new(PlMutex::new(None::<f64>));
        let mut eng = Engine::new();
        {
            let fired = Arc::clone(&fired);
            let probe = Arc::new(PlMutex::new(0.0f64));
            let probe_w = Arc::clone(&probe);
            eng.spawn("worker", move |ctx| {
                for _ in 0..10 {
                    ctx.advance(SimDuration::from_us(1.0));
                    *probe_w.lock() = ctx.now().as_us();
                }
            });
            eng.schedule_fault("fault", SimDuration::from_us(4.5), move || {
                // Runs strictly between the worker's 4 us and 5 us ticks.
                *fired.lock() = Some(*probe.lock());
            });
        }
        eng.run().unwrap();
        assert_eq!(*fired.lock(), Some(4.0));
    }

    #[test]
    fn many_processes_round_robin() {
        let counter = Arc::new(PlMutex::new(0u64));
        let mut eng = Engine::new();
        for i in 0..64 {
            let counter = Arc::clone(&counter);
            eng.spawn(format!("w{i}"), move |ctx| {
                for _ in 0..10 {
                    ctx.advance(SimDuration::from_ns(100.0));
                    *counter.lock() += 1;
                }
            });
        }
        let end = eng.run().unwrap();
        assert_eq!(*counter.lock(), 640);
        assert_eq!(end.as_ns(), 1000.0);
    }

    #[test]
    fn spawn_after_run_panics() {
        // `run` consumes the engine, so "spawn after run" is prevented by
        // the type system; this test documents the `ran` flag is still a
        // valid internal invariant by exercising the normal path.
        let mut eng = Engine::new();
        eng.spawn("p", |ctx| ctx.advance(SimDuration::from_ns(1.0)));
        assert!(eng.run().is_ok());
    }

    #[test]
    fn dropping_unrun_engine_does_not_hang() {
        let mut eng = Engine::new();
        eng.spawn("never-started", |ctx| ctx.advance(SimDuration::from_us(1.0)));
        drop(eng); // must join cleanly without running
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn trace_records_schedule_in_order() {
        let mut eng = Engine::new();
        eng.enable_tracing();
        eng.spawn("a", |ctx| {
            ctx.advance(SimDuration::from_ns(5.0));
        });
        let (end, trace) = eng.run_traced().unwrap();
        assert_eq!(end.as_ns(), 5.0);
        let kinds: Vec<TraceKind> = trace.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Resumed,
                TraceKind::Advanced,
                TraceKind::Resumed,
                TraceKind::Finished
            ]
        );
        // Times never decrease.
        assert!(trace.windows(2).all(|w| w[0].at_ps <= w[1].at_ps));
    }

    #[test]
    fn tracing_off_returns_empty() {
        let mut eng = Engine::new();
        eng.spawn("a", |ctx| ctx.advance(SimDuration::from_ns(1.0)));
        let (_, trace) = eng.run_traced().unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn trace_shows_blocking_on_channel() {
        use crate::channel::SimChannel;
        let mut eng = Engine::new();
        eng.enable_tracing();
        let ch = SimChannel::<u8>::new("c");
        {
            let ch = ch.clone();
            eng.spawn("rx", move |ctx| {
                let _ = ch.recv(ctx);
            });
        }
        eng.spawn("tx", move |ctx| {
            ctx.advance(SimDuration::from_ns(3.0));
            ch.send(ctx, 1);
        });
        let (_, trace) = eng.run_traced().unwrap();
        assert!(trace
            .iter()
            .any(|r| r.kind == TraceKind::Blocked && r.pid == ProcessId(0)));
    }
}
