//! The conservative process-oriented simulation engine.
//!
//! The scheduler enforces strict one-at-a-time execution: it resumes
//! exactly one process, waits for that process to yield (by advancing
//! time, blocking, or finishing), and only then picks the next event.
//! Events are totally ordered by `(virtual time, sequence number)` in an
//! arena-backed timer wheel ([`crate::wheel`]), so simulations are
//! deterministic regardless of OS thread scheduling.
//!
//! Processes come in two flavours:
//!
//! * **Inline state machines** ([`Engine::spawn_inline`]) — `async` bodies
//!   written against [`SimCtx`] whose only awaited futures are
//!   [`SimCtx::advance`] and the channel/resource waits built on
//!   [`SimCtx::block`]. The scheduler polls them directly on its own
//!   thread: no channel handoff, no park/unpark, no thread pool. This is
//!   the hot path; all MPI rank bodies and scheduled faults use it.
//! * **Pooled threads** ([`Engine::spawn`]) — arbitrary blocking closures
//!   written against [`ProcCtx`], each running on a reusable worker
//!   thread with a rendezvous channel per yield. This path supports code
//!   that cannot enumerate its blocking points (and the fail-soft tests
//!   that rely on real stack unwinding).
//!
//! Both flavours share one event wheel, one wake list, and one
//! trace/probe pipeline; scheduling order — and therefore every golden
//! output — is identical whichever flavour a process uses.

use std::fmt;
use std::future::Future;
use std::panic::{self, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Once};
use std::task::{Context, Poll, Waker};

use crossbeam::channel::{unbounded, Receiver, Sender};

use parking_lot::Mutex;

use crate::probe::{Probe, SchedStats};
use crate::time::{SimDuration, SimTime};
use crate::wheel::EventWheel;

/// Identifier of a simulated process within one [`Engine`].
///
/// Carries the engine's epoch alongside the dense slot index: a stale id
/// that outlives its engine (e.g. parked in a channel waiter list shared
/// with a later world) can never alias a recycled slot of a newer engine
/// (the ABA guard in `drain_wakes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId {
    slot: u32,
    epoch: u32,
}

/// Monotone engine-construction counter backing the [`ProcessId`] ABA
/// guard. Starts at 1 so epoch 0 is reserved for probe-only ids built via
/// [`ProcessId::from_index`].
static ENGINE_EPOCH: AtomicU32 = AtomicU32::new(1);

impl ProcessId {
    /// Dense index of this process within its engine (spawn order).
    pub fn index(&self) -> usize {
        self.slot as usize
    }

    /// A probe-facing id carrying only a dense index (epoch 0, which no
    /// engine ever uses). The partition layer builds these to remap
    /// wheel-local pids onto the global rank space; they are consumed by
    /// probes via [`ProcessId::index`] and must never be fed back into an
    /// engine wake list.
    pub(crate) fn from_index(index: usize) -> ProcessId {
        ProcessId {
            slot: index as u32,
            epoch: 0,
        }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.slot)
    }
}

/// Errors surfaced by [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while some processes were still blocked:
    /// every named process is waiting on a channel or resource that no
    /// runnable process can ever satisfy.
    Deadlock {
        /// Names of the blocked processes.
        blocked: Vec<String>,
        /// Virtual time at which the simulation stalled.
        at: SimTime,
    },
    /// A process panicked; the simulation cannot continue.
    ProcessPanicked {
        /// Name given to [`Engine::spawn`].
        name: String,
        /// Rendered panic payload.
        message: String,
        /// Virtual time at which the process was running when it died.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked, at } => {
                write!(f, "simulation deadlocked at {at}; blocked: {}", blocked.join(", "))
            }
            SimError::ProcessPanicked { name, message, at } => {
                write!(f, "simulated process '{name}' panicked at {at}: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Sent by the scheduler to resume a pooled-thread process at a given
/// virtual time.
struct Resume {
    now: SimTime,
}

/// Sent by a pooled process thread back to the scheduler when it yields.
enum YieldMsg {
    /// The process consumed `dur` of virtual time and wants to continue.
    Advance { pid: ProcessId, dur: SimDuration },
    /// The process is blocked on a channel/resource and must be woken via
    /// [`Shared::wakes`].
    Blocked { pid: ProcessId },
    /// The process closure returned.
    Finished { pid: ProcessId },
    /// The process closure panicked.
    Panicked { pid: ProcessId, message: String },
}

/// How one scheduler step of a process ended — the common currency of the
/// inline and pooled-thread paths, applied by a single epilogue so trace
/// records, probe callbacks, and requeueing are identical for both.
enum Outcome {
    Advanced(SimDuration),
    Blocked,
    Finished,
    Panicked(String),
}

/// Target of a queued event: a process resume, or a scheduled injection
/// (e.g. a cross-partition message delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvTarget {
    Proc(usize),
    Inject(usize),
}

/// A scheduled injection body; runs on the scheduler thread at its
/// virtual time.
type Injection = Box<dyn FnOnce(&InjectCtx<'_>) + Send>;

/// State shared between the scheduler and the (single) running process.
#[derive(Default)]
pub(crate) struct Shared {
    /// Wake requests raised by the running process (e.g. a channel send to a
    /// blocked receiver). Drained by the scheduler every time the running
    /// process yields; because virtual time does not pass while a process
    /// runs, deferring the wake to yield time is exact.
    wakes: Mutex<Vec<ProcessId>>,
    /// Telemetry probe captured at engine construction, reachable from
    /// process bodies for explicit span annotations.
    probe: Option<Arc<dyn Probe>>,
}

/// Private token used to unwind a process thread when the engine shuts down
/// before the process has finished (e.g. after a deadlock or early drop).
struct EngineShutdown;

fn install_quiet_shutdown_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            // Engine-initiated unwinds are part of normal teardown; keep the
            // default hook's output for genuine panics only.
            if info.payload().downcast_ref::<EngineShutdown>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Execution context handed to every pooled-thread simulated process.
///
/// All interaction with virtual time flows through this handle. It is
/// deliberately `!Clone`: a process has exactly one identity on the clock.
pub struct ProcCtx {
    pid: ProcessId,
    now: SimTime,
    shared: Arc<Shared>,
    yield_tx: Sender<YieldMsg>,
    resume_rx: Receiver<Resume>,
}

impl ProcCtx {
    /// Identifier of this process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Consume `dur` of virtual time (e.g. compute, memory traffic, wire
    /// time). Other processes may run in the interim.
    pub fn advance(&mut self, dur: SimDuration) {
        self.yield_and_wait(YieldMsg::Advance { pid: self.pid, dur });
    }

    /// Block until another process wakes this one (used by channels and
    /// resources). Returns at the waker's virtual time.
    pub(crate) fn block(&mut self) {
        self.yield_and_wait(YieldMsg::Blocked { pid: self.pid });
    }

    /// Request that `pid` be made runnable at the current virtual time.
    /// The request takes effect when the running process next yields.
    pub(crate) fn wake(&self, pid: ProcessId) {
        self.shared.wakes.lock().push(pid);
    }

    /// Report a named virtual-time span `[since, now]` to the engine's
    /// telemetry probe, if one is attached. Used by higher layers (e.g.
    /// MPI rank programs) to annotate timelines; a no-op otherwise.
    pub fn emit_span(&self, name: &str, since: SimTime) {
        if let Some(p) = &self.shared.probe {
            p.span(name, since.as_ps(), self.now.as_ps(), self.pid);
        }
    }

    fn yield_and_wait(&mut self, msg: YieldMsg) {
        if self.yield_tx.send(msg).is_err() {
            // Scheduler is gone: unwind quietly.
            panic::panic_any(EngineShutdown);
        }
        match self.resume_rx.recv() {
            Ok(Resume { now }) => self.now = now,
            Err(_) => panic::panic_any(EngineShutdown),
        }
    }
}

/// What the currently polled inline process asked the scheduler to do.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// Returned `Poll::Pending` without touching a simulation future —
    /// i.e. it awaited something the scheduler cannot drive.
    None,
    Advance(SimDuration),
    Block,
}

/// Per-scheduler-thread scratch cell connecting an inline process being
/// polled to its engine. Written by the scheduler immediately before each
/// poll and read back immediately after, so nesting engines on one thread
/// (or many engines on many threads) cannot interleave.
#[derive(Clone, Copy)]
struct InlineScratch {
    now_ps: u64,
    pending: Pending,
}

thread_local! {
    static SCRATCH: std::cell::Cell<InlineScratch> =
        const { std::cell::Cell::new(InlineScratch { now_ps: 0, pending: Pending::None }) };
}

/// Leaf future of [`SimCtx::advance`]: first poll files the advance with
/// the scheduler and parks; the resumed second poll completes.
#[must_use = "simulation futures do nothing unless awaited"]
pub struct AdvanceFut {
    dur: SimDuration,
    armed: bool,
}

impl Future for AdvanceFut {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.armed {
            return Poll::Ready(());
        }
        this.armed = true;
        SCRATCH.with(|s| {
            let mut v = s.get();
            v.pending = Pending::Advance(this.dur);
            s.set(v);
        });
        Poll::Pending
    }
}

/// Leaf future of [`SimCtx::block`]: parks until another process (or an
/// injection) wakes this pid.
#[must_use = "simulation futures do nothing unless awaited"]
pub struct BlockFut {
    armed: bool,
}

impl Future for BlockFut {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.armed {
            return Poll::Ready(());
        }
        this.armed = true;
        SCRATCH.with(|s| {
            let mut v = s.get();
            v.pending = Pending::Block;
            s.set(v);
        });
        Poll::Pending
    }
}

/// Execution context handed to inline (state-machine) simulated processes
/// — the `async` counterpart of [`ProcCtx`].
///
/// Cloneable so rank programs can stash it in helper structs; all clones
/// share the process identity. The only futures an inline body may await
/// are the ones minted here (and combinators that poll them one at a
/// time, sequentially): the scheduler polls with a no-op waker and reads
/// the requested transition out of thread-local scratch, so awaiting any
/// foreign future is reported as a process error, not silently dropped.
#[derive(Clone)]
pub struct SimCtx {
    pid: ProcessId,
    shared: Arc<Shared>,
}

impl SimCtx {
    /// Identifier of this process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time. Only meaningful while the process is being
    /// polled (which is the only time inline process code runs).
    pub fn now(&self) -> SimTime {
        SimTime(SCRATCH.with(|s| s.get()).now_ps)
    }

    /// Consume `dur` of virtual time. Other processes may run in the
    /// interim. `advance(ZERO)` still yields to the scheduler once.
    pub fn advance(&self, dur: SimDuration) -> AdvanceFut {
        AdvanceFut { dur, armed: false }
    }

    /// Park until another process wakes this one (used by channels and
    /// resources). Returns at the waker's virtual time.
    pub(crate) fn block(&self) -> BlockFut {
        BlockFut { armed: false }
    }

    /// Request that `pid` be made runnable at the current virtual time.
    /// The request takes effect when the running process next yields.
    pub(crate) fn wake(&self, pid: ProcessId) {
        self.shared.wakes.lock().push(pid);
    }

    /// Report a named virtual-time span `[since, now]` to the engine's
    /// telemetry probe, if one is attached.
    pub fn emit_span(&self, name: &str, since: SimTime) {
        if let Some(p) = &self.shared.probe {
            p.span(name, since.as_ps(), self.now().as_ps(), self.pid);
        }
    }
}

/// Context handed to a scheduled injection (see
/// [`Engine::schedule_injection`]). Unlike [`ProcCtx`] it cannot consume
/// virtual time: an injection only deposits state (e.g. a message into a
/// [`SimChannel`](crate::channel::SimChannel)) and wakes blocked processes
/// at the injection instant.
pub struct InjectCtx<'a> {
    now: SimTime,
    shared: &'a Shared,
}

impl InjectCtx<'_> {
    /// Virtual time at which the injection runs.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Request that `pid` be made runnable at the injection's virtual
    /// time. Drained by the scheduler right after the injection body.
    pub(crate) fn wake(&self, pid: ProcessId) {
        self.shared.wakes.lock().push(pid);
    }
}

/// Sends one quiesce acknowledgement when the worker's job closure — and
/// with it the process closure's captured state — has been dropped.
/// Declared first inside the job body so it drops last.
struct AckGuard {
    tx: Sender<()>,
}

impl Drop for AckGuard {
    fn drop(&mut self) {
        let _ = self.tx.send(());
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Has an event in the queue.
    Queued,
    /// Currently executing (inline poll or pooled-thread rendezvous).
    Running,
    /// Waiting for a wake-up.
    Blocked,
    Finished,
}

/// The execution vehicle of one process slot.
enum ProcBody {
    /// Inline state machine, polled on the scheduler thread. `None` once
    /// finished (or quiesced) — the future and its captures are dropped.
    Inline {
        fut: Option<Pin<Box<dyn Future<Output = ()> + Send>>>,
    },
    /// Pooled worker thread, driven through a rendezvous channel pair.
    Threaded { resume_tx: Sender<Resume> },
}

struct ProcEntry {
    name: String,
    state: ProcState,
    body: ProcBody,
}

/// One recorded scheduler action (see [`Engine::enable_tracing`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the action, picoseconds.
    pub at_ps: u64,
    /// Which process.
    pub pid: ProcessId,
    /// What happened.
    pub kind: TraceKind,
}

/// The kinds of scheduler actions a trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    Resumed,
    Advanced,
    Blocked,
    Finished,
}

/// The simulation engine: owns the event wheel and all process slots.
///
/// Typical lifecycle: construct, [`spawn_inline`](Engine::spawn_inline) /
/// [`spawn`](Engine::spawn) every process, then [`run`](Engine::run) to
/// completion. Results are communicated out of processes through shared
/// state (`Arc<Mutex<..>>`) captured by the bodies.
pub struct Engine {
    /// This engine's slot in the process-global epoch sequence; baked into
    /// every [`ProcessId`] it mints.
    epoch: u32,
    procs: Vec<ProcEntry>,
    shared: Arc<Shared>,
    yield_tx: Sender<YieldMsg>,
    yield_rx: Receiver<YieldMsg>,
    /// Arena-backed timer wheel over (time, seq, target).
    queue: EventWheel<EvTarget>,
    /// Virtual time of the last processed event; persists across
    /// [`Engine::run_window`] calls.
    now: SimTime,
    ran: bool,
    /// Slab of pending injections, indexed by [`EvTarget::Inject`].
    injections: Vec<Option<Injection>>,
    ack_tx: Sender<()>,
    ack_rx: Receiver<()>,
    /// How many pooled-thread processes were spawned (each owes one
    /// quiesce acknowledgement; inline processes have no thread to drain).
    spawned_threaded: usize,
    quiesced: bool,
    trace: Option<Vec<TraceRecord>>,
    probe: Option<Arc<dyn Probe>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Create an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        // The probe is captured once; the factory resolves
        // per-construction-thread so a parallel sweep can attribute each
        // engine to its own experiment.
        Self::with_probe(crate::probe::probe_for_current_thread())
    }

    /// Like [`Engine::new`] but with an explicit probe, bypassing the
    /// per-thread factory. The partition layer uses this to hand every
    /// wheel a pid-remapping view of one shared experiment probe.
    pub fn with_probe(probe: Option<Arc<dyn Probe>>) -> Self {
        install_quiet_shutdown_hook();
        let (yield_tx, yield_rx) = unbounded();
        let (ack_tx, ack_rx) = unbounded();
        Engine {
            epoch: ENGINE_EPOCH.fetch_add(1, Ordering::Relaxed),
            procs: Vec::new(),
            shared: Arc::new(Shared {
                wakes: Mutex::new(Vec::new()),
                probe: probe.clone(),
            }),
            yield_tx,
            yield_rx,
            queue: EventWheel::new(),
            now: SimTime::ZERO,
            ran: false,
            injections: Vec::new(),
            ack_tx,
            ack_rx,
            spawned_threaded: 0,
            quiesced: false,
            trace: None,
            probe,
        }
    }

    /// Record every scheduler action; retrieve the trace from
    /// [`Engine::run_traced`].
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Number of spawned processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    fn pid_of(&self, pidx: usize) -> ProcessId {
        ProcessId {
            slot: pidx as u32,
            epoch: self.epoch,
        }
    }

    /// Spawn an inline simulated process from an `async` body: the hot
    /// path. The body runs as a poll-state machine directly on the
    /// scheduler thread — no worker thread, no channel handoff — and may
    /// only await simulation futures minted by its [`SimCtx`] (channel
    /// and resource waits included). All processes start at virtual time
    /// zero, in spawn order; scheduling order is identical to an
    /// equivalent [`Engine::spawn`] process.
    pub fn spawn_inline<F, Fut>(&mut self, name: impl Into<String>, f: F) -> ProcessId
    where
        F: FnOnce(SimCtx) -> Fut,
        Fut: Future<Output = ()> + Send + 'static,
    {
        assert!(!self.ran, "Engine::spawn_inline called after Engine::run");
        let pid = self.pid_of(self.procs.len());
        let ctx = SimCtx {
            pid,
            shared: Arc::clone(&self.shared),
        };
        // `f` runs now (it only builds the future); the body itself runs
        // at the first poll, i.e. at virtual time zero.
        let fut: Pin<Box<dyn Future<Output = ()> + Send>> = Box::pin(f(ctx));
        let name: String = name.into();
        if let Some(p) = &self.probe {
            p.process_spawned(pid, &name);
        }
        self.push_event(SimTime::ZERO, EvTarget::Proc(pid.index()));
        self.procs.push(ProcEntry {
            name,
            state: ProcState::Queued,
            body: ProcBody::Inline { fut: Some(fut) },
        });
        pid
    }

    /// Spawn a pooled-thread simulated process: the fallback path for
    /// arbitrary blocking bodies. All processes start at virtual time
    /// zero, in spawn order. Must be called before [`run`](Engine::run).
    pub fn spawn<F>(&mut self, name: impl Into<String>, f: F) -> ProcessId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        assert!(!self.ran, "Engine::spawn called after Engine::run");
        let pid = self.pid_of(self.procs.len());
        let (resume_tx, resume_rx) = unbounded::<Resume>();
        let yield_tx = self.yield_tx.clone();
        let shared = Arc::clone(&self.shared);
        let name: String = name.into();
        let ack = AckGuard {
            tx: self.ack_tx.clone(),
        };
        self.spawned_threaded += 1;
        // The process body runs on a pooled worker thread (reused across
        // engines); diagnostics identify processes by `ProcEntry::name`,
        // never by OS thread name, so pooling is invisible to callers.
        crate::pool::run_job(Box::new(move || {
            let _ack = ack; // first in, so it drops after everything else
            // Wait for the first resume before touching anything.
            let Ok(Resume { now }) = resume_rx.recv() else {
                // Never started: `f` is still an unmoved capture of this
                // job closure, and captures drop only after the body's
                // locals — i.e. after `_ack` has already acknowledged.
                // Drop it by hand so the ack really is last.
                drop(f);
                return;
            };
            let mut ctx = ProcCtx {
                pid,
                now,
                shared,
                yield_tx: yield_tx.clone(),
                resume_rx,
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
            match result {
                Ok(()) => {
                    let _ = yield_tx.send(YieldMsg::Finished { pid });
                }
                Err(payload) => {
                    if payload.downcast_ref::<EngineShutdown>().is_some() {
                        // Quiet teardown; the scheduler is already gone
                        // or no longer cares about this process.
                        return;
                    }
                    let _ = yield_tx.send(YieldMsg::Panicked {
                        pid,
                        message: render_panic(payload),
                    });
                }
            }
        }));

        if let Some(p) = &self.probe {
            p.process_spawned(pid, &name);
        }
        self.push_event(SimTime::ZERO, EvTarget::Proc(pid.index()));
        self.procs.push(ProcEntry {
            name,
            state: ProcState::Queued,
            body: ProcBody::Threaded { resume_tx },
        });
        pid
    }

    /// Schedule `action` to run on the event wheel at virtual time `at`
    /// (offset from time zero) — the injection point for *timed* faults:
    /// the action fires in deterministic `(time, seq)` order with every
    /// other event, so a fault plan replays identically across runs.
    ///
    /// Implemented as a plain inline process that advances to `at` and
    /// runs the action, so it needs no new scheduler machinery and shows
    /// up in traces/probes like any other process.
    pub fn schedule_fault<F>(&mut self, name: impl Into<String>, at: SimDuration, action: F) -> ProcessId
    where
        F: FnOnce() + Send + 'static,
    {
        self.spawn_inline(name, move |ctx| async move {
            ctx.advance(at).await;
            action();
        })
    }

    fn push_event(&mut self, at: SimTime, target: EvTarget) {
        // Injections are not reported to probes: the single-wheel
        // equivalent of a cross-partition delivery is a plain channel send
        // by the running sender, which schedules no event of its own —
        // only the wake-up it triggers is probed, on both paths.
        if let EvTarget::Proc(pidx) = target {
            if let Some(p) = &self.probe {
                p.event_scheduled(at.as_ps(), self.pid_of(pidx));
            }
        }
        self.queue.push(at.as_ps(), target);
    }

    /// Schedule `deliver` to run on the event wheel at virtual time `at`.
    /// The partition layer uses this to deliver cross-partition messages:
    /// the closure runs on the scheduler thread, in deterministic
    /// `(time, seq)` order with every other event, and may wake blocked
    /// processes through [`InjectCtx`] (e.g. via
    /// [`SimChannel::send_injected`](crate::channel::SimChannel::send_injected)).
    ///
    /// # Panics
    /// Panics if `at` lies before the engine's current virtual time:
    /// conservative synchronization must never deliver into the past.
    pub fn schedule_injection<F>(&mut self, at: SimTime, deliver: F)
    where
        F: FnOnce(&InjectCtx<'_>) + Send + 'static,
    {
        assert!(
            at >= self.now,
            "injection scheduled at {at}, before the engine clock {}",
            self.now
        );
        let slot = self.injections.len();
        self.injections.push(Some(Box::new(deliver)));
        self.push_event(at, EvTarget::Inject(slot));
    }

    /// Virtual time of the last processed event ([`SimTime::ZERO`] before
    /// the first).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Virtual time of the earliest pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time().map(SimTime)
    }

    /// Names of the processes currently blocked, in spawn order.
    pub fn blocked_processes(&self) -> Vec<String> {
        self.procs
            .iter()
            .filter(|p| p.state == ProcState::Blocked)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Scheduler counters for the `sched.*` telemetry bucket: event-wheel
    /// traffic plus the inline/threaded process split.
    pub fn sched_stats(&self) -> SchedStats {
        let w = self.queue.stats();
        SchedStats {
            events_pushed: w.pushed,
            events_popped: w.popped,
            wheel_level_pushes: w.level_pushes,
            procs_inline: (self.procs.len() - self.spawned_threaded) as u64,
            procs_threaded: self.spawned_threaded as u64,
        }
    }

    /// Run the simulation to completion.
    ///
    /// Returns the virtual time of the last event on success. Fails with
    /// [`SimError::Deadlock`] if processes remain blocked with no runnable
    /// work, or [`SimError::ProcessPanicked`] if any process panics.
    pub fn run(self) -> Result<SimTime, SimError> {
        self.run_traced().map(|(t, _)| t)
    }

    /// Like [`Engine::run`], also returning the recorded trace (empty
    /// unless [`Engine::enable_tracing`] was called).
    pub fn run_traced(mut self) -> Result<(SimTime, Vec<TraceRecord>), SimError> {
        self.step_until(None)?;
        let blocked = self.blocked_processes();
        if blocked.is_empty() {
            if let Some(p) = &self.probe {
                p.sched_stats(&self.sched_stats());
                p.run_complete(self.now.as_ps());
            }
            Ok((self.now, self.trace.take().unwrap_or_default()))
        } else {
            Err(SimError::Deadlock {
                blocked,
                at: self.now,
            })
        }
    }

    /// Process every event with virtual time strictly below `limit`, then
    /// return. Pending events at or past `limit` — and blocked processes —
    /// are left in place for subsequent windows; the partition layer calls
    /// this once per conservative lookahead window, ingesting
    /// cross-partition messages between calls via
    /// [`Engine::schedule_injection`]. Unlike [`Engine::run`] this emits
    /// no `run_complete` and reports no deadlock: end-of-run accounting
    /// belongs to the orchestrator that owns all the wheels.
    pub fn run_window(&mut self, limit: SimTime) -> Result<(), SimError> {
        self.step_until(Some(limit))
    }

    fn step_until(&mut self, limit: Option<SimTime>) -> Result<(), SimError> {
        self.ran = true;
        loop {
            match self.queue.peek_time() {
                None => return Ok(()),
                Some(t) => {
                    if limit.is_some_and(|lim| t >= lim.as_ps()) {
                        return Ok(());
                    }
                }
            }
            let (t_ps, target) = self.queue.pop().expect("peeked event vanished");
            let t = SimTime(t_ps);
            debug_assert!(t >= self.now, "event queue went backwards in time");
            self.now = t;
            match target {
                EvTarget::Inject(slot) => {
                    let deliver = self.injections[slot]
                        .take()
                        .expect("injection event fired twice");
                    deliver(&InjectCtx {
                        now: self.now,
                        shared: &self.shared,
                    });
                }
                EvTarget::Proc(pidx) => self.step_proc(pidx)?,
            }
            self.drain_wakes();
        }
    }

    fn step_proc(&mut self, pidx: usize) -> Result<(), SimError> {
        let now = self.now;
        debug_assert_eq!(
            self.procs[pidx].state,
            ProcState::Queued,
            "popped an event for process '{}' in state {:?}",
            self.procs[pidx].name,
            self.procs[pidx].state
        );
        self.procs[pidx].state = ProcState::Running;
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord { at_ps: now.as_ps(), pid: ProcessId { slot: pidx as u32, epoch: self.epoch }, kind: TraceKind::Resumed });
        }
        if let Some(p) = &self.probe {
            p.event_fired(now.as_ps(), self.pid_of(pidx), self.queue.len());
        }
        let outcome = match self.procs[pidx].body {
            ProcBody::Inline { .. } => self.poll_inline(pidx, now),
            ProcBody::Threaded { .. } => self.step_threaded(pidx, now),
        };
        self.apply_outcome(pidx, now, outcome)
    }

    /// Drive one step of an inline process: poll its state machine on this
    /// thread and read the requested transition out of the scratch cell.
    fn poll_inline(&mut self, pidx: usize, now: SimTime) -> Outcome {
        let ProcBody::Inline { fut } = &mut self.procs[pidx].body else {
            unreachable!("poll_inline on a threaded process");
        };
        let mut fut = fut.take().expect("inline process resumed after it finished");
        SCRATCH.with(|s| {
            s.set(InlineScratch {
                now_ps: now.as_ps(),
                pending: Pending::None,
            })
        });
        let mut cx = Context::from_waker(Waker::noop());
        let polled = panic::catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match polled {
            Ok(Poll::Ready(())) => Outcome::Finished, // future (and captures) drop here
            Ok(Poll::Pending) => {
                let pending = SCRATCH.with(|s| s.get()).pending;
                let ProcBody::Inline { fut: slot } = &mut self.procs[pidx].body else {
                    unreachable!();
                };
                *slot = Some(fut);
                match pending {
                    Pending::Advance(dur) => Outcome::Advanced(dur),
                    Pending::Block => Outcome::Blocked,
                    Pending::None => Outcome::Panicked(
                        "inline process awaited a non-simulation future".to_string(),
                    ),
                }
            }
            Err(payload) => Outcome::Panicked(render_panic(payload)),
        }
    }

    /// Drive one step of a pooled-thread process: rendezvous over the
    /// resume/yield channel pair.
    fn step_threaded(&mut self, pidx: usize, now: SimTime) -> Outcome {
        let ProcBody::Threaded { resume_tx } = &self.procs[pidx].body else {
            unreachable!("step_threaded on an inline process");
        };
        if resume_tx.send(Resume { now }).is_err() {
            return Outcome::Panicked("process thread exited without yielding".to_string());
        }
        let msg = self
            .yield_rx
            .recv()
            .expect("yield channel closed while a process was running");
        match msg {
            YieldMsg::Advance { pid, dur } => {
                debug_assert_eq!(pid.index(), pidx);
                Outcome::Advanced(dur)
            }
            YieldMsg::Blocked { pid } => {
                debug_assert_eq!(pid.index(), pidx);
                Outcome::Blocked
            }
            YieldMsg::Finished { pid } => {
                debug_assert_eq!(pid.index(), pidx);
                // The worker that hosted this process returns itself
                // to the pool; there is no thread to join.
                Outcome::Finished
            }
            YieldMsg::Panicked { pid, message } => {
                debug_assert_eq!(pid.index(), pidx);
                Outcome::Panicked(message)
            }
        }
    }

    /// The shared epilogue of both execution paths: record the trace,
    /// notify the probe, and requeue/park/retire the process — in exactly
    /// the order the pre-wheel engine used, so goldens are byte-identical.
    fn apply_outcome(&mut self, pidx: usize, now: SimTime, outcome: Outcome) -> Result<(), SimError> {
        let pid = self.pid_of(pidx);
        match outcome {
            Outcome::Advanced(dur) => {
                self.procs[pidx].state = ProcState::Queued;
                let at = now + dur;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceRecord { at_ps: now.as_ps(), pid, kind: TraceKind::Advanced });
                }
                if let Some(p) = &self.probe {
                    p.advanced(now.as_ps(), pid, dur.as_ps());
                }
                self.push_event(at, EvTarget::Proc(pidx));
            }
            Outcome::Blocked => {
                self.procs[pidx].state = ProcState::Blocked;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceRecord { at_ps: now.as_ps(), pid, kind: TraceKind::Blocked });
                }
                if let Some(p) = &self.probe {
                    p.blocked(now.as_ps(), pid);
                }
            }
            Outcome::Finished => {
                self.procs[pidx].state = ProcState::Finished;
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceRecord { at_ps: now.as_ps(), pid, kind: TraceKind::Finished });
                }
                if let Some(p) = &self.probe {
                    p.finished(now.as_ps(), pid);
                }
            }
            Outcome::Panicked(message) => {
                return Err(SimError::ProcessPanicked {
                    name: self.procs[pidx].name.clone(),
                    message,
                    at: now,
                });
            }
        }
        Ok(())
    }

    /// Apply wake requests raised while a process ran (or an injection
    /// delivered).
    fn drain_wakes(&mut self) {
        let wakes: Vec<ProcessId> = std::mem::take(&mut *self.shared.wakes.lock());
        for w in wakes {
            if w.epoch != self.epoch {
                // ABA guard: a stale pid from a different (typically dead)
                // engine, e.g. parked in a channel waiter list that
                // outlived its world. Its slot index may alias one of our
                // processes; the epoch proves it is not ours.
                continue;
            }
            let widx = w.index();
            if self.procs[widx].state == ProcState::Blocked {
                self.procs[widx].state = ProcState::Queued;
                self.push_event(self.now, EvTarget::Proc(widx));
            }
            // A wake for a Queued/Running/Finished process is spurious
            // (e.g. two senders raced in the same instant); ignore it —
            // the target will re-check its wait condition anyway.
        }
    }

    /// Quiesce every process: drop inline state machines, unwind all
    /// still-parked pooled threads, and wait until each worker has dropped
    /// its job closure — and with it the captured state of the process
    /// body — before returning. Idempotent, and invoked by `Drop`, so by
    /// the time an engine is gone no pooled worker still holds references
    /// into its world. (The worker pool had made teardown asynchronous: a
    /// pooled worker could still be unwinding a dead engine's closure
    /// while the caller inspected state those closures captured.)
    ///
    /// Must not be called while a process is executing; between windows
    /// and after a run, every process is parked or finished.
    pub fn quiesce(&mut self) {
        if self.quiesced {
            return;
        }
        self.quiesced = true;
        for p in &mut self.procs {
            match &mut p.body {
                ProcBody::Inline { fut } => {
                    // Dropping the state machine drops its captures
                    // synchronously, right here on the caller's thread.
                    *fut = None;
                }
                ProcBody::Threaded { resume_tx } => {
                    // Dropping the real resume sender makes a parked
                    // process unwind via the quiet EngineShutdown token.
                    let (dead_tx, _) = unbounded::<Resume>();
                    *resume_tx = dead_tx;
                }
            }
        }
        // One acknowledgement per pooled-thread process, sent by its
        // AckGuard when the job closure is dropped (finished processes
        // sent theirs already; the channel buffers them).
        for _ in 0..self.spawned_threaded {
            let _ = self.ack_rx.recv();
        }
    }
}

fn render_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.quiesce();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::SimChannel;
    use parking_lot::Mutex as PlMutex;

    #[test]
    fn empty_engine_completes_at_zero() {
        let eng = Engine::new();
        assert_eq!(eng.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn single_process_advances_clock() {
        let mut eng = Engine::new();
        eng.spawn("p", |ctx| {
            ctx.advance(SimDuration::from_us(5.0));
            ctx.advance(SimDuration::from_us(2.5));
        });
        let end = eng.run().unwrap();
        assert_eq!(end.as_us(), 7.5);
    }

    #[test]
    fn single_inline_process_advances_clock() {
        let mut eng = Engine::new();
        eng.spawn_inline("p", |ctx| async move {
            ctx.advance(SimDuration::from_us(5.0)).await;
            ctx.advance(SimDuration::from_us(2.5)).await;
            assert_eq!(ctx.now().as_us(), 7.5);
        });
        let end = eng.run().unwrap();
        assert_eq!(end.as_us(), 7.5);
    }

    #[test]
    fn processes_interleave_deterministically() {
        let order = Arc::new(PlMutex::new(Vec::new()));
        let mut eng = Engine::new();
        for (name, step) in [("a", 3.0), ("b", 2.0)] {
            let order = Arc::clone(&order);
            eng.spawn(name, move |ctx| {
                for i in 0..3 {
                    ctx.advance(SimDuration::from_us(step));
                    order.lock().push((name, i, ctx.now().as_us()));
                }
            });
        }
        eng.run().unwrap();
        let got = order.lock().clone();
        // b ticks at 2,4,6; a at 3,6,9. At t=6, a's event was queued first
        // (a advanced from t=3 before b advanced from t=4).
        let expected = vec![
            ("b", 0, 2.0),
            ("a", 0, 3.0),
            ("b", 1, 4.0),
            ("a", 1, 6.0),
            ("b", 2, 6.0),
            ("a", 2, 9.0),
        ];
        assert_eq!(got, expected);
    }

    #[test]
    fn inline_processes_interleave_identically_to_threaded() {
        // The same two-process schedule as above, run once on the inline
        // path and once mixed (one inline, one threaded): the observable
        // order must be identical in all three configurations.
        let expected = vec![
            ("b", 0, 2.0),
            ("a", 0, 3.0),
            ("b", 1, 4.0),
            ("a", 1, 6.0),
            ("b", 2, 6.0),
            ("a", 2, 9.0),
        ];
        for threaded_mask in [0b00usize, 0b01, 0b10] {
            let order = Arc::new(PlMutex::new(Vec::new()));
            let mut eng = Engine::new();
            for (bit, (name, step)) in [("a", 3.0), ("b", 2.0)].into_iter().enumerate() {
                let order = Arc::clone(&order);
                if threaded_mask & (1 << bit) != 0 {
                    eng.spawn(name, move |ctx| {
                        for i in 0..3 {
                            ctx.advance(SimDuration::from_us(step));
                            order.lock().push((name, i, ctx.now().as_us()));
                        }
                    });
                } else {
                    eng.spawn_inline(name, move |ctx| async move {
                        for i in 0..3 {
                            ctx.advance(SimDuration::from_us(step)).await;
                            order.lock().push((name, i, ctx.now().as_us()));
                        }
                    });
                }
            }
            eng.run().unwrap();
            assert_eq!(*order.lock(), expected, "mask {threaded_mask:#04b}");
        }
    }

    #[test]
    fn rendezvous_over_channel() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u64>::new("ch");
        let out = Arc::new(PlMutex::new(None));
        {
            let ch = ch.clone();
            eng.spawn("producer", move |ctx| {
                ctx.advance(SimDuration::from_us(10.0));
                ch.send(ctx, 42);
            });
        }
        {
            let out = Arc::clone(&out);
            eng.spawn("consumer", move |ctx| {
                let v = ch.recv(ctx);
                *out.lock() = Some((v, ctx.now().as_us()));
            });
        }
        eng.run().unwrap();
        assert_eq!(*out.lock(), Some((42, 10.0)));
    }

    #[test]
    fn inline_rendezvous_over_channel() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u64>::new("ch");
        let out = Arc::new(PlMutex::new(None));
        {
            let ch = ch.clone();
            eng.spawn_inline("producer", move |ctx| async move {
                ctx.advance(SimDuration::from_us(10.0)).await;
                ch.send_inline(&ctx, 42);
            });
        }
        {
            let out = Arc::clone(&out);
            eng.spawn_inline("consumer", move |ctx| async move {
                let v = ch.recv_inline(&ctx).await;
                *out.lock() = Some((v, ctx.now().as_us()));
            });
        }
        eng.run().unwrap();
        assert_eq!(*out.lock(), Some((42, 10.0)));
    }

    #[test]
    fn deadlock_is_reported_with_names() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u8>::new("never");
        eng.spawn("stuck", move |ctx| {
            let _ = ch.recv(ctx);
        });
        match eng.run() {
            Err(SimError::Deadlock { blocked, at }) => {
                assert_eq!(blocked, vec!["stuck".to_string()]);
                assert_eq!(at, SimTime::ZERO);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn inline_deadlock_is_reported_with_names() {
        let mut eng = Engine::new();
        let ch = SimChannel::<u8>::new("never");
        eng.spawn_inline("stuck", move |ctx| async move {
            let _ = ch.recv_inline(&ctx).await;
        });
        match eng.run() {
            Err(SimError::Deadlock { blocked, at }) => {
                assert_eq!(blocked, vec!["stuck".to_string()]);
                assert_eq!(at, SimTime::ZERO);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_captured() {
        let mut eng = Engine::new();
        eng.spawn("boom", |_ctx| panic!("kaboom {}", 9));
        match eng.run() {
            Err(SimError::ProcessPanicked { name, message, at }) => {
                assert_eq!(name, "boom");
                assert!(message.contains("kaboom 9"));
                assert_eq!(at, SimTime::ZERO);
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn inline_process_panic_is_captured() {
        let mut eng = Engine::new();
        eng.spawn_inline("boom", |ctx| async move {
            ctx.advance(SimDuration::from_us(1.0)).await;
            panic!("kaboom {}", 9);
        });
        match eng.run() {
            Err(SimError::ProcessPanicked { name, message, at }) => {
                assert_eq!(name, "boom");
                assert!(message.contains("kaboom 9"));
                assert_eq!(at.as_us(), 1.0);
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn inline_foreign_future_is_reported_not_hung() {
        /// A future the scheduler cannot drive: pends without filing a
        /// simulation transition.
        struct Foreign;
        impl Future for Foreign {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let mut eng = Engine::new();
        eng.spawn_inline("alien", |_ctx| async move {
            Foreign.await;
            unreachable!("the scheduler cannot complete a foreign future");
        });
        match eng.run() {
            Err(SimError::ProcessPanicked { name, message, .. }) => {
                assert_eq!(name, "alien");
                assert!(message.contains("non-simulation future"), "{message}");
            }
            other => panic!("expected process error, got {other:?}"),
        }
    }

    #[test]
    fn scheduled_fault_fires_at_its_virtual_time() {
        let fired = Arc::new(PlMutex::new(None::<f64>));
        let mut eng = Engine::new();
        {
            let fired = Arc::clone(&fired);
            let probe = Arc::new(PlMutex::new(0.0f64));
            let probe_w = Arc::clone(&probe);
            eng.spawn("worker", move |ctx| {
                for _ in 0..10 {
                    ctx.advance(SimDuration::from_us(1.0));
                    *probe_w.lock() = ctx.now().as_us();
                }
            });
            eng.schedule_fault("fault", SimDuration::from_us(4.5), move || {
                // Runs strictly between the worker's 4 us and 5 us ticks.
                *fired.lock() = Some(*probe.lock());
            });
        }
        eng.run().unwrap();
        assert_eq!(*fired.lock(), Some(4.0));
    }

    #[test]
    fn many_processes_round_robin() {
        let counter = Arc::new(PlMutex::new(0u64));
        let mut eng = Engine::new();
        for i in 0..64 {
            let counter = Arc::clone(&counter);
            eng.spawn(format!("w{i}"), move |ctx| {
                for _ in 0..10 {
                    ctx.advance(SimDuration::from_ns(100.0));
                    *counter.lock() += 1;
                }
            });
        }
        let end = eng.run().unwrap();
        assert_eq!(*counter.lock(), 640);
        assert_eq!(end.as_ns(), 1000.0);
    }

    #[test]
    fn many_inline_processes_round_robin() {
        let counter = Arc::new(PlMutex::new(0u64));
        let mut eng = Engine::new();
        for i in 0..64 {
            let counter = Arc::clone(&counter);
            eng.spawn_inline(format!("w{i}"), move |ctx| async move {
                for _ in 0..10 {
                    ctx.advance(SimDuration::from_ns(100.0)).await;
                    *counter.lock() += 1;
                }
            });
        }
        let end = eng.run().unwrap();
        assert_eq!(*counter.lock(), 640);
        assert_eq!(end.as_ns(), 1000.0);
    }

    #[test]
    fn inline_zero_advance_still_yields() {
        // advance(ZERO) must park and requeue at the same instant (later
        // seq), not spin inside one poll: a same-time neighbour runs in
        // between.
        let order = Arc::new(PlMutex::new(Vec::new()));
        let mut eng = Engine::new();
        for name in ["a", "b"] {
            let order = Arc::clone(&order);
            eng.spawn_inline(name, move |ctx| async move {
                order.lock().push((name, 0));
                ctx.advance(SimDuration::ZERO).await;
                order.lock().push((name, 1));
            });
        }
        eng.run().unwrap();
        assert_eq!(
            *order.lock(),
            vec![("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        );
    }

    #[test]
    fn spawn_after_run_panics() {
        // `run` consumes the engine, so "spawn after run" is prevented by
        // the type system; this test documents the `ran` flag is still a
        // valid internal invariant by exercising the normal path.
        let mut eng = Engine::new();
        eng.spawn("p", |ctx| ctx.advance(SimDuration::from_ns(1.0)));
        assert!(eng.run().is_ok());
    }

    #[test]
    fn dropping_unrun_engine_does_not_hang() {
        let mut eng = Engine::new();
        eng.spawn("never-started", |ctx| ctx.advance(SimDuration::from_us(1.0)));
        eng.spawn_inline("inline-never-started", |ctx| async move {
            ctx.advance(SimDuration::from_us(1.0)).await;
        });
        drop(eng); // must tear down cleanly without running
    }

    #[test]
    fn stale_pid_does_not_wake_recycled_slot() {
        // ABA guard: park a process of world 1 in a channel waiter list,
        // kill world 1, then run world 2 over the same channel. The stale
        // waiter pid occupies the same slot index as a live world-2
        // process; waking it must not requeue the impostor.
        let ch = SimChannel::<u8>::new("carried-over");
        let mut eng1 = Engine::new();
        {
            let ch = ch.clone();
            eng1.spawn_inline("w1-rx", move |ctx| async move {
                let _ = ch.recv_inline(&ctx).await; // parks pid {slot 0, epoch e1}
            });
        }
        assert!(matches!(eng1.run(), Err(SimError::Deadlock { .. })));

        let woke = Arc::new(PlMutex::new(0u32));
        let mut eng2 = Engine::new();
        {
            let ch = ch.clone();
            let woke = Arc::clone(&woke);
            // Slot 0 of world 2: must only run its own two steps.
            eng2.spawn_inline("w2-counter", move |ctx| async move {
                ctx.advance(SimDuration::from_us(5.0)).await;
                *woke.lock() += 1;
                let _ = ch.recv_inline(&ctx).await;
                *woke.lock() += 1;
            });
        }
        {
            let ch = ch.clone();
            eng2.spawn_inline("w2-tx", move |ctx| async move {
                // This send pops the *stale* world-1 waiter first and wakes
                // it; the epoch guard must discard that wake. The queued
                // message still satisfies w2-counter's later recv.
                ctx.advance(SimDuration::from_us(1.0)).await;
                ch.send_inline(&ctx, 7);
            });
        }
        let end = eng2.run().unwrap();
        assert_eq!(end.as_us(), 5.0);
        assert_eq!(*woke.lock(), 2);
    }

    #[test]
    fn sched_stats_report_wheel_traffic_and_process_split() {
        let mut eng = Engine::new();
        eng.spawn_inline("i", |ctx| async move {
            ctx.advance(SimDuration::from_us(1.0)).await;
        });
        eng.spawn("t", |ctx| ctx.advance(SimDuration::from_us(1.0)));
        let stats = eng.sched_stats();
        assert_eq!(stats.procs_inline, 1);
        assert_eq!(stats.procs_threaded, 1);
        assert_eq!(stats.events_pushed, 2); // two spawn events queued
        assert_eq!(stats.events_popped, 0);
        eng.run().unwrap();
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn trace_records_schedule_in_order() {
        let mut eng = Engine::new();
        eng.enable_tracing();
        eng.spawn("a", |ctx| {
            ctx.advance(SimDuration::from_ns(5.0));
        });
        let (end, trace) = eng.run_traced().unwrap();
        assert_eq!(end.as_ns(), 5.0);
        let kinds: Vec<TraceKind> = trace.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Resumed,
                TraceKind::Advanced,
                TraceKind::Resumed,
                TraceKind::Finished
            ]
        );
        // Times never decrease.
        assert!(trace.windows(2).all(|w| w[0].at_ps <= w[1].at_ps));
    }

    #[test]
    fn inline_trace_is_identical_to_threaded() {
        let run = |inline: bool| {
            let mut eng = Engine::new();
            eng.enable_tracing();
            if inline {
                eng.spawn_inline("a", |ctx| async move {
                    ctx.advance(SimDuration::from_ns(5.0)).await;
                });
            } else {
                eng.spawn("a", |ctx| {
                    ctx.advance(SimDuration::from_ns(5.0));
                });
            }
            let (_, trace) = eng.run_traced().unwrap();
            trace
                .iter()
                .map(|r| (r.at_ps, r.pid.index(), r.kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn tracing_off_returns_empty() {
        let mut eng = Engine::new();
        eng.spawn("a", |ctx| ctx.advance(SimDuration::from_ns(1.0)));
        let (_, trace) = eng.run_traced().unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn trace_shows_blocking_on_channel() {
        use crate::channel::SimChannel;
        let mut eng = Engine::new();
        eng.enable_tracing();
        let ch = SimChannel::<u8>::new("c");
        {
            let ch = ch.clone();
            eng.spawn("rx", move |ctx| {
                let _ = ch.recv(ctx);
            });
        }
        eng.spawn("tx", move |ctx| {
            ctx.advance(SimDuration::from_ns(3.0));
            ch.send(ctx, 1);
        });
        let (_, trace) = eng.run_traced().unwrap();
        assert!(trace
            .iter()
            .any(|r| r.kind == TraceKind::Blocked && r.pid.index() == 0));
    }
}
