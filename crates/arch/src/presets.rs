//! Calibrated presets for the hardware evaluated in the paper.
//!
//! Structural parameters (core counts, cache geometry, channel counts,
//! clock rates) come from Table 1 of the paper and Intel datasheets.
//! Sustained-rate calibrations (`*_bytes_per_cycle`, `per_core_*_gbs`,
//! `stream_efficiency`) are fitted to the paper's microbenchmark plateaus
//! (Figures 4–6); each is commented with the measurement it reproduces.

use crate::cache::{CacheLevel, CacheSpec};
use crate::core_spec::{CoreSpec, ExecutionStyle, ThreadingKind};
use crate::memory::{MemoryKind, MemorySpec};
use crate::node::{NodeSpec, PcieGen, PcieSpec, QpiSpec};
use crate::processor::{ProcessorKind, ProcessorSpec};
use crate::system::SystemSpec;

/// Intel Xeon E5-2670 "Sandy Bridge": 8 cores at 2.6 GHz, AVX (256-bit),
/// 20 MB shared L3, 4 × DDR3-1600 channels (51.2 GB/s peak per socket).
pub fn xeon_e5_2670() -> ProcessorSpec {
    ProcessorSpec {
        kind: ProcessorKind::SandyBridge,
        name: "Intel Xeon E5-2670",
        cores: 8,
        app_cores: 8,
        core: CoreSpec {
            freq_ghz: 2.6,
            turbo_ghz: Some(3.2),
            // 256-bit AVX: 4 DP adds + 4 DP muls per cycle.
            flops_per_cycle: 8,
            simd_bits: 256,
            hw_threads: 2,
            threading: ThreadingKind::HyperThreading,
            execution: ExecutionStyle::OutOfOrder,
            back_to_back_issue: true,
        },
        caches: vec![
            CacheSpec {
                level: CacheLevel::L1,
                size_bytes: 32 * 1024,
                line_bytes: 64,
                associativity: 8,
                shared_by_cores: 1,
                // 4 cycles / 2.6 GHz = 1.54 ns (paper measures 1.5 ns).
                latency_cycles: 4,
                // 12.6 GB/s read, 10.4 GB/s write at 2.6 GHz (Fig 6).
                read_bytes_per_cycle: 12.6 / 2.6,
                write_bytes_per_cycle: 10.4 / 2.6,
            },
            CacheSpec {
                level: CacheLevel::L2,
                size_bytes: 256 * 1024,
                line_bytes: 64,
                associativity: 8,
                shared_by_cores: 1,
                // 12 cycles / 2.6 GHz = 4.6 ns (paper: 4.6 ns).
                latency_cycles: 12,
                // 12.3 / 9.5 GB/s (Fig 6).
                read_bytes_per_cycle: 12.3 / 2.6,
                write_bytes_per_cycle: 9.5 / 2.6,
            },
            CacheSpec {
                level: CacheLevel::L3,
                size_bytes: 20 * 1024 * 1024,
                line_bytes: 64,
                associativity: 20,
                shared_by_cores: 8,
                // 39 cycles / 2.6 GHz = 15 ns (paper: 15 ns).
                latency_cycles: 39,
                // 11.6 / 8.6 GB/s (Fig 6).
                read_bytes_per_cycle: 11.6 / 2.6,
                write_bytes_per_cycle: 8.6 / 2.6,
            },
        ],
        memory: MemorySpec {
            kind: MemoryKind::Ddr3,
            channels: 4,
            rate_mts: 1600,
            bytes_per_transfer: 8,
            // 16 GB per socket; 32 GB per node across two sockets.
            capacity_bytes: 16 * (1u64 << 30),
            banks_per_device: 8,
            devices: 8,
            // Paper Fig 5: 81 ns main-memory latency.
            idle_latency_ns: 81.0,
            // Two sockets sustain ~77 GB/s of the 102.4 GB/s peak on
            // STREAM triad (Fig 4's host plateau).
            stream_efficiency: 0.75,
            // Fig 6 main-memory plateaus: 7.5 GB/s read, 7.2 GB/s write.
            per_core_read_gbs: 7.5,
            per_core_write_gbs: 7.2,
        },
    }
}

/// Intel Xeon Phi 5110P "Knights Corner": 60 in-order cores at 1.05 GHz,
/// 512-bit SIMD, 4 hardware threads/core, 8 GB GDDR5 behind 16 channels
/// (320 GB/s peak), bi-directional ring interconnect.
pub fn xeon_phi_5110p() -> ProcessorSpec {
    ProcessorSpec {
        kind: ProcessorKind::Mic,
        name: "Intel Xeon Phi 5110P",
        cores: 60,
        // Core 60 runs the MPSS micro-OS services; the paper shows using
        // it hurts (Fig 24), so application layouts use 59 cores.
        app_cores: 59,
        core: CoreSpec {
            freq_ghz: 1.05,
            turbo_ghz: None,
            // 512-bit FMA: 8 DP lanes × 2 flops.
            flops_per_cycle: 16,
            simd_bits: 512,
            hw_threads: 4,
            threading: ThreadingKind::HardwareThreads,
            execution: ExecutionStyle::InOrder,
            back_to_back_issue: false,
        },
        caches: vec![
            CacheSpec {
                level: CacheLevel::L1,
                size_bytes: 32 * 1024,
                line_bytes: 64,
                associativity: 8,
                shared_by_cores: 1,
                // 3 cycles / 1.05 GHz = 2.86 ns (paper: 2.9 ns).
                latency_cycles: 3,
                // Fig 6: 1680 MB/s read, 1538 MB/s write per thread.
                read_bytes_per_cycle: 1.680 / 1.05,
                write_bytes_per_cycle: 1.538 / 1.05,
            },
            CacheSpec {
                level: CacheLevel::L2,
                size_bytes: 512 * 1024,
                line_bytes: 64,
                associativity: 8,
                shared_by_cores: 1,
                // 24 cycles / 1.05 GHz = 22.9 ns (paper: 22.9 ns).
                latency_cycles: 24,
                // Fig 6: 971 MB/s read, 962 MB/s write.
                read_bytes_per_cycle: 0.971 / 1.05,
                write_bytes_per_cycle: 0.962 / 1.05,
            },
        ],
        memory: MemorySpec {
            kind: MemoryKind::Gddr5,
            channels: 16,
            rate_mts: 5000,
            bytes_per_transfer: 4,
            capacity_bytes: 8 * (1u64 << 30),
            // 16 banks × 8 devices = 128 open pages, the cliff in Fig 4.
            banks_per_device: 16,
            devices: 8,
            // Paper Fig 5: 295 ns (ring hop + GDDR5).
            idle_latency_ns: 295.0,
            // 180 GB/s sustained of 320 GB/s peak (Fig 4).
            stream_efficiency: 0.5625,
            // Fig 6 main-memory plateaus per thread: 504 / 263 MB/s.
            per_core_read_gbs: 0.504,
            per_core_write_gbs: 0.263,
        },
    }
}

/// One Maia node: two E5-2670 sockets joined by QPI, two Phi 5110P cards on
/// separate 16-lane PCIe buses, and an FDR InfiniBand HCA sharing Phi0's
/// bus.
pub fn maia_node() -> NodeSpec {
    NodeSpec {
        host_sockets: 2,
        host_processor: xeon_e5_2670(),
        phi_cards: 2,
        phi_processor: xeon_phi_5110p(),
        qpi: QpiSpec {
            links: 2,
            rate_gts: 8.0,
            bytes_per_transfer_per_dir: 2,
        },
        // The Phi's on-board PCIe interface is Gen2 ×16 — the bottleneck
        // for all host↔Phi traffic even though the host has Gen3.
        pcie_phi: PcieSpec {
            gen: PcieGen::Gen2,
            lanes: 16,
        },
        pcie_host: PcieSpec {
            gen: PcieGen::Gen3,
            lanes: 40,
        },
    }
}

/// The full 128-node Maia system with 4x FDR InfiniBand.
pub fn maia_system() -> SystemSpec {
    SystemSpec {
        name: "Maia (SGI Rackable C1104G-RP5)",
        nodes: 128,
        node: maia_node(),
        interconnect: "4x FDR InfiniBand",
        interconnect_peak_gbs: 56.0 / 8.0 * 8.0, // 56 Gb/s links, hypercube
        filesystem: "Lustre",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_peak_matches_table1() {
        let p = xeon_e5_2670();
        assert!((p.peak_gflops_per_core() - 20.8).abs() < 1e-9);
        assert!((p.peak_gflops() - 166.4).abs() < 1e-9);
    }

    #[test]
    fn phi_peak_matches_table1() {
        let p = xeon_phi_5110p();
        assert!((p.peak_gflops_per_core() - 16.8).abs() < 1e-9);
        assert!((p.peak_gflops() - 1008.0).abs() < 1e-9);
    }

    #[test]
    fn latencies_match_figure5() {
        let host = xeon_e5_2670();
        let f = host.core.freq_ghz;
        let ns: Vec<f64> = host.caches.iter().map(|c| c.latency_ns(f)).collect();
        assert!((ns[0] - 1.5).abs() < 0.1);
        assert!((ns[1] - 4.6).abs() < 0.1);
        assert!((ns[2] - 15.0).abs() < 0.1);
        assert!((host.memory.idle_latency_ns - 81.0).abs() < 1e-9);

        let phi = xeon_phi_5110p();
        let f = phi.core.freq_ghz;
        let ns: Vec<f64> = phi.caches.iter().map(|c| c.latency_ns(f)).collect();
        assert!((ns[0] - 2.9).abs() < 0.1);
        assert!((ns[1] - 22.9).abs() < 0.1);
        assert!((phi.memory.idle_latency_ns - 295.0).abs() < 1e-9);
    }

    #[test]
    fn phi_sustained_stream_is_180_gbs() {
        let p = xeon_phi_5110p();
        assert!((p.memory.sustained_bw_gbs() - 180.0).abs() < 0.5);
    }

    #[test]
    fn node_and_system_validate() {
        maia_node().validate();
        let sys = maia_system();
        sys.node.validate();
        assert_eq!(sys.total_host_cores(), 2048);
        assert_eq!(sys.total_phi_cores(), 15360);
    }
}
