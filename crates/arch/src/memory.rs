//! Main-memory subsystem descriptions.

/// Memory technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryKind {
    /// DDR3 SDRAM (host).
    Ddr3,
    /// GDDR5 graphics memory (Phi cards).
    Gddr5,
}

/// One device's main memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    pub kind: MemoryKind,
    /// Independent memory channels.
    pub channels: u32,
    /// Per-channel transfer rate in mega-transfers per second.
    pub rate_mts: u32,
    /// Bytes transferred per channel per transfer (bus width / 8).
    pub bytes_per_transfer: u32,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Independent banks per memory device; with GDDR5's 16 banks/device ×
    /// 8 devices on the Phi, at most 128 pages can be open at once, which
    /// is why STREAM bandwidth collapses past 128 concurrent access
    /// streams (Figure 4 of the paper).
    pub banks_per_device: u32,
    /// Number of memory devices (chips) on the bus.
    pub devices: u32,
    /// Idle (unloaded) access latency in nanoseconds, including the
    /// on-chip fabric hop: 81 ns on the host, 295 ns on the Phi (ring +
    /// GDDR5).
    pub idle_latency_ns: f64,
    /// Fraction of peak bandwidth sustainable by an ideal streaming kernel
    /// (STREAM-style). DDR3 with an out-of-order prefetching core sustains
    /// ~0.75 of peak; GDDR5 behind in-order cores sustains ~0.56.
    pub stream_efficiency: f64,
    /// Sustained *single-thread* read bandwidth in GB/s (Figure 6 plateau
    /// for working sets past the last cache level).
    pub per_core_read_gbs: f64,
    /// Sustained single-thread write bandwidth in GB/s.
    pub per_core_write_gbs: f64,
}

impl MemorySpec {
    /// Peak bandwidth in GB/s: channels × rate × bytes/transfer.
    pub fn peak_bw_gbs(&self) -> f64 {
        self.channels as f64 * self.rate_mts as f64 * 1e6 * self.bytes_per_transfer as f64 / 1e9
    }

    /// Total independently open banks (devices × banks/device).
    pub fn total_banks(&self) -> u32 {
        self.banks_per_device * self.devices
    }

    /// Sustained aggregate streaming bandwidth in GB/s.
    pub fn sustained_bw_gbs(&self) -> f64 {
        self.peak_bw_gbs() * self.stream_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_mem() -> MemorySpec {
        MemorySpec {
            kind: MemoryKind::Ddr3,
            channels: 4,
            rate_mts: 1600,
            bytes_per_transfer: 8,
            capacity_bytes: 16 * (1 << 30),
            banks_per_device: 8,
            devices: 8,
            idle_latency_ns: 81.0,
            stream_efficiency: 0.75,
            per_core_read_gbs: 7.5,
            per_core_write_gbs: 7.2,
        }
    }

    #[test]
    fn ddr3_1600_peak_is_51_2_gbs_per_socket() {
        assert!((host_mem().peak_bw_gbs() - 51.2).abs() < 1e-9);
    }

    #[test]
    fn gddr5_peak_and_banks() {
        let phi = MemorySpec {
            kind: MemoryKind::Gddr5,
            channels: 16,
            rate_mts: 5000,
            bytes_per_transfer: 4,
            capacity_bytes: 8 * (1 << 30),
            banks_per_device: 16,
            devices: 8,
            idle_latency_ns: 295.0,
            stream_efficiency: 0.5625,
            per_core_read_gbs: 0.504,
            per_core_write_gbs: 0.263,
        };
        assert!((phi.peak_bw_gbs() - 320.0).abs() < 1e-9);
        assert_eq!(phi.total_banks(), 128);
        assert!((phi.sustained_bw_gbs() - 180.0).abs() < 1.0);
    }
}
