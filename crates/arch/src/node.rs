//! Node-level composition: sockets, coprocessor cards, and on-node fabrics.

use crate::processor::ProcessorSpec;

/// PCI Express generation, determining the per-lane signaling rate and
/// encoding efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcieGen {
    /// 5 GT/s per lane with 8b/10b encoding (80% efficiency).
    Gen2,
    /// 8 GT/s per lane with 128b/130b encoding (~98.5% efficiency).
    Gen3,
}

impl PcieGen {
    /// Raw signaling rate per lane, giga-transfers per second.
    pub fn rate_gts(self) -> f64 {
        match self {
            PcieGen::Gen2 => 5.0,
            PcieGen::Gen3 => 8.0,
        }
    }

    /// Line-coding efficiency.
    pub fn encoding_efficiency(self) -> f64 {
        match self {
            PcieGen::Gen2 => 0.8,
            PcieGen::Gen3 => 128.0 / 130.0,
        }
    }
}

/// A PCIe port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieSpec {
    pub gen: PcieGen,
    pub lanes: u32,
}

impl PcieSpec {
    /// Usable payload-agnostic link bandwidth in GB/s per direction
    /// (signaling rate × lanes × encoding efficiency / 8 bits).
    pub fn link_bw_gbs(&self) -> f64 {
        self.gen.rate_gts() * self.lanes as f64 * self.gen.encoding_efficiency() / 8.0
    }
}

/// Inter-socket QPI description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpiSpec {
    /// Parallel links between the two sockets.
    pub links: u32,
    /// Giga-transfers per second per link.
    pub rate_gts: f64,
    /// Bytes moved per transfer in each direction.
    pub bytes_per_transfer_per_dir: u32,
}

impl QpiSpec {
    /// Bidirectional bandwidth of one link in GB/s — the "aggregate rate of
    /// 32 GB/s" the paper quotes for 8 GT/s × 2 B in each direction.
    pub fn per_link_bidir_gbs(&self) -> f64 {
        self.rate_gts * self.bytes_per_transfer_per_dir as f64 * 2.0
    }

    /// One-direction bandwidth of a single link in GB/s.
    pub fn per_link_one_way_gbs(&self) -> f64 {
        self.rate_gts * self.bytes_per_transfer_per_dir as f64
    }
}

/// One Maia node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    pub host_sockets: u32,
    pub host_processor: ProcessorSpec,
    pub phi_cards: u32,
    pub phi_processor: ProcessorSpec,
    pub qpi: QpiSpec,
    /// The PCIe interface on each Phi card (Gen2 ×16 — the host↔Phi
    /// bottleneck).
    pub pcie_phi: PcieSpec,
    /// The host root-complex PCIe capability.
    pub pcie_host: PcieSpec,
}

impl NodeSpec {
    /// Host cores in the node.
    pub fn host_cores(&self) -> u32 {
        self.host_sockets * self.host_processor.cores
    }

    /// Phi cores in the node.
    pub fn phi_cores(&self) -> u32 {
        self.phi_cards * self.phi_processor.cores
    }

    /// Host peak Gflop/s.
    pub fn host_peak_gflops(&self) -> f64 {
        self.host_sockets as f64 * self.host_processor.peak_gflops()
    }

    /// Phi peak Gflop/s.
    pub fn phi_peak_gflops(&self) -> f64 {
        self.phi_cards as f64 * self.phi_processor.peak_gflops()
    }

    /// Host memory per node in bytes (32 GB on Maia).
    pub fn host_memory_bytes(&self) -> u64 {
        self.host_sockets as u64 * self.host_processor.memory.capacity_bytes
    }

    /// Phi memory per node in bytes (2 × 8 GB on Maia).
    pub fn phi_memory_bytes(&self) -> u64 {
        self.phi_cards as u64 * self.phi_processor.memory.capacity_bytes
    }

    /// Consistency checks for the node description.
    ///
    /// # Panics
    /// Panics on the first inconsistency.
    pub fn validate(&self) {
        assert!(self.host_sockets > 0 && self.phi_cards > 0);
        self.host_processor.validate();
        self.phi_processor.validate();
        assert!(self.qpi.links > 0);
        assert!(self.pcie_phi.lanes > 0 && self.pcie_host.lanes > 0);
    }
}

#[cfg(test)]
mod tests {
    use crate::presets::maia_node;

    #[test]
    fn qpi_aggregate_is_32_gbs() {
        let n = maia_node();
        assert!((n.qpi.per_link_bidir_gbs() - 32.0).abs() < 1e-9);
        assert!((n.qpi.per_link_one_way_gbs() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn phi_pcie_gen2_x16_link_bw() {
        let n = maia_node();
        // 5 GT/s × 16 lanes × 0.8 / 8 = 8 GB/s raw link bandwidth.
        assert!((n.pcie_phi.link_bw_gbs() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn node_totals() {
        let n = maia_node();
        assert_eq!(n.host_cores(), 16);
        assert_eq!(n.phi_cores(), 120);
        assert!((n.host_peak_gflops() - 332.8).abs() < 1e-9);
        assert!((n.phi_peak_gflops() - 2016.0).abs() < 1e-9);
        assert_eq!(n.host_memory_bytes(), 32 * (1u64 << 30));
        assert_eq!(n.phi_memory_bytes(), 16 * (1u64 << 30));
    }
}
