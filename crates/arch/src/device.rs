//! Identity of the compute devices inside one Maia node.

use std::fmt;

/// One of the three compute devices in a Maia node: the Sandy Bridge host
/// (the paper treats the two host sockets collectively as "the host") or
/// one of the two Xeon Phi coprocessor cards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Device {
    /// The two-socket Sandy Bridge host.
    Host,
    /// First Phi card, attached to the first PCIe bus (shared with the
    /// InfiniBand HCA).
    Phi0,
    /// Second Phi card, on the second PCIe bus; reaching it from the host
    /// crosses the inter-socket QPI, which is why the paper measures higher
    /// latency for host↔Phi1 than host↔Phi0.
    Phi1,
}

impl Device {
    /// All devices in a node, in canonical order.
    pub const ALL: [Device; 3] = [Device::Host, Device::Phi0, Device::Phi1];

    /// Whether this device is a Phi coprocessor.
    pub fn is_phi(self) -> bool {
        matches!(self, Device::Phi0 | Device::Phi1)
    }

    /// Short lowercase label used in reports ("host", "phi0", "phi1").
    pub fn label(self) -> &'static str {
        match self {
            Device::Host => "host",
            Device::Phi0 => "phi0",
            Device::Phi1 => "phi1",
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_kinds() {
        assert_eq!(Device::Host.label(), "host");
        assert!(!Device::Host.is_phi());
        assert!(Device::Phi0.is_phi());
        assert!(Device::Phi1.is_phi());
        assert_eq!(format!("{}", Device::Phi1), "phi1");
    }

    #[test]
    fn all_lists_each_device_once() {
        let mut seen = Device::ALL.to_vec();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }
}
