//! # maia-arch — hardware description of the Maia system
//!
//! Typed, parameter-level descriptions of the two processors evaluated by
//! Saini et al. (SC'13) — the Intel Xeon E5-2670 "Sandy Bridge" host
//! processor and the Intel Xeon Phi 5110P "Knights Corner" coprocessor —
//! plus the node and system they compose into.
//!
//! The design rule of this crate is that *derived* quantities (peak
//! Gflop/s, peak memory bandwidth, aggregate system performance, Table 1 of
//! the paper) are **computed** from first-principle parameters (clock,
//! SIMD width, channel counts, transfer rates) rather than transcribed, so
//! the reproduction is falsifiable: if a parameter is wrong, the derived
//! table disagrees with the paper.
//!
//! ```
//! use maia_arch::presets;
//!
//! let host = presets::xeon_e5_2670();
//! assert_eq!(host.peak_gflops_per_core(), 20.8);
//! let phi = presets::xeon_phi_5110p();
//! assert_eq!(phi.peak_gflops(), 1008.0);
//! ```

pub mod cache;
pub mod core_spec;
pub mod device;
pub mod memory;
pub mod node;
pub mod presets;
pub mod processor;
pub mod system;
pub mod table;

pub use cache::{CacheLevel, CacheSpec};
pub use core_spec::{CoreSpec, ExecutionStyle, ThreadingKind};
pub use device::Device;
pub use memory::{MemoryKind, MemorySpec};
pub use node::{NodeSpec, PcieGen, PcieSpec, QpiSpec};
pub use processor::{ProcessorKind, ProcessorSpec};
pub use system::SystemSpec;
