//! System-level composition: the 128-node Maia cluster.

use crate::node::NodeSpec;

/// The full cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    pub name: &'static str,
    pub nodes: u32,
    pub node: NodeSpec,
    /// Inter-node fabric description (informational).
    pub interconnect: &'static str,
    /// Peak inter-node network bandwidth in GB/s (the paper quotes
    /// 56 GB/s for the 4x FDR hypercube).
    pub interconnect_peak_gbs: f64,
    pub filesystem: &'static str,
}

impl SystemSpec {
    /// Total Sandy Bridge cores (2,048 on Maia).
    pub fn total_host_cores(&self) -> u32 {
        self.nodes * self.node.host_cores()
    }

    /// Total Phi cores (15,360 on Maia).
    pub fn total_phi_cores(&self) -> u32 {
        self.nodes * self.node.phi_cores()
    }

    /// Host partition peak, Tflop/s (42.6 on Maia).
    pub fn host_peak_tflops(&self) -> f64 {
        self.nodes as f64 * self.node.host_peak_gflops() / 1000.0
    }

    /// Phi partition peak, Tflop/s (258 on Maia).
    pub fn phi_peak_tflops(&self) -> f64 {
        self.nodes as f64 * self.node.phi_peak_gflops() / 1000.0
    }

    /// Whole-system peak, Tflop/s (301.4 on Maia).
    pub fn total_peak_tflops(&self) -> f64 {
        self.host_peak_tflops() + self.phi_peak_tflops()
    }

    /// Fraction of peak flops contributed by the Phi partition (86% on
    /// Maia — the paper's "% Flops" row).
    pub fn phi_flops_fraction(&self) -> f64 {
        self.phi_peak_tflops() / self.total_peak_tflops()
    }

    /// Total memory in bytes (6 TB on Maia: 4 TB host + 2 TB Phi).
    pub fn total_memory_bytes(&self) -> u64 {
        self.nodes as u64 * (self.node.host_memory_bytes() + self.node.phi_memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use crate::presets::maia_system;

    #[test]
    fn system_peaks_match_paper_section2() {
        let s = maia_system();
        assert_eq!(s.total_host_cores(), 2048);
        assert_eq!(s.total_phi_cores(), 15360);
        assert!((s.host_peak_tflops() - 42.6).abs() < 0.1);
        assert!((s.phi_peak_tflops() - 258.0).abs() < 0.5);
        // The paper's prose quotes 301.4 total by adding "258.8" for the
        // Phi partition, but 15,360 cores x 16.8 Gflop/s = 258.0 (as its
        // own Table 1 also states); the computed total is 300.6.
        assert!((s.total_peak_tflops() - 301.4).abs() < 1.0);
        assert!((s.phi_flops_fraction() - 0.86).abs() < 0.01);
    }

    #[test]
    fn total_memory_is_6_tb() {
        let s = maia_system();
        assert_eq!(s.total_memory_bytes(), 6 * (1u64 << 40));
    }
}
