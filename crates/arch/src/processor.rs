//! Whole-processor descriptions.

use crate::cache::{CacheLevel, CacheSpec};
use crate::core_spec::CoreSpec;
use crate::memory::MemorySpec;

/// Processor family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessorKind {
    /// Intel Xeon E5-2670 "Sandy Bridge".
    SandyBridge,
    /// Intel Xeon Phi 5110P "Knights Corner" (Many Integrated Core).
    Mic,
}

/// One processor package: cores, cache hierarchy, and attached memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorSpec {
    pub kind: ProcessorKind,
    /// Marketing name, e.g. "Intel Xeon E5-2670".
    pub name: &'static str,
    /// Physical cores per package.
    pub cores: u32,
    /// Cores usable by applications. On the Phi the 60th core services the
    /// micro-OS; the paper shows (Fig 24) that scheduling work on it costs
    /// more than it gains, so application runs use 59 cores.
    pub app_cores: u32,
    pub core: CoreSpec,
    /// Cache levels, ordered L1 → last level.
    pub caches: Vec<CacheSpec>,
    pub memory: MemorySpec,
}

impl ProcessorSpec {
    /// Peak double-precision Gflop/s per core at base clock.
    pub fn peak_gflops_per_core(&self) -> f64 {
        self.core.peak_gflops()
    }

    /// Peak double-precision Gflop/s of the package.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.core.peak_gflops()
    }

    /// Maximum hardware threads on the package.
    pub fn max_threads(&self) -> u32 {
        self.cores * self.core.hw_threads
    }

    /// Maximum hardware threads on application cores.
    pub fn max_app_threads(&self) -> u32 {
        self.app_cores * self.core.hw_threads
    }

    /// Look up a cache level.
    pub fn cache(&self, level: CacheLevel) -> Option<&CacheSpec> {
        self.caches.iter().find(|c| c.level == level)
    }

    /// The last (largest) cache level present.
    pub fn last_level_cache(&self) -> &CacheSpec {
        self.caches
            .last()
            .expect("a processor must have at least one cache level")
    }

    /// Total cache bytes available to one core: its private levels plus its
    /// per-core share of any shared level. The paper notes 2.788 MB/core on
    /// the host vs 544 KB/core on the Phi — a factor of 5.1.
    pub fn cache_bytes_per_core(&self) -> f64 {
        self.caches
            .iter()
            .map(|c| c.size_bytes as f64 / c.shared_by_cores as f64)
            .sum()
    }

    /// Validate internal consistency; used by tests and the system builder.
    ///
    /// # Panics
    /// Panics with a description of the first inconsistency found.
    pub fn validate(&self) {
        assert!(self.cores > 0, "{}: zero cores", self.name);
        assert!(
            self.app_cores > 0 && self.app_cores <= self.cores,
            "{}: app_cores {} out of range 1..={}",
            self.name,
            self.app_cores,
            self.cores
        );
        assert!(!self.caches.is_empty(), "{}: no caches", self.name);
        let mut prev_size = 0u64;
        for c in &self.caches {
            let _ = c.num_sets(); // checks geometry
            let effective = c.size_bytes; // per sharing-domain size
            assert!(
                effective >= prev_size,
                "{}: cache levels must be ordered by size",
                self.name
            );
            prev_size = effective;
            assert!(
                c.shared_by_cores >= 1 && c.shared_by_cores <= self.cores,
                "{}: cache shared_by_cores out of range",
                self.name
            );
        }
        assert!(
            self.memory.stream_efficiency > 0.0 && self.memory.stream_efficiency <= 1.0,
            "{}: stream efficiency out of (0,1]",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn presets_validate() {
        presets::xeon_e5_2670().validate();
        presets::xeon_phi_5110p().validate();
    }

    #[test]
    fn host_cache_per_core_is_5x_phi() {
        let host = presets::xeon_e5_2670();
        let phi = presets::xeon_phi_5110p();
        // Host: 32 KB L1 + 256 KB L2 + 2.5 MB L3-share = 2.788 MB/core.
        assert!((host.cache_bytes_per_core() / 1024.0 / 1024.0 - 2.781).abs() < 0.01);
        // Phi: 32 KB L1 + 512 KB L2 = 544 KB/core.
        assert!((phi.cache_bytes_per_core() / 1024.0 - 544.0).abs() < 1e-9);
        let ratio = host.cache_bytes_per_core() / phi.cache_bytes_per_core();
        assert!((ratio - 5.1).abs() < 0.15, "paper states a factor of 5.1, got {ratio}");
    }

    #[test]
    fn thread_counts() {
        let host = presets::xeon_e5_2670();
        assert_eq!(host.max_threads(), 16);
        let phi = presets::xeon_phi_5110p();
        assert_eq!(phi.max_threads(), 240);
        assert_eq!(phi.max_app_threads(), 236);
    }
}
