//! Rendering of Table 1 ("Characteristics of Maia, SGI Rackable system")
//! from the typed system description. Every numeric cell is computed from
//! the spec, so the table doubles as a regression check on the presets.

use crate::processor::ProcessorSpec;
use crate::system::SystemSpec;

fn gb(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// Render the paper's Table 1 as aligned plain text.
pub fn render_table1(sys: &SystemSpec) -> String {
    let host = &sys.node.host_processor;
    let phi = &sys.node.phi_processor;
    let mut rows: Vec<(String, String, String)> = Vec::new();

    let mut row = |label: &str, h: String, p: String| {
        rows.push((label.to_string(), h, p));
    };

    row("Processor type", host.name.into(), phi.name.into());
    row(
        "Number cores/processor",
        host.cores.to_string(),
        phi.cores.to_string(),
    );
    row(
        "Base frequency (GHz)",
        format!("{:.2}", host.core.freq_ghz),
        format!("{:.2}", phi.core.freq_ghz),
    );
    row(
        "Turbo frequency (GHz)",
        host.core
            .turbo_ghz
            .map_or("NA".into(), |t| format!("{t:.2}")),
        phi.core.turbo_ghz.map_or("NA".into(), |t| format!("{t:.2}")),
    );
    row(
        "Floating points / clock",
        host.core.flops_per_cycle.to_string(),
        phi.core.flops_per_cycle.to_string(),
    );
    row(
        "Perf. /core (Gflop/s)",
        format!("{:.1}", host.peak_gflops_per_core()),
        format!("{:.1}", phi.peak_gflops_per_core()),
    );
    row(
        "Proc. perf. (Gflop/s)",
        format!("{:.1}", host.peak_gflops()),
        format!("{:.0}", phi.peak_gflops()),
    );
    row(
        "SIMD vector width",
        host.core.simd_bits.to_string(),
        phi.core.simd_bits.to_string(),
    );
    row(
        "Number of threads / core",
        host.core.hw_threads.to_string(),
        phi.core.hw_threads.to_string(),
    );
    for c in &host.caches {
        let phi_cell = phi
            .cache(c.level)
            .map(|pc| format!("{} KB", pc.size_bytes / 1024))
            .unwrap_or_else(|| "NA".into());
        let host_cell = if c.size_bytes >= 1024 * 1024 {
            format!("{} MB (shared)", c.size_bytes / 1024 / 1024)
        } else {
            format!("{} KB", c.size_bytes / 1024)
        };
        row(&format!("{} cache size", c.level.label()), host_cell, phi_cell);
    }
    row(
        "Memory / node (GB)",
        format!("{:.0}", gb(sys.node.host_memory_bytes())),
        format!(
            "{:.0} GB-{:.0} GB / Phi card",
            gb(sys.node.phi_memory_bytes()),
            gb(phi.memory.capacity_bytes)
        ),
    );
    row(
        "Peak memory BW (GB/s)",
        format!("{:.1}", host.memory.peak_bw_gbs()),
        format!("{:.0}", phi.memory.peak_bw_gbs()),
    );
    row(
        "Total cores",
        sys.total_host_cores().to_string(),
        sys.total_phi_cores().to_string(),
    );
    row(
        "Peak perf. (Tflop/s)",
        format!("{:.1}", sys.host_peak_tflops()),
        format!("{:.0}", sys.phi_peak_tflops()),
    );
    row(
        "% Flops",
        format!("{:.0}", 100.0 * (1.0 - sys.phi_flops_fraction())),
        format!("{:.0}", 100.0 * sys.phi_flops_fraction()),
    );

    let w0 = rows.iter().map(|r| r.0.len()).max().unwrap_or(0).max(12);
    let w1 = rows.iter().map(|r| r.1.len()).max().unwrap_or(0).max(8);
    let w2 = rows.iter().map(|r| r.2.len()).max().unwrap_or(0).max(8);

    let mut out = String::new();
    out.push_str(&format!(
        "{:<w0$}  {:<w1$}  {:<w2$}\n",
        "Characteristic", "Host", "Coprocessor"
    ));
    out.push_str(&format!("{}\n", "-".repeat(w0 + w1 + w2 + 4)));
    for (a, b, c) in &rows {
        out.push_str(&format!("{a:<w0$}  {b:<w1$}  {c:<w2$}\n"));
    }
    out
}

/// Convenience summary line for one processor.
pub fn summarize(p: &ProcessorSpec) -> String {
    format!(
        "{}: {} cores @ {:.2} GHz, {}-bit SIMD, {:.1} Gflop/s peak, {:.1} GB/s memory",
        p.name,
        p.cores,
        p.core.freq_ghz,
        p.core.simd_bits,
        p.peak_gflops(),
        p.memory.peak_bw_gbs()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{maia_system, xeon_phi_5110p};

    #[test]
    fn table_contains_key_paper_values() {
        let t = render_table1(&maia_system());
        // Derived values that must match the paper's Table 1.
        for needle in [
            "20.8", "16.8", "166.4", "1008", "2048", "15360", "42.6", "258", "86",
        ] {
            assert!(t.contains(needle), "Table 1 missing `{needle}`:\n{t}");
        }
    }

    #[test]
    fn summary_line_is_informative() {
        let s = summarize(&xeon_phi_5110p());
        assert!(s.contains("60 cores"));
        assert!(s.contains("512-bit"));
    }
}
