//! Cache hierarchy descriptions.
//!
//! Latencies are stored in *core cycles* — the architecturally meaningful
//! unit — and converted to wall time with the owning core's clock. The
//! paper's measured values then fall out: e.g. the Sandy Bridge L1 at
//! 4 cycles / 2.6 GHz = 1.54 ns matches the measured 1.5 ns, and the Phi L2
//! at 24 cycles / 1.05 GHz = 22.9 ns matches exactly.

/// Position of a cache in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CacheLevel {
    /// First-level data cache (the instruction L1 is not modeled: none of
    /// the paper's benchmarks are front-end bound).
    L1,
    /// Per-core unified second-level cache.
    L2,
    /// Shared last-level cache (Sandy Bridge only; the Phi has no L3).
    L3,
}

impl CacheLevel {
    /// Report label ("L1", "L2", "L3").
    pub fn label(self) -> &'static str {
        match self {
            CacheLevel::L1 => "L1",
            CacheLevel::L2 => "L2",
            CacheLevel::L3 => "L3",
        }
    }
}

/// One level of cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSpec {
    pub level: CacheLevel,
    /// Capacity in bytes, per sharing domain (per core for L1/L2, per
    /// processor for a shared L3).
    pub size_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Set associativity.
    pub associativity: u32,
    /// Number of cores sharing one instance of this cache (1 = private).
    pub shared_by_cores: u32,
    /// Load-to-use latency in core cycles.
    pub latency_cycles: u32,
    /// Sustained single-thread read bandwidth in bytes per core cycle for a
    /// dependent-load-free streaming read that hits this level.
    /// Calibrated against Figure 6 of the paper.
    pub read_bytes_per_cycle: f64,
    /// Sustained single-thread write bandwidth in bytes per core cycle.
    pub write_bytes_per_cycle: f64,
}

impl CacheSpec {
    /// Number of sets implied by size, line and associativity.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (size not divisible by
    /// line × associativity).
    pub fn num_sets(&self) -> u64 {
        let ways_bytes = self.line_bytes as u64 * self.associativity as u64;
        assert!(
            ways_bytes > 0 && self.size_bytes.is_multiple_of(ways_bytes),
            "inconsistent cache geometry: {} B / ({} B line x {} ways)",
            self.size_bytes,
            self.line_bytes,
            self.associativity
        );
        self.size_bytes / ways_bytes
    }

    /// Load-to-use latency in nanoseconds at the given core frequency.
    pub fn latency_ns(&self, freq_ghz: f64) -> f64 {
        self.latency_cycles as f64 / freq_ghz
    }

    /// Sustained single-thread read bandwidth in GB/s at the given core
    /// frequency.
    pub fn read_bw_gbs(&self, freq_ghz: f64) -> f64 {
        self.read_bytes_per_cycle * freq_ghz
    }

    /// Sustained single-thread write bandwidth in GB/s.
    pub fn write_bw_gbs(&self, freq_ghz: f64) -> f64 {
        self.write_bytes_per_cycle * freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheSpec {
        CacheSpec {
            level: CacheLevel::L1,
            size_bytes: 32 * 1024,
            line_bytes: 64,
            associativity: 8,
            shared_by_cores: 1,
            latency_cycles: 4,
            read_bytes_per_cycle: 4.85,
            write_bytes_per_cycle: 4.0,
        }
    }

    #[test]
    fn set_count_from_geometry() {
        assert_eq!(l1().num_sets(), 64);
    }

    #[test]
    fn latency_ns_scales_with_clock() {
        let c = l1();
        assert!((c.latency_ns(2.6) - 1.538).abs() < 0.01);
        assert!((c.latency_ns(1.3) - 3.077).abs() < 0.01);
    }

    #[test]
    fn bandwidth_scales_with_clock() {
        let c = l1();
        assert!((c.read_bw_gbs(2.6) - 12.61).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "inconsistent cache geometry")]
    fn bad_geometry_is_rejected() {
        let mut c = l1();
        c.size_bytes = 1000; // not divisible by 64*8
        let _ = c.num_sets();
    }
}
