//! Core microarchitecture descriptions.

/// In-order vs out-of-order execution. The Phi's P54C-derived cores are
/// in-order, which is why it leans on 4-way hardware multithreading to hide
/// latency, while Sandy Bridge hides latency in its out-of-order window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStyle {
    InOrder,
    OutOfOrder,
}

/// Flavor of simultaneous multithreading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadingKind {
    /// Sandy Bridge HyperThreading: 2 contexts aimed at filling issue
    /// slots; can be disabled in firmware, and compute-bound codes often
    /// run *slower* with it on.
    HyperThreading,
    /// MIC hardware threads: 4 contexts aimed at hiding in-order stalls;
    /// always on, and a core cannot issue from the same context in
    /// back-to-back cycles (so ≥2 threads/core are needed to reach peak
    /// issue rate).
    HardwareThreads,
}

/// One CPU core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSpec {
    /// Base clock in GHz.
    pub freq_ghz: f64,
    /// Maximum turbo clock in GHz (None when the part has no turbo, as on
    /// the Phi).
    pub turbo_ghz: Option<f64>,
    /// Double-precision floating-point operations per cycle at peak
    /// (SIMD lanes × ports × FMA factor).
    pub flops_per_cycle: u32,
    /// SIMD vector register width in bits.
    pub simd_bits: u32,
    /// Hardware thread contexts per core.
    pub hw_threads: u32,
    pub threading: ThreadingKind,
    pub execution: ExecutionStyle,
    /// Whether a context can issue in consecutive cycles. False on the Phi:
    /// a single thread per core can use at most half the issue slots.
    pub back_to_back_issue: bool,
}

impl CoreSpec {
    /// Peak double-precision Gflop/s of one core at base clock.
    pub fn peak_gflops(&self) -> f64 {
        self.freq_ghz * self.flops_per_cycle as f64
    }

    /// SIMD lanes for 8-byte (double) elements.
    pub fn simd_dp_lanes(&self) -> u32 {
        self.simd_bits / 64
    }

    /// The fraction of peak issue rate available to `threads` resident
    /// contexts on this core.
    ///
    /// On back-to-back capable cores this is 1.0 for any thread count. On
    /// the Phi a single thread reaches at most 50% of issue slots; two or
    /// more threads can fill them.
    pub fn issue_efficiency(&self, threads: u32) -> f64 {
        assert!(
            threads >= 1 && threads <= self.hw_threads,
            "thread count {threads} outside 1..={}",
            self.hw_threads
        );
        if self.back_to_back_issue {
            1.0
        } else {
            // In-order MIC cores cannot issue back-to-back from one
            // context; additional contexts progressively fill the issue
            // slots and hide pipeline stalls.
            match threads {
                1 => 0.5,
                2 => 0.85,
                3 => 0.95,
                _ => 1.0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phi_core() -> CoreSpec {
        CoreSpec {
            freq_ghz: 1.05,
            turbo_ghz: None,
            flops_per_cycle: 16,
            simd_bits: 512,
            hw_threads: 4,
            threading: ThreadingKind::HardwareThreads,
            execution: ExecutionStyle::InOrder,
            back_to_back_issue: false,
        }
    }

    #[test]
    fn phi_core_peak_matches_table1() {
        assert!((phi_core().peak_gflops() - 16.8).abs() < 1e-9);
        assert_eq!(phi_core().simd_dp_lanes(), 8);
    }

    #[test]
    fn single_thread_on_phi_reaches_half_issue_rate() {
        let c = phi_core();
        assert_eq!(c.issue_efficiency(1), 0.5);
        assert!(c.issue_efficiency(2) > 0.5 && c.issue_efficiency(2) < 1.0);
        assert_eq!(c.issue_efficiency(4), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn issue_efficiency_rejects_overcommit() {
        let _ = phi_core().issue_efficiency(5);
    }
}
