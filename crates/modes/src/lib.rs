//! # maia-modes — the four Phi programming modes
//!
//! The paper evaluates applications in four modes (its Section 4):
//!
//! * **native host** / **native Phi** — the whole program on one device;
//!   modeled by the roofline-with-latency-concurrency engine in [`perf`].
//! * **offload** ([`offload`]) — compute regions shipped to the Phi with
//!   explicit data transfer over PCIe; an [`offload::OffloadReport`]
//!   breaks down the cost like Intel's `OFFLOAD_REPORT` (Figures 25–27).
//! * **symmetric** ([`symmetric`]) — MPI ranks spread over
//!   host + Phi0 + Phi1, with PCIe communication through the DAPL stacks
//!   (Figure 23).

pub mod faults;
pub mod offload;
pub mod perf;
pub mod symmetric;

pub use offload::{OffloadPlan, OffloadRegion, OffloadReport};
pub use perf::{DeviceTarget, KernelProfile, PerfModel};
pub use symmetric::{SymmetricLayout, SymmetricOutcome};
