//! Symmetric mode: one MPI job spanning host + Phi0 + Phi1.
//!
//! The challenge the paper highlights is load balance: the work must be
//! split so every device finishes a time step together, and the PCIe
//! communication (through whichever DAPL stack is installed) plus residual
//! imbalance decide whether the Phis help. OVERFLOW's Figure 23 shows
//! symmetric mode beating native host by 1.9× — but losing to *two
//! hosts*, because communication and imbalance eat the compute advantage.

use maia_arch::Device;
use maia_interconnect::{IbLink, NodePath, SoftwareStack};

use crate::perf::{KernelProfile, PerfModel};

/// A symmetric-mode run layout.
#[derive(Debug, Clone)]
pub struct SymmetricLayout {
    /// MPI ranks on the host and OpenMP threads per host rank.
    pub host_ranks: u32,
    pub host_threads_per_rank: u32,
    /// MPI ranks per Phi card and OpenMP threads per Phi rank.
    pub phi_ranks: u32,
    pub phi_threads_per_rank: u32,
    /// Which software stack carries the PCIe MPI traffic.
    pub stack: SoftwareStack,
    /// Fraction of the ideal split lost to discrete zone granularity
    /// (OVERFLOW zones cannot be split arbitrarily).
    pub imbalance: f64,
}

/// Breakdown of one symmetric-mode time step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymmetricOutcome {
    /// Wall time per step, seconds.
    pub step_s: f64,
    /// Compute portion (slowest device's share), seconds.
    pub compute_s: f64,
    /// PCIe/IB communication portion, seconds.
    pub comm_s: f64,
    /// Load-imbalance waste, seconds.
    pub imbalance_s: f64,
    /// Phi cards dropped from the split by the dead-card fault
    /// (0 on a healthy node).
    pub dead_cards: u32,
}

impl SymmetricLayout {
    /// Total threads on each Phi card.
    pub fn phi_threads(&self) -> u32 {
        self.phi_ranks * self.phi_threads_per_rank
    }

    /// Total threads on the host.
    pub fn host_threads(&self) -> u32 {
        self.host_ranks * self.host_threads_per_rank
    }

    /// Execute one step of `kernel` (the whole problem's per-step work)
    /// split across host + Phi0 + Phi1 in proportion to device throughput,
    /// exchanging `halo_bytes` per device pair per step.
    pub fn step(&self, kernel: &KernelProfile, halo_bytes: u64) -> SymmetricOutcome {
        let host = PerfModel::host();
        let phi = PerfModel::phi();
        // A dead card drops out of the proportional split and its halo
        // paths disappear; the job degrades to host + one Phi.
        let dead = crate::faults::dead_card();
        let phis_alive = if dead.is_some() { 1.0 } else { 2.0 };
        if let Some(card) = dead {
            crate::faults::note_mode_switch(&format!(
                "symmetric step: card {card:?} is dead; degrading to host + 1 Phi"
            ));
        }
        // Device rates on the full kernel shape (Gflop/s).
        let host_rate = kernel.flops / host.unit_time_s(kernel, self.host_threads());
        let phi_rate = kernel.flops / phi.unit_time_s(kernel, self.phi_threads());
        let total_rate = host_rate + phis_alive * phi_rate;
        // Ideal proportional split: everyone finishes simultaneously.
        let compute_s = kernel.flops / total_rate;
        let imbalance_s = compute_s * self.imbalance;
        // Halo exchange across the surviving device pairs each step; the
        // slowest path gates the step.
        let comm_s = NodePath::ALL
            .iter()
            .filter(|&&p| !dead.is_some_and(|card| path_touches(p, card)))
            .map(|&p| self.stack.message_time_s(p, halo_bytes))
            .fold(0.0f64, f64::max)
            * 2.0; // both directions
        SymmetricOutcome {
            step_s: compute_s + comm_s + imbalance_s,
            compute_s,
            comm_s,
            imbalance_s,
            dead_cards: u32::from(dead.is_some()),
        }
    }

    /// The native-host baseline for the same kernel, seconds per step.
    pub fn native_host_step(&self, kernel: &KernelProfile) -> f64 {
        PerfModel::host().unit_time_s(kernel, 16)
    }

    /// The two-host (host1 + host2 over InfiniBand) baseline, seconds per
    /// step. Two identical hosts split the zone list almost evenly, so
    /// they see only a small fraction of the heterogeneous split's
    /// imbalance.
    pub fn two_host_step(&self, kernel: &KernelProfile, halo_bytes: u64) -> f64 {
        let host = PerfModel::host();
        let rate = kernel.flops / host.unit_time_s(kernel, 16);
        let compute_s = kernel.flops / (2.0 * rate);
        let comm_s = IbLink::default().message_time_s(halo_bytes) * 2.0;
        compute_s * (1.0 + 0.2 * self.imbalance) + comm_s
    }
}

/// Does a node path have an endpoint on `card`?
fn path_touches(p: NodePath, card: Device) -> bool {
    matches!(
        (p, card),
        (NodePath::HostPhi0 | NodePath::Phi0Phi1, Device::Phi0)
            | (NodePath::HostPhi1 | NodePath::Phi0Phi1, Device::Phi1)
    )
}

/// Which device a work share landed on (for reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareDevice {
    Host,
    Phi(Device),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An OVERFLOW-like kernel: memory-bandwidth-bound implicit solver.
    fn overflow_like() -> KernelProfile {
        KernelProfile {
            name: "overflow-like".into(),
            flops: 2e10,
            dram_bytes: 6e10,
            vector_fraction: 0.85,
            // Overset-grid interpolation and implicit sweeps index
            // indirectly; a large share of the vector work gathers.
            gather_fraction: 0.35,
            parallel_fraction: 0.999,
            parallel_extent: None,
            phi_traffic_multiplier: 1.0,
        }
    }

    fn layout(stack: SoftwareStack) -> SymmetricLayout {
        SymmetricLayout {
            host_ranks: 16,
            host_threads_per_rank: 1,
            phi_ranks: 8,
            phi_threads_per_rank: 28,
            stack,
            imbalance: 0.25,
        }
    }

    #[test]
    fn symmetric_beats_native_host_by_about_1_9x() {
        let l = layout(SoftwareStack::PostUpdate);
        let k = overflow_like();
        let halo = 24 << 20;
        let sym = l.step(&k, halo).step_s;
        let native = l.native_host_step(&k);
        let boost = native / sym;
        assert!((1.5..2.3).contains(&boost), "symmetric boost {boost}");
    }

    #[test]
    fn post_update_stack_helps_symmetric_mode() {
        // Figure 23: 2%–28% gain from the software update.
        let k = overflow_like();
        let halo = 24 << 20;
        let pre = layout(SoftwareStack::PreUpdate).step(&k, halo).step_s;
        let post = layout(SoftwareStack::PostUpdate).step(&k, halo).step_s;
        let gain = pre / post - 1.0;
        assert!((0.02..0.35).contains(&gain), "update gain {gain}");
    }

    #[test]
    fn two_hosts_still_beat_symmetric_mode() {
        // The paper: "When compared to using two hosts ... the best
        // host+Phi0+Phi1 result is still worse."
        let l = layout(SoftwareStack::PostUpdate);
        let k = overflow_like();
        let halo = 24 << 20;
        assert!(l.two_host_step(&k, halo) < l.step(&k, halo).step_s);
    }

    #[test]
    fn compute_part_is_faster_than_two_hosts_compute() {
        // "host+Phi0+Phi1 ... about 15% faster than the two hosts on the
        // numerically intensive parts" — the advantage is eaten by comm +
        // imbalance.
        let l = layout(SoftwareStack::PostUpdate);
        let k = overflow_like();
        let host_rate = k.flops / PerfModel::host().unit_time_s(&k, 16);
        let two_host_compute = k.flops / (2.0 * host_rate);
        let sym = l.step(&k, 24 << 20);
        let adv = two_host_compute / sym.compute_s - 1.0;
        assert!(
            (0.05..0.40).contains(&adv),
            "compute advantage {adv} (compute {}, two-host {})",
            sym.compute_s,
            two_host_compute
        );
        assert!(sym.comm_s + sym.imbalance_s > two_host_compute - sym.compute_s);
    }
}
