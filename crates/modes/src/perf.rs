//! The application performance engine: a roofline model with a
//! latency-concurrency bandwidth ceiling.
//!
//! Time for one work unit of a kernel = serial part + parallel part,
//! where the parallel part is bounded by the slower of
//!
//! * the **compute roof**: cores × per-core peak × SIMD efficiency ×
//!   issue efficiency, and
//! * the **memory roof**: traffic / achievable bandwidth, where achievable
//!   bandwidth is the lesser of the STREAM model (`maia-mem`) and the
//!   *latency-concurrency* bound `cores × outstanding-misses ×
//!   line / memory-latency`. The concurrency bound is what separates real
//!   applications from STREAM on the Phi: an in-order core sustains ~2.5
//!   outstanding misses per thread (7.5 per core max), so applications
//!   reach ~96 GB/s of the 140–180 GB/s STREAM plateau — exactly the
//!   paper's observation that memory-bound codes underperform on the Phi.
//!
//! SIMD efficiency accounts for unvectorized fractions (worth 1/lanes)
//! and gather/scatter vector work, which the paper found nearly worthless
//! on the Phi ("the gather-scatter instruction is not efficient on Phi" —
//! vectorized sparse CG only 10% faster than scalar).

use maia_arch::{ProcessorKind, ProcessorSpec};
use maia_mem::bandwidth::stream_triad_gbs;

/// Resource signature of one application kernel, per work unit
/// (time step, iteration, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    pub name: String,
    /// Useful double-precision flops per work unit.
    pub flops: f64,
    /// DRAM traffic per work unit, bytes (unit-stride equivalent).
    pub dram_bytes: f64,
    /// Fraction of the flops inside vectorizable loops.
    pub vector_fraction: f64,
    /// Of the vectorized work, the fraction needing gather/scatter.
    pub gather_fraction: f64,
    /// Amdahl parallel fraction.
    pub parallel_fraction: f64,
    /// Iteration count of the work-shared outer loop (None = effectively
    /// unbounded). With more threads than a clean multiple of the extent,
    /// the static schedule leaves ragged rounds — the mechanism the MG
    /// `collapse` study (Figure 24) exploits.
    pub parallel_extent: Option<u32>,
    /// DRAM-traffic inflation on the Phi relative to the host (≥ 1).
    /// A core's total cache on the Phi is 5.1× smaller than on the host
    /// (544 KB vs 2.788 MB — paper Section 6.2), so codes blocked for the
    /// host's L3 spill on the Phi and move extra DRAM traffic.
    pub phi_traffic_multiplier: f64,
}

impl KernelProfile {
    /// Validate field ranges.
    ///
    /// # Panics
    /// Panics if any fraction is outside [0, 1] or a magnitude is
    /// non-positive.
    pub fn validate(&self) {
        assert!(self.flops > 0.0, "{}: flops must be positive", self.name);
        assert!(self.dram_bytes >= 0.0);
        assert!(
            self.phi_traffic_multiplier >= 1.0,
            "{}: phi_traffic_multiplier must be >= 1",
            self.name
        );
        for (label, f) in [
            ("vector_fraction", self.vector_fraction),
            ("gather_fraction", self.gather_fraction),
            ("parallel_fraction", self.parallel_fraction),
        ] {
            assert!((0.0..=1.0).contains(&f), "{}: {label} = {f}", self.name);
        }
    }

    /// Bytes of DRAM traffic per flop.
    pub fn bytes_per_flop(&self) -> f64 {
        self.dram_bytes / self.flops
    }
}

/// A device execution target: processor preset plus socket count.
#[derive(Debug, Clone)]
pub struct DeviceTarget {
    pub proc: ProcessorSpec,
    pub sockets: u32,
}

impl DeviceTarget {
    /// The two-socket Sandy Bridge host.
    pub fn host() -> Self {
        DeviceTarget {
            proc: maia_arch::presets::xeon_e5_2670(),
            sockets: 2,
        }
    }

    /// One Phi 5110P card.
    pub fn phi() -> Self {
        DeviceTarget {
            proc: maia_arch::presets::xeon_phi_5110p(),
            sockets: 1,
        }
    }

    /// Hardware threads per core implied by a total thread count
    /// (layouts fill cores before stacking contexts).
    pub fn threads_per_core(&self, threads: u32) -> u32 {
        let cores = self.sockets * self.proc.cores;
        threads.div_ceil(cores).clamp(1, self.proc.core.hw_threads)
    }

    /// Physical cores used by `threads` threads.
    pub fn cores_used(&self, threads: u32) -> u32 {
        threads.div_ceil(self.threads_per_core(threads))
    }
}

/// Per-architecture microarchitectural constants of the engine.
#[derive(Debug, Clone, Copy)]
struct UarchParams {
    /// Sustained outstanding cache-line misses per hardware thread.
    mlp_per_thread: f64,
    /// Cap on outstanding misses per core (MSHR limit).
    mlp_per_core: f64,
    /// Throughput of gather/scatter vector work relative to unit-stride
    /// vector work.
    gather_efficiency: f64,
    /// Effective DRAM traffic inflation per unit of gather fraction
    /// (partial cache-line waste).
    gather_traffic_waste: f64,
    /// Relative performance when both hardware contexts of a
    /// HyperThreaded core are used (the paper measures −6% on MG).
    ht_penalty: f64,
    /// Relative performance when the OS service core is co-opted
    /// (Figure 24: 60 cores much worse than 59).
    os_core_penalty: f64,
}

fn uarch(p: &ProcessorSpec) -> UarchParams {
    match p.kind {
        ProcessorKind::SandyBridge => UarchParams {
            // Out-of-order window + hardware prefetch: per-core bandwidth
            // saturates at one thread (Figure 6's 7.5 GB/s/core).
            mlp_per_thread: 10.0,
            mlp_per_core: 10.0,
            gather_efficiency: 0.5,
            gather_traffic_waste: 1.0,
            ht_penalty: 0.94,
            os_core_penalty: 1.0,
        },
        ProcessorKind::Mic => UarchParams {
            mlp_per_thread: 2.7,
            mlp_per_core: 8.1,
            // "the gather-scatter instruction is not efficient on Phi".
            gather_efficiency: 0.12,
            gather_traffic_waste: 3.0,
            ht_penalty: 1.0,
            os_core_penalty: 0.78,
        },
    }
}

/// The performance engine.
#[derive(Debug, Clone)]
pub struct PerfModel {
    pub target: DeviceTarget,
}

impl PerfModel {
    /// Engine for a target device.
    pub fn new(target: DeviceTarget) -> Self {
        PerfModel { target }
    }

    /// Convenience: the host engine.
    pub fn host() -> Self {
        Self::new(DeviceTarget::host())
    }

    /// Convenience: the single-Phi engine.
    pub fn phi() -> Self {
        Self::new(DeviceTarget::phi())
    }

    /// Achievable compute rate in Gflop/s for a kernel at `threads`.
    pub fn compute_roof_gflops(&self, k: &KernelProfile, threads: u32) -> f64 {
        let p = &self.target.proc;
        let u = uarch(p);
        let tpc = self.target.threads_per_core(threads);
        let cores = self.target.cores_used(threads);
        let lanes = p.core.simd_dp_lanes() as f64;
        let vf = k.vector_fraction;
        let gf = k.gather_fraction;
        let simd_eff = vf * (1.0 - gf) + vf * gf * u.gather_efficiency + (1.0 - vf) / lanes;
        let issue = p.core.issue_efficiency(tpc.min(p.core.hw_threads));
        let mut rate = cores as f64 * p.core.peak_gflops() * simd_eff * issue;
        if p.kind == ProcessorKind::SandyBridge && tpc > 1 {
            rate *= u.ht_penalty;
        }
        if cores > self.target.sockets * p.app_cores {
            rate *= u.os_core_penalty;
        }
        rate
    }

    /// Achievable memory bandwidth in GB/s at `threads`, for a kernel with
    /// the given gather traffic characteristics.
    pub fn memory_roof_gbs(&self, k: &KernelProfile, threads: u32) -> f64 {
        let p = &self.target.proc;
        let u = uarch(p);
        let tpc = self.target.threads_per_core(threads);
        let cores = self.target.cores_used(threads);
        // Latency-concurrency bound. Gather chains are dependent loads:
        // an in-order thread sustains far fewer outstanding misses on
        // them than on independent streams, which is why gather-heavy
        // codes keep speeding up through 4 threads/core (Cart3D's
        // optimum, Figure 21) while streaming codes saturate at 3.
        let per_thread_mlp = if p.kind == ProcessorKind::Mic {
            u.mlp_per_thread * (1.0 - k.gather_fraction) + 1.2 * k.gather_fraction
        } else {
            u.mlp_per_thread
        };
        let per_core_misses = (per_thread_mlp * tpc as f64).min(u.mlp_per_core);
        let line = 64.0;
        let lat_bw = cores as f64 * per_core_misses * line / p.memory.idle_latency_ns; // GB/s
        // STREAM (sustained DRAM) bound, including the GDDR5 bank cliff.
        let stream_bw = stream_triad_gbs(p, self.target.sockets, threads);
        let mut bw = lat_bw.min(stream_bw);
        // Gather/scatter wastes partial lines.
        bw /= 1.0 + k.gather_fraction * u.gather_traffic_waste;
        // Context contention on the shared per-core cache/queues: HT on
        // the host costs ~6% (Figure 25); the 4th Phi context a little
        // (3 threads/core is usually the sweet spot, Figure 19).
        if p.kind == ProcessorKind::SandyBridge && tpc > 1 {
            bw *= u.ht_penalty;
        }
        if p.kind == ProcessorKind::Mic && tpc >= p.core.hw_threads {
            bw *= 0.97;
        }
        if cores > self.target.sockets * p.app_cores {
            bw *= u.os_core_penalty;
        }
        bw
    }

    /// The traffic inflation applicable on this target.
    fn phi_traffic(&self, k: &KernelProfile) -> f64 {
        if self.target.proc.kind == ProcessorKind::Mic {
            k.phi_traffic_multiplier
        } else {
            1.0
        }
    }

    /// Rate multiplier from the finite extent of the work-shared loop:
    /// a static schedule over `extent` iterations on `threads` threads
    /// needs `ceil(extent/threads)` rounds, and the last round is ragged.
    /// Idle threads still share cores with busy ones (their contexts'
    /// issue slots and miss buffers are reusable), so the penalty is
    /// softened rather than proportional.
    pub fn extent_utilization(&self, k: &KernelProfile, threads: u32) -> f64 {
        const SOFTEN: f64 = 0.4;
        match k.parallel_extent {
            None => 1.0,
            Some(e) => {
                let e = e as f64;
                let t = threads as f64;
                let rounds = (e / t).ceil();
                let util = e / (rounds * t);
                util + (1.0 - util) * SOFTEN
            }
        }
    }

    /// Wall time in seconds for one work unit of `k` at `threads`.
    pub fn unit_time_s(&self, k: &KernelProfile, threads: u32) -> f64 {
        k.validate();
        assert!(threads >= 1);
        let pf = k.parallel_fraction;
        let util = self.extent_utilization(k, threads);
        // Parallel portion: roofline of compute and memory.
        let t_compute =
            k.flops * pf / (self.compute_roof_gflops(k, threads) * util * 1e9);
        let traffic = k.dram_bytes * pf * self.phi_traffic(k);
        let t_memory = traffic / (self.memory_roof_gbs(k, threads) * util * 1e9);
        let t_par = t_compute.max(t_memory);
        // Serial portion runs on one thread.
        let t1_compute = k.flops * (1.0 - pf) / (self.compute_roof_gflops(k, 1) * 1e9);
        let t1_memory = k.dram_bytes * (1.0 - pf) * self.phi_traffic(k)
            / (self.memory_roof_gbs(k, 1) * 1e9);
        t_par + t1_compute.max(t1_memory)
    }

    /// Achieved application rate in Gflop/s at `threads` (the unit the
    /// paper's NPB figures use).
    pub fn gflops(&self, k: &KernelProfile, threads: u32) -> f64 {
        k.flops / self.unit_time_s(k, threads) / 1e9
    }

    /// Best thread count and rate over a candidate list.
    pub fn best_threads(&self, k: &KernelProfile, candidates: &[u32]) -> (u32, f64) {
        assert!(!candidates.is_empty());
        candidates
            .iter()
            .map(|&t| (t, self.gflops(k, t)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty candidates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An MG-like kernel: bandwidth-bound, fully vectorized, unit stride.
    fn mg_like() -> KernelProfile {
        KernelProfile {
            name: "mg-like".into(),
            flops: 1e9,
            dram_bytes: 3.27e9,
            vector_fraction: 0.95,
            gather_fraction: 0.0,
            parallel_fraction: 0.9995,
            parallel_extent: None,
            phi_traffic_multiplier: 1.0,
        }
    }

    /// A CG-like kernel: sparse, indirect addressing.
    fn cg_like() -> KernelProfile {
        KernelProfile {
            name: "cg-like".into(),
            flops: 1e9,
            dram_bytes: 4.0e9,
            vector_fraction: 0.9,
            gather_fraction: 0.85,
            parallel_fraction: 0.99,
            parallel_extent: None,
            phi_traffic_multiplier: 1.0,
        }
    }

    #[test]
    fn mg_host_rate_matches_figure25() {
        // Native host, 16 threads: ~23.5 Gflop/s.
        let host = PerfModel::host();
        let r = host.gflops(&mg_like(), 16);
        assert!((r - 23.5).abs() < 1.2, "host MG rate {r}");
    }

    #[test]
    fn mg_phi_beats_host_and_peaks_at_3_threads_per_core() {
        // Native Phi: ~29.9 Gflop/s at 177 threads; 27% above host.
        let phi = PerfModel::phi();
        let r177 = phi.gflops(&mg_like(), 177);
        assert!((r177 - 29.9).abs() < 2.5, "phi MG rate {r177}");
        let r59 = phi.gflops(&mg_like(), 59);
        let r118 = phi.gflops(&mg_like(), 118);
        assert!(r177 > r118 && r118 > r59, "{r59} {r118} {r177}");
        let host = PerfModel::host().gflops(&mg_like(), 16);
        let gain = r177 / host;
        assert!((1.1..1.45).contains(&gain), "phi/host MG gain {gain}");
    }

    #[test]
    fn os_core_use_hurts_on_phi() {
        // Figure 24: 59/118/177/236 threads much better than 60/120/180/240.
        let phi = PerfModel::phi();
        let k = mg_like();
        for (good, bad) in [(59u32, 60u32), (118, 120), (177, 180), (236, 240)] {
            assert!(
                phi.gflops(&k, good) > phi.gflops(&k, bad) * 1.05,
                "{good} threads should beat {bad}"
            );
        }
    }

    #[test]
    fn hyperthreading_hurts_on_host() {
        // Figure 25: host 32 threads ~6% below 16 threads.
        let host = PerfModel::host();
        let k = mg_like();
        let r16 = host.gflops(&k, 16);
        let r32 = host.gflops(&k, 32);
        let drop = 1.0 - r32 / r16;
        assert!((0.02..0.12).contains(&drop), "HT drop {drop}");
    }

    #[test]
    fn gather_heavy_kernel_collapses_on_phi() {
        // CG on the Phi is crippled by gather/scatter; the host-to-Phi
        // ratio is much larger than for MG.
        let host = PerfModel::host();
        let phi = PerfModel::phi();
        let cg_ratio = host.gflops(&cg_like(), 16) / phi.gflops(&cg_like(), 177);
        let mg_ratio = host.gflops(&mg_like(), 16) / phi.gflops(&mg_like(), 177);
        assert!(
            cg_ratio > 1.6 * mg_ratio,
            "cg ratio {cg_ratio} vs mg ratio {mg_ratio}"
        );
        assert!(cg_ratio > 1.5, "CG must be worse on the Phi ({cg_ratio})");
    }

    #[test]
    fn single_phi_thread_is_very_slow() {
        // "Applications with significant serial regions will suffer
        // dramatically because of the relatively slow speed of a Phi core."
        let phi = PerfModel::phi();
        let host = PerfModel::host();
        let k = mg_like();
        assert!(host.gflops(&k, 1) > 5.0 * phi.gflops(&k, 1));
    }

    #[test]
    fn best_threads_picks_the_peak() {
        let phi = PerfModel::phi();
        let (t, r) = phi.best_threads(&mg_like(), &[59, 118, 177, 236]);
        assert_eq!(t, 177);
        assert!(r > 0.0);
    }

    #[test]
    #[should_panic(expected = "vector_fraction")]
    fn invalid_profile_rejected() {
        let mut k = mg_like();
        k.vector_fraction = 1.5;
        let _ = PerfModel::host().unit_time_s(&k, 16);
    }
}
