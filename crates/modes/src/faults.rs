//! Deterministic fault-injection hooks for the programming-mode models.
//!
//! The single fault here is a **dead MIC card** — the early-experience
//! reports' most dramatic failure mode. The mode models degrade
//! gracefully instead of erroring:
//!
//! * [`crate::offload::OffloadPlan::report`] targeting the dead card
//!   falls back to pricing every region on the host (no transfers, no
//!   coprocessor terms) and flags the report `degraded_to_host`;
//! * [`crate::symmetric::SymmetricLayout::step`] drops the dead card
//!   from the proportional split and from the halo-exchange paths.
//!
//! Both report the switch through the mode-switch observer so the
//! resilience report can say *which* runs changed mode. Inactive cost:
//! one relaxed atomic load, no arithmetic changes, byte-identical
//! goldens.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use maia_arch::Device;

/// 0 = no dead card, 1 = Phi0, 2 = Phi1.
static DEAD_CARD: AtomicU8 = AtomicU8::new(0);

/// Callback receiving a human-readable description of each graceful
/// mode switch taken because of the fault.
pub type ModeSwitchObserver = Arc<dyn Fn(&str) + Send + Sync>;

static OBSERVER: OnceLock<RwLock<Option<ModeSwitchObserver>>> = OnceLock::new();

fn observer_slot() -> &'static RwLock<Option<ModeSwitchObserver>> {
    OBSERVER.get_or_init(|| RwLock::new(None))
}

/// Kill (or revive) a coprocessor.
///
/// # Panics
/// Panics if asked to kill the host — only Phi cards can die here.
pub fn set_dead_card(card: Option<Device>) {
    let v = match card {
        None => 0,
        Some(Device::Phi0) => 1,
        Some(Device::Phi1) => 2,
        Some(Device::Host) => panic!("only a Phi card can be marked dead"),
    };
    DEAD_CARD.store(v, Ordering::Release);
}

/// Which card the active fault has killed, if any.
#[inline]
pub fn dead_card() -> Option<Device> {
    match DEAD_CARD.load(Ordering::Acquire) {
        1 => Some(Device::Phi0),
        2 => Some(Device::Phi1),
        _ => None,
    }
}

/// Install (or remove) the mode-switch observer. `maia-core` collects
/// these notes into the resilience report.
pub fn set_mode_switch_observer(obs: Option<ModeSwitchObserver>) {
    *observer_slot().write().unwrap_or_else(std::sync::PoisonError::into_inner) = obs;
}

/// Disarm the dead-card fault and drop the observer.
pub fn clear() {
    set_dead_card(None);
    set_mode_switch_observer(None);
}

pub(crate) fn note_mode_switch(msg: &str) {
    if let Some(obs) = observer_slot()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .as_ref()
    {
        obs(msg);
    }
}

#[cfg(test)]
mod tests {
    // Mutation tests live in the serialized cross-crate suite
    // (tests/tests/faults_resilience.rs); flipping the process-global
    // hooks here would race the calibrated mode tests in this binary.
    #[test]
    fn faults_default_inactive() {
        assert_eq!(super::dead_card(), None);
    }
}
