//! Offload mode: compute regions shipped to a Phi with explicit data
//! transfer, and the `OFFLOAD_REPORT`-style cost breakdown of Figures
//! 25–27.
//!
//! The paper decomposes offload cost into three parts (Section 6.9.1.4):
//! setup and data gather/scatter on the host, PCIe transfer time, and
//! setup and gather/scatter on the Phi. Those are exactly the terms of
//! [`OffloadPlan::report`]; the compute itself is priced by the
//! [`PerfModel`] roofline engine. Whether offload wins is then a pure
//! arithmetic question of invocation count × overhead vs. device speedup
//! — the paper's conclusion that MG offload always loses falls out.

use maia_arch::Device;
use maia_interconnect::PcieModel;

use crate::perf::{KernelProfile, PerfModel};

/// Per-invocation host-side setup (offload pragma bookkeeping, pin/copy
/// descriptor), seconds.
const HOST_SETUP_S: f64 = 25e-6;
/// Per-invocation coprocessor-side setup, seconds.
const PHI_SETUP_S: f64 = 40e-6;
/// Host-side gather/scatter staging bandwidth, GB/s.
const HOST_STAGE_GBS: f64 = 5.0;
/// Phi-side gather/scatter staging bandwidth, GB/s (single core drives
/// the copy).
const PHI_STAGE_GBS: f64 = 1.0;
/// Offloaded regions address their data through COI offload buffers and
/// re-warm caches at every region entry; measured offload kernels run
/// ~20% below their native-mode rate.
const OFFLOAD_COMPUTE_DERATE: f64 = 1.2;

/// One offloaded region.
#[derive(Debug, Clone)]
pub struct OffloadRegion {
    pub name: String,
    /// The work executed on the Phi per invocation.
    pub kernel: KernelProfile,
    /// Bytes shipped host → Phi per invocation.
    pub input_bytes: u64,
    /// Bytes shipped Phi → host per invocation.
    pub output_bytes: u64,
    /// Invocations per run.
    pub invocations: u64,
}

/// A full offload execution plan: regions on the Phi plus any residual
/// host work per run.
#[derive(Debug, Clone)]
pub struct OffloadPlan {
    pub name: String,
    pub regions: Vec<OffloadRegion>,
    /// Host-resident work per run (not offloaded).
    pub host_kernel: Option<KernelProfile>,
}

/// The cost breakdown (Figures 26–27).
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadReport {
    pub plan_name: String,
    /// Total offload invocations.
    pub invocations: u64,
    /// Total bytes crossing PCIe (both directions).
    pub bytes_transferred: u64,
    /// Host setup + staging, seconds.
    pub host_side_s: f64,
    /// PCIe wire time, seconds.
    pub pcie_s: f64,
    /// Phi setup + staging, seconds.
    pub phi_side_s: f64,
    /// Phi compute time, seconds.
    pub compute_s: f64,
    /// Residual host compute, seconds.
    pub host_compute_s: f64,
    /// True when the dead-card fault forced this plan back onto the
    /// host: every region was priced at host rates and no PCIe transfer
    /// happened.
    pub degraded_to_host: bool,
}

impl OffloadReport {
    /// Pure overhead (everything except compute), seconds — the Figure 26
    /// quantity.
    pub fn overhead_s(&self) -> f64 {
        self.host_side_s + self.pcie_s + self.phi_side_s
    }

    /// Total wall time, seconds.
    pub fn total_s(&self) -> f64 {
        self.overhead_s() + self.compute_s + self.host_compute_s
    }
}

impl OffloadPlan {
    /// Price the plan: Phi compute at `phi_threads` on `device`, host
    /// residue at `host_threads`.
    pub fn report(&self, device: Device, phi_threads: u32, host_threads: u32) -> OffloadReport {
        assert!(device.is_phi(), "offload targets a Phi card");
        if crate::faults::dead_card() == Some(device) {
            return self.host_fallback_report(device, host_threads);
        }
        let pcie = PcieModel::default();
        let phi = PerfModel::phi();
        let host = PerfModel::host();

        let mut invocations = 0u64;
        let mut bytes = 0u64;
        let mut host_side = 0.0;
        let mut wire = 0.0;
        let mut phi_side = 0.0;
        let mut compute = 0.0;
        for r in &self.regions {
            let n = r.invocations as f64;
            invocations += r.invocations;
            let io = r.input_bytes + r.output_bytes;
            bytes += io * r.invocations;
            host_side += n * (HOST_SETUP_S + io as f64 / (HOST_STAGE_GBS * 1e9));
            wire += n * (pcie.dma_time_s(device, r.input_bytes.max(1))
                + pcie.dma_time_s(device, r.output_bytes.max(1)));
            phi_side += n * (PHI_SETUP_S + io as f64 / (PHI_STAGE_GBS * 1e9));
            compute += n * phi.unit_time_s(&r.kernel, phi_threads) * OFFLOAD_COMPUTE_DERATE;
        }
        let host_compute = self
            .host_kernel
            .as_ref()
            .map_or(0.0, |k| host.unit_time_s(k, host_threads));

        OffloadReport {
            plan_name: self.name.clone(),
            invocations,
            bytes_transferred: bytes,
            host_side_s: host_side,
            pcie_s: wire,
            phi_side_s: phi_side,
            compute_s: compute,
            host_compute_s: host_compute,
            degraded_to_host: false,
        }
    }

    /// The graceful degradation taken when the offload target card is
    /// dead: every region runs on the host at host rates, no setup or
    /// staging or PCIe transfer is paid, and the mode switch is
    /// reported to the fault observer.
    fn host_fallback_report(&self, device: Device, host_threads: u32) -> OffloadReport {
        crate::faults::note_mode_switch(&format!(
            "offload plan '{}': target card {device:?} is dead; running host-only",
            self.name
        ));
        let host = PerfModel::host();
        let mut host_compute = self
            .host_kernel
            .as_ref()
            .map_or(0.0, |k| host.unit_time_s(k, host_threads));
        for r in &self.regions {
            host_compute += r.invocations as f64 * host.unit_time_s(&r.kernel, host_threads);
        }
        OffloadReport {
            plan_name: self.name.clone(),
            invocations: 0,
            bytes_transferred: 0,
            host_side_s: 0.0,
            pcie_s: 0.0,
            phi_side_s: 0.0,
            compute_s: 0.0,
            host_compute_s: host_compute,
            degraded_to_host: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(flops: f64, bytes: f64) -> KernelProfile {
        KernelProfile {
            name: "k".into(),
            flops,
            dram_bytes: bytes,
            vector_fraction: 0.95,
            gather_fraction: 0.0,
            parallel_fraction: 0.999,
            parallel_extent: None,
            phi_traffic_multiplier: 1.0,
        }
    }

    /// Three plans doing the same total work with different granularity,
    /// mirroring the paper's MG offload variants.
    fn plans() -> (OffloadPlan, OffloadPlan, OffloadPlan) {
        let total_flops = 2e10;
        let total_bytes = 4e10;
        // Whole computation: input shipped once.
        let whole = OffloadPlan {
            name: "whole".into(),
            regions: vec![OffloadRegion {
                name: "all".into(),
                kernel: kernel(total_flops, total_bytes),
                input_bytes: 500 << 20,
                output_bytes: 500 << 20,
                invocations: 1,
            }],
            host_kernel: None,
        };
        // One subroutine offloaded per step: 100 invocations, data resent.
        let subroutine = OffloadPlan {
            name: "subroutine".into(),
            regions: vec![OffloadRegion {
                name: "resid".into(),
                kernel: kernel(total_flops / 100.0, total_bytes / 100.0),
                input_bytes: 120 << 20,
                output_bytes: 60 << 20,
                invocations: 100,
            }],
            host_kernel: None,
        };
        // One loop offloaded: 1000 invocations, most transfer.
        let one_loop = OffloadPlan {
            name: "loop".into(),
            regions: vec![OffloadRegion {
                name: "resid-loop".into(),
                kernel: kernel(total_flops / 1000.0, total_bytes / 1000.0),
                input_bytes: 40 << 20,
                output_bytes: 20 << 20,
                invocations: 1000,
            }],
            host_kernel: None,
        };
        (whole, subroutine, one_loop)
    }

    #[test]
    fn figure26_overhead_ordering() {
        // "performance of offloading one main OpenMP loop is the worst and
        // the best ... is offloading the whole computation".
        let (whole, sub, lp) = plans();
        let rw = whole.report(Device::Phi0, 177, 16);
        let rs = sub.report(Device::Phi0, 177, 16);
        let rl = lp.report(Device::Phi0, 177, 16);
        assert!(rw.overhead_s() < rs.overhead_s());
        assert!(rs.overhead_s() < rl.overhead_s());
        assert!(rw.total_s() < rs.total_s() && rs.total_s() < rl.total_s());
    }

    #[test]
    fn figure27_invocations_and_volume_ordering() {
        let (whole, sub, lp) = plans();
        let rw = whole.report(Device::Phi0, 177, 16);
        let rs = sub.report(Device::Phi0, 177, 16);
        let rl = lp.report(Device::Phi0, 177, 16);
        assert!(rw.invocations < rs.invocations && rs.invocations < rl.invocations);
        assert!(rw.bytes_transferred < rs.bytes_transferred);
        assert!(rs.bytes_transferred < rl.bytes_transferred);
    }

    #[test]
    fn offload_is_slower_than_native_for_mg_like_work() {
        // Figure 25: every offload variant loses to both native modes.
        let (whole, _, _) = plans();
        let r = whole.report(Device::Phi0, 177, 16);
        let native_phi = PerfModel::phi().unit_time_s(&kernel(2e10, 4e10), 177);
        assert!(
            r.total_s() > native_phi,
            "offload {} !> native {}",
            r.total_s(),
            native_phi
        );
    }

    #[test]
    fn compute_component_is_granularity_independent() {
        let (whole, sub, lp) = plans();
        let c: Vec<f64> = [whole, sub, lp]
            .iter()
            .map(|p| p.report(Device::Phi0, 177, 16).compute_s)
            .collect();
        // Same total work: compute times agree within Amdahl noise.
        assert!((c[0] - c[1]).abs() / c[0] < 0.1, "{c:?}");
        assert!((c[0] - c[2]).abs() / c[0] < 0.15, "{c:?}");
    }

    #[test]
    #[should_panic(expected = "targets a Phi")]
    fn offload_to_host_rejected() {
        let (whole, _, _) = plans();
        let _ = whole.report(Device::Host, 16, 16);
    }
}
