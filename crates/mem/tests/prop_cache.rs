//! Property-based tests for the cache simulator and the memory models.

use maia_arch::presets;
use maia_mem::bandwidth::{per_core_bw_gbs, AccessKind};
use maia_mem::{analytic_latency_ns, SetAssocCache};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Immediately re-accessing any address always hits.
    #[test]
    fn reaccess_always_hits(
        addrs in prop::collection::vec(0u64..1_000_000, 1..200),
        assoc in 1u32..16,
    ) {
        let mut c = SetAssocCache::new(64 * 64 * assoc as u64, 64, assoc);
        for a in addrs {
            c.access(a);
            prop_assert!(c.access(a), "address {a:#x} missed right after access");
        }
    }

    /// A working set no larger than capacity never misses in steady state,
    /// regardless of the (repeating) access order.
    #[test]
    fn small_working_set_reaches_steady_state(
        n_lines in 1u64..64,
        perm_seed in any::<u64>(),
    ) {
        // Fully associative by construction: 1 set of 64 ways.
        let mut c = SetAssocCache::new(64 * 64, 64, 64);
        let mut lines: Vec<u64> = (0..n_lines).map(|i| i * 64).collect();
        // Deterministic pseudo-shuffle from the seed.
        let len = lines.len();
        for i in 0..len {
            let j = (perm_seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)
                % len as u64) as usize;
            lines.swap(i, j);
        }
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            prop_assert!(c.access(a));
        }
    }

    /// Accessing addresses never changes the cache's capacity accounting,
    /// and probe agrees with a subsequent access (a probed-resident line
    /// must hit).
    #[test]
    fn probe_is_consistent_with_access(addrs in prop::collection::vec(0u64..1u64 << 20, 1..300)) {
        let mut c = SetAssocCache::new(8 * 1024, 64, 4);
        for a in addrs {
            let resident = c.probe(a);
            let hit = c.access(a);
            prop_assert_eq!(resident, hit, "probe/access disagreed at {:#x}", a);
        }
        prop_assert_eq!(c.capacity_bytes(), 8 * 1024);
    }

    /// The analytic latency curve is monotone non-decreasing in working-set
    /// size for both processors.
    #[test]
    fn latency_monotone(ws1 in 1u64..1u64 << 30, ws2 in 1u64..1u64 << 30) {
        let (lo, hi) = if ws1 <= ws2 { (ws1, ws2) } else { (ws2, ws1) };
        for p in [presets::xeon_e5_2670(), presets::xeon_phi_5110p()] {
            prop_assert!(analytic_latency_ns(&p, lo) <= analytic_latency_ns(&p, hi) + 1e-12);
        }
    }

    /// Per-core bandwidth is monotone non-increasing in working-set size
    /// and bounded by the L1 and memory plateaus.
    #[test]
    fn bandwidth_monotone_and_bounded(ws1 in 64u64..1u64 << 30, ws2 in 64u64..1u64 << 30) {
        let (lo, hi) = if ws1 <= ws2 { (ws1, ws2) } else { (ws2, ws1) };
        for p in [presets::xeon_e5_2670(), presets::xeon_phi_5110p()] {
            for kind in [AccessKind::Read, AccessKind::Write] {
                let b_lo = per_core_bw_gbs(&p, lo, kind);
                let b_hi = per_core_bw_gbs(&p, hi, kind);
                prop_assert!(b_lo + 1e-12 >= b_hi, "bandwidth increased with size");
                let l1 = per_core_bw_gbs(&p, 64, kind);
                let mem = per_core_bw_gbs(&p, 1u64 << 33, kind);
                prop_assert!(b_lo <= l1 + 1e-9 && b_hi + 1e-9 >= mem);
            }
        }
    }
}
