//! Deterministic fault-injection hooks for the memory models.
//!
//! Early GDDR5-equipped MIC cards shipped with ECC retiring degraded
//! banks; the LRZ and TACC early-experience reports both mention memory
//! components running below spec. The single fault modeled here is
//! **GDDR5 bank degradation**: `disabled` of the 5110P's 128 open banks
//! are retired, which (a) pulls the Figure 4 open-bank cliff to a lower
//! thread count (the cliff triggers when concurrent streams exceed the
//! *surviving* banks) and (b) scales peak sustained bandwidth by the
//! surviving-bank fraction.
//!
//! As in `maia_interconnect::faults`, the inactive fast path is a single
//! relaxed atomic load and zero disabled banks takes the exact nominal
//! code path, so golden outputs stay byte-identical.

use std::sync::atomic::{AtomicU32, Ordering};

/// Retired GDDR5 banks (0 = healthy card).
static DISABLED_BANKS: AtomicU32 = AtomicU32::new(0);

/// Retire `disabled` GDDR5 banks (0 restores the healthy card).
pub fn set_gddr_disabled_banks(disabled: u32) {
    DISABLED_BANKS.store(disabled, Ordering::Release);
}

/// How many GDDR5 banks the active fault has retired.
#[inline]
pub fn gddr_disabled_banks() -> u32 {
    DISABLED_BANKS.load(Ordering::Acquire)
}

/// Disarm the memory faults.
pub fn clear() {
    set_gddr_disabled_banks(0);
}

#[cfg(test)]
mod tests {
    // Mutation tests live in the serialized cross-crate suite
    // (tests/tests/faults_resilience.rs); flipping the process-global
    // hooks here would race the calibration tests in this binary.
    #[test]
    fn faults_default_inactive() {
        assert_eq!(super::gddr_disabled_banks(), 0);
    }
}
