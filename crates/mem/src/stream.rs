//! Executable STREAM kernels (McCalpin v5.x semantics).
//!
//! These run for real on the build machine — they are the functional
//! counterpart of the Figure 4 *model* in [`crate::bandwidth`] and are used
//! by the examples, the Criterion benches, and the tests (which verify the
//! arithmetic the way the original STREAM does).
//!
//! Threading uses `std::thread::scope` with a contiguous block partition so
//! the crate needs no runtime dependency; the `maia-omp` runtime offers the
//! same kernels behind its loop scheduler for the OpenMP experiments.

use std::time::Instant;

/// Which STREAM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s * c[i]`
    Triad,
}

impl StreamKernel {
    /// All four kernels in canonical STREAM order.
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ];

    /// Bytes moved per element (reads + writes, 8-byte doubles), per the
    /// STREAM counting convention.
    pub fn bytes_per_element(self) -> u64 {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Scale => "Scale",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
        }
    }
}

/// Working arrays for the STREAM kernels.
pub struct StreamArrays {
    pub a: Vec<f64>,
    pub b: Vec<f64>,
    pub c: Vec<f64>,
    /// The scalar used by Scale and Triad.
    pub scalar: f64,
}

impl StreamArrays {
    /// Allocate and initialize per the reference benchmark
    /// (a=1, b=2, c=0, scalar=3).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "STREAM arrays must be non-empty");
        StreamArrays {
            a: vec![1.0; n],
            b: vec![2.0; n],
            c: vec![0.0; n],
            scalar: 3.0,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether the arrays are empty (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Run one kernel once across `threads` threads; returns elapsed
    /// seconds of wall time.
    pub fn run(&mut self, kernel: StreamKernel, threads: usize) -> f64 {
        assert!(threads >= 1);
        let n = self.len();
        let s = self.scalar;
        let t0 = Instant::now();
        // Split into contiguous chunks; each thread owns disjoint slices.
        match kernel {
            StreamKernel::Copy => par_zip2(&self.a, &mut self.c, threads, |a, c| {
                c.copy_from_slice(a);
            }),
            StreamKernel::Scale => par_zip2(&self.c, &mut self.b, threads, move |c, b| {
                for (bi, ci) in b.iter_mut().zip(c) {
                    *bi = s * *ci;
                }
            }),
            StreamKernel::Add => par_zip3(&self.a, &self.b, &mut self.c, threads, |a, b, c| {
                for ((ci, ai), bi) in c.iter_mut().zip(a).zip(b) {
                    *ci = *ai + *bi;
                }
            }),
            StreamKernel::Triad => par_zip3(&self.b, &self.c, &mut self.a, threads, move |b, c, a| {
                for ((ai, bi), ci) in a.iter_mut().zip(b).zip(c) {
                    *ai = *bi + s * *ci;
                }
            }),
        }
        let dt = t0.elapsed().as_secs_f64();
        let _ = n;
        dt
    }

    /// Run the full Copy→Scale→Add→Triad cycle `trials` times and return
    /// the best bandwidth in GB/s per kernel (STREAM reports best-of).
    pub fn measure(&mut self, threads: usize, trials: usize) -> Vec<(StreamKernel, f64)> {
        assert!(trials >= 1);
        let n = self.len() as u64;
        let mut best = [f64::INFINITY; 4];
        for _ in 0..trials {
            for (i, k) in StreamKernel::ALL.iter().enumerate() {
                let dt = self.run(*k, threads);
                if dt < best[i] {
                    best[i] = dt;
                }
            }
        }
        StreamKernel::ALL
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let bytes = k.bytes_per_element() * n;
                (k, bytes as f64 / best[i] / 1e9)
            })
            .collect()
    }

    /// Verify array contents after `cycles` full Copy→Scale→Add→Triad
    /// cycles, mirroring the reference benchmark's `checkSTREAMresults`.
    /// Returns the worst relative error across the three arrays.
    pub fn verification_error(&self, cycles: usize) -> f64 {
        let (mut ea, mut eb, mut ec) = (1.0f64, 2.0f64, 0.0f64);
        for _ in 0..cycles {
            ec = ea; // copy
            eb = self.scalar * ec; // scale
            ec = ea + eb; // add
            ea = eb + self.scalar * ec; // triad
        }
        let rel = |x: f64, e: f64| ((x - e) / e).abs();
        let mut worst = 0.0f64;
        for (&x, e) in self.a.iter().zip(std::iter::repeat(ea)) {
            worst = worst.max(rel(x, e));
        }
        for (&x, e) in self.b.iter().zip(std::iter::repeat(eb)) {
            worst = worst.max(rel(x, e));
        }
        for (&x, e) in self.c.iter().zip(std::iter::repeat(ec)) {
            worst = worst.max(rel(x, e));
        }
        worst
    }
}

/// Apply `f` to corresponding chunks of a source and destination slice
/// across `threads` scoped threads.
fn par_zip2<F>(src: &[f64], dst: &mut [f64], threads: usize, f: F)
where
    F: Fn(&[f64], &mut [f64]) + Sync,
{
    assert_eq!(src.len(), dst.len());
    let chunk = src.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (sa, da) in src.chunks(chunk).zip(dst.chunks_mut(chunk)) {
            s.spawn(|| f(sa, da));
        }
    });
}

/// Apply `f` to corresponding chunks of two sources and a destination.
fn par_zip3<F>(s1: &[f64], s2: &[f64], dst: &mut [f64], threads: usize, f: F)
where
    F: Fn(&[f64], &[f64], &mut [f64]) + Sync,
{
    assert_eq!(s1.len(), dst.len());
    assert_eq!(s2.len(), dst.len());
    let chunk = s1.len().div_ceil(threads);
    std::thread::scope(|s| {
        for ((a1, a2), da) in s1
            .chunks(chunk)
            .zip(s2.chunks(chunk))
            .zip(dst.chunks_mut(chunk))
        {
            s.spawn(|| f(a1, a2, da));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compute_stream_semantics() {
        let mut arr = StreamArrays::new(1000);
        arr.run(StreamKernel::Copy, 2);
        assert!(arr.c.iter().all(|&x| x == 1.0));
        arr.run(StreamKernel::Scale, 2);
        assert!(arr.b.iter().all(|&x| x == 3.0));
        arr.run(StreamKernel::Add, 2);
        assert!(arr.c.iter().all(|&x| x == 4.0));
        arr.run(StreamKernel::Triad, 2);
        assert!(arr.a.iter().all(|&x| x == 15.0));
    }

    #[test]
    fn verification_matches_reference_recurrence() {
        let mut arr = StreamArrays::new(4096);
        for _ in 0..3 {
            for k in StreamKernel::ALL {
                arr.run(k, 4);
            }
        }
        assert!(arr.verification_error(3) < 1e-13);
    }

    #[test]
    fn measure_reports_all_four_kernels() {
        let mut arr = StreamArrays::new(100_000);
        let res = arr.measure(2, 2);
        assert_eq!(res.len(), 4);
        for (k, gbs) in res {
            assert!(gbs > 0.0, "{} reported non-positive bandwidth", k.label());
        }
    }

    #[test]
    fn uneven_partition_covers_all_elements() {
        // 1000 elements across 7 threads: chunks of 143 with a ragged tail.
        let mut arr = StreamArrays::new(1000);
        arr.run(StreamKernel::Add, 7);
        assert!(arr.c.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn bytes_per_element_follows_stream_convention() {
        assert_eq!(StreamKernel::Copy.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24);
    }
}
