//! Functional set-associative cache simulator.
//!
//! This is the *mechanistic* backend for the latency experiments: a
//! pointer-chase trace run through a simulated hierarchy yields per-level
//! hit counts, and the average access latency computed from those counts
//! reproduces the measured latency plateaus of Figure 5 without any curve
//! being hard-coded.

use maia_arch::ProcessorSpec;

use crate::hierarchy::ModelHierarchy;

/// A single set-associative, write-allocate, LRU cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    line_bytes: u64,
    num_sets: u64,
    associativity: usize,
    /// `sets[s]` holds resident tags, most recently used last.
    sets: Vec<Vec<u64>>,
}

impl SetAssocCache {
    /// Build a cache from its geometry.
    ///
    /// # Panics
    /// Panics if any parameter is zero or `size` is not divisible by
    /// `line_bytes * associativity`.
    pub fn new(size_bytes: u64, line_bytes: u32, associativity: u32) -> Self {
        assert!(size_bytes > 0 && line_bytes > 0 && associativity > 0);
        let ways_bytes = line_bytes as u64 * associativity as u64;
        assert!(
            size_bytes.is_multiple_of(ways_bytes),
            "cache size {size_bytes} not divisible by line x ways = {ways_bytes}"
        );
        let num_sets = size_bytes / ways_bytes;
        SetAssocCache {
            line_bytes: line_bytes as u64,
            num_sets,
            associativity: associativity as usize,
            sets: vec![Vec::with_capacity(associativity as usize); num_sets as usize],
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_sets * self.associativity as u64 * self.line_bytes
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        ((line % self.num_sets) as usize, line / self.num_sets)
    }

    /// Access one byte address; returns `true` on hit. Misses allocate the
    /// line, evicting LRU if needed.
    pub fn access(&mut self, addr: u64) -> bool {
        let (idx, tag) = self.index_and_tag(addr);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.push(t); // move to MRU
            true
        } else {
            if set.len() == self.associativity {
                set.remove(0); // evict LRU
            }
            set.push(tag);
            false
        }
    }

    /// Whether the line containing `addr` is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (idx, tag) = self.index_and_tag(addr);
        self.sets[idx].contains(&tag)
    }

    /// Drop all contents.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// Per-level access statistics from a hierarchy simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Hits at each cache level, innermost first.
    pub level_hits: Vec<u64>,
    /// Accesses that missed every cache level.
    pub memory_accesses: u64,
    pub total: u64,
}

impl AccessStats {
    /// Hit fraction at cache level `i`.
    pub fn hit_rate(&self, level: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.level_hits[level] as f64 / self.total as f64
        }
    }

    /// Fraction of accesses served by main memory.
    pub fn memory_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.memory_accesses as f64 / self.total as f64
        }
    }
}

/// A multi-level cache hierarchy simulator for one thread of access.
///
/// Levels are looked up inner to outer; a miss at level *i* is looked up at
/// level *i+1*, and the line is allocated in every level on the way back
/// (inclusive fill, matching both Sandy Bridge's inclusive L3 and the
/// Phi's L1⊂L2 behaviour closely enough for latency accounting).
#[derive(Debug, Clone)]
pub struct HierarchySim {
    levels: Vec<SetAssocCache>,
    /// Load-to-use latency per level, then memory, in ns.
    latencies_ns: Vec<f64>,
    stats: AccessStats,
}

impl HierarchySim {
    /// Build the simulator for one processor's hierarchy.
    pub fn from_processor(p: &ProcessorSpec) -> Self {
        let model = ModelHierarchy::from_processor(p);
        let levels: Vec<SetAssocCache> = p
            .caches
            .iter()
            .map(|c| SetAssocCache::new(c.size_bytes, c.line_bytes, c.associativity))
            .collect();
        let latencies_ns = model.levels.iter().map(|l| l.latency_ns).collect();
        let n = levels.len();
        HierarchySim {
            levels,
            latencies_ns,
            stats: AccessStats {
                level_hits: vec![0; n],
                memory_accesses: 0,
                total: 0,
            },
        }
    }

    /// Access an address; returns the latency in ns of the level that
    /// served it and updates statistics.
    pub fn access(&mut self, addr: u64) -> f64 {
        self.stats.total += 1;
        let mut served: Option<usize> = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            let hit = level.access(addr);
            if hit && served.is_none() {
                served = Some(i);
                // Inclusive fill: inner levels were already updated by the
                // accesses above; outer levels keep their state (an outer
                // hit is impossible to "un-hit"). Stop filling outward on
                // the first hit — inner levels now hold the line.
                break;
            }
        }
        match served {
            Some(i) => {
                self.stats.level_hits[i] += 1;
                self.latencies_ns[i]
            }
            None => {
                self.stats.memory_accesses += 1;
                *self
                    .latencies_ns
                    .last()
                    .expect("hierarchy has a memory latency")
            }
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Reset statistics, keeping cache contents (for warm-up/measure
    /// protocols).
    pub fn reset_stats(&mut self) {
        let n = self.levels.len();
        self.stats = AccessStats {
            level_hits: vec![0; n],
            memory_accesses: 0,
            total: 0,
        };
    }

    /// Flush all cache contents and statistics.
    pub fn flush(&mut self) {
        for l in &mut self.levels {
            l.flush();
        }
        self.reset_stats();
    }

    /// Average latency per access in ns over the recorded statistics.
    pub fn average_latency_ns(&self) -> f64 {
        if self.stats.total == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, &hits) in self.stats.level_hits.iter().enumerate() {
            acc += hits as f64 * self.latencies_ns[i];
        }
        acc += self.stats.memory_accesses as f64
            * self.latencies_ns.last().copied().unwrap_or(0.0);
        acc / self.stats.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maia_arch::presets;

    #[test]
    fn repeat_access_hits() {
        let mut c = SetAssocCache::new(32 * 1024, 64, 8);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert!(!c.access(0x1040)); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        // Direct-mapped-ish: 2-way, single set of lines mapping together.
        let mut c = SetAssocCache::new(2 * 64, 64, 2); // 1 set, 2 ways
        assert_eq!(c.capacity_bytes(), 128);
        c.access(0); // A
        c.access(64); // B (different tag, same set)
        c.access(128); // C evicts A (LRU)
        assert!(!c.probe(0));
        assert!(c.probe(64));
        assert!(c.probe(128));
        // Touch B, then insert D: C is now LRU and gets evicted.
        c.access(64);
        c.access(192);
        assert!(c.probe(64));
        assert!(!c.probe(128));
    }

    #[test]
    fn working_set_within_capacity_steady_state_hits() {
        let mut c = SetAssocCache::new(4 * 1024, 64, 8);
        let lines: Vec<u64> = (0..64).map(|i| i * 64).collect(); // 4 KB
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            assert!(c.access(a), "line {a:#x} should be resident");
        }
    }

    #[test]
    fn hierarchy_latency_tracks_working_set() {
        let p = presets::xeon_e5_2670();
        let mut sim = HierarchySim::from_processor(&p);
        // 16 KB working set: after warm-up, all L1 hits at ~1.54 ns.
        let lines: Vec<u64> = (0..256).map(|i| i * 64).collect();
        for _ in 0..2 {
            for &a in &lines {
                sim.access(a);
            }
        }
        sim.reset_stats();
        for &a in &lines {
            sim.access(a);
        }
        assert_eq!(sim.stats().hit_rate(0), 1.0);
        assert!((sim.average_latency_ns() - 4.0 / 2.6).abs() < 1e-9);
    }

    #[test]
    fn hierarchy_miss_to_memory_counts() {
        let p = presets::xeon_phi_5110p();
        let mut sim = HierarchySim::from_processor(&p);
        // Touch 4 MB of distinct lines once: all cold misses to memory.
        let n = 4 * 1024 * 1024 / 64;
        for i in 0..n {
            sim.access(i * 64);
        }
        assert_eq!(sim.stats().memory_accesses, n);
        assert!((sim.average_latency_ns() - 295.0).abs() < 1e-9);
    }

    #[test]
    fn flush_clears_contents() {
        let mut sim = HierarchySim::from_processor(&presets::xeon_e5_2670());
        sim.access(0);
        sim.flush();
        assert_eq!(sim.stats().total, 0);
        // After flush, the same access misses to memory again.
        let lat = sim.access(0);
        assert!((lat - 81.0).abs() < 1e-9);
    }
}
