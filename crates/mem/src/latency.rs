//! Memory load latency experiments (paper Figure 5).
//!
//! Two implementations of the same experiment:
//!
//! * [`analytic_latency_ns`] — a closed-form capacity model: a random
//!   pointer chase over a working set of `ws` bytes hits level *l* for the
//!   fraction of the set resident there, so the average latency is the
//!   capacity-weighted blend of level latencies. Fast; used by sweeps.
//! * [`chase_latency_ns`] — runs an actual randomized pointer-chase trace
//!   through the functional cache simulator
//!   ([`crate::cache_sim::HierarchySim`]) and reports the
//!   measured average. Slower; used by tests to validate the analytic
//!   model mechanistically.

use maia_arch::ProcessorSpec;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cache_sim::HierarchySim;
use crate::hierarchy::ModelHierarchy;

/// Average load-to-use latency (ns) for a random pointer chase over a
/// working set of `ws_bytes`, from the capacity model.
pub fn analytic_latency_ns(p: &ProcessorSpec, ws_bytes: u64) -> f64 {
    assert!(ws_bytes > 0, "working set must be non-empty");
    let h = ModelHierarchy::from_processor(p);
    let ws = ws_bytes as f64;
    let mut covered = 0.0f64;
    let mut acc = 0.0f64;
    for level in &h.levels {
        let cap = if level.capacity_bytes == u64::MAX {
            f64::INFINITY
        } else {
            level.capacity_bytes as f64
        };
        let upto = cap.min(ws);
        let span = (upto - covered).max(0.0);
        acc += span / ws * level.latency_ns;
        covered = covered.max(upto);
        if covered >= ws {
            break;
        }
    }
    acc
}

/// One point of a latency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    pub working_set_bytes: u64,
    pub latency_ns: f64,
}

/// Sweep working-set sizes (powers of two from `min` to `max` with two
/// midpoints per octave) through the analytic model — the data for
/// Figure 5.
pub fn latency_sweep(p: &ProcessorSpec, min_bytes: u64, max_bytes: u64) -> Vec<LatencyPoint> {
    assert!(min_bytes > 0 && min_bytes <= max_bytes);
    let mut out = Vec::new();
    let mut ws = min_bytes;
    while ws <= max_bytes {
        for mul in [4u64, 5, 6] {
            let s = ws / 4 * mul;
            if s >= min_bytes && s <= max_bytes {
                out.push(LatencyPoint {
                    working_set_bytes: s,
                    latency_ns: analytic_latency_ns(p, s),
                });
            }
        }
        ws = ws.checked_mul(2).expect("sweep bound overflow");
    }
    out
}

/// Measure chase latency through the functional cache simulator.
///
/// Builds a random cyclic permutation of `ws_bytes / line` cache lines
/// (seeded; deterministic), warms the hierarchy with one full traversal,
/// then measures `passes` traversals.
pub fn chase_latency_ns(p: &ProcessorSpec, ws_bytes: u64, passes: u32, seed: u64) -> f64 {
    let line = 64u64;
    let n_lines = (ws_bytes / line).max(1);
    let mut order: Vec<u64> = (0..n_lines).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut sim = HierarchySim::from_processor(p);
    // Warm-up pass.
    for &l in &order {
        sim.access(l * line);
    }
    sim.reset_stats();
    for _ in 0..passes {
        for &l in &order {
            sim.access(l * line);
        }
    }
    sim.average_latency_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maia_arch::presets;

    #[test]
    fn host_plateaus_match_figure5() {
        let p = presets::xeon_e5_2670();
        // Deep inside each region the analytic model sits on the plateau.
        assert!((analytic_latency_ns(&p, 16 * 1024) - 1.54).abs() < 0.02); // L1
        let l2 = analytic_latency_ns(&p, 128 * 1024);
        assert!(l2 > 3.0 && l2 < 4.7, "L2 region: {l2}");
        let l3 = analytic_latency_ns(&p, 10 * 1024 * 1024);
        assert!(l3 > 14.0 && l3 < 15.1, "L3 region: {l3}");
        let mem = analytic_latency_ns(&p, 512 * 1024 * 1024);
        assert!(mem > 77.0 && mem < 81.1, "MEM region: {mem}");
    }

    #[test]
    fn phi_plateaus_match_figure5() {
        let p = presets::xeon_phi_5110p();
        assert!((analytic_latency_ns(&p, 16 * 1024) - 2.86).abs() < 0.03); // L1
        let l2 = analytic_latency_ns(&p, 256 * 1024);
        assert!(l2 > 20.0 && l2 < 23.0, "L2 region: {l2}");
        let mem = analytic_latency_ns(&p, 256 * 1024 * 1024);
        assert!(mem > 290.0 && mem < 295.1, "MEM region: {mem}");
    }

    #[test]
    fn phi_latency_exceeds_host_at_every_size() {
        let host = presets::xeon_e5_2670();
        let phi = presets::xeon_phi_5110p();
        for ws in [4 * 1024u64, 64 * 1024, 1 << 20, 1 << 26] {
            assert!(
                analytic_latency_ns(&phi, ws) > analytic_latency_ns(&host, ws),
                "Phi should be slower at ws={ws}"
            );
        }
    }

    #[test]
    fn latency_is_monotone_in_working_set() {
        let p = presets::xeon_e5_2670();
        let sweep = latency_sweep(&p, 1024, 1 << 28);
        for w in sweep.windows(2) {
            assert!(
                w[1].latency_ns >= w[0].latency_ns - 1e-12,
                "latency decreased from {:?} to {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn simulator_agrees_with_analytic_model_in_plateaus() {
        let p = presets::xeon_e5_2670();
        // Within-L1 working set: both give the L1 latency.
        let sim = chase_latency_ns(&p, 16 * 1024, 3, 42);
        let ana = analytic_latency_ns(&p, 16 * 1024);
        assert!((sim - ana).abs() < 0.05, "sim {sim} vs analytic {ana}");
        // L2-resident working set (past L1, within L2): close agreement.
        let sim = chase_latency_ns(&p, 128 * 1024, 3, 42);
        let ana = analytic_latency_ns(&p, 128 * 1024);
        assert!(
            (sim - ana).abs() / ana < 0.35,
            "sim {sim} vs analytic {ana}"
        );
    }
}
