//! # maia-mem — memory-hierarchy performance model and cache simulator
//!
//! Reproduces the memory-subsystem experiments of Saini et al. (SC'13):
//!
//! * **Figure 4** (STREAM triad vs threads, including the GDDR5 open-bank
//!   cliff past 128 threads) — [`bandwidth::stream_triad_gbs`], plus real
//!   executable STREAM kernels in [`stream`].
//! * **Figure 5** (load latency vs working set) — [`latency`], backed both
//!   by a closed-form capacity model and by a functional set-associative
//!   cache simulator ([`cache_sim`]) that replays pointer-chase traces.
//! * **Figure 6** (per-core read/write bandwidth vs working set) —
//!   [`bandwidth::per_core_bw_gbs`].
//!
//! All model parameters live in `maia-arch`'s presets; this crate supplies
//! the mechanisms that turn parameters into curves.

pub mod bandwidth;
pub mod cache_sim;
pub mod faults;
pub mod hierarchy;
pub mod latency;
pub mod stream;

pub use bandwidth::{per_core_bw_gbs, stream_triad_gbs, AccessKind, StreamPoint};
pub use cache_sim::{AccessStats, HierarchySim, SetAssocCache};
pub use hierarchy::{ModelHierarchy, ModelLevel};
pub use latency::{analytic_latency_ns, chase_latency_ns, latency_sweep, LatencyPoint};
pub use stream::{StreamArrays, StreamKernel};
