//! Derivation of a flat performance-model view of a processor's memory
//! hierarchy from its [`ProcessorSpec`].

use maia_arch::{CacheSpec, ProcessorSpec};

/// One level of the modeled hierarchy, with capacities and rates resolved
/// to absolute units at the core's clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelLevel {
    /// "L1", "L2", "L3" or "MEM".
    pub name: &'static str,
    /// Capacity visible to a single thread's working set, bytes.
    /// `u64::MAX` for main memory.
    pub capacity_bytes: u64,
    /// Load-to-use latency in nanoseconds.
    pub latency_ns: f64,
    /// Sustained single-thread read bandwidth, GB/s.
    pub read_gbs: f64,
    /// Sustained single-thread write bandwidth, GB/s.
    pub write_gbs: f64,
}

/// The resolved hierarchy for one processor: cache levels (L1 → LLC) then
/// main memory, with strictly increasing capacity and latency.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelHierarchy {
    pub levels: Vec<ModelLevel>,
}

fn level_name(c: &CacheSpec) -> &'static str {
    c.level.label()
}

impl ModelHierarchy {
    /// Build the model view from an architecture description.
    pub fn from_processor(p: &ProcessorSpec) -> Self {
        let f = p.core.freq_ghz;
        let mut levels: Vec<ModelLevel> = p
            .caches
            .iter()
            .map(|c| ModelLevel {
                name: level_name(c),
                capacity_bytes: c.size_bytes,
                latency_ns: c.latency_ns(f),
                read_gbs: c.read_bw_gbs(f),
                write_gbs: c.write_bw_gbs(f),
            })
            .collect();
        levels.push(ModelLevel {
            name: "MEM",
            capacity_bytes: u64::MAX,
            latency_ns: p.memory.idle_latency_ns,
            read_gbs: p.memory.per_core_read_gbs,
            write_gbs: p.memory.per_core_write_gbs,
        });
        let h = ModelHierarchy { levels };
        h.validate();
        h
    }

    /// The cache levels only (everything but main memory).
    pub fn cache_levels(&self) -> &[ModelLevel] {
        &self.levels[..self.levels.len() - 1]
    }

    /// The main-memory level.
    pub fn memory(&self) -> &ModelLevel {
        self.levels.last().expect("hierarchy always has memory")
    }

    /// Internal consistency: capacities and latencies strictly increase
    /// outward; bandwidths weakly decrease.
    fn validate(&self) {
        for w in self.levels.windows(2) {
            assert!(
                w[0].capacity_bytes < w[1].capacity_bytes,
                "capacities must increase outward: {} !< {}",
                w[0].name,
                w[1].name
            );
            assert!(
                w[0].latency_ns < w[1].latency_ns,
                "latencies must increase outward: {} !< {}",
                w[0].name,
                w[1].name
            );
            assert!(
                w[0].read_gbs >= w[1].read_gbs,
                "read bandwidth must not increase outward"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maia_arch::presets;

    #[test]
    fn host_has_four_levels_phi_three() {
        let h = ModelHierarchy::from_processor(&presets::xeon_e5_2670());
        assert_eq!(
            h.levels.iter().map(|l| l.name).collect::<Vec<_>>(),
            vec!["L1", "L2", "L3", "MEM"]
        );
        let p = ModelHierarchy::from_processor(&presets::xeon_phi_5110p());
        assert_eq!(
            p.levels.iter().map(|l| l.name).collect::<Vec<_>>(),
            vec!["L1", "L2", "MEM"]
        );
    }

    #[test]
    fn memory_level_is_terminal() {
        let h = ModelHierarchy::from_processor(&presets::xeon_e5_2670());
        assert_eq!(h.memory().name, "MEM");
        assert_eq!(h.cache_levels().len(), 3);
    }
}
