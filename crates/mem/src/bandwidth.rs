//! Bandwidth models: per-core load bandwidth vs working set (paper
//! Figure 6) and aggregate STREAM triad bandwidth vs thread count (paper
//! Figure 4), including the GDDR5 open-bank saturation cliff.

use maia_arch::{MemoryKind, ProcessorKind, ProcessorSpec};

use crate::hierarchy::ModelHierarchy;

/// Direction of a bandwidth measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Sustained single-thread bandwidth (GB/s) for streaming accesses over a
/// working set of `ws_bytes` — the Figure 6 experiment.
///
/// The model is a capacity-weighted *harmonic* blend: the time per byte is
/// the residency-weighted sum of per-level times per byte, because a
/// streaming pass spends time at each level proportionally to the fraction
/// of the working set it serves.
pub fn per_core_bw_gbs(p: &ProcessorSpec, ws_bytes: u64, kind: AccessKind) -> f64 {
    assert!(ws_bytes > 0, "working set must be non-empty");
    let h = ModelHierarchy::from_processor(p);
    let ws = ws_bytes as f64;
    let mut covered = 0.0f64;
    let mut time_per_byte = 0.0f64; // in s/GB
    for level in &h.levels {
        let cap = if level.capacity_bytes == u64::MAX {
            f64::INFINITY
        } else {
            level.capacity_bytes as f64
        };
        let upto = cap.min(ws);
        let frac = ((upto - covered) / ws).max(0.0);
        let bw = match kind {
            AccessKind::Read => level.read_gbs,
            AccessKind::Write => level.write_gbs,
        };
        time_per_byte += frac / bw;
        covered = covered.max(upto);
        if covered >= ws {
            break;
        }
    }
    1.0 / time_per_byte
}

/// Per-thread sustained STREAM-triad bandwidth, GB/s.
///
/// This is *not* the same as the Figure 6 single-load-stream plateau:
/// STREAM issues multiple independent vectorized streams per thread and is
/// prefetch-friendly. Host: derived from the per-core plateaus with the
/// triad mix (2 reads + 1 write per 24 bytes). Phi: calibrated so that 59
/// threads reach the measured 180 GB/s aggregate (Figure 4) — in-order
/// cores extract almost no additional intra-thread concurrency, so the
/// per-thread rate is pinned by the aggregate measurement.
pub fn stream_thread_gbs(p: &ProcessorSpec) -> f64 {
    match p.kind {
        ProcessorKind::SandyBridge => {
            let r = p.memory.per_core_read_gbs;
            let w = p.memory.per_core_write_gbs;
            3.0 / (2.0 / r + 1.0 / w)
        }
        ProcessorKind::Mic => 180.0 / 59.0,
    }
}

/// Aggregate sustainable STREAM bandwidth of the whole device, GB/s.
/// For the two-socket host multiply by the socket count at the caller; this
/// function describes one package.
pub fn package_sustained_gbs(p: &ProcessorSpec) -> f64 {
    p.memory.sustained_bw_gbs()
}

/// The open-bank derating factor for `threads` concurrent access streams.
///
/// GDDR5 devices expose `banks_per_device × devices` independently open
/// rows (128 on the 5110P). When more threads than open banks stream
/// concurrently, row-buffer locality collapses and the paper measures the
/// plateau dropping from 180 GB/s to 140 GB/s (Figure 4). The factor
/// 140/180 is calibrated from that figure; the *trigger* (threads >
/// banks) is the mechanism the paper identifies.
pub fn bank_derating(p: &ProcessorSpec, threads: u32) -> f64 {
    let banks = effective_banks(p);
    if p.memory.kind == MemoryKind::Gddr5 && threads > banks {
        140.0 / 180.0
    } else {
        1.0
    }
}

/// Open banks actually available: the device total minus any banks the
/// GDDR5-degradation fault has retired
/// ([`crate::faults::set_gddr_disabled_banks`]), floored at one.
fn effective_banks(p: &ProcessorSpec) -> u32 {
    p.memory
        .total_banks()
        .saturating_sub(crate::faults::gddr_disabled_banks())
        .max(1)
}

/// Bandwidth capacity factor of the GDDR5-degradation fault: the fraction
/// of banks still serving streams, 1.0 on a healthy (or non-GDDR5) card.
fn bank_capacity_factor(p: &ProcessorSpec) -> f64 {
    let disabled = crate::faults::gddr_disabled_banks();
    if disabled == 0 || p.memory.kind != MemoryKind::Gddr5 {
        return 1.0;
    }
    f64::from(effective_banks(p)) / f64::from(p.memory.total_banks())
}

/// STREAM triad aggregate bandwidth for `threads` threads on one device
/// (the host value covers both sockets) — the Figure 4 model.
pub fn stream_triad_gbs(p: &ProcessorSpec, sockets: u32, threads: u32) -> f64 {
    assert!(threads >= 1, "at least one thread required");
    let per_thread = stream_thread_gbs(p);
    let sustained = package_sustained_gbs(p) * sockets as f64 * bank_capacity_factor(p);
    (per_thread * threads as f64).min(sustained) * bank_derating(p, threads)
}

/// One point of a Figure 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPoint {
    pub threads: u32,
    pub bandwidth_gbs: f64,
}

/// Sweep thread counts for the Figure 4 series of one device.
pub fn stream_sweep(p: &ProcessorSpec, sockets: u32, thread_counts: &[u32]) -> Vec<StreamPoint> {
    thread_counts
        .iter()
        .map(|&t| StreamPoint {
            threads: t,
            bandwidth_gbs: stream_triad_gbs(p, sockets, t),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maia_arch::presets;

    #[test]
    fn figure6_plateaus_host() {
        let p = presets::xeon_e5_2670();
        // Deep in L1 the read bandwidth is the calibrated 12.6 GB/s.
        assert!((per_core_bw_gbs(&p, 16 * 1024, AccessKind::Read) - 12.6).abs() < 0.05);
        assert!((per_core_bw_gbs(&p, 16 * 1024, AccessKind::Write) - 10.4).abs() < 0.05);
        // Deep in memory it approaches 7.5 / 7.2 GB/s.
        assert!((per_core_bw_gbs(&p, 1 << 30, AccessKind::Read) - 7.5).abs() < 0.2);
        assert!((per_core_bw_gbs(&p, 1 << 30, AccessKind::Write) - 7.2).abs() < 0.2);
    }

    #[test]
    fn figure6_plateaus_phi() {
        let p = presets::xeon_phi_5110p();
        assert!((per_core_bw_gbs(&p, 16 * 1024, AccessKind::Read) - 1.68).abs() < 0.01);
        assert!((per_core_bw_gbs(&p, 256 * 1024, AccessKind::Read) - 1.02).abs() < 0.06);
        assert!((per_core_bw_gbs(&p, 1 << 28, AccessKind::Read) - 0.504).abs() < 0.01);
        assert!((per_core_bw_gbs(&p, 1 << 28, AccessKind::Write) - 0.263).abs() < 0.003);
    }

    #[test]
    fn host_read_beats_phi_by_an_order_of_magnitude() {
        let host = presets::xeon_e5_2670();
        let phi = presets::xeon_phi_5110p();
        let ratio = per_core_bw_gbs(&host, 1 << 28, AccessKind::Read)
            / per_core_bw_gbs(&phi, 1 << 28, AccessKind::Read);
        assert!(ratio > 10.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn figure4_phi_peak_and_cliff() {
        let phi = presets::xeon_phi_5110p();
        let at = |t| stream_triad_gbs(&phi, 1, t);
        assert!((at(59) - 180.0).abs() < 1.0, "59T: {}", at(59));
        assert!((at(118) - 180.0).abs() < 1.0, "118T: {}", at(118));
        assert!((at(177) - 140.0).abs() < 1.0, "177T: {}", at(177));
        assert!((at(236) - 140.0).abs() < 1.0, "236T: {}", at(236));
        // Scaling region below saturation.
        assert!(at(16) < at(32));
    }

    #[test]
    fn figure4_host_saturates_around_77_gbs() {
        let host = presets::xeon_e5_2670();
        let full = stream_triad_gbs(&host, 2, 16);
        assert!((full - 76.8).abs() < 0.5, "host 16T: {full}");
        // Host never triggers the bank cliff.
        assert_eq!(bank_derating(&host, 32), 1.0);
    }

    #[test]
    fn phi_sustained_beats_host_sustained() {
        // The Phi's key selling point: higher aggregate stream bandwidth.
        let host = presets::xeon_e5_2670();
        let phi = presets::xeon_phi_5110p();
        assert!(stream_triad_gbs(&phi, 1, 118) > stream_triad_gbs(&host, 2, 16) * 2.0);
    }

    #[test]
    fn sweep_is_well_formed() {
        let phi = presets::xeon_phi_5110p();
        let pts = stream_sweep(&phi, 1, &[1, 30, 59, 118, 177, 236]);
        assert_eq!(pts.len(), 6);
        assert!(pts[0].bandwidth_gbs < pts[2].bandwidth_gbs);
    }
}
