//! Criterion bench: real NPB kernels at small classes on the build
//! machine (functional counterparts of Figures 19/24).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}


fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("npb");
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("ep-2^18", threads), &threads, |b, &t| {
            b.iter(|| maia_npb::ep::run(18, t));
        });
        group.bench_with_input(BenchmarkId::new("mg-32^3", threads), &threads, |b, &t| {
            b.iter(|| maia_npb::mg::run_custom(32, 2, t, false));
        });
        group.bench_with_input(
            BenchmarkId::new("mg-32^3-collapsed", threads),
            &threads,
            |b, &t| {
                b.iter(|| maia_npb::mg::run_custom(32, 2, t, true));
            },
        );
        group.bench_with_input(BenchmarkId::new("cg-1400", threads), &threads, |b, &t| {
            b.iter(|| maia_npb::cg::run_custom(1400, 7, 3, 10.0, t));
        });
        group.bench_with_input(BenchmarkId::new("ft-32^3", threads), &threads, |b, &t| {
            b.iter(|| maia_npb::ft::run_custom(32, 32, 32, 2, t));
        });
        group.bench_with_input(BenchmarkId::new("sp-12^3", threads), &threads, |b, &t| {
            b.iter(|| maia_npb::sp::run_custom(12, 5, t));
        });
        group.bench_with_input(BenchmarkId::new("bt-12^3", threads), &threads, |b, &t| {
            b.iter(|| maia_npb::bt::run_custom(12, 5, t));
        });
        group.bench_with_input(BenchmarkId::new("lu-12^3", threads), &threads, |b, &t| {
            b.iter(|| maia_npb::lu::run_custom(12, 5, t));
        });
        group.bench_with_input(BenchmarkId::new("is-2^16", threads), &threads, |b, &t| {
            b.iter(|| maia_npb::is::run(16, 11, t));
        });
    }
    group.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench_kernels }
criterion_main!(benches);
