//! Criterion bench: the real STREAM kernels on the build machine —
//! the functional counterpart of the Figure 4 model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maia_mem::{StreamArrays, StreamKernel};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}


fn bench_stream(c: &mut Criterion) {
    let n = 2_000_000usize;
    let mut group = c.benchmark_group("stream");
    for kernel in StreamKernel::ALL {
        group.throughput(Throughput::Bytes(kernel.bytes_per_element() * n as u64));
        for threads in [1usize, 2, 4] {
            let mut arrays = StreamArrays::new(n);
            group.bench_with_input(
                BenchmarkId::new(kernel.label(), threads),
                &threads,
                |b, &t| {
                    b.iter(|| arrays.run(kernel, t));
                },
            );
        }
    }
    group.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench_stream }
criterion_main!(benches);
