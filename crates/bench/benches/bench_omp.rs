//! Criterion bench: construct overheads of the maia-omp runtime on the
//! build machine (EPCC methodology; cf. Figures 15-16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maia_omp::{Schedule, Team};
use std::sync::atomic::{AtomicU64, Ordering};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}


fn bench_constructs(c: &mut Criterion) {
    let mut group = c.benchmark_group("omp");
    for threads in [2usize, 4] {
        let team = Team::new(threads);
        group.bench_with_input(BenchmarkId::new("parallel", threads), &team, |b, team| {
            b.iter(|| team.parallel(|_ctx| {}));
        });
        group.bench_with_input(BenchmarkId::new("barrier", threads), &team, |b, team| {
            b.iter(|| {
                team.parallel(|ctx| {
                    for _ in 0..8 {
                        ctx.barrier();
                    }
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("atomic", threads), &team, |b, team| {
            b.iter(|| {
                let acc = AtomicU64::new(0f64.to_bits());
                team.parallel(|_ctx| {
                    for _ in 0..64 {
                        maia_omp::atomic_add_f64(&acc, 1.0);
                    }
                });
                f64::from_bits(acc.load(Ordering::SeqCst))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("dynamic-for", threads),
            &team,
            |b, team| {
                b.iter(|| {
                    team.parallel_for(0..1024, Schedule::Dynamic { chunk: 8 }, |i| {
                        std::hint::black_box(i);
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench_constructs }
criterion_main!(benches);
