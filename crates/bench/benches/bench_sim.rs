//! Criterion bench: discrete-event engine and simulated-MPI throughput
//! (how fast the reproduction itself runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maia_arch::Device;
use maia_mpi::bench::{collective_time, CollectiveOp};
use maia_sim::{Engine, SimDuration};

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}


fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.bench_function("engine-64procs-10ticks", |b| {
        b.iter(|| {
            let mut eng = Engine::new();
            for i in 0..64 {
                eng.spawn(format!("p{i}"), |ctx| {
                    for _ in 0..10 {
                        ctx.advance(SimDuration::from_ns(100.0));
                    }
                });
            }
            eng.run().unwrap()
        });
    });
    for ranks in [16usize, 59] {
        group.bench_with_input(
            BenchmarkId::new("allreduce-sim", ranks),
            &ranks,
            |b, &r| {
                let dev = if r <= 16 { Device::Host } else { Device::Phi0 };
                b.iter(|| collective_time(dev, r, 4096, CollectiveOp::Allreduce));
            },
        );
    }
    group.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench_engine }
criterion_main!(benches);
