//! # maia-bench — the experiment CLI, figure binaries and Criterion benches
//!
//! The `maia-bench` binary is the front door: `maia-bench run --all
//! --jobs 4` regenerates every table/figure of the paper in parallel
//! through `maia_core::run_experiments_parallel`, with `--only`,
//! `--format md|csv|json`, `--out DIR` and a timing summary on stderr.
//! The per-figure `fig_*` binaries are thin aliases over the same runner
//! (CSV to stdout with `--csv`, Markdown otherwise), kept for muscle
//! memory and scripts. The `report` binary writes the complete
//! EXPERIMENTS.md. Criterion benches measure the *real* kernels (STREAM,
//! EPCC constructs, NPB classes) on the build machine, and the
//! `ablation_*` binaries quantify the design choices called out in
//! DESIGN.md.

pub mod cli;

use maia_core::ExperimentId;

/// Run one experiment through the full `maia-bench run` pipeline and
/// exit with its code.
///
/// This is the whole body of every `fig_*` binary: argv is translated to
/// `run --only <code> ...` (with the legacy `--csv` spelled as
/// `--format csv`) and handed to [`cli::main_with_args`], so the alias
/// binaries share the sweep machinery, the [`cli::USAGE`] text, and the
/// exit-code contract — unknown flags exit 2 here exactly like they do
/// on `maia-bench` itself.
pub fn emit(id: ExperimentId) -> ! {
    let code = id.meta().code;
    let mut args: Vec<String> = vec!["run".into(), "--only".into(), code.into()];
    for arg in std::env::args().skip(1) {
        if arg == "--csv" {
            args.push("--format".into());
            args.push("csv".into());
        } else {
            args.push(arg);
        }
    }
    std::process::exit(cli::main_with_args(&args));
}

/// Render EXPERIMENTS.md: every experiment plus the paper's claims and
/// the oracle predicates that gate it (`maia-bench check`). Runs the
/// registry once through the profiled executor so the index can also
/// name each artifact's dominant simulated subsystem.
pub fn render_experiments_md() -> String {
    use std::collections::BTreeMap;

    maia_core::telemetry::enable();
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep = maia_core::run_selection(&maia_core::ExperimentSelection::All, jobs);
    let profile = maia_core::telemetry::collect(&sweep);
    let dominant: BTreeMap<String, String> = profile
        .experiments
        .iter()
        .map(|e| (e.code.clone(), e.dominant.clone()))
        .collect();

    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs. reproduction\n\n");
    out.push_str(
        "Regenerate any artifact with `cargo run -p maia-bench --bin fig_<id>` \
         (e.g. `fig_04`), or everything with `--bin report`. Validate every \
         paper-published shape with `maia-bench check --all` (the CI gate); \
         profile any selection with `maia-bench profile --only <ids>`.\n\n\
         Degraded-stack variants: `maia-bench faults --plan <name>` re-runs a \
         selection under a deterministic fault plan and reports the deltas. \
         The MPI-over-PCIe figures F07\u{2013}F09 respond to the `dapl-fallback` \
         and `degraded-link` faults (the `degraded-stack` plan reproduces the \
         paper's pre-update numbers), the offload transfer figure F18 to \
         `degraded-pcie` lane loss, the STREAM/GDDR figure F04 to `gddr-banks` \
         degradation, and the mode-comparison artifacts F23 and F25\u{2013}F27 \
         to a `dead-card` fault (offload and symmetric runs degrade to \
         host-only and report the mode switch).\n\n",
    );
    out.push_str(&render_conformance_index(&dominant));
    for run in &sweep.runs {
        out.push_str(&run.data.to_markdown());
        out.push_str("\n**Paper reports:**\n\n");
        for c in maia_core::paper::paper_claims(run.id) {
            out.push_str(&format!("- {}\n", c.claim));
        }
        out.push('\n');
    }
    out
}

/// The conformance index: which oracle predicates guard each artifact,
/// and which simulated subsystem dominates its virtual time (from the
/// telemetry layer; `closed-form` marks purely analytic tables).
fn render_conformance_index(dominant: &std::collections::BTreeMap<String, String>) -> String {
    use maia_core::experiments::conformance::checklist;
    let mut out = String::from("## Conformance coverage\n\n");
    out.push_str(
        "Each artifact is gated by the machine-checkable shape predicates \
         below (`maia_core::oracle`, evaluated by `maia-bench check` and \
         `tests/tests/paper_shapes.rs`). The dominant column is where the \
         artifact's modeled virtual time goes (`maia-bench profile`):\n\n",
    );
    out.push_str("| artifact | dominant subsystem | oracle predicates |\n|---|---|---|\n");
    for id in maia_core::all_experiments() {
        let checks = checklist(id);
        // The full argument lists live in the conformance report; the
        // index names just the predicate families, deduplicated.
        let mut kinds: Vec<String> = checks
            .iter()
            .map(|c| {
                c.name
                    .split_once('[')
                    .map_or(c.name.as_str(), |(head, _)| head)
                    .to_string()
            })
            .collect();
        kinds.dedup();
        let code = id.meta().code;
        out.push_str(&format!(
            "| {} | {} | {} ({} checks) |\n",
            code,
            dominant.get(code).map_or("closed-form", String::as_str),
            kinds.join(", "),
            checks.len()
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders_every_figure() {
        let md = super::render_experiments_md();
        for id in ["T1", "F4", "F14", "F19", "F27"] {
            assert!(md.contains(&format!("## {id} ")), "missing {id}");
        }
    }

    #[test]
    fn report_maps_every_artifact_to_its_predicates() {
        let md = super::render_experiments_md();
        assert!(md.contains("| artifact | dominant subsystem | oracle predicates |"));
        for id in maia_core::all_experiments() {
            assert!(
                md.contains(&format!("| {} | ", id.meta().code)),
                "conformance row for {} missing",
                id.meta().code
            );
        }
        assert!(md.contains("marked_oom") && md.contains("ratio_band"));
    }
}
