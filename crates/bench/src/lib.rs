//! # maia-bench — the experiment CLI, figure binaries and Criterion benches
//!
//! The `maia-bench` binary is the front door: `maia-bench run --all
//! --jobs 4` regenerates every table/figure of the paper in parallel
//! through `maia_core::run_experiments_parallel`, with `--only`,
//! `--format md|csv|json`, `--out DIR` and a timing summary on stderr.
//! The per-figure `fig_*` binaries are thin aliases over the same runner
//! (CSV to stdout with `--csv`, Markdown otherwise), kept for muscle
//! memory and scripts. The `report` binary writes the complete
//! EXPERIMENTS.md. Criterion benches measure the *real* kernels (STREAM,
//! EPCC constructs, NPB classes) on the build machine, and the
//! `ablation_*` binaries quantify the design choices called out in
//! DESIGN.md.

pub mod cli;

use maia_core::{run_experiment, ExperimentId};

/// Print one experiment to stdout in the format selected by argv.
///
/// This is the whole body of every `fig_*` binary: it routes through the
/// same [`maia_core::executor`] machinery the parallel sweep uses, so a
/// standalone figure run and a `maia-bench run --all` sweep produce
/// byte-identical output.
pub fn emit(id: ExperimentId) {
    let data = maia_core::executor::run_one(id);
    let csv = std::env::args().any(|a| a == "--csv");
    if csv {
        print!("{}", data.to_csv());
    } else {
        print!("{}", data.to_markdown());
    }
}

/// Render EXPERIMENTS.md: every experiment plus the paper's claims and
/// the oracle predicates that gate it (`maia-bench check`).
pub fn render_experiments_md() -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs. reproduction\n\n");
    out.push_str(
        "Regenerate any artifact with `cargo run -p maia-bench --bin fig_<id>` \
         (e.g. `fig_04`), or everything with `--bin report`. Validate every \
         paper-published shape with `maia-bench check --all` (the CI gate).\n\n",
    );
    out.push_str(&render_conformance_index());
    for id in maia_core::all_experiments() {
        let data = run_experiment(id);
        out.push_str(&data.to_markdown());
        out.push_str("\n**Paper reports:**\n\n");
        for c in maia_core::paper::paper_claims(id) {
            out.push_str(&format!("- {}\n", c.claim));
        }
        out.push('\n');
    }
    out
}

/// The conformance index: which oracle predicates guard each artifact.
fn render_conformance_index() -> String {
    use maia_core::experiments::conformance::checklist;
    let mut out = String::from("## Conformance coverage\n\n");
    out.push_str(
        "Each artifact is gated by the machine-checkable shape predicates \
         below (`maia_core::oracle`, evaluated by `maia-bench check` and \
         `tests/tests/paper_shapes.rs`):\n\n",
    );
    out.push_str("| artifact | oracle predicates |\n|---|---|\n");
    for id in maia_core::all_experiments() {
        let checks = checklist(id);
        // The full argument lists live in the conformance report; the
        // index names just the predicate families, deduplicated.
        let mut kinds: Vec<String> = checks
            .iter()
            .map(|c| {
                c.name
                    .split_once('[')
                    .map_or(c.name.as_str(), |(head, _)| head)
                    .to_string()
            })
            .collect();
        kinds.dedup();
        out.push_str(&format!(
            "| {} | {} ({} checks) |\n",
            id.meta().code,
            kinds.join(", "),
            checks.len()
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders_every_figure() {
        let md = super::render_experiments_md();
        for id in ["T1", "F4", "F14", "F19", "F27"] {
            assert!(md.contains(&format!("## {id} ")), "missing {id}");
        }
    }

    #[test]
    fn report_maps_every_artifact_to_its_predicates() {
        let md = super::render_experiments_md();
        assert!(md.contains("| artifact | oracle predicates |"));
        for id in maia_core::all_experiments() {
            assert!(
                md.contains(&format!("| {} | ", id.meta().code)),
                "conformance row for {} missing",
                id.meta().code
            );
        }
        assert!(md.contains("marked_oom") && md.contains("ratio_band"));
    }
}
