//! Regenerates the paper's F24MgCollapse artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F24MgCollapse);
}
