//! Regenerates the paper's F13Allgather artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F13Allgather);
}
