//! Regenerates the paper's F7PcieLatency artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F7PcieLatency);
}
