//! Regenerates the paper's T1Table artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::T1Table);
}
