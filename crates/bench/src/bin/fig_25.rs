//! Regenerates the paper's F25MgModes artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F25MgModes);
}
