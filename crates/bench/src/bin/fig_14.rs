//! Regenerates the paper's F14Alltoall artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F14Alltoall);
}
