//! Regenerates the paper's F5Latency artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F5Latency);
}
