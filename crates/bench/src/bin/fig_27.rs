//! Regenerates the paper's F27OffloadCost artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F27OffloadCost);
}
