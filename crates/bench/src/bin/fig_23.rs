//! Regenerates the paper's F23OverflowSymmetric artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F23OverflowSymmetric);
}
