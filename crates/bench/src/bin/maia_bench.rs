//! The `maia-bench` CLI: parallel, cached regeneration, conformance
//! checking and profiling of every table and figure. See
//! `maia_bench::cli::USAGE` for the grammar.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(maia_bench::cli::main_with_args(&args));
}
