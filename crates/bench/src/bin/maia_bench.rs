//! The `maia-bench` CLI: parallel, cached regeneration of every table
//! and figure. See `maia_bench::cli::USAGE` for the grammar.

use maia_bench::cli::{self, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match cli::parse(&args) {
        Ok(Command::Help) => {
            print!("{}", cli::USAGE);
            0
        }
        Ok(Command::List) => {
            print!("{}", cli::render_list());
            0
        }
        Ok(Command::Run(opts)) => match cli::execute_run(&opts) {
            Ok((payload, report)) => {
                print!("{payload}");
                eprint!("{}", report.timing_summary());
                0
            }
            Err(e) => {
                eprintln!("maia-bench: {e}");
                1
            }
        },
        Ok(Command::Check(opts)) => match cli::execute_check(&opts) {
            Ok((payload, report)) => {
                print!("{payload}");
                eprintln!("maia-bench check: {}", report.summary());
                cli::check_exit_code(&report)
            }
            Err(e) => {
                eprintln!("maia-bench: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("maia-bench: {e}\n\n{}", cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
