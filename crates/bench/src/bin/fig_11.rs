//! Regenerates the paper's F11Bcast artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F11Bcast);
}
