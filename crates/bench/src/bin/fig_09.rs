//! Regenerates the paper's F9UpdateGain artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F9UpdateGain);
}
