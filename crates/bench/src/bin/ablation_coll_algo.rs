//! Ablation: collective algorithm selection (DESIGN.md item 2).
//!
//! Runs Allgather on 59 simulated Phi ranks with the algorithm forced to
//! Bruck, forced to ring, and with the production size-based switch —
//! showing the Figure 13 jump is exactly the cross-over of the two
//! algorithms.

use maia_arch::Device;
use maia_mpi::{MpiWorld, WorldSpec};

fn time(bytes: u64, mode: &'static str) -> f64 {
    let spec = WorldSpec::all_on(Device::Phi0, 59);
    MpiWorld::run(&spec, move |mut rank| async move {
        match mode {
            "bruck" => rank.allgather_bruck(bytes).await,
            "ring" => rank.allgather_ring(bytes).await,
            _ => rank.allgather(bytes).await,
        }
        rank
    })
    .expect("allgather deadlocked")
    .end_time
    .as_secs_f64()
}

fn main() {
    println!("size_bytes,bruck_us,ring_us,switched_us");
    for bytes in [256u64, 1024, 2048, 4096, 8192, 32768, 131072] {
        println!(
            "{bytes},{:.1},{:.1},{:.1}",
            time(bytes, "bruck") * 1e6,
            time(bytes, "ring") * 1e6,
            time(bytes, "switched") * 1e6
        );
    }
    println!();
    println!("# Bruck wins below the switch point, ring above; the switch tracks the winner.");
}
