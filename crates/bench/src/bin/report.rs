//! Writes the full EXPERIMENTS.md (paper vs. reproduction) to the path
//! given as the first argument, or to stdout.

fn main() {
    let md = maia_bench::render_experiments_md();
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, md).expect("failed to write report");
            eprintln!("wrote {path}");
        }
        None => print!("{md}"),
    }
}
