//! Regenerates the paper's F10SendRecv artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F10SendRecv);
}
