//! Regenerates the paper's F22OverflowNative artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F22OverflowNative);
}
