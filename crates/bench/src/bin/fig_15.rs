//! Regenerates the paper's F15OmpSync artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F15OmpSync);
}
