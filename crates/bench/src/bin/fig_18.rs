//! Regenerates the paper's F18OffloadBw artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F18OffloadBw);
}
