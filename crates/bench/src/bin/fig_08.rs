//! Regenerates the paper's F8PcieBandwidth artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F8PcieBandwidth);
}
