//! Regenerates the beyond-paper A1NpbMpiMeasured validation artifact.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::A1NpbMpiMeasured);
}
