//! Regenerates the paper's F26OffloadOverhead artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F26OffloadOverhead);
}
