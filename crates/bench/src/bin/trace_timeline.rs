//! Prints a per-rank activity summary of one simulated collective from
//! the engine's scheduler trace — a text "timeline" for inspecting how
//! virtual time is spent on the fabric.
//!
//! ```text
//! cargo run -p maia-bench --bin trace_timeline -- [ranks] [bytes]
//! ```

use maia_arch::Device;
use maia_mpi::{MpiWorld, WorldSpec};
use maia_sim::TraceKind;

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let bytes: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(64 * 1024);

    let spec = WorldSpec::all_on(Device::Phi0, ranks);
    let (res, trace) = MpiWorld::run_traced(&spec, move |mut rank| async move {
        rank.allreduce(bytes).await;
        rank
    })
    .expect("allreduce deadlocked");

    println!(
        "allreduce of {bytes} B on {ranks} Phi ranks: {:.1} us total, {} scheduler events\n",
        res.end_time.as_us(),
        trace.len()
    );
    println!(
        "{:<8} {:>8} {:>9} {:>8} {:>12}",
        "rank", "resumes", "advances", "blocks", "finish (us)"
    );
    for r in 0..ranks {
        let count = |kind: TraceKind| {
            trace
                .iter()
                .filter(|t| t.pid.index() == r && t.kind == kind)
                .count()
        };
        println!(
            "rank-{:<3} {:>8} {:>9} {:>8} {:>12.2}",
            r,
            count(TraceKind::Resumed),
            count(TraceKind::Advanced),
            count(TraceKind::Blocked),
            res.rank_finish_s[r] * 1e6,
        );
    }
    println!(
        "\nfirst events: {:?}",
        trace
            .iter()
            .take(6)
            .map(|t| (t.at_ps, t.pid.index(), t.kind))
            .collect::<Vec<_>>()
    );
}
