//! Regenerates the paper's F12Allreduce artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F12Allreduce);
}
