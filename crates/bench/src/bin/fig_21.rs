//! Regenerates the paper's F21Cart3d artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F21Cart3d);
}
