//! Regenerates the beyond-paper A2OverflowHybrid validation artifact.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::A2OverflowHybrid);
}
