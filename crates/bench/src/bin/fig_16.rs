//! Regenerates the paper's F16OmpSched artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F16OmpSched);
}
