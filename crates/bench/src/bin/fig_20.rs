//! Regenerates the paper's F20NpbMpi artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F20NpbMpi);
}
