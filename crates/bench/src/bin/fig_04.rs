//! Regenerates the paper's F4Stream artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F4Stream);
}
