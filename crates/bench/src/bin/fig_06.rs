//! Regenerates the paper's F6Bandwidth artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F6Bandwidth);
}
