//! Ablation: hardware-thread oversubscription on the Phi (DESIGN.md
//! item 3): modeled NPB rates at 1-4 threads/core per benchmark.

use maia_modes::PerfModel;
use maia_npb::{class_c_profile, Benchmark};

fn main() {
    let phi = PerfModel::phi();
    println!("benchmark,phi59,phi118,phi177,phi236,best_tpc");
    for b in Benchmark::FIGURE19 {
        let k = class_c_profile(b);
        let rates: Vec<f64> = [59u32, 118, 177, 236]
            .iter()
            .map(|&t| phi.gflops(&k, t))
            .collect();
        let best = rates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i + 1)
            .unwrap();
        println!(
            "{},{:.1},{:.1},{:.1},{:.1},{}",
            b.label(),
            rates[0],
            rates[1],
            rates[2],
            rates[3],
            best
        );
    }
    println!();
    println!("# 3 threads/core is the usual sweet spot (paper Section 6.8.1).");
}
