//! Regenerates the paper's F19NpbOmp artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F19NpbOmp);
}
