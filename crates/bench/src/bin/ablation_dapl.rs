//! Ablation: what the DAPL provider switch buys (DESIGN.md item 1).
//!
//! Compares three stacks at each message size on host->Phi1 (the path
//! with the worst asymmetry): CCL-only (pre-update), the real switched
//! post-update stack, and a hypothetical SCIF-only stack approximated by
//! the post-update large-message regime.

use maia_interconnect::{NodePath, SoftwareStack};

fn main() {
    println!("size_bytes,ccl_only_gbs,switched_gbs,gain");
    for kb in [1u64, 4, 16, 64, 256, 1024, 4096] {
        let bytes = kb * 1024;
        let pre = SoftwareStack::PreUpdate.bandwidth_gbs(NodePath::HostPhi1, bytes);
        let post = SoftwareStack::PostUpdate.bandwidth_gbs(NodePath::HostPhi1, bytes);
        println!("{bytes},{pre:.3},{post:.3},{:.2}", post / pre);
    }
    println!();
    println!("# The switch only engages past 256 KB; small messages keep CCL's latency.");
}
