//! Regenerates the paper's F17Io artifact. Pass `--csv` for CSV.

fn main() {
    maia_bench::emit(maia_core::ExperimentId::F17Io);
}
