//! Argument parsing and driver for the `maia-bench` binary.
//!
//! Kept in the library (not `src/bin/`) so the parser and the render
//! paths are unit-testable without spawning processes. The grammar is
//! deliberately tiny — no external argument-parsing crate:
//!
//! ```text
//! maia-bench run   [--all] [--only F04,F21,...] [--format md|csv|json]
//!                  [--out DIR] [--jobs N] [--bench-json PATH]
//! maia-bench check [--all] [--only F04,F21,...] [--format md|json]
//!                  [--out PATH] [--jobs N]
//! maia-bench list
//! maia-bench help
//! ```

use std::path::PathBuf;

use maia_core::{
    all_experiments, run_experiments_parallel, ConformanceReport, ExperimentId, SweepReport,
};

/// Output format for experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// GitHub-flavoured Markdown (default).
    Md,
    /// Comma-separated values.
    Csv,
    /// JSON objects.
    Json,
}

impl Format {
    fn parse(text: &str) -> Result<Format, String> {
        match text {
            "md" | "markdown" => Ok(Format::Md),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format '{other}' (expected md, csv or json)")),
        }
    }

    /// File extension used with `--out`.
    pub fn extension(self) -> &'static str {
        match self {
            Format::Md => "md",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }

    fn render(self, data: &maia_core::FigureData) -> String {
        match self {
            Format::Md => data.to_markdown(),
            Format::Csv => data.to_csv(),
            Format::Json => data.to_json(),
        }
    }
}

/// Parsed `run` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Experiments to run, in request order.
    pub ids: Vec<ExperimentId>,
    /// Output format.
    pub format: Format,
    /// Write one file per experiment here instead of stdout.
    pub out: Option<PathBuf>,
    /// Worker threads.
    pub jobs: usize,
    /// Write the machine-readable timing record here.
    pub bench_json: Option<PathBuf>,
}

/// Parsed `check` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOptions {
    /// Experiments to check, in request order.
    pub ids: Vec<ExperimentId>,
    /// Report format (`csv` is rejected at parse time).
    pub format: Format,
    /// Write the report here instead of stdout.
    pub out: Option<PathBuf>,
    /// Worker threads.
    pub jobs: usize,
}

/// One parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `maia-bench run ...`
    Run(RunOptions),
    /// `maia-bench check ...`
    Check(CheckOptions),
    /// `maia-bench list`
    List,
    /// `maia-bench help` (or no arguments).
    Help,
}

/// Usage text shown by `help` and on parse errors.
pub const USAGE: &str = "\
maia-bench — regenerate and validate the paper's tables and figures

USAGE:
    maia-bench run   [--all] [--only CODES] [--format md|csv|json]
                     [--out DIR] [--jobs N] [--bench-json PATH]
    maia-bench check [--all] [--only CODES] [--format md|json]
                     [--out PATH] [--jobs N]
    maia-bench list
    maia-bench help

OPTIONS (run):
    --all              Run every experiment (default when --only absent)
    --only CODES       Comma-separated codes, e.g. F04,F21 (F4/T1 also accepted)
    --format FORMAT    md (default), csv or json
    --out DIR          Write one file per experiment (<code>.<ext>) instead of stdout
    --jobs N           Worker threads (default: available cores)
    --bench-json PATH  Write the sweep timing record (BENCH_*.json) to PATH

OPTIONS (check):
    --all              Check every experiment (default when --only absent)
    --only CODES       Restrict the conformance run to these experiments
    --format FORMAT    md (default) or json report
    --out PATH         Write the report to PATH instead of stdout
    --jobs N           Worker threads (default: available cores)

check regenerates the selected experiments and evaluates every oracle
predicate bound to them (the DESIGN.md §6 paper-shape targets); the
one-line verdict always goes to stderr.

EXIT CODES:
    0  success (run) / all predicates conformant (check)
    1  runtime failure, or conformance violations found (check)
    2  usage error (unknown subcommand, flag, experiment code or format)

Tables go to stdout (or --out DIR); the per-experiment timing summary
always goes to stderr.
";

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_only(list: &str) -> Result<Vec<ExperimentId>, String> {
    let mut ids = Vec::new();
    for code in list.split(',').filter(|s| !s.is_empty()) {
        let id = ExperimentId::parse(code).ok_or_else(|| format!("unknown experiment '{code}'"))?;
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    if ids.is_empty() {
        return Err("--only given an empty list".into());
    }
    Ok(ids)
}

/// Parse the argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("run") => {
            let mut only: Option<Vec<ExperimentId>> = None;
            let mut all = false;
            let mut format = Format::Md;
            let mut out = None;
            let mut jobs = default_jobs();
            let mut bench_json = None;
            while let Some(arg) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match arg.as_str() {
                    "--all" => all = true,
                    "--only" => only = Some(parse_only(&value("--only")?)?),
                    "--format" => format = Format::parse(&value("--format")?)?,
                    "--out" => out = Some(PathBuf::from(value("--out")?)),
                    "--jobs" => {
                        jobs = value("--jobs")?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or("--jobs requires a positive integer")?;
                    }
                    "--bench-json" => bench_json = Some(PathBuf::from(value("--bench-json")?)),
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            if all && only.is_some() {
                return Err("--all and --only are mutually exclusive".into());
            }
            Ok(Command::Run(RunOptions {
                ids: only.unwrap_or_else(all_experiments),
                format,
                out,
                jobs,
                bench_json,
            }))
        }
        Some("check") => {
            let mut only: Option<Vec<ExperimentId>> = None;
            let mut all = false;
            let mut format = Format::Md;
            let mut out = None;
            let mut jobs = default_jobs();
            while let Some(arg) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match arg.as_str() {
                    "--all" => all = true,
                    "--only" => only = Some(parse_only(&value("--only")?)?),
                    "--format" => format = Format::parse(&value("--format")?)?,
                    "--out" => out = Some(PathBuf::from(value("--out")?)),
                    "--jobs" => {
                        jobs = value("--jobs")?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or("--jobs requires a positive integer")?;
                    }
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            if all && only.is_some() {
                return Err("--all and --only are mutually exclusive".into());
            }
            if format == Format::Csv {
                return Err("check reports are md or json, not csv".into());
            }
            Ok(Command::Check(CheckOptions {
                ids: only.unwrap_or_else(all_experiments),
                format,
                out,
                jobs,
            }))
        }
        Some(other) => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Render the `list` subcommand.
pub fn render_list() -> String {
    let mut out = String::new();
    for id in all_experiments() {
        let meta = id.meta();
        out.push_str(&format!("{:<4} {}\n", meta.code, meta.title));
    }
    out
}

/// Run the sweep and render the tables in request order.
///
/// Returns the concatenated stdout payload and the report (for the
/// timing summary and `--bench-json`). With `--out`, tables are written
/// to files and the payload lists the paths instead.
pub fn execute_run(opts: &RunOptions) -> Result<(String, SweepReport), String> {
    let report = run_experiments_parallel(&opts.ids, opts.jobs);
    let mut payload = String::new();
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        for run in &report.runs {
            let path = dir.join(format!("{}.{}", run.id.meta().code, opts.format.extension()));
            std::fs::write(&path, opts.format.render(&run.data))
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            payload.push_str(&format!("{}\n", path.display()));
        }
    } else {
        for run in &report.runs {
            payload.push_str(&opts.format.render(&run.data));
            payload.push('\n');
        }
    }
    if let Some(path) = &opts.bench_json {
        std::fs::write(path, report.to_bench_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok((payload, report))
}

/// Run the conformance oracle over the selected experiments.
///
/// Returns the rendered report (markdown or JSON) and the raw
/// [`ConformanceReport`] for exit-code and summary decisions. With
/// `--out`, the report is written to the file and the payload names it.
pub fn execute_check(opts: &CheckOptions) -> Result<(String, ConformanceReport), String> {
    let report = maia_core::check(&opts.ids, opts.jobs);
    let rendered = match opts.format {
        Format::Json => report.to_json(),
        _ => report.to_markdown(),
    };
    let payload = if let Some(path) = &opts.out {
        std::fs::write(path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        format!("{}\n", path.display())
    } else {
        rendered
    };
    Ok((payload, report))
}

/// Exit code for a finished conformance run: 0 conformant, 1 violated.
///
/// Usage errors exit 2 from `main` before a report ever exists, so the
/// three-way contract (0 pass / 1 violations / 2 usage) is split between
/// this function and the parse path.
pub fn check_exit_code(report: &ConformanceReport) -> i32 {
    if report.is_conformant() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Command {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse(&owned).expect("parse failed")
    }

    #[test]
    fn run_defaults_to_all_experiments() {
        let Command::Run(opts) = parse_ok(&["run", "--jobs", "2"]) else {
            panic!("expected run");
        };
        assert_eq!(opts.ids, all_experiments());
        assert_eq!(opts.jobs, 2);
        assert_eq!(opts.format, Format::Md);
        assert!(opts.out.is_none());
    }

    #[test]
    fn only_accepts_both_code_spellings() {
        let Command::Run(opts) = parse_ok(&["run", "--only", "F04,f21,T1", "--format", "json"])
        else {
            panic!("expected run");
        };
        assert_eq!(
            opts.ids,
            vec![
                ExperimentId::F4Stream,
                ExperimentId::F21Cart3d,
                ExperimentId::T1Table
            ]
        );
        assert_eq!(opts.format, Format::Json);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        for bad in [
            vec!["run", "--only", "F99"],
            vec!["run", "--jobs", "0"],
            vec!["run", "--format", "xml"],
            vec!["run", "--all", "--only", "F04"],
            vec!["frobnicate"],
        ] {
            let owned: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse(&owned).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn list_mentions_every_code() {
        let listing = render_list();
        for id in all_experiments() {
            assert!(listing.contains(id.meta().code));
        }
    }

    #[test]
    fn run_writes_files_and_bench_json() {
        let dir = std::env::temp_dir().join("maia-bench-cli-test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions {
            ids: vec![ExperimentId::T1Table, ExperimentId::F17Io],
            format: Format::Csv,
            out: Some(dir.clone()),
            jobs: 2,
            bench_json: Some(dir.join("BENCH.json")),
        };
        let (payload, report) = execute_run(&opts).expect("run failed");
        assert!(payload.contains("T01.csv") && payload.contains("F17.csv"));
        assert_eq!(report.runs.len(), 2);
        let bench = std::fs::read_to_string(dir.join("BENCH.json")).unwrap();
        assert!(bench.contains("\"jobs\": 2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
