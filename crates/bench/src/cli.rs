//! Argument parsing and driver for the `maia-bench` binary (and, through
//! [`crate::emit`], every `fig_*` alias binary).
//!
//! Kept in the library (not `src/bin/`) so the parser and the render
//! paths are unit-testable without spawning processes. The grammar is
//! deliberately tiny — no external argument-parsing crate. Every
//! subcommand shares one flag vocabulary ([`CommonArgs`]) and one
//! experiment-selection type ([`maia_core::ExperimentSelection`]), so
//! `run`, `check` and `profile` cannot drift apart; [`USAGE`] is the
//! single source of truth for all of them, and every unknown flag exits
//! with code 2 everywhere.

use std::path::PathBuf;

use maia_core::{
    check_sweep, faults, run_selection, telemetry, ConformanceReport, ExperimentSelection,
    SweepReport,
};
use maia_mpi::fastpath::EngineMode;
use maia_mpi::process_backend::Backend;

/// Output format for experiment tables and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// GitHub-flavoured Markdown (default).
    Md,
    /// Comma-separated values.
    Csv,
    /// JSON objects.
    Json,
}

impl Format {
    fn parse(text: &str) -> Result<Format, String> {
        match text {
            "md" | "markdown" => Ok(Format::Md),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format '{other}' (expected md, csv or json)")),
        }
    }

    fn parse_report(text: &str, what: &str) -> Result<Format, String> {
        match Format::parse(text)? {
            Format::Csv => Err(format!("{what} is md or json, not csv")),
            f => Ok(f),
        }
    }

    /// File extension used with `--out`.
    pub fn extension(self) -> &'static str {
        match self {
            Format::Md => "md",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }

    fn render(self, data: &maia_core::FigureData) -> String {
        match self {
            Format::Md => data.to_markdown(),
            Format::Csv => data.to_csv(),
            Format::Json => data.to_json(),
        }
    }
}

/// The flag vocabulary every subcommand shares: which experiments, what
/// format, where to write, how many workers. Parsed by one loop so the
/// subcommands cannot diverge.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Which experiments to operate on.
    pub selection: ExperimentSelection,
    /// Output format.
    pub format: Format,
    /// Write output here instead of stdout (a directory for `run`, a
    /// file for `check`/`profile`).
    pub out: Option<PathBuf>,
    /// Worker threads.
    pub jobs: usize,
    /// Engine for the collective benchmarks: `auto` (default) takes the
    /// closed-form fast path when eligible, `des` forces the
    /// discrete-event engine, `fast` forces the closed forms.
    pub engine: EngineMode,
    /// Event wheels for partitioned (cluster) DES runs. Results are
    /// bit-identical at every count; >1 trades wall-clock for threads.
    pub partitions: usize,
    /// Exchange transport for partitioned runs: in-process channels
    /// (default) or supervised worker processes. Results are
    /// bit-identical either way.
    pub backend: Backend,
}

/// Accumulator for the shared flags; each subcommand folds its argv
/// through [`CommonParser::accept`] and keeps its own extras.
#[derive(Debug, Default)]
struct CommonParser {
    all: bool,
    only: Option<ExperimentSelection>,
    format: Option<Format>,
    out: Option<PathBuf>,
    jobs: Option<usize>,
    engine: Option<EngineMode>,
    partitions: Option<usize>,
    backend: Option<Backend>,
}

impl CommonParser {
    /// Try to consume `arg` (pulling values from `it`). Returns false if
    /// the flag is not a common one.
    fn accept(
        &mut self,
        arg: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg {
            "--all" => self.all = true,
            "--only" => self.only = Some(ExperimentSelection::from_spec(&value("--only")?)?),
            "--format" => self.format = Some(Format::parse(&value("--format")?)?),
            "--out" => self.out = Some(PathBuf::from(value("--out")?)),
            "--jobs" => {
                self.jobs = Some(
                    value("--jobs")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--jobs requires a positive integer")?,
                );
            }
            "--engine" => self.engine = Some(EngineMode::parse(&value("--engine")?)?),
            "--partitions" => {
                self.partitions = Some(
                    value("--partitions")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--partitions requires a positive integer")?,
                );
            }
            "--backend" => {
                let spec = value("--backend")?;
                self.backend = Some(
                    Backend::parse(&spec)
                        .ok_or_else(|| format!("unknown backend '{spec}' (channel or process)"))?,
                );
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn finish(self) -> Result<CommonArgs, String> {
        if self.all && self.only.is_some() {
            return Err("--all and --only are mutually exclusive".into());
        }
        Ok(CommonArgs {
            selection: self.only.unwrap_or(ExperimentSelection::All),
            format: self.format.unwrap_or(Format::Md),
            out: self.out,
            jobs: self.jobs.unwrap_or_else(default_jobs),
            engine: self.engine.unwrap_or(EngineMode::Auto),
            partitions: self.partitions.unwrap_or(1),
            backend: self.backend.unwrap_or(Backend::Channel),
        })
    }
}

/// Parsed `run` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Shared flags.
    pub common: CommonArgs,
    /// Write the machine-readable timing record here.
    pub bench_json: Option<PathBuf>,
    /// Emit a telemetry metrics report to stderr in this format.
    pub metrics: Option<Format>,
}

/// Parsed `check` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOptions {
    /// Shared flags (`format` restricted to md/json at parse time).
    pub common: CommonArgs,
    /// Emit a telemetry metrics report to stderr in this format.
    pub metrics: Option<Format>,
}

/// Parsed `profile` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOptions {
    /// Shared flags; `--metrics md|json` (alias of `--format` here)
    /// picks the report format written to stdout or `--out`.
    pub common: CommonArgs,
    /// Write a Chrome trace-event JSON file (Perfetto-loadable) here.
    pub trace: Option<PathBuf>,
}

/// Parsed `faults` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsOptions {
    /// Shared flags (`format` restricted to md/json at parse time).
    pub common: CommonArgs,
    /// Canned plan name or path to a fault-plan file.
    pub plan: String,
}

/// Parsed `crosscheck` subcommand (no experiment selection: the scope
/// is exactly the figures with closed-form fast paths, F10–F14).
#[derive(Debug, Clone, PartialEq)]
pub struct CrosscheckOptions {
    /// Worker threads.
    pub jobs: usize,
    /// Event wheels for the partitioned (cluster) DES cells.
    pub partitions: usize,
    /// Write the report here instead of stdout.
    pub out: Option<PathBuf>,
}

/// One parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `maia-bench run ...`
    Run(RunOptions),
    /// `maia-bench check ...`
    Check(CheckOptions),
    /// `maia-bench profile ...`
    Profile(ProfileOptions),
    /// `maia-bench faults ...`
    Faults(FaultsOptions),
    /// `maia-bench crosscheck ...`
    Crosscheck(CrosscheckOptions),
    /// `maia-bench list`
    List,
    /// `maia-bench partition-worker --wheel W --partitions N` — internal:
    /// host one event wheel of a partitioned run, speaking the wire
    /// protocol on stdin/stdout. Spawned by the supervisor, not by hand.
    PartitionWorker {
        /// The wheel this process hosts (`1..partitions`).
        wheel: usize,
        /// Total wheel count of the run.
        partitions: usize,
    },
    /// `maia-bench help` (or no arguments).
    Help,
}

/// Usage text shown by `help` and on parse errors — the one source of
/// truth for every entry point, `fig_*` binaries included.
pub const USAGE: &str = "\
maia-bench — regenerate, validate and profile the paper's tables and figures

USAGE:
    maia-bench run     [COMMON] [--bench-json PATH] [--metrics md|json]
    maia-bench check   [COMMON] [--metrics md|json]
    maia-bench profile [COMMON] [--trace PATH] [--metrics md|json]
    maia-bench faults  [COMMON] --plan NAME|FILE
    maia-bench crosscheck [--jobs N] [--partitions N] [--out PATH]
    maia-bench list
    maia-bench help
    maia-bench partition-worker --wheel W --partitions N   (internal: one
                       event wheel of a --backend process run; spawned by
                       the supervisor, protocol on stdin/stdout)

COMMON OPTIONS (shared by run, check, profile and faults):
    --all              Select every experiment (default when --only absent)
    --only CODES       Comma-separated codes: F04,F21 (also f4, fig_04, table1)
    --format FORMAT    md (default), csv or json (reports: md or json only)
    --out PATH         run: directory, one file per experiment; check/profile:
                       write the report to this file instead of stdout
    --jobs N           Worker threads (default: available cores)
    --engine MODE      auto (default), des or fast. The collective figures
                       (F10-F14) normally take an exact closed-form fast path;
                       des forces every cell through the discrete-event engine
                       (for debugging), fast forces the closed forms even when
                       a fault plan or probe would otherwise demand the DES
    --partitions N     Event wheels for the partitioned cluster DES (C01,
                       C02): one pooled worker thread per wheel, domains
                       folded round-robin. Figure data and virtual-side
                       telemetry are bit-identical at every N (default 1);
                       N > 1 only changes wall-clock time
    --backend B        Exchange transport for partitioned cluster runs:
                       channel (default; wheels on threads) or process
                       (wheels 1..N in supervised worker processes with
                       heartbeats, seeded retry/backoff respawn, and
                       graceful degradation to in-process execution).
                       Figure data and virtual-side telemetry are
                       bit-identical across backends. Supervision knobs:
                       MAIA_SUPERVISE_RETRIES (default 2),
                       MAIA_SUPERVISE_DEGRADE=0 to fail instead of
                       degrading, MAIA_SUPERVISE_HEARTBEAT_MS (default 100)

run:
    --bench-json PATH  Write the sweep timing record (BENCH_*.json) to PATH
    --metrics FORMAT   Also print the telemetry metrics report to stderr

check:
    --metrics FORMAT   Also print the telemetry metrics report to stderr
    Regenerates the selected experiments and evaluates every oracle
    predicate bound to them; the one-line verdict goes to stderr.

profile:
    --trace PATH       Write a Chrome trace-event JSON file (load it in
                       Perfetto or chrome://tracing)
    --metrics FORMAT   Report format for stdout/--out: md (default) or json
    Runs the selection with the instrumentation layer enabled and reports
    event counts, cache hits/misses, per-subsystem virtual time, scheduler
    activity and worker utilization. All virtual-time fields are
    bit-identical across runs at a fixed --jobs; wall-clock fields live in
    a separate 'wall' section (cat \"wall\" in the trace).

faults:
    --plan NAME|FILE   Canned plan (degraded-stack, dead-card, gddr-degraded,
                       straggler) or a fault-plan text file
    Runs the selection twice — nominal, then with the plan's deterministic
    faults armed — and reports per-experiment deltas, injected model time
    and mode switches. Same plan + seed + --jobs => bit-identical report.

crosscheck:
    Computes every F10-F14 and C01-C02 cell twice — once on the
    discrete-event engine (the cluster cells run partitioned at
    --partitions N), once through the closed-form fast paths — and
    compares the formatted tables cell by cell. Exits 0 on an exact
    match, 1 on any mismatch.

EXIT CODES (shared by every subcommand):
    0  success: every experiment completed (check: and all predicates
       conformant)
    1  conformance violations (check), experiment failures isolated by the
       fail-soft executor (panic/deadlock/timeout; partial report is still
       printed), or any other runtime failure
    2  usage error (unknown subcommand, flag, experiment code or format)

Tables go to stdout (or --out); the per-experiment timing summary always
goes to stderr. A sweep with failures still prints every completed
experiment before exiting 1.
";

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parse the argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("partition-worker") => {
            let mut wheel = None;
            let mut partitions = None;
            while let Some(arg) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match arg.as_str() {
                    "--wheel" => {
                        wheel = Some(
                            value("--wheel")?
                                .parse::<usize>()
                                .map_err(|_| "--wheel requires an integer".to_string())?,
                        );
                    }
                    "--partitions" => {
                        partitions = Some(
                            value("--partitions")?
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n >= 2)
                                .ok_or("--partitions requires an integer >= 2")?,
                        );
                    }
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            let wheel = wheel.ok_or("partition-worker requires --wheel")?;
            let partitions = partitions.ok_or("partition-worker requires --partitions")?;
            if wheel == 0 || wheel >= partitions {
                return Err(format!("--wheel must be in 1..{partitions} (hub owns wheel 0)"));
            }
            Ok(Command::PartitionWorker { wheel, partitions })
        }
        Some("run") => {
            let mut common = CommonParser::default();
            let mut bench_json = None;
            let mut metrics = None;
            while let Some(arg) = it.next() {
                if common.accept(arg, &mut it)? {
                    continue;
                }
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match arg.as_str() {
                    "--bench-json" => bench_json = Some(PathBuf::from(value("--bench-json")?)),
                    "--metrics" => {
                        metrics = Some(Format::parse_report(&value("--metrics")?, "--metrics")?)
                    }
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            Ok(Command::Run(RunOptions {
                common: common.finish()?,
                bench_json,
                metrics,
            }))
        }
        Some("check") => {
            let mut common = CommonParser::default();
            let mut metrics = None;
            while let Some(arg) = it.next() {
                if common.accept(arg, &mut it)? {
                    continue;
                }
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match arg.as_str() {
                    "--metrics" => {
                        metrics = Some(Format::parse_report(&value("--metrics")?, "--metrics")?)
                    }
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            let common = common.finish()?;
            if common.format == Format::Csv {
                return Err("check reports are md or json, not csv".into());
            }
            Ok(Command::Check(CheckOptions { common, metrics }))
        }
        Some("profile") => {
            let mut common = CommonParser::default();
            let mut trace = None;
            let mut metrics = None;
            while let Some(arg) = it.next() {
                if common.accept(arg, &mut it)? {
                    continue;
                }
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match arg.as_str() {
                    "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
                    "--metrics" => {
                        metrics = Some(Format::parse_report(&value("--metrics")?, "--metrics")?)
                    }
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            let mut common = common.finish()?;
            if common.format == Format::Csv {
                return Err("profile reports are md or json, not csv".into());
            }
            // `--metrics` is the documented spelling for the profile
            // report format; it wins over `--format` when both appear.
            if let Some(m) = metrics {
                common.format = m;
            }
            Ok(Command::Profile(ProfileOptions { common, trace }))
        }
        Some("faults") => {
            let mut common = CommonParser::default();
            let mut plan = None;
            while let Some(arg) = it.next() {
                if common.accept(arg, &mut it)? {
                    continue;
                }
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match arg.as_str() {
                    "--plan" => plan = Some(value("--plan")?),
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            let common = common.finish()?;
            if common.format == Format::Csv {
                return Err("faults reports are md or json, not csv".into());
            }
            let plan = plan.ok_or("faults requires --plan NAME|FILE")?;
            Ok(Command::Faults(FaultsOptions { common, plan }))
        }
        Some("crosscheck") => {
            let mut jobs = None;
            let mut partitions = None;
            let mut out = None;
            while let Some(arg) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} requires a value"))
                };
                match arg.as_str() {
                    "--jobs" => {
                        jobs = Some(
                            value("--jobs")?
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n >= 1)
                                .ok_or("--jobs requires a positive integer")?,
                        );
                    }
                    "--partitions" => {
                        partitions = Some(
                            value("--partitions")?
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n >= 1)
                                .ok_or("--partitions requires a positive integer")?,
                        );
                    }
                    "--out" => out = Some(PathBuf::from(value("--out")?)),
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            Ok(Command::Crosscheck(CrosscheckOptions {
                jobs: jobs.unwrap_or_else(default_jobs),
                partitions: partitions.unwrap_or(1),
                out,
            }))
        }
        Some(other) => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Resolve `--plan`: a canned name first, else a fault-plan text file.
pub fn resolve_plan(spec: &str) -> Result<faults::FaultPlan, String> {
    if let Some(plan) = faults::FaultPlan::named(spec) {
        return Ok(plan);
    }
    let path = std::path::Path::new(spec);
    if path.exists() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading fault plan {spec}: {e}"))?;
        return faults::FaultPlan::parse(&text);
    }
    Err(format!(
        "unknown fault plan '{spec}' (canned plans: {}; or pass a plan file)",
        faults::PLAN_NAMES.join(", ")
    ))
}

/// Render the `list` subcommand.
pub fn render_list() -> String {
    let mut out = String::new();
    for id in maia_core::all_experiments() {
        let meta = id.meta();
        out.push_str(&format!("{:<4} {}\n", meta.code, meta.title));
    }
    out
}

/// Result of `run`: stdout payload, the sweep (timing summary), and the
/// optional `--metrics` report for stderr.
pub struct RunOutcome {
    /// Concatenated tables, or the written file paths with `--out`.
    pub payload: String,
    /// The sweep, for the stderr timing summary and `--bench-json`.
    pub report: SweepReport,
    /// Rendered telemetry report when `--metrics` was given.
    pub metrics: Option<String>,
}

/// Run the sweep and render the tables in request order.
pub fn execute_run(opts: &RunOptions) -> Result<RunOutcome, String> {
    apply_process_globals(&opts.common);
    if opts.metrics.is_some() {
        telemetry::enable();
    }
    let report = run_selection(&opts.common.selection, opts.common.jobs);
    let mut payload = String::new();
    if let Some(dir) = &opts.common.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        for run in &report.runs {
            let path = dir.join(format!(
                "{}.{}",
                run.id.meta().code,
                opts.common.format.extension()
            ));
            std::fs::write(&path, opts.common.format.render(&run.data))
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            payload.push_str(&format!("{}\n", path.display()));
        }
    } else {
        for run in &report.runs {
            payload.push_str(&opts.common.format.render(&run.data));
            payload.push('\n');
        }
    }
    if let Some(path) = &opts.bench_json {
        std::fs::write(path, report.to_bench_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    let metrics = opts
        .metrics
        .map(|fmt| render_metrics(&telemetry::collect(&report), fmt));
    Ok(RunOutcome {
        payload,
        report,
        metrics,
    })
}

/// Result of `check`.
pub struct CheckOutcome {
    /// Rendered report, or the written file path with `--out`.
    pub payload: String,
    /// The raw conformance results (exit code, stderr summary).
    pub report: ConformanceReport,
    /// Experiments the fail-soft executor lost while regenerating the
    /// selection (forces exit 1 even when every surviving predicate
    /// passes).
    pub failures: Vec<maia_core::ExperimentFailure>,
    /// Rendered telemetry report when `--metrics` was given.
    pub metrics: Option<String>,
}

/// Run the conformance oracle over the selected experiments.
pub fn execute_check(opts: &CheckOptions) -> Result<CheckOutcome, String> {
    apply_process_globals(&opts.common);
    if opts.metrics.is_some() {
        telemetry::enable();
    }
    let sweep = run_selection(&opts.common.selection, opts.common.jobs);
    let report = check_sweep(&sweep);
    let rendered = match opts.common.format {
        Format::Json => report.to_json(),
        _ => report.to_markdown(),
    };
    let payload = if let Some(path) = &opts.common.out {
        std::fs::write(path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        format!("{}\n", path.display())
    } else {
        rendered
    };
    let metrics = opts
        .metrics
        .map(|fmt| render_metrics(&telemetry::collect(&sweep), fmt));
    Ok(CheckOutcome {
        payload,
        report,
        failures: sweep.failures,
        metrics,
    })
}

/// Result of `profile`.
pub struct ProfileOutcome {
    /// Rendered metrics report, or the written file path with `--out`.
    pub payload: String,
    /// The underlying sweep (stderr timing summary).
    pub report: SweepReport,
}

/// Run the selection with instrumentation enabled and build the profile.
pub fn execute_profile(opts: &ProfileOptions) -> Result<ProfileOutcome, String> {
    apply_process_globals(&opts.common);
    telemetry::enable();
    let report = run_selection(&opts.common.selection, opts.common.jobs);
    let profile = telemetry::collect(&report);
    if let Some(path) = &opts.trace {
        std::fs::write(path, profile.to_chrome_trace())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    let rendered = render_metrics(&profile, opts.common.format);
    let payload = if let Some(path) = &opts.common.out {
        std::fs::write(path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        format!("{}\n", path.display())
    } else {
        rendered
    };
    Ok(ProfileOutcome { payload, report })
}

/// Result of `faults`.
pub struct FaultsOutcome {
    /// Rendered resilience report, or the written file path with `--out`.
    pub payload: String,
    /// The raw report (exit code: nonzero when either sweep lost
    /// experiments).
    pub report: faults::ResilienceReport,
}

/// Run the nominal-vs-degraded resilience comparison.
pub fn execute_faults(opts: &FaultsOptions) -> Result<FaultsOutcome, String> {
    apply_process_globals(&opts.common);
    let plan = resolve_plan(&opts.plan)?;
    let report = faults::run_resilience(&plan, &opts.common.selection, opts.common.jobs);
    let rendered = match opts.common.format {
        Format::Json => report.to_json(),
        _ => report.to_markdown(),
    };
    let payload = if let Some(path) = &opts.common.out {
        std::fs::write(path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        format!("{}\n", path.display())
    } else {
        rendered
    };
    Ok(FaultsOutcome { payload, report })
}

/// Result of `crosscheck`.
pub struct CrosscheckOutcome {
    /// Rendered report, or the written file path with `--out`.
    pub payload: String,
    /// The raw report (exit code: nonzero on any cell mismatch).
    pub report: maia_core::CrosscheckReport,
}

/// Compute F10–F14 on both engines and diff the formatted tables.
pub fn execute_crosscheck(opts: &CrosscheckOptions) -> Result<CrosscheckOutcome, String> {
    maia_mpi::partition::set_partitions(opts.partitions);
    let report = maia_core::run_crosscheck(opts.jobs);
    let rendered = report.to_markdown();
    let payload = if let Some(path) = &opts.out {
        std::fs::write(path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        format!("{}\n", path.display())
    } else {
        rendered
    };
    Ok(CrosscheckOutcome { payload, report })
}

/// Install the process-global knobs a subcommand's common flags carry.
fn apply_process_globals(common: &CommonArgs) {
    maia_mpi::fastpath::set_engine_mode(common.engine);
    maia_mpi::partition::set_partitions(common.partitions);
    maia_mpi::process_backend::set_backend(common.backend);
    if common.backend == Backend::Process {
        // Workers are this very binary, re-exec'd with the hidden
        // subcommand; MAIA_WORKER_BIN overrides for harnesses that drive
        // the library from a different executable.
        let program = std::env::var_os("MAIA_WORKER_BIN")
            .map(PathBuf::from)
            .or_else(|| std::env::current_exe().ok())
            .expect("cannot resolve the worker binary (set MAIA_WORKER_BIN)");
        maia_core::supervise::install_default_launcher(program);
    }
}

/// Body of the hidden `partition-worker` subcommand: speak the wire
/// protocol on stdin/stdout until the hub says done. Exit 0 on a clean
/// finish, 1 on a protocol/IO error (the hub sees EOF and handles it as
/// a worker loss). Nothing may print to stdout here — it *is* the
/// protocol channel.
fn run_partition_worker(wheel: usize, partitions: usize) -> i32 {
    let reader: Box<dyn std::io::Read + Send> = Box::new(std::io::stdin());
    let writer: Box<dyn std::io::Write + Send> = Box::new(std::io::stdout());
    match maia_mpi::process_backend::worker_main(
        wheel,
        partitions,
        reader,
        writer,
        maia_core::supervise::process_config(),
    ) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("maia-bench partition-worker (wheel {wheel}): {e}");
            1
        }
    }
}

fn render_metrics(profile: &maia_core::ProfileReport, fmt: Format) -> String {
    match fmt {
        Format::Json => profile.to_json(),
        _ => profile.to_markdown(),
    }
}

/// Exit code for a finished conformance run: 0 conformant, 1 violated.
///
/// Usage errors exit 2 from `main` before a report ever exists, so the
/// three-way contract (0 pass / 1 violations / 2 usage) is split between
/// this function and the parse path.
pub fn check_exit_code(report: &ConformanceReport) -> i32 {
    if report.is_conformant() {
        0
    } else {
        1
    }
}

/// The whole binary, minus `std::process::exit`: parse, dispatch, print.
/// Shared by `maia-bench` and (argv-translated) every `fig_*` alias, so
/// all entry points get the same usage text and exit-code contract.
pub fn main_with_args(args: &[String]) -> i32 {
    match parse(args) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            0
        }
        Ok(Command::List) => {
            print!("{}", render_list());
            0
        }
        Ok(Command::PartitionWorker { wheel, partitions }) => {
            run_partition_worker(wheel, partitions)
        }
        Ok(Command::Run(opts)) => match execute_run(&opts) {
            Ok(out) => {
                print!("{}", out.payload);
                eprint!("{}", out.report.timing_summary());
                if let Some(metrics) = out.metrics {
                    eprint!("{metrics}");
                }
                // Fail-soft contract: the partial report above is
                // printed in full, then failures force exit 1.
                i32::from(!out.report.failures.is_empty())
            }
            Err(e) => {
                eprintln!("maia-bench: {e}");
                1
            }
        },
        Ok(Command::Check(opts)) => match execute_check(&opts) {
            Ok(out) => {
                print!("{}", out.payload);
                if let Some(metrics) = out.metrics {
                    eprint!("{metrics}");
                }
                for f in &out.failures {
                    eprintln!("{}", f.to_line());
                }
                eprintln!("maia-bench check: {}", out.report.summary());
                if out.failures.is_empty() {
                    check_exit_code(&out.report)
                } else {
                    1
                }
            }
            Err(e) => {
                eprintln!("maia-bench: {e}");
                1
            }
        },
        Ok(Command::Profile(opts)) => match execute_profile(&opts) {
            Ok(out) => {
                print!("{}", out.payload);
                eprint!("{}", out.report.timing_summary());
                i32::from(!out.report.failures.is_empty())
            }
            Err(e) => {
                eprintln!("maia-bench: {e}");
                1
            }
        },
        Ok(Command::Faults(opts)) => match execute_faults(&opts) {
            Ok(out) => {
                print!("{}", out.payload);
                i32::from(out.report.has_failures())
            }
            Err(e) => {
                eprintln!("maia-bench: {e}");
                1
            }
        },
        Ok(Command::Crosscheck(opts)) => match execute_crosscheck(&opts) {
            Ok(out) => {
                print!("{}", out.payload);
                i32::from(!out.report.is_match())
            }
            Err(e) => {
                eprintln!("maia-bench: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("maia-bench: {e}\n\n{USAGE}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maia_core::{all_experiments, ExperimentId};

    fn parse_ok(args: &[&str]) -> Command {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse(&owned).expect("parse failed")
    }

    #[test]
    fn run_defaults_to_all_experiments() {
        let Command::Run(opts) = parse_ok(&["run", "--jobs", "2"]) else {
            panic!("expected run");
        };
        assert_eq!(opts.common.selection, ExperimentSelection::All);
        assert_eq!(opts.common.selection.resolve(), all_experiments());
        assert_eq!(opts.common.jobs, 2);
        assert_eq!(opts.common.format, Format::Md);
        assert!(opts.common.out.is_none());
        assert!(opts.metrics.is_none());
    }

    #[test]
    fn only_accepts_every_code_spelling() {
        let Command::Run(opts) = parse_ok(&["run", "--only", "F04,f21,table1", "--format", "json"])
        else {
            panic!("expected run");
        };
        assert_eq!(
            opts.common.selection,
            ExperimentSelection::Ids(vec![
                ExperimentId::F4Stream,
                ExperimentId::F21Cart3d,
                ExperimentId::T1Table
            ])
        );
        assert_eq!(opts.common.format, Format::Json);
    }

    #[test]
    fn subcommands_share_the_common_flags() {
        // The same flag spellings must parse identically under run,
        // check and profile — that is the point of CommonArgs.
        let flags = ["--only", "fig_05", "--jobs", "3", "--format", "json"];
        let mut commons = Vec::new();
        for sub in ["run", "check", "profile"] {
            let mut args = vec![sub];
            args.extend_from_slice(&flags);
            let common = match parse_ok(&args) {
                Command::Run(o) => o.common,
                Command::Check(o) => o.common,
                Command::Profile(o) => o.common,
                other => panic!("unexpected {other:?}"),
            };
            commons.push(common);
        }
        assert_eq!(commons[0], commons[1]);
        assert_eq!(commons[1], commons[2]);
    }

    #[test]
    fn profile_metrics_flag_sets_report_format() {
        let Command::Profile(opts) =
            parse_ok(&["profile", "--only", "F05", "--metrics", "json", "--trace", "/tmp/t.json"])
        else {
            panic!("expected profile");
        };
        assert_eq!(opts.common.format, Format::Json);
        assert_eq!(opts.trace, Some(PathBuf::from("/tmp/t.json")));
    }

    #[test]
    fn bad_inputs_are_rejected_for_every_subcommand() {
        for bad in [
            vec!["run", "--only", "F99"],
            vec!["run", "--jobs", "0"],
            vec!["run", "--format", "xml"],
            vec!["run", "--all", "--only", "F04"],
            vec!["run", "--trace", "x.json"], // profile-only flag
            vec!["check", "--format", "csv"],
            vec!["check", "--bench-json", "x.json"], // run-only flag
            vec!["profile", "--only", "F98"],
            vec!["profile", "--format", "csv"],
            vec!["profile", "--metrics", "csv"],
            vec!["profile", "--wat"],
            vec!["run", "--engine", "warp"],
            vec!["run", "--engine"], // missing value
            vec!["run", "--partitions", "0"],
            vec!["check", "--partitions", "-1"],
            vec!["crosscheck", "--partitions", "0"],
            vec!["run", "--backend", "carrier-pigeon"],
            vec!["run", "--backend"], // missing value
            vec!["partition-worker"], // both flags mandatory
            vec!["partition-worker", "--wheel", "1"],
            vec!["partition-worker", "--wheel", "0", "--partitions", "4"],
            vec!["partition-worker", "--wheel", "4", "--partitions", "4"],
            vec!["partition-worker", "--wheel", "1", "--partitions", "1"],
            vec!["faults"],                         // --plan is mandatory
            vec!["faults", "--plan"],               // missing value
            vec!["faults", "--plan", "x", "--format", "csv"],
            vec!["faults", "--plan", "x", "--trace", "t.json"], // profile-only
            vec!["crosscheck", "--only", "F10"], // fixed F10-F14 scope
            vec!["crosscheck", "--jobs", "0"],
            vec!["crosscheck", "--engine", "des"], // both engines always run
            vec!["frobnicate"],
        ] {
            let owned: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse(&owned).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn engine_flag_parses_on_every_sweep_subcommand() {
        for sub in ["run", "check", "profile"] {
            let engine = match parse_ok(&[sub, "--engine", "des"]) {
                Command::Run(o) => o.common.engine,
                Command::Check(o) => o.common.engine,
                Command::Profile(o) => o.common.engine,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(engine, EngineMode::Des, "{sub}");
        }
        let Command::Run(o) = parse_ok(&["run", "--engine", "fastpath"]) else {
            panic!("expected run");
        };
        assert_eq!(o.common.engine, EngineMode::Fast);
        let Command::Run(o) = parse_ok(&["run", "--jobs", "2"]) else {
            panic!("expected run");
        };
        assert_eq!(o.common.engine, EngineMode::Auto);
    }

    #[test]
    fn crosscheck_parses_jobs_and_out() {
        let Command::Crosscheck(o) =
            parse_ok(&["crosscheck", "--jobs", "3", "--out", "/tmp/x.md"])
        else {
            panic!("expected crosscheck");
        };
        assert_eq!(o.jobs, 3);
        assert_eq!(o.partitions, 1);
        assert_eq!(o.out, Some(PathBuf::from("/tmp/x.md")));
    }

    #[test]
    fn partitions_flag_parses_everywhere_and_defaults_to_one() {
        for sub in ["run", "check", "profile"] {
            let partitions = match parse_ok(&[sub, "--partitions", "4"]) {
                Command::Run(o) => o.common.partitions,
                Command::Check(o) => o.common.partitions,
                Command::Profile(o) => o.common.partitions,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(partitions, 4, "{sub}");
        }
        let Command::Run(o) = parse_ok(&["run", "--jobs", "2"]) else {
            panic!("expected run");
        };
        assert_eq!(o.common.partitions, 1);
        let Command::Crosscheck(o) = parse_ok(&["crosscheck", "--partitions", "8"]) else {
            panic!("expected crosscheck");
        };
        assert_eq!(o.partitions, 8);
    }

    #[test]
    fn backend_flag_parses_and_defaults_to_channel() {
        for sub in ["run", "check", "profile"] {
            let backend = match parse_ok(&[sub, "--backend", "process"]) {
                Command::Run(o) => o.common.backend,
                Command::Check(o) => o.common.backend,
                Command::Profile(o) => o.common.backend,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(backend, Backend::Process, "{sub}");
        }
        let Command::Run(o) = parse_ok(&["run", "--jobs", "2"]) else {
            panic!("expected run");
        };
        assert_eq!(o.common.backend, Backend::Channel);
    }

    #[test]
    fn partition_worker_parses_wheel_and_partitions() {
        assert_eq!(
            parse_ok(&["partition-worker", "--wheel", "2", "--partitions", "4"]),
            Command::PartitionWorker {
                wheel: 2,
                partitions: 4
            }
        );
    }

    #[test]
    fn faults_parses_plan_and_common_flags() {
        let Command::Faults(opts) =
            parse_ok(&["faults", "--plan", "degraded-stack", "--only", "F08", "--jobs", "2"])
        else {
            panic!("expected faults");
        };
        assert_eq!(opts.plan, "degraded-stack");
        assert_eq!(opts.common.jobs, 2);
        assert_eq!(
            opts.common.selection,
            ExperimentSelection::Ids(vec![ExperimentId::F8PcieBandwidth])
        );
    }

    #[test]
    fn resolve_plan_accepts_canned_names_and_files() {
        let canned = resolve_plan("degraded-stack").expect("canned plan");
        assert_eq!(canned.name, "degraded-stack");
        assert!(resolve_plan("no-such-plan-or-file").is_err());

        let path = std::env::temp_dir().join("maia-cli-plan-test.txt");
        std::fs::write(&path, canned.to_text()).unwrap();
        let from_file = resolve_plan(path.to_str().unwrap()).expect("plan file");
        assert_eq!(from_file, canned);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn usage_documents_the_exit_code_contract() {
        for needle in ["EXIT CODES", "faults", "--plan", "usage error"] {
            assert!(USAGE.contains(needle), "USAGE lacks {needle:?}");
        }
    }

    #[test]
    fn list_mentions_every_code() {
        let listing = render_list();
        for id in all_experiments() {
            assert!(listing.contains(id.meta().code));
        }
    }

    #[test]
    fn run_writes_files_and_bench_json() {
        let dir = std::env::temp_dir().join("maia-bench-cli-test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions {
            common: CommonArgs {
                selection: ExperimentSelection::Ids(vec![
                    ExperimentId::T1Table,
                    ExperimentId::F17Io,
                ]),
                format: Format::Csv,
                out: Some(dir.clone()),
                jobs: 2,
                engine: EngineMode::Auto,
                partitions: 1,
                backend: Backend::Channel,
            },
            bench_json: Some(dir.join("BENCH.json")),
            metrics: None,
        };
        let out = execute_run(&opts).expect("run failed");
        assert!(out.payload.contains("T01.csv") && out.payload.contains("F17.csv"));
        assert_eq!(out.report.runs.len(), 2);
        assert!(out.metrics.is_none());
        let bench = std::fs::read_to_string(dir.join("BENCH.json")).unwrap();
        assert!(bench.contains("\"jobs\": 2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
