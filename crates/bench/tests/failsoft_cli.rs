//! End-to-end fail-soft and fault-plan tests against the real
//! `maia-bench` binary: forced failures are injected via the
//! `MAIA_FAULT_*` environment variables (each test spawns its own
//! process, so nothing here races process-global state).

use std::process::{Command, Output};

fn bench(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_maia-bench"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawning maia-bench failed")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A forced panic makes `run` exit 1 but still print the partial report
/// for every surviving experiment, and the failure line carries the
/// originating simulated process name and virtual time.
#[test]
fn run_with_forced_panic_exits_nonzero_with_partial_report() {
    let out = bench(
        &["run", "--only", "F17,T01", "--jobs", "2"],
        &[("MAIA_FAULT_PANIC", "F17")],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let so = stdout(&out);
    assert!(so.contains("## T1 "), "partial report missing T1: {so}");
    assert!(!so.contains("## F17 "), "failed experiment should have no table");
    let se = stderr(&out);
    assert!(se.contains("FAILED F17 [panic]"), "stderr: {se}");
    assert!(
        se.contains("rank-0-F17") && se.contains("panicked at"),
        "failure line lacks process name / virtual time: {se}"
    );
}

/// A forced deadlock is classified as such, with the engine's blocked-
/// process diagnosis in the detail.
#[test]
fn run_with_forced_deadlock_reports_deadlock_detail() {
    let out = bench(
        &["run", "--only", "F17,T01", "--jobs", "2"],
        &[("MAIA_FAULT_DEADLOCK", "F17")],
    );
    assert_eq!(out.status.code(), Some(1));
    let se = stderr(&out);
    assert!(se.contains("FAILED F17 [deadlock]"), "stderr: {se}");
    assert!(se.contains("simulation deadlocked at"), "stderr: {se}");
    assert!(stdout(&out).contains("## T1 "));
}

/// A hung experiment trips the wall-clock watchdog.
#[test]
fn run_with_hung_experiment_times_out() {
    let out = bench(
        &["run", "--only", "F17,T01", "--jobs", "2"],
        &[("MAIA_FAULT_HANG", "F17"), ("MAIA_EXPERIMENT_TIMEOUT_S", "1")],
    );
    assert_eq!(out.status.code(), Some(1));
    let se = stderr(&out);
    assert!(se.contains("FAILED F17 [timeout]"), "stderr: {se}");
    assert!(se.contains("watchdog"), "stderr: {se}");
    assert!(stdout(&out).contains("## T1 "));
}

/// `check` also fails soft: surviving predicates are evaluated, the
/// lost experiment forces exit 1.
#[test]
fn check_with_forced_panic_exits_nonzero() {
    let out = bench(
        &["check", "--only", "F17,T01", "--jobs", "2"],
        &[("MAIA_FAULT_PANIC", "F17")],
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("FAILED F17 [panic]"));
}

/// `maia-bench faults` is bit-deterministic: two runs at the same plan,
/// seed and --jobs produce identical reports, in md and json alike.
#[test]
fn faults_report_is_bit_identical_across_runs() {
    let args = ["faults", "--plan", "degraded-stack", "--only", "F07,F08,F09", "--jobs", "2"];
    let a = bench(&args, &[]);
    let b = bench(&args, &[]);
    assert_eq!(a.status.code(), Some(0), "stderr: {}", stderr(&a));
    assert_eq!(stdout(&a), stdout(&b));
    let so = stdout(&a);
    assert!(so.contains("# Resilience report — plan 'degraded-stack'"), "{so}");
    assert!(so.contains("dapl-fallback"));

    let mut json_args = args.to_vec();
    json_args.extend_from_slice(&["--format", "json"]);
    let ja = bench(&json_args, &[]);
    let jb = bench(&json_args, &[]);
    assert_eq!(ja.status.code(), Some(0));
    assert_eq!(stdout(&ja), stdout(&jb));
    assert!(stdout(&ja).contains("\"plan\": \"degraded-stack\""));
}

/// Usage errors keep the distinct exit code 2 (vs. 1 for failures).
#[test]
fn usage_errors_exit_two() {
    for args in [&["faults"][..], &["faults", "--plan", "x", "--wat"][..]] {
        let out = bench(args, &[]);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
    // Unknown plan *name* is a runtime failure, not a usage error.
    let out = bench(&["faults", "--plan", "warp-core", "--only", "T01"], &[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown fault plan"));
}
