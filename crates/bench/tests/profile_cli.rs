//! Determinism contract of `maia-bench profile`, exercised through real
//! spawned processes: the `virtual` half of the metrics JSON and the
//! non-wall trace events are bit-identical across runs at a fixed
//! `--jobs`, cache totals match the sharing structure of the selection,
//! and the profile subcommand honors the same exit-code contract as
//! `run`/`check` (see `cli_exit_codes.rs`).

use std::process::{Command, Output};

use maia_tests::minijson::{parse, Json};

fn maia_bench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_maia-bench"))
        .args(args)
        .output()
        .expect("failed to spawn maia-bench")
}

fn metrics_json(args: &[&str]) -> Json {
    let out = maia_bench(args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    parse(&String::from_utf8_lossy(&out.stdout)).expect("profile payload is not valid JSON")
}

fn num(v: &Json, key: &str) -> f64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric '{key}' in {v:?}"))
}

#[test]
fn fig_05_profile_reports_nonzero_virtual_metrics() {
    let doc = metrics_json(&["profile", "--only", "fig_05", "--metrics", "json", "--jobs", "1"]);
    let virt = doc.get("virtual").expect("no virtual section");
    assert!(num(virt, "events_total") > 0.0, "no events recorded");
    let cache = virt.get("cache").expect("no cache totals");
    assert!(num(cache, "misses") >= 1.0, "profile run missed no keys?");
    let exps = virt.get("experiments").and_then(Json::as_array).unwrap();
    assert_eq!(exps.len(), 1);
    let f05 = &exps[0];
    assert_eq!(f05.get("code").and_then(Json::as_str), Some("F05"));
    assert!(num(f05, "total_vt_ps") > 0.0, "F05 recorded no virtual time");
    assert_eq!(f05.get("dominant").and_then(Json::as_str), Some("memory"));
    // Wall data exists but lives strictly outside the virtual subtree.
    assert!(doc.get("wall").is_some());
    assert!(virt.get("wall_s").is_none() && f05.get("wall_ms").is_none());
}

#[test]
fn virtual_metrics_are_bit_identical_across_runs() {
    let args = &["profile", "--only", "F05,F08,F09", "--metrics", "json", "--jobs", "2"];
    let a = metrics_json(args);
    let b = metrics_json(args);
    assert_eq!(
        a.get("virtual"),
        b.get("virtual"),
        "virtual metrics differ between identical profile runs"
    );
    // Sanity: the comparison covered real content, not two empty objects.
    let virt = a.get("virtual").unwrap();
    assert!(num(virt, "events_total") > 0.0);
    assert_eq!(
        virt.get("experiments").and_then(Json::as_array).unwrap().len(),
        3
    );
}

#[test]
fn trace_event_sequences_are_identical_excluding_wall() {
    let dir = std::env::temp_dir().join("maia-profile-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let mut traces = Vec::new();
    for run in 0..2 {
        let path = dir.join(format!("trace_{run}.json"));
        let out = maia_bench(&[
            "profile",
            "--only",
            "F07,F09",
            "--jobs",
            "2",
            "--trace",
            path.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = parse(&text).expect("trace is not valid JSON");
        let events = doc.as_array().expect("trace is not an array").to_vec();
        for ev in &events {
            assert!(ev.get("ph").and_then(Json::as_str).is_some(), "no ph: {ev:?}");
            assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "no ts: {ev:?}");
            assert!(ev.get("name").and_then(Json::as_str).is_some(), "no name: {ev:?}");
        }
        let virt: Vec<Json> = events
            .into_iter()
            .filter(|ev| ev.get("cat").and_then(Json::as_str) != Some("wall"))
            .collect();
        assert!(!virt.is_empty(), "trace carries no virtual events");
        traces.push(virt);
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        traces[0], traces[1],
        "non-wall trace events differ between identical profile runs"
    );
}

#[test]
fn cache_totals_reflect_shared_submodels() {
    // F09 (update gain) is a ratio over F08's 42-point bandwidth table:
    // selecting both must hit the memo cache at least once per shared
    // (device, ranks, size) key even when the two run concurrently.
    let doc = metrics_json(&["profile", "--only", "F08,F09", "--metrics", "json", "--jobs", "2"]);
    let cache = doc.get("virtual").unwrap().get("cache").unwrap();
    assert!(
        num(cache, "hits") >= 42.0,
        "expected >=42 shared-key hits, got {cache:?}"
    );
    assert!(num(cache, "misses") >= 42.0, "distinct keys missing: {cache:?}");
}

#[test]
fn profile_unknown_experiment_is_a_usage_error() {
    let out = maia_bench(&["profile", "--only", "F99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment 'F99'"), "bad message:\n{err}");
    assert!(err.contains("USAGE"), "usage text missing:\n{err}");
}

#[test]
fn fig_binaries_share_the_exit_code_contract() {
    let fig_04 = env!("CARGO_BIN_EXE_fig_04");
    let bad = Command::new(fig_04).arg("--wat").output().unwrap();
    assert_eq!(bad.status.code(), Some(2), "fig_04 --wat should be a usage error");
    assert!(!bad.stderr.is_empty());

    let csv = Command::new(fig_04).arg("--csv").output().unwrap();
    assert_eq!(csv.status.code(), Some(0));
    let payload = String::from_utf8_lossy(&csv.stdout);
    assert!(payload.lines().count() >= 2, "fig_04 --csv emitted no rows");
    assert!(payload.lines().next().unwrap().contains(','));
}
