//! Negative-path contract of the `maia-bench` binary, exercised through a
//! real spawned process: bad inputs exit nonzero with a useful message
//! (never a panic), and `check` distinguishes "violations found" (1) from
//! "usage error" (2).

use std::process::{Command, Output};

fn maia_bench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_maia-bench"))
        .args(args)
        .output()
        .expect("failed to spawn maia-bench")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn run_with_unknown_experiment_is_a_usage_error() {
    let out = maia_bench(&["run", "--only", "F99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("unknown experiment 'F99'"),
        "unhelpful message:\n{err}"
    );
    assert!(err.contains("USAGE"), "usage text missing:\n{err}");
}

#[test]
fn check_with_unknown_experiment_is_a_usage_error() {
    let out = maia_bench(&["check", "--only", "F31"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown experiment 'F31'"));
}

#[test]
fn check_rejects_csv_format() {
    let out = maia_bench(&["check", "--format", "csv"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("md or json"));
}

#[test]
fn bad_flags_and_subcommands_exit_two() {
    for args in [
        &["frobnicate"][..],
        &["run", "--jobs", "0"],
        &["run", "--format", "xml"],
        &["check", "--all", "--only", "F04"],
        &["check", "--wat"],
        &["run", "--only"],
    ] {
        let out = maia_bench(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} should be a usage error");
        assert!(!stderr(&out).is_empty(), "{args:?} gave no diagnostic");
    }
}

#[test]
fn conformant_check_exits_zero_with_summary_on_stderr() {
    let out = maia_bench(&["check", "--only", "F17,T01", "--jobs", "2"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("0 violation(s)"), "summary missing:\n{err}");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("| F17 |") && report.contains("| T01 |"));
    assert!(!report.contains("FAIL"));
}

#[test]
fn check_json_payload_is_machine_readable() {
    let out = maia_bench(&["check", "--only", "F27", "--format", "json", "--jobs", "1"]);
    assert_eq!(out.status.code(), Some(0));
    let payload = String::from_utf8_lossy(&out.stdout);
    assert!(payload.trim_start().starts_with('{'));
    assert!(payload.contains("\"violations\": 0"));
    assert!(payload.contains("\"figure\": \"F27\""));
}
