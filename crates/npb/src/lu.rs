//! LU — SSOR (symmetric successive over-relaxation) solver.
//!
//! NPB LU inverts its implicit operator with lower- and upper-triangular
//! sweeps whose data dependence follows the i+j+k diagonal: every cell on
//! one *hyperplane* is independent, but planes must be processed in
//! order. We implement exactly that wavefront structure — parallel within
//! a hyperplane, sequential across hyperplanes — which is why LU's
//! parallel efficiency is the most fragile of the three
//! pseudo-applications on many-thread machines.

use maia_omp::Team;

use crate::bt::{invert, matvec, Mat5, Vec5};
use crate::class::{pseudo_app_params, Benchmark, Class};
use crate::flow::{add_assign, residual, State5, CONVECT, COUPLING, NVAR};

/// Relaxation factor.
pub const OMEGA: f64 = 1.0;
/// Pseudo-time step.
pub const TAU: f64 = 0.8;

/// Off-diagonal neighbor weight in the lower sweep (per direction).
fn lower_weight() -> f64 {
    TAU * (-1.0 - CONVECT / 2.0)
}
/// Off-diagonal neighbor weight in the upper sweep.
fn upper_weight() -> f64 {
    TAU * (-1.0 + CONVECT / 2.0)
}

/// Inverse of the 5×5 diagonal block of the SSOR iteration matrix.
fn diag_inverse() -> Mat5 {
    let mut d: Mat5 = [[0.0; NVAR]; NVAR];
    for m in 0..NVAR {
        d[m][m] = 1.0 + TAU * (6.0 + 0.5);
        for l in 0..NVAR {
            d[m][l] += TAU * COUPLING[m][l];
        }
    }
    invert(&d)
}

/// The cells of hyperplane `h` (i+j+k == h) of an n³ grid.
pub fn hyperplane_cells(n: usize, h: usize) -> Vec<(usize, usize, usize)> {
    let mut cells = Vec::new();
    for k in 0..n {
        if h < k {
            break;
        }
        let rem = h - k;
        for j in 0..n.min(rem + 1) {
            let i = rem - j;
            if i < n {
                cells.push((i, j, k));
            }
        }
    }
    cells
}

/// One triangular sweep over `delta` (in place): `forward` processes
/// hyperplanes ascending using (i−1, j−1, k−1) neighbors; otherwise
/// descending with (i+1, j+1, k+1).
fn sweep(team: &Team, delta: &mut State5, forward: bool) {
    let n = delta.n;
    let dinv = diag_inverse();
    let w = if forward { lower_weight() } else { upper_weight() };
    let planes: Vec<usize> = if forward {
        (0..=3 * (n - 1)).collect()
    } else {
        (0..=3 * (n - 1)).rev().collect()
    };
    for h in planes {
        let cells = hyperplane_cells(n, h);
        // Compute the plane's updates in parallel (reads touch only
        // already-processed planes), then scatter serially.
        let mut updates = vec![[0.0f64; NVAR]; cells.len()];
        team.parallel_chunks(&mut updates, |start, chunk| {
            for (off, out) in chunk.iter_mut().enumerate() {
                let (i, j, k) = cells[start + off];
                let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                let mut b: Vec5 = [0.0; NVAR];
                for (m, bm) in b.iter_mut().enumerate() {
                    let neigh = if forward {
                        delta.at(ii - 1, jj, kk, m)
                            + delta.at(ii, jj - 1, kk, m)
                            + delta.at(ii, jj, kk - 1, m)
                    } else {
                        delta.at(ii + 1, jj, kk, m)
                            + delta.at(ii, jj + 1, kk, m)
                            + delta.at(ii, jj, kk + 1, m)
                    };
                    *bm = delta.at(ii, jj, kk, m) - w * neigh;
                }
                *out = matvec(&dinv, &b);
            }
        });
        for (c, (i, j, k)) in cells.iter().enumerate() {
            for (m, &val) in updates[c].iter().enumerate() {
                let idx = delta.idx(*i, *j, *k, m);
                delta.data[idx] = val;
            }
        }
    }
}

/// Result of an LU run.
#[derive(Debug, Clone, PartialEq)]
pub struct LuResult {
    pub initial_rnorm: f64,
    pub final_rnorm: f64,
    pub steps: usize,
}

/// Run LU with explicit grid size and step count.
pub fn run_custom(n: usize, steps: usize, threads: usize) -> LuResult {
    let team = Team::new(threads);
    let f = State5::forcing(n);
    let mut u = State5::zeros(n);
    let mut r = State5::zeros(n);
    residual(&team, &u, &f, &mut r);
    let initial_rnorm = r.norm();
    for _ in 0..steps {
        residual(&team, &u, &f, &mut r);
        team.parallel_chunks(&mut r.data, |_s, chunk| {
            for v in chunk.iter_mut() {
                *v *= TAU * OMEGA;
            }
        });
        sweep(&team, &mut r, true);
        sweep(&team, &mut r, false);
        add_assign(&team, &mut u, &r);
    }
    residual(&team, &u, &f, &mut r);
    LuResult {
        initial_rnorm,
        final_rnorm: r.norm(),
        steps,
    }
}

/// Class-parameterized run.
pub fn run(class: Class, threads: usize) -> LuResult {
    let (n, steps) = pseudo_app_params(Benchmark::Lu, class);
    run_custom(n, steps, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperplanes_partition_the_grid() {
        let n = 7;
        let mut seen = vec![false; n * n * n];
        for h in 0..=3 * (n - 1) {
            for (i, j, k) in hyperplane_cells(n, h) {
                assert_eq!(i + j + k, h);
                let idx = (k * n + j) * n + i;
                assert!(!seen[idx], "cell visited twice");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "cells missed");
    }

    #[test]
    fn hyperplane_sizes_peak_in_the_middle() {
        let n = 8;
        let sizes: Vec<usize> = (0..=3 * (n - 1))
            .map(|h| hyperplane_cells(n, h).len())
            .collect();
        assert_eq!(sizes[0], 1);
        assert_eq!(*sizes.last().unwrap(), 1);
        let max = *sizes.iter().max().unwrap();
        assert!(max > n, "wavefront never widens: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), n * n * n);
    }

    #[test]
    fn residual_decreases_toward_steady_state() {
        let r = run_custom(16, 80, 4);
        assert!(
            r.final_rnorm < 0.1 * r.initial_rnorm,
            "LU failed to converge: {} -> {}",
            r.initial_rnorm,
            r.final_rnorm
        );
    }

    #[test]
    fn thread_count_invariance() {
        let a = run_custom(12, 4, 1);
        let b = run_custom(12, 4, 6);
        assert_eq!(a.final_rnorm.to_bits(), b.final_rnorm.to_bits());
    }

    #[test]
    fn ssor_converges_about_as_well_as_adi() {
        // The three pseudo-apps solve the same steady problem; LU's SSOR
        // should land in the same ballpark as SP's ADI after equal steps.
        let lu = run_custom(12, 15, 3);
        let sp = crate::sp::run_custom(12, 15, 3);
        let ratio = lu.final_rnorm / sp.final_rnorm;
        assert!(
            (0.001..1000.0).contains(&ratio),
            "wildly different convergence: lu {} sp {}",
            lu.final_rnorm,
            sp.final_rnorm
        );
    }
}
