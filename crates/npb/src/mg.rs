//! MG — V-cycle multigrid for a 3D periodic Poisson problem.
//!
//! The benchmark structure of NPB MG: a hierarchy of 3D grids (each
//! coarser level halves every dimension), per cycle one V-pass of
//! smoothing → residual → restriction down, and prolongation → smoothing
//! up, with the residual's L2 norm as the verification quantity.
//!
//! Work-sharing splits the outermost (k) loop across threads; the
//! [`run_custom`]'s `collapse` flag switches to the collapsed k×j space —
//! the optimization the paper evaluates in Figure 24 (a big win on 236
//! Phi threads where a 256-deep k loop leaves threads idle, a slight
//! *loss* on the host).

use maia_omp::{collapse2, Team};

use crate::class::{mg_params, Class};
use crate::ep::Ranlc;

/// One cubic periodic grid of edge `n`.
#[derive(Debug, Clone)]
pub struct Grid3 {
    pub n: usize,
    pub data: Vec<f64>,
}

impl Grid3 {
    /// Zero-filled grid.
    pub fn zeros(n: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "grid edge must be a power of two, got {n}");
        Grid3 {
            n,
            data: vec![0.0; n * n * n],
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.n + j) * self.n + i
    }

    /// Value with periodic wrap-around.
    #[inline]
    pub fn at(&self, i: isize, j: isize, k: isize) -> f64 {
        let n = self.n as isize;
        let w = |x: isize| ((x % n + n) % n) as usize;
        self.data[self.idx(w(i), w(j), w(k))]
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// 7-point Laplacian-style operator value at (i,j,k): `A u`.
#[inline]
fn apply_a(u: &Grid3, i: usize, j: usize, k: usize) -> f64 {
    let (i, j, k) = (i as isize, j as isize, k as isize);
    let c = u.at(i, j, k);
    let s = u.at(i - 1, j, k)
        + u.at(i + 1, j, k)
        + u.at(i, j - 1, k)
        + u.at(i, j + 1, k)
        + u.at(i, j, k - 1)
        + u.at(i, j, k + 1);
    6.0 * c - s
}

/// Weighted-Jacobi smoothing sweep: `u ← u + ω D⁻¹ (v − A u)`.
/// Jacobi (not Gauss–Seidel) keeps the result independent of thread
/// count — parallel runs are bitwise equal to serial runs.
fn smooth(team: &Team, u: &mut Grid3, v: &Grid3, collapse: bool) {
    const OMEGA: f64 = 0.8;
    let n = u.n;
    let input = u.clone();
    if collapse {
        // Work-share the collapsed (k, j) space in n-sized rows.
        team.parallel_chunks(&mut u.data, |start, chunk| {
            for (off, val) in chunk.iter_mut().enumerate() {
                let flat = start + off;
                let i = flat % n;
                let (k, j) = collapse2(flat / n, n);
                let r = v.at(i as isize, j as isize, k as isize)
                    - apply_a(&input, i, j, k);
                *val += OMEGA / 6.0 * r;
            }
        });
    } else {
        // Plane-chunked: the k loop only.
        let plane = n * n;
        team.parallel_chunks(&mut u.data, |start, chunk| {
            for (off, val) in chunk.iter_mut().enumerate() {
                let flat = start + off;
                let i = flat % n;
                let j = (flat / n) % n;
                let k = flat / plane;
                let r = v.at(i as isize, j as isize, k as isize)
                    - apply_a(&input, i, j, k);
                *val += OMEGA / 6.0 * r;
            }
        });
    }
}

/// r = v − A u.
fn residual(team: &Team, u: &Grid3, v: &Grid3, r: &mut Grid3) {
    let n = u.n;
    team.parallel_chunks(&mut r.data, |start, chunk| {
        for (off, val) in chunk.iter_mut().enumerate() {
            let flat = start + off;
            let i = flat % n;
            let j = (flat / n) % n;
            let k = flat / (n * n);
            *val = v.at(i as isize, j as isize, k as isize) - apply_a(u, i, j, k);
        }
    });
}

/// Full-weighting restriction to the half-resolution grid.
fn restrict(team: &Team, fine: &Grid3, coarse: &mut Grid3) {
    let nc = coarse.n;
    team.parallel_chunks(&mut coarse.data, |start, chunk| {
        for (off, val) in chunk.iter_mut().enumerate() {
            let flat = start + off;
            let i = flat % nc;
            let j = (flat / nc) % nc;
            let k = flat / (nc * nc);
            let (fi, fj, fk) = (2 * i as isize, 2 * j as isize, 2 * k as isize);
            // 8-cell average of the children.
            let mut acc = 0.0;
            for dk in 0..2 {
                for dj in 0..2 {
                    for di in 0..2 {
                        acc += fine.at(fi + di, fj + dj, fk + dk);
                    }
                }
            }
            *val = acc / 8.0;
        }
    });
}

/// Piecewise-constant prolongation added into the fine grid.
fn prolong_add(team: &Team, coarse: &Grid3, fine: &mut Grid3) {
    let nf = fine.n;
    team.parallel_chunks(&mut fine.data, |start, chunk| {
        for (off, val) in chunk.iter_mut().enumerate() {
            let flat = start + off;
            let i = flat % nf;
            let j = (flat / nf) % nf;
            let k = flat / (nf * nf);
            *val += coarse.at((i / 2) as isize, (j / 2) as isize, (k / 2) as isize);
        }
    });
}

fn v_cycle(team: &Team, u: &mut Grid3, v: &Grid3, collapse: bool) {
    smooth(team, u, v, collapse);
    smooth(team, u, v, collapse);
    if u.n > 4 {
        let mut r = Grid3::zeros(u.n);
        residual(team, u, v, &mut r);
        let mut rc = Grid3::zeros(u.n / 2);
        restrict(team, &r, &mut rc);
        let mut ec = Grid3::zeros(u.n / 2);
        v_cycle(team, &mut ec, &rc, collapse);
        prolong_add(team, &ec, u);
    }
    smooth(team, u, v, collapse);
}

/// MG run result.
#[derive(Debug, Clone, PartialEq)]
pub struct MgResult {
    pub initial_rnorm: f64,
    pub final_rnorm: f64,
    pub cycles: usize,
}

/// Build the NPB-style right-hand side: ±1 spikes at pseudorandom sites.
pub fn make_rhs(n: usize, spikes: usize, seed: u64) -> Grid3 {
    let mut v = Grid3::zeros(n);
    let mut rng = Ranlc::new(seed);
    for s in 0..spikes {
        let i = (rng.next_f64() * n as f64) as usize % n;
        let j = (rng.next_f64() * n as f64) as usize % n;
        let k = (rng.next_f64() * n as f64) as usize % n;
        let idx = (k * n + j) * n + i;
        v.data[idx] = if s % 2 == 0 { 1.0 } else { -1.0 };
    }
    v
}

/// Run MG with explicit parameters.
pub fn run_custom(n: usize, cycles: usize, threads: usize, collapse: bool) -> MgResult {
    let team = Team::new(threads);
    let v = make_rhs(n, 20, crate::ep::SEED);
    let mut u = Grid3::zeros(n);
    let mut r = Grid3::zeros(n);
    residual(&team, &u, &v, &mut r);
    let initial_rnorm = r.norm();
    for _ in 0..cycles {
        v_cycle(&team, &mut u, &v, collapse);
    }
    residual(&team, &u, &v, &mut r);
    MgResult {
        initial_rnorm,
        final_rnorm: r.norm(),
        cycles,
    }
}

/// Run the class-parameterized benchmark.
pub fn run(class: Class, threads: usize, collapse: bool) -> MgResult {
    let (n, cycles) = mg_params(class);
    run_custom(n, cycles, threads, collapse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_drops_every_cycle() {
        let r1 = run_custom(32, 1, 2, false);
        let r4 = run_custom(32, 4, 2, false);
        assert!(r1.final_rnorm < 0.5 * r1.initial_rnorm, "one cycle too weak");
        assert!(r4.final_rnorm < 0.1 * r4.initial_rnorm, "four cycles too weak");
        assert!(r4.final_rnorm < r1.final_rnorm);
    }

    #[test]
    fn thread_count_does_not_change_the_answer() {
        let a = run_custom(16, 3, 1, false);
        let b = run_custom(16, 3, 5, false);
        assert_eq!(a.final_rnorm.to_bits(), b.final_rnorm.to_bits());
    }

    #[test]
    fn collapse_is_numerically_identical() {
        let plain = run_custom(16, 3, 4, false);
        let coll = run_custom(16, 3, 4, true);
        assert_eq!(plain.final_rnorm.to_bits(), coll.final_rnorm.to_bits());
    }

    #[test]
    fn class_s_converges() {
        let r = run(Class::S, 4, false);
        assert!(
            r.final_rnorm < 5e-2 * r.initial_rnorm,
            "class S: {} -> {}",
            r.initial_rnorm,
            r.final_rnorm
        );
    }

    #[test]
    fn periodic_wraparound_indices() {
        let mut g = Grid3::zeros(4);
        g.data[0] = 7.0; // (0,0,0)
        assert_eq!(g.at(-1 + 1, 0, 0), 7.0);
        assert_eq!(g.at(4, 0, 0), 7.0);
        assert_eq!(g.at(-4, 4, 8), 7.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Grid3::zeros(12);
    }
}
