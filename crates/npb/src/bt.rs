//! BT — block-tridiagonal ADI solver.
//!
//! NPB BT shares SP's approximately factored time step, but each 1-D
//! factor couples the five components, so every line solve is a
//! *block* tridiagonal system with 5×5 blocks inverted by Gaussian
//! elimination — far more flops per point than SP, which is why BT is
//! the most compute-dense (and best-vectorizing) of the three
//! pseudo-applications on the Phi.

use maia_omp::Team;

use crate::class::{pseudo_app_params, Benchmark, Class};
use crate::flow::{add_assign, for_each_line, residual, State5, CONVECT, COUPLING, NVAR};

/// Pseudo-time step.
pub const TAU: f64 = 0.8;

/// A dense 5×5 block.
pub type Mat5 = [[f64; NVAR]; NVAR];
/// A 5-vector.
pub type Vec5 = [f64; NVAR];

/// `out = m · v`.
pub fn matvec(m: &Mat5, v: &Vec5) -> Vec5 {
    let mut out = [0.0; NVAR];
    for (r, row) in m.iter().enumerate() {
        let mut acc = 0.0;
        for (c, coef) in row.iter().enumerate() {
            acc += coef * v[c];
        }
        out[r] = acc;
    }
    out
}

/// `a · b`.
pub fn matmul(a: &Mat5, b: &Mat5) -> Mat5 {
    let mut out = [[0.0; NVAR]; NVAR];
    for r in 0..NVAR {
        for k in 0..NVAR {
            let ark = a[r][k];
            if ark != 0.0 {
                for c in 0..NVAR {
                    out[r][c] += ark * b[k][c];
                }
            }
        }
    }
    out
}

/// Invert a 5×5 block by Gauss–Jordan elimination with partial pivoting.
///
/// # Panics
/// Panics on a (numerically) singular block — the ADI blocks are
/// diagonally dominant, so this indicates corrupted state.
pub fn invert(m: &Mat5) -> Mat5 {
    let mut a = *m;
    let mut inv: Mat5 = [[0.0; NVAR]; NVAR];
    for (i, row) in inv.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for col in 0..NVAR {
        // Pivot.
        let mut piv = col;
        for r in col + 1..NVAR {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        assert!(a[piv][col].abs() > 1e-300, "singular 5x5 block");
        a.swap(col, piv);
        inv.swap(col, piv);
        let p = a[col][col];
        for c in 0..NVAR {
            a[col][c] /= p;
            inv[col][c] /= p;
        }
        for r in 0..NVAR {
            if r != col {
                let f = a[r][col];
                if f != 0.0 {
                    for c in 0..NVAR {
                        a[r][c] -= f * a[col][c];
                        inv[r][c] -= f * inv[col][c];
                    }
                }
            }
        }
    }
    inv
}

/// The three constant blocks of one 1-D factor: (sub, diag, sup).
pub fn adi_blocks() -> (Mat5, Mat5, Mat5) {
    let mut sub = [[0.0; NVAR]; NVAR];
    let mut diag = [[0.0; NVAR]; NVAR];
    let mut sup = [[0.0; NVAR]; NVAR];
    for m in 0..NVAR {
        sub[m][m] = TAU * (-1.0 - CONVECT / 2.0);
        sup[m][m] = TAU * (-1.0 + CONVECT / 2.0);
        diag[m][m] = 1.0 + TAU * (2.0 + 0.5 / 3.0);
        for l in 0..NVAR {
            // A third of the component coupling per direction.
            diag[m][l] += TAU * COUPLING[m][l] / 3.0;
        }
    }
    (sub, diag, sup)
}

/// Solve a constant-block tridiagonal system along one line, in place.
/// `rhs` is `n` contiguous 5-vectors (component-interleaved, as stored in
/// [`State5`]).
pub fn solve_block_tridiag(blocks: (Mat5, Mat5, Mat5), rhs: &mut [f64]) {
    let (sub, diag, sup) = blocks;
    let n = rhs.len() / NVAR;
    assert!(n >= 2 && rhs.len().is_multiple_of(NVAR));
    // Thomas algorithm with block coefficients.
    let mut dprime: Vec<Mat5> = Vec::with_capacity(n);
    dprime.push(diag);
    let mut dinv: Vec<Mat5> = Vec::with_capacity(n);
    dinv.push(invert(&diag));
    for i in 1..n {
        // D'_i = D − A · D'_{i-1}⁻¹ · C.
        let correction = matmul(&matmul(&sub, &dinv[i - 1]), &sup);
        let mut d = diag;
        for r in 0..NVAR {
            for c in 0..NVAR {
                d[r][c] -= correction[r][c];
            }
        }
        dinv.push(invert(&d));
        dprime.push(d);
        // rhs_i -= A · D'_{i-1}⁻¹ · rhs_{i-1}.
        let prev: Vec5 = rhs[(i - 1) * NVAR..i * NVAR].try_into().expect("5-vector");
        let t = matvec(&dinv[i - 1], &prev);
        let t = matvec(&sub, &t);
        for m in 0..NVAR {
            rhs[i * NVAR + m] -= t[m];
        }
    }
    // Back substitution: x_i = D'_i⁻¹ (rhs_i − C x_{i+1}).
    let last: Vec5 = rhs[(n - 1) * NVAR..].try_into().expect("5-vector");
    let x = matvec(&dinv[n - 1], &last);
    rhs[(n - 1) * NVAR..].copy_from_slice(&x);
    for i in (0..n - 1).rev() {
        let next: Vec5 = rhs[(i + 1) * NVAR..(i + 2) * NVAR]
            .try_into()
            .expect("5-vector");
        let cx = matvec(&sup, &next);
        let mut b: Vec5 = rhs[i * NVAR..(i + 1) * NVAR].try_into().expect("5-vector");
        for m in 0..NVAR {
            b[m] -= cx[m];
        }
        let x = matvec(&dinv[i], &b);
        rhs[i * NVAR..(i + 1) * NVAR].copy_from_slice(&x);
    }
}

fn sweep_x(team: &Team, r: &mut State5) {
    let blocks = adi_blocks();
    for_each_line(team, r, |line| solve_block_tridiag(blocks, line));
}

/// Result of a BT run.
#[derive(Debug, Clone, PartialEq)]
pub struct BtResult {
    pub initial_rnorm: f64,
    pub final_rnorm: f64,
    pub steps: usize,
}

/// Run BT with explicit grid size and step count.
pub fn run_custom(n: usize, steps: usize, threads: usize) -> BtResult {
    let team = Team::new(threads);
    let f = State5::forcing(n);
    let mut u = State5::zeros(n);
    let mut r = State5::zeros(n);
    residual(&team, &u, &f, &mut r);
    let initial_rnorm = r.norm();
    for _ in 0..steps {
        residual(&team, &u, &f, &mut r);
        team.parallel_chunks(&mut r.data, |_s, chunk| {
            for v in chunk.iter_mut() {
                *v *= TAU;
            }
        });
        sweep_x(&team, &mut r);
        let mut rr = r.rotate(&team);
        sweep_x(&team, &mut rr);
        let mut rrr = rr.rotate(&team);
        sweep_x(&team, &mut rrr);
        r = rrr.rotate(&team);
        add_assign(&team, &mut u, &r);
    }
    residual(&team, &u, &f, &mut r);
    BtResult {
        initial_rnorm,
        final_rnorm: r.norm(),
        steps,
    }
}

/// Class-parameterized run.
pub fn run(class: Class, threads: usize) -> BtResult {
    let (n, steps) = pseudo_app_params(Benchmark::Bt, class);
    run_custom(n, steps, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invert_round_trips() {
        let (_, diag, _) = adi_blocks();
        let inv = invert(&diag);
        let prod = matmul(&diag, &inv);
        for (r, row) in prod.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-12, "({r},{c})");
            }
        }
    }

    #[test]
    fn block_solver_matches_operator() {
        // Verify A·x == rhs for the block tridiagonal operator.
        let blocks = adi_blocks();
        let (sub, diag, sup) = blocks;
        let n = 6;
        let rhs_orig: Vec<f64> = (0..n * NVAR).map(|i| ((i as f64) * 0.37).cos()).collect();
        let mut x = rhs_orig.clone();
        solve_block_tridiag(blocks, &mut x);
        for i in 0..n {
            let xi: Vec5 = x[i * NVAR..(i + 1) * NVAR].try_into().unwrap();
            let mut acc = matvec(&diag, &xi);
            if i > 0 {
                let xm: Vec5 = x[(i - 1) * NVAR..i * NVAR].try_into().unwrap();
                let t = matvec(&sub, &xm);
                for m in 0..NVAR {
                    acc[m] += t[m];
                }
            }
            if i + 1 < n {
                let xp: Vec5 = x[(i + 1) * NVAR..(i + 2) * NVAR].try_into().unwrap();
                let t = matvec(&sup, &xp);
                for m in 0..NVAR {
                    acc[m] += t[m];
                }
            }
            for m in 0..NVAR {
                assert!(
                    (acc[m] - rhs_orig[i * NVAR + m]).abs() < 1e-10,
                    "point {i} comp {m}"
                );
            }
        }
    }

    #[test]
    fn residual_decreases_toward_steady_state() {
        let r = run_custom(16, 30, 4);
        assert!(
            r.final_rnorm < 0.05 * r.initial_rnorm,
            "BT failed to converge: {} -> {}",
            r.initial_rnorm,
            r.final_rnorm
        );
    }

    #[test]
    fn thread_count_invariance() {
        let a = run_custom(12, 5, 1);
        let b = run_custom(12, 5, 5);
        assert_eq!(a.final_rnorm.to_bits(), b.final_rnorm.to_bits());
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_block_is_rejected() {
        let zero: Mat5 = [[0.0; NVAR]; NVAR];
        let _ = invert(&zero);
    }
}
