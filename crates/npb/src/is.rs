//! IS — integer sort.
//!
//! NPB IS ranks `2^n` integer keys drawn from an approximately Gaussian
//! distribution (average of four uniforms, like the reference code) over
//! the range `[0, 2^maxkey)`, using a parallel counting/bucket sort, and
//! verifies that the resulting ranking is a sorted permutation.

use maia_omp::{Schedule, Team};

use crate::ep::Ranlc;

/// Generate the NPB IS key sequence: each key is the average of four
/// uniform draws scaled to the key range.
pub fn generate_keys(log2_n: u32, log2_max: u32, seed: u64) -> Vec<u32> {
    let n = 1usize << log2_n;
    let max_key = 1u32 << log2_max;
    let mut rng = Ranlc::new(seed);
    let k4 = max_key as f64 / 4.0;
    (0..n)
        .map(|_| {
            let s = rng.next_f64() + rng.next_f64() + rng.next_f64() + rng.next_f64();
            (s * k4) as u32 % max_key
        })
        .collect()
}

/// Parallel counting sort: returns the sorted keys.
pub fn sort(keys: &[u32], log2_max: u32, threads: usize) -> Vec<u32> {
    let buckets = 1usize << log2_max;
    let team = Team::new(threads);

    // Per-thread histograms, merged after the count phase.
    let histo = team.parallel_reduce(
        0..keys.len(),
        Schedule::Static { chunk: 0 },
        vec![0u32; buckets],
        |i, acc| acc[keys[i] as usize] += 1,
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    );

    // Exclusive prefix sum, then scatter (serial: the scatter is a small
    // fraction of the count phase and keeps the output stable).
    let mut out = Vec::with_capacity(keys.len());
    for (key, &count) in histo.iter().enumerate() {
        out.extend(std::iter::repeat_n(key as u32, count as usize));
    }
    out
}

/// Full IS run: generate, sort, and verify. Returns the sorted keys.
///
/// # Panics
/// Panics if verification fails — the sort is the benchmark's own
/// correctness oracle.
pub fn run(log2_n: u32, log2_max: u32, threads: usize) -> Vec<u32> {
    let keys = generate_keys(log2_n, log2_max, crate::ep::SEED);
    let sorted = sort(&keys, log2_max, threads);
    verify(&keys, &sorted, log2_max);
    sorted
}

/// NPB-style verification: sortedness plus permutation (via histogram
/// equality).
pub fn verify(original: &[u32], sorted: &[u32], log2_max: u32) {
    assert_eq!(original.len(), sorted.len(), "length changed during sort");
    assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "output is not sorted"
    );
    let buckets = 1usize << log2_max;
    let mut h0 = vec![0u32; buckets];
    let mut h1 = vec![0u32; buckets];
    for &k in original {
        h0[k as usize] += 1;
    }
    for &k in sorted {
        h1[k as usize] += 1;
    }
    assert_eq!(h0, h1, "output is not a permutation of the input");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_verifies_small_class() {
        let sorted = run(14, 11, 4);
        assert_eq!(sorted.len(), 1 << 14);
    }

    #[test]
    fn parallel_thread_counts_agree() {
        let keys = generate_keys(13, 10, 42);
        let s1 = sort(&keys, 10, 1);
        let s4 = sort(&keys, 10, 4);
        let s7 = sort(&keys, 10, 7);
        assert_eq!(s1, s4);
        assert_eq!(s1, s7);
    }

    #[test]
    fn key_distribution_is_center_heavy() {
        // Average-of-four-uniforms: the middle half holds most keys.
        let keys = generate_keys(15, 10, 7);
        let mid = keys
            .iter()
            .filter(|&&k| (256..768).contains(&k))
            .count();
        assert!(
            mid as f64 / keys.len() as f64 > 0.7,
            "middle-band fraction {}",
            mid as f64 / keys.len() as f64
        );
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn verify_rejects_unsorted_output() {
        let orig = vec![3u32, 1, 2];
        let bad = vec![3u32, 1, 2];
        verify(&orig, &bad, 2);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn verify_rejects_non_permutation() {
        let orig = vec![3u32, 1, 2];
        let bad = vec![1u32, 1, 2];
        verify(&orig, &bad, 2);
    }
}
