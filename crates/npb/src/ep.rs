//! EP — the "embarrassingly parallel" kernel.
//!
//! Faithful to NPB 3.3: generate `2^(m+1)` pseudorandom numbers with the
//! 48-bit linear congruential generator `x ← a·x mod 2⁴⁶` (a = 5¹³),
//! form pairs in (−1,1)², apply the acceptance–rejection Box–Muller
//! transform, and accumulate the Gaussian-deviate sums and the annulus
//! counts `q[0..10)`. Batches of 2¹⁶ pairs are seeded independently by
//! jumping the generator ahead (`a^(2·k·nk) mod 2⁴⁶`), which is what makes
//! the benchmark embarrassingly parallel.

use maia_omp::{Schedule, Team};

/// The NPB multiplier a = 5^13.
pub const A: u64 = 1_220_703_125;
/// The NPB seed.
pub const SEED: u64 = 271_828_183;
/// Modulus 2^46.
const M46: u64 = 1 << 46;
/// Pairs per batch (NPB's `nk`).
const BATCH_LOG2: u32 = 16;

/// `a^e mod 2^46` by repeated squaring.
fn pow_mod46(mut a: u64, mut e: u64) -> u64 {
    let mut r: u64 = 1;
    a %= M46;
    while e > 0 {
        if e & 1 == 1 {
            r = ((r as u128 * a as u128) % M46 as u128) as u64;
        }
        a = ((a as u128 * a as u128) % M46 as u128) as u64;
        e >>= 1;
    }
    r
}

/// The NPB `vranlc` stream: uniform doubles in (0,1).
#[derive(Debug, Clone)]
pub struct Ranlc {
    x: u64,
}

impl Ranlc {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Ranlc { x: seed % M46 }
    }

    /// Start the stream for batch `k` (each batch consumes `2^(log2+1)`
    /// numbers).
    pub fn for_batch(k: u64) -> Self {
        let jump = pow_mod46(A, 2 * k * (1u64 << BATCH_LOG2));
        Ranlc {
            x: ((SEED as u128 * jump as u128) % M46 as u128) as u64,
        }
    }

    /// Next uniform double in (0,1).
    pub fn next_f64(&mut self) -> f64 {
        self.x = ((self.x as u128 * A as u128) % M46 as u128) as u64;
        self.x as f64 / M46 as f64
    }
}

/// Result of an EP run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Sum of accepted Gaussian X deviates.
    pub sx: f64,
    /// Sum of accepted Gaussian Y deviates.
    pub sy: f64,
    /// Annulus counts: `q[l]` counts pairs with `l = ⌊max(|X|,|Y|)⌋`.
    pub q: [u64; 10],
    /// Accepted pairs.
    pub accepted: u64,
    /// Total pairs generated.
    pub pairs: u64,
}

impl EpResult {
    /// Acceptance ratio (should approach π/4 · E[accept | t≤1] — about
    /// 0.7854 of pairs fall inside the unit circle).
    pub fn acceptance(&self) -> f64 {
        self.accepted as f64 / self.pairs as f64
    }
}

/// Memo for [`run_batch`]: a batch is a pure function of `(k, pairs)`,
/// and the same batches recur across runs (the distributed A1 figure
/// executes each kernel once per device placement with identical
/// numerics), so results are cached process-wide. A batch result is
/// ~120 bytes; even a class-A run's 4096 batches stay well under 1 MB.
static BATCH_MEMO: std::sync::Mutex<std::collections::BTreeMap<(u64, u64), EpResult>> =
    std::sync::Mutex::new(std::collections::BTreeMap::new());

pub(crate) fn run_batch(k: u64, pairs: u64) -> EpResult {
    if let Some(hit) = BATCH_MEMO
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&(k, pairs))
    {
        return hit.clone();
    }
    let fresh = run_batch_uncached(k, pairs);
    BATCH_MEMO
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert((k, pairs), fresh.clone());
    fresh
}

fn run_batch_uncached(k: u64, pairs: u64) -> EpResult {
    let mut rng = Ranlc::for_batch(k);
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut q = [0u64; 10];
    let mut accepted = 0u64;
    for _ in 0..pairs {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let gx = x * f;
            let gy = y * f;
            let l = gx.abs().max(gy.abs()) as usize;
            if l < q.len() {
                q[l] += 1;
            }
            sx += gx;
            sy += gy;
            accepted += 1;
        }
    }
    EpResult {
        sx,
        sy,
        q,
        accepted,
        pairs,
    }
}

/// Run EP for `2^log2_pairs` pairs on `threads` threads.
///
/// # Panics
/// Panics if `log2_pairs < BATCH_LOG2` would leave zero batches.
pub fn run(log2_pairs: u32, threads: usize) -> EpResult {
    let total_pairs = 1u64 << log2_pairs;
    let batch_pairs = 1u64 << BATCH_LOG2.min(log2_pairs);
    let batches = total_pairs / batch_pairs;
    assert!(batches >= 1, "EP needs at least one batch");

    let team = Team::new(threads);
    team.parallel_reduce(
        0..batches as usize,
        Schedule::Dynamic { chunk: 1 },
        EpResult {
            sx: 0.0,
            sy: 0.0,
            q: [0; 10],
            accepted: 0,
            pairs: 0,
        },
        |k, acc| {
            let r = run_batch(k as u64, batch_pairs);
            acc.sx += r.sx;
            acc.sy += r.sy;
            for (a, b) in acc.q.iter_mut().zip(r.q) {
                *a += b;
            }
            acc.accepted += r.accepted;
            acc.pairs += r.pairs;
        },
        |mut a, b| {
            a.sx += b.sx;
            a.sy += b.sy;
            for (x, y) in a.q.iter_mut().zip(b.q) {
                *x += y;
            }
            a.accepted += b.accepted;
            a.pairs += b.pairs;
            a
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_in_range() {
        let mut r = Ranlc::new(SEED);
        let first: Vec<f64> = (0..100).map(|_| r.next_f64()).collect();
        let mut r2 = Ranlc::new(SEED);
        let again: Vec<f64> = (0..100).map(|_| r2.next_f64()).collect();
        assert_eq!(first, again);
        assert!(first.iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn batch_jump_matches_sequential_stream() {
        // Batch k's stream must equal the sequential stream advanced by
        // 2*k*nk draws.
        let mut seq = Ranlc::new(SEED);
        let skip = 2 * (1u64 << BATCH_LOG2);
        for _ in 0..skip {
            seq.next_f64();
        }
        let mut jumped = Ranlc::for_batch(1);
        for i in 0..16 {
            assert_eq!(seq.next_f64(), jumped.next_f64(), "draw {i}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = run(18, 1);
        let parallel = run(18, 4);
        assert_eq!(serial.q, parallel.q);
        assert_eq!(serial.accepted, parallel.accepted);
        // Floating sums may differ in association order across threads,
        // but each batch is summed privately, so they are identical too.
        assert!((serial.sx - parallel.sx).abs() < 1e-9);
        assert!((serial.sy - parallel.sy).abs() < 1e-9);
    }

    #[test]
    fn acceptance_approaches_pi_over_4() {
        let r = run(18, 4);
        assert!(
            (r.acceptance() - std::f64::consts::FRAC_PI_4).abs() < 0.01,
            "acceptance {}",
            r.acceptance()
        );
    }

    #[test]
    fn annulus_counts_decay() {
        // Gaussian tails: q[0] > q[1] > ... and the far bins are tiny.
        let r = run(18, 2);
        assert!(r.q[0] > r.q[1] && r.q[1] > r.q[2]);
        assert_eq!(r.q[9], 0);
        assert_eq!(r.q.iter().sum::<u64>(), r.accepted);
    }
}
