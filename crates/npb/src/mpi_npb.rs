//! Distributed-memory NPB variants running over the simulated MPI.
//!
//! These are the "MPI versions" of the paper's Figure 20: real
//! decomposed algorithms whose messages carry actual data through
//! `maia-mpi`'s payload API, so the numerics are verifiable against the
//! shared-memory kernels while the discrete-event engine accounts the
//! communication time on the modeled fabric (host shared memory, Phi
//! ring, or PCIe in symmetric layouts).
//!
//! * [`ep_mpi`] — batch distribution + allreduce of the sums/counts.
//! * [`cg_mpi`] — row-block SpMV with replicated vectors (allgather per
//!   iteration, allreduce for dot products), NPB CG's communication
//!   pattern.
//! * [`ft_mpi`] — slab-decomposed 3D FFT: local x/y transforms, an
//!   all-to-all transpose for the z dimension — the transpose that
//!   makes FT the paper's communication stress test.
//! * [`is_mpi`] — local histogramming + allreduce, the counting-sort
//!   exchange.

use std::sync::Arc;

use parking_lot::Mutex;

use maia_mpi::{MpiWorld, Rank, WorldSpec};
use maia_sim::SimDuration;

use crate::ep::{run_batch, EpResult};
use crate::ft::{fft_line, Complex, Field};

/// A distributed run's outcome: the computed result plus the virtual
/// wall time of the whole world.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiRun<T> {
    pub result: T,
    /// Virtual seconds from start to the last rank's completion.
    pub wall_s: f64,
}

/// Modeled compute cost injected per flop on a rank (the DES only sees
/// communication otherwise). Coarse: enough to order compute-heavy vs
/// communication-heavy phases.
fn flop_cost(rank: &Rank, flops: f64) -> SimDuration {
    let per_core_gflops = if rank.placement().device.is_phi() {
        1.0
    } else {
        4.0
    };
    SimDuration::from_secs_f64(flops / (per_core_gflops * 1e9))
}

/// Distributed EP: batches are dealt round-robin to ranks; the Gaussian
/// sums and annulus counts are combined with a data-carrying allreduce.
pub fn ep_mpi(log2_pairs: u32, spec: &WorldSpec) -> MpiRun<EpResult> {
    let batch_log2 = 16u32.min(log2_pairs);
    let batch_pairs = 1u64 << batch_log2;
    let batches = (1u64 << log2_pairs) / batch_pairs;
    let out: Arc<Mutex<Option<EpResult>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);

    let res = MpiWorld::run(spec, move |mut rank| {
        let out2 = Arc::clone(&out2);
        async move {
        let me = rank.rank() as u64;
        let p = rank.size() as u64;
        let mut local = EpResult {
            sx: 0.0,
            sy: 0.0,
            q: [0; 10],
            accepted: 0,
            pairs: 0,
        };
        let mut k = me;
        while k < batches {
            let r = run_batch(k, batch_pairs);
            local.sx += r.sx;
            local.sy += r.sy;
            for (a, b) in local.q.iter_mut().zip(r.q) {
                *a += b;
            }
            local.accepted += r.accepted;
            local.pairs += r.pairs;
            k += p;
        }
        // ~60 flops per generated pair.
        let t = flop_cost(&rank, local.pairs as f64 * 60.0);
        rank.compute(t).await;

        // Pack into f64s (counts < 2^53, exact) and reduce.
        let mut buf = vec![local.sx, local.sy, local.accepted as f64, local.pairs as f64];
        buf.extend(local.q.iter().map(|&c| c as f64));
        rank.allreduce_sum_data(&mut buf).await;
        if rank.rank() == 0 {
            let mut q = [0u64; 10];
            for (i, qi) in q.iter_mut().enumerate() {
                *qi = buf[4 + i] as u64;
            }
            *out2.lock() = Some(EpResult {
                sx: buf[0],
                sy: buf[1],
                accepted: buf[2] as u64,
                pairs: buf[3] as u64,
                q,
            });
        }
        rank
        }
    })
    .expect("EP world deadlocked");

    MpiRun {
        result: { let mut guard = out.lock(); guard.take().expect("rank 0 stored the result") },
        wall_s: res.end_time.as_secs_f64(),
    }
}

/// Distributed CG: every rank owns a block of matrix rows; the direction
/// vector is re-replicated by an allgather each inner iteration and dot
/// products reduce globally. Returns the eigenvalue estimate `zeta`.
pub fn cg_mpi(
    n: usize,
    nz_per_row: usize,
    niter: usize,
    shift: f64,
    spec: &WorldSpec,
) -> MpiRun<f64> {
    let out: Arc<Mutex<Option<f64>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let res = MpiWorld::run(spec, move |mut rank| {
        let out2 = Arc::clone(&out2);
        async move {
        let p = rank.size();
        let me = rank.rank();
        // Deterministic replicated build; each rank uses only its rows.
        // The cached Arc stands in for every rank's identical local copy.
        let a = crate::cg::make_matrix_cached(n, nz_per_row, crate::ep::SEED);
        let lo = n * me / p;
        let hi = n * (me + 1) / p;

        let spmv_rows = |x: &[f64], out: &mut Vec<f64>| {
            out.clear();
            for row in lo..hi {
                let mut acc = 0.0;
                for idx in a.row_ptr[row]..a.row_ptr[row + 1] {
                    acc += a.val[idx] * x[a.col[idx] as usize];
                }
                out.push(acc);
            }
        };
        let dot_local = |u: &[f64], v: &[f64]| -> f64 {
            u.iter().zip(v).map(|(a, b)| a * b).sum()
        };
        let nnz_local = a.row_ptr[hi] - a.row_ptr[lo];

        let mut x = vec![1.0f64; n];
        let mut zeta = 0.0;
        for _ in 0..niter {
            // Inner CG solve of A z = x, vectors split into [lo, hi).
            let mut zl = vec![0.0f64; hi - lo];
            let mut rl: Vec<f64> = x[lo..hi].to_vec();
            let mut pfull = x.clone();
            let mut rho = {
                let mut b = vec![dot_local(&rl, &rl)];
                rank.allreduce_sum_data(&mut b).await;
                b[0]
            };
            let mut ql = Vec::with_capacity(hi - lo);
            for _ in 0..25 {
                spmv_rows(&pfull, &mut ql);
                rank.compute(flop_cost(&rank, 2.0 * nnz_local as f64)).await;
                let pq = {
                    let mut b = vec![dot_local(&pfull[lo..hi], &ql)];
                    rank.allreduce_sum_data(&mut b).await;
                    b[0]
                };
                let alpha = rho / pq;
                for i in 0..hi - lo {
                    zl[i] += alpha * pfull[lo + i];
                    rl[i] -= alpha * ql[i];
                }
                let rho_new = {
                    let mut b = vec![dot_local(&rl, &rl)];
                    rank.allreduce_sum_data(&mut b).await;
                    b[0]
                };
                let beta = rho_new / rho;
                rho = rho_new;
                let pl: Vec<f64> = (0..hi - lo)
                    .map(|i| rl[i] + beta * pfull[lo + i])
                    .collect();
                // Re-replicate the direction vector.
                let blocks = rank.allgather_data(&pl).await;
                pfull = blocks.concat();
            }
            // zeta = shift + 1 / (x . z), then x = z / ||z||.
            let xz_zz = {
                let mut b = vec![dot_local(&x[lo..hi], &zl), dot_local(&zl, &zl)];
                rank.allreduce_sum_data(&mut b).await;
                b
            };
            zeta = shift + 1.0 / xz_zz[0];
            let norm = xz_zz[1].sqrt();
            let xl: Vec<f64> = zl.iter().map(|v| v / norm).collect();
            let blocks = rank.allgather_data(&xl).await;
            x = blocks.concat();
        }
        if me == 0 {
            *out2.lock() = Some(zeta);
        }
        rank
        }
    })
    .expect("CG world deadlocked");
    MpiRun {
        result: { let mut guard = out.lock(); guard.take().expect("rank 0 stored zeta") },
        wall_s: res.end_time.as_secs_f64(),
    }
}

/// Distributed FT: z-slab decomposition. Each rank transforms x and y
/// lines inside its slab, then the slabs transpose (all-to-all) so the z
/// dimension becomes local, is transformed, and transposes back.
/// Returns the spectrum's checksum after one forward transform.
pub fn ft_mpi(nx: usize, ny: usize, nz: usize, spec: &WorldSpec) -> MpiRun<Complex> {
    let p = spec.size();
    assert!(nz.is_multiple_of(p) && nx.is_multiple_of(p), "slab decomposition needs p | nz and p | nx");
    let out: Arc<Mutex<Option<Complex>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);

    let res = MpiWorld::run(spec, move |mut rank| {
        let out2 = Arc::clone(&out2);
        async move {
        let me = rank.rank();
        let zloc = nz / p;
        let z0 = me * zloc;
        // Build this rank's slab from the same deterministic field.
        let full = Field::random(nx, ny, nz, crate::ep::SEED);
        let mut slab: Vec<Complex> =
            full.data[z0 * nx * ny..(z0 + zloc) * nx * ny].to_vec();

        // FFT along x: contiguous lines.
        for line in slab.chunks_mut(nx) {
            fft_line(line, false);
        }
        // FFT along y: gather strided lines within the slab.
        let mut scratch = vec![Complex::ZERO; ny];
        for k in 0..zloc {
            for i in 0..nx {
                for j in 0..ny {
                    scratch[j] = slab[(k * ny + j) * nx + i];
                }
                fft_line(&mut scratch, false);
                for j in 0..ny {
                    slab[(k * ny + j) * nx + i] = scratch[j];
                }
            }
        }
        rank.compute(flop_cost(
            &rank,
            5.0 * (zloc * nx * ny) as f64 * ((nx * ny) as f64).log2(),
        ))
        .await;

        // Transpose x<->z: block for destination d holds x in d's range.
        let xloc = nx / p;
        let blocks: Vec<Vec<f64>> = (0..p)
            .map(|d| {
                let mut b = Vec::with_capacity(zloc * ny * xloc * 2);
                for k in 0..zloc {
                    for j in 0..ny {
                        for i in d * xloc..(d + 1) * xloc {
                            let c = slab[(k * ny + j) * nx + i];
                            b.push(c.re);
                            b.push(c.im);
                        }
                    }
                }
                b
            })
            .collect();
        let got = rank.alltoall_data(blocks).await;

        // Reassemble as x-pencils: for each (i_local, j), a full z line.
        let mut zline = vec![Complex::ZERO; nz];
        let mut checksum_acc = Complex::ZERO;
        let mut pencil = vec![Complex::ZERO; xloc * ny * nz];
        for (src, b) in got.iter().enumerate() {
            // Source slab owned z in [src*zloc, (src+1)*zloc).
            let mut it = b.chunks_exact(2);
            for kk in 0..zloc {
                for j in 0..ny {
                    for il in 0..xloc {
                        let c = it.next().expect("block size mismatch");
                        pencil[(il * ny + j) * nz + src * zloc + kk] =
                            Complex::new(c[0], c[1]);
                    }
                }
            }
        }
        for il in 0..xloc {
            for j in 0..ny {
                zline.copy_from_slice(&pencil[(il * ny + j) * nz..(il * ny + j + 1) * nz]);
                fft_line(&mut zline, false);
                pencil[(il * ny + j) * nz..(il * ny + j + 1) * nz].copy_from_slice(&zline);
            }
        }
        rank.compute(flop_cost(
            &rank,
            5.0 * (xloc * ny * nz) as f64 * (nz as f64).log2(),
        ))
        .await;

        // Checksum over the same strided samples as Field::checksum,
        // each contributed by the rank owning that x index.
        for s in 1..=1024usize {
            let i = s % nx;
            let j = (3 * s) % ny;
            let k = (5 * s) % nz;
            if i / xloc == me {
                let c = pencil[((i % xloc) * ny + j) * nz + k];
                checksum_acc += c;
            }
        }
        let mut buf = vec![checksum_acc.re, checksum_acc.im];
        rank.allreduce_sum_data(&mut buf).await;
        if me == 0 {
            *out2.lock() = Some(Complex::new(buf[0] / 1024.0, buf[1] / 1024.0));
        }
        rank
        }
    })
    .expect("FT world deadlocked");

    MpiRun {
        result: { let mut guard = out.lock(); guard.take().expect("rank 0 stored the checksum") },
        wall_s: res.end_time.as_secs_f64(),
    }
}

/// Distributed IS: each rank histograms its key range; histograms reduce
/// globally; rank 0 materializes the sorted sequence. Returns the sorted
/// keys.
pub fn is_mpi(log2_n: u32, log2_max: u32, spec: &WorldSpec) -> MpiRun<Vec<u32>> {
    let out: Arc<Mutex<Option<Vec<u32>>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let res = MpiWorld::run(spec, move |mut rank| {
        let out2 = Arc::clone(&out2);
        async move {
        let p = rank.size();
        let me = rank.rank();
        let keys = crate::is::generate_keys(log2_n, log2_max, crate::ep::SEED);
        let lo = keys.len() * me / p;
        let hi = keys.len() * (me + 1) / p;
        let buckets = 1usize << log2_max;
        let mut histo = vec![0.0f64; buckets];
        for &k in &keys[lo..hi] {
            histo[k as usize] += 1.0;
        }
        rank.compute(flop_cost(&rank, (hi - lo) as f64 * 4.0)).await;
        rank.allreduce_sum_data(&mut histo).await;
        if me == 0 {
            let mut sorted = Vec::with_capacity(keys.len());
            for (key, &count) in histo.iter().enumerate() {
                sorted.extend(std::iter::repeat_n(key as u32, count as usize));
            }
            crate::is::verify(&keys, &sorted, log2_max);
            *out2.lock() = Some(sorted);
        }
        rank
        }
    })
    .expect("IS world deadlocked");
    MpiRun {
        result: { let mut guard = out.lock(); guard.take().expect("rank 0 stored the sort") },
        wall_s: res.end_time.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maia_arch::Device;
    use maia_interconnect::SoftwareStack;

    #[test]
    fn ep_mpi_matches_shared_memory_exactly() {
        let reference = crate::ep::run(18, 2);
        let spec = WorldSpec::all_on(Device::Host, 4);
        let dist = ep_mpi(18, &spec);
        assert_eq!(dist.result.q, reference.q);
        assert_eq!(dist.result.accepted, reference.accepted);
        assert!((dist.result.sx - reference.sx).abs() < 1e-9);
        assert!((dist.result.sy - reference.sy).abs() < 1e-9);
        assert!(dist.wall_s > 0.0);
    }

    #[test]
    fn cg_mpi_matches_shared_memory_zeta() {
        let reference = crate::cg::run_custom(600, 5, 5, 10.0, 2);
        let spec = WorldSpec::all_on(Device::Host, 4);
        let dist = cg_mpi(600, 5, 5, 10.0, &spec);
        assert!(
            (dist.result - reference.zeta).abs() < 1e-8,
            "distributed zeta {} vs shared {}",
            dist.result,
            reference.zeta
        );
    }

    #[test]
    fn ft_mpi_matches_shared_memory_spectrum() {
        // Reference: forward 3D FFT checksum via the shared-memory path.
        let team = maia_omp::Team::new(2);
        let f = Field::random(16, 16, 16, crate::ep::SEED);
        let spec_field = f.fft3d(&team, false);
        let reference = spec_field.checksum();

        let spec = WorldSpec::all_on(Device::Host, 4);
        let dist = ft_mpi(16, 16, 16, &spec);
        assert!(
            (dist.result.re - reference.re).abs() < 1e-9
                && (dist.result.im - reference.im).abs() < 1e-9,
            "distributed {:?} vs shared {:?}",
            dist.result,
            reference
        );
    }

    #[test]
    fn is_mpi_sorts() {
        let spec = WorldSpec::all_on(Device::Host, 3);
        let dist = is_mpi(12, 9, &spec);
        assert_eq!(dist.result.len(), 1 << 12);
        assert!(dist.result.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn phi_world_is_slower_than_host_world() {
        let host = ep_mpi(18, &WorldSpec::all_on(Device::Host, 8));
        let phi = ep_mpi(18, &WorldSpec::all_on(Device::Phi0, 8));
        assert!(
            phi.wall_s > host.wall_s,
            "phi {} vs host {}",
            phi.wall_s,
            host.wall_s
        );
    }

    #[test]
    fn symmetric_ft_crosses_pcie() {
        // FT's all-to-all over a host+phi layout pays PCIe costs: much
        // slower than the all-host layout.
        let host = ft_mpi(16, 16, 16, &WorldSpec::all_on(Device::Host, 4));
        let sym = ft_mpi(
            16,
            16,
            16,
            &WorldSpec::symmetric(2, 1, SoftwareStack::PostUpdate),
        );
        assert!(
            sym.wall_s > 2.0 * host.wall_s,
            "symmetric {} vs host {}",
            sym.wall_s,
            host.wall_s
        );
    }
}
