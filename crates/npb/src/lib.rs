//! # maia-npb — the NAS Parallel Benchmarks in Rust
//!
//! Rust implementations of the eight NPB 3.3 benchmarks the paper runs
//! (Figures 19–20, 24–27): the five kernels **EP, CG, MG, FT, IS** and the
//! three pseudo-applications **BT, SP, LU**.
//!
//! Two layers:
//!
//! * **Runnable kernels** — every benchmark executes for real, threaded
//!   over the `maia-omp` runtime, class-parameterized, and self-verifying
//!   (residual/convergence/permutation checks, plus serial-vs-parallel
//!   agreement). Small classes run in the test suite; larger classes are
//!   for the examples and benches.
//! * **Workload descriptors** ([`descriptors`]) — per-benchmark Class C
//!   resource signatures (`KernelProfile`s plus memory footprints and
//!   MPI communication shapes) that drive the `maia-modes` performance
//!   engine to regenerate the paper's Phi-vs-host figures. The FT Class C
//!   footprint (~10.7 GB for five 512³ complex arrays) exceeding the
//!   Phi's 8 GB is computed, not asserted — reproducing the paper's OOM.

pub mod bt;
pub mod cg;
pub mod class;
pub mod descriptors;
pub mod flow;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod mpi_npb;
pub mod sp;

pub use class::{Benchmark, Class};
pub use descriptors::{class_c_profile, memory_required_bytes, mpi_comm_profile};
