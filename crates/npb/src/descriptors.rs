//! Class C workload descriptors: the resource signatures that drive the
//! `maia-modes` performance engine to regenerate Figures 19, 20, 24 and
//! 25.
//!
//! Each benchmark gets a [`KernelProfile`] whose fields encode the
//! characteristics the paper discusses qualitatively:
//!
//! * **BT** — compute-dense 5×5 block solves, well vectorized, but
//!   blocked for the host's caches (large Phi traffic multiplier).
//! * **SP** — scalar line solves: more bandwidth-hungry than BT.
//! * **LU** — wavefront sweeps: a larger serial/pipeline fraction.
//! * **CG** — sparse matrix–vector with indirect addressing: dominated
//!   by gather/scatter ("the gather-scatter instruction is not efficient
//!   on Phi" — its vectorized sparse loop gained only 10%).
//! * **MG** — long unit-stride streams: the only kernel whose Phi rate
//!   beats the host (Figure 25: 29.9 vs 23.5 Gflop/s).
//! * **FT** — FFT passes with transposes (strided traffic).
//!
//! Memory footprints are computed from the Class C problem dimensions —
//! the FT Class C footprint (five 512³ complex arrays ≈ 10.7 GB) exceeds
//! the Phi card's 8 GB, reproducing the paper's FT-OOM in Figure 20.

use maia_modes::KernelProfile;

use crate::class::{cg_params, ft_params, mg_params, pseudo_app_params, Benchmark, Class};

/// Total floating-point operations of one Class C run (approximate NPB
/// 3.3 published operation counts; rates depend only on the ratio to
/// `dram_bytes`, but absolute run times matter for the offload studies).
fn class_c_flops(bench: Benchmark) -> f64 {
    match bench {
        Benchmark::Bt => 2.92e12,
        Benchmark::Sp => 2.47e12,
        Benchmark::Lu => 2.04e12,
        Benchmark::Cg => 1.43e11,
        Benchmark::Mg => 1.557e11,
        Benchmark::Ft => 4.66e11,
        Benchmark::Ep => 2.7e10,
        Benchmark::Is => 3.0e9,
    }
}

/// The Class C kernel profile of a benchmark.
pub fn class_c_profile(bench: Benchmark) -> KernelProfile {
    let flops = class_c_flops(bench);
    let (bpf, vf, gf, pf, extent, mult) = match bench {
        // bytes/flop, vector frac, gather frac, parallel frac, loop
        // extent, Phi traffic multiplier.
        Benchmark::Bt => (0.60, 0.96, 0.03, 0.9990, Some(162), 3.0),
        Benchmark::Sp => (1.20, 0.95, 0.05, 0.9990, Some(162), 3.0),
        Benchmark::Lu => (1.00, 0.85, 0.08, 0.9950, Some(162), 2.5),
        Benchmark::Cg => (3.00, 0.90, 0.90, 0.9950, None, 1.5),
        // The V-cycle's effective work-shared extent is well below the
        // finest grid's 512: coarse levels contribute short k loops. The
        // value 256 is calibrated to Figure 24's 25-28% collapse gain.
        Benchmark::Mg => (3.27, 0.95, 0.00, 0.9995, Some(256), 1.0),
        Benchmark::Ft => (1.60, 0.92, 0.15, 0.9990, Some(512), 1.8),
        Benchmark::Ep => (0.02, 0.40, 0.00, 0.9999, None, 1.0),
        Benchmark::Is => (8.00, 0.30, 0.50, 0.9900, None, 1.2),
    };
    KernelProfile {
        name: format!("{bench}.C"),
        flops,
        dram_bytes: flops * bpf,
        vector_fraction: vf,
        gather_fraction: gf,
        parallel_fraction: pf,
        parallel_extent: extent,
        phi_traffic_multiplier: mult,
    }
}

/// The Class C profile of the *MPI* variant. Mostly identical to the
/// OpenMP profile; BT differs: its multi-partition decomposition tiles
/// the grid per rank (better locality — lower traffic multiplier) but
/// spends more of its vector work in gather-style buffer packing and
/// wavefront exchanges, whose dependent accesses keep scaling through 4
/// ranks per core — the paper's "BT performance is best for 4 threads
/// per core" in Figure 20.
pub fn class_c_profile_mpi(bench: Benchmark) -> KernelProfile {
    let mut k = class_c_profile(bench);
    if bench == Benchmark::Bt {
        k.gather_fraction = 0.45;
        k.phi_traffic_multiplier = 2.0;
    }
    k.name = format!("{bench}.C-mpi");
    k
}

/// The MG Class C profile *without* the loop-collapse optimization:
/// identical work, but the work-shared loop extent is a single grid
/// dimension instead of the collapsed pair — the Figure 24 comparison.
pub fn mg_profile_uncollapsed() -> KernelProfile {
    class_c_profile(Benchmark::Mg)
}

/// The MG Class C profile with `collapse(2)` applied: the outer two loops
/// fuse, so the extent is effectively unbounded relative to 240 threads.
pub fn mg_profile_collapsed() -> KernelProfile {
    let mut k = class_c_profile(Benchmark::Mg);
    k.name = "MG.C+collapse".into();
    let (n, _) = mg_params(Class::C);
    // collapse(2) fuses the k and j loops: extent n².
    k.parallel_extent = Some((n * n) as u32);
    k
}

/// Total memory footprint in bytes of a benchmark at a class.
pub fn memory_required_bytes(bench: Benchmark, class: Class) -> u64 {
    match bench {
        Benchmark::Ft => {
            // Three complex state arrays plus two transpose/communication
            // buffers in the MPI version: 5 complex (16 B) grids.
            let (nx, ny, nz, _) = ft_params(class);
            5 * (nx * ny * nz) as u64 * 16
        }
        Benchmark::Mg => {
            let (n, _) = mg_params(class);
            // u, v, r over the level hierarchy (×8/7 for coarse levels).
            let fine = (n * n * n) as u64 * 8;
            3 * fine * 8 / 7
        }
        Benchmark::Cg => {
            let (n, nz, _, _) = cg_params(class);
            // CSR values + columns + five work vectors.
            let nnz = (n * (2 * nz + 1)) as u64;
            nnz * 12 + 5 * n as u64 * 8
        }
        Benchmark::Ep => 1 << 20,
        Benchmark::Is => {
            let (log2n, log2max) = crate::class::is_params(class);
            (1u64 << log2n) * 8 + (1u64 << log2max) * 4
        }
        Benchmark::Bt | Benchmark::Sp | Benchmark::Lu => {
            let (n, _) = pseudo_app_params(bench, class);
            // State, RHS, forcing (5 components) + solver workspace
            // (~15 scalar grids for BT's block storage, fewer for SP/LU).
            let grids = match bench {
                Benchmark::Bt => 30,
                Benchmark::Sp => 20,
                _ => 18,
            };
            (n * n * n) as u64 * 8 * grids
        }
    }
}

/// Communication profile of the MPI version, per whole run:
/// (point-to-point bytes per rank, messages per rank, alltoall bytes per
/// rank — zero for non-transpose codes).
pub fn mpi_comm_profile(bench: Benchmark, ranks: usize) -> (u64, u64, u64) {
    let r = ranks as u64;
    match bench {
        // Halo exchanges: surface/volume scaling.
        Benchmark::Bt | Benchmark::Sp => (6_000_000_000 / r, 4_000 * r.isqrt(), 0),
        Benchmark::Lu => (3_000_000_000 / r, 50_000, 0),
        Benchmark::Mg => (1_500_000_000 / r, 20_000, 0),
        Benchmark::Cg => (2_000_000_000 / r, 30_000, 0),
        // FT's 3D transpose is a full all-to-all of the grid per step.
        Benchmark::Ft => (500_000_000 / r, 2_000, 40_000_000_000 / r),
        Benchmark::Ep => (1_000, 10, 0),
        Benchmark::Is => (100_000_000 / r, 1_000, 10_000_000 / r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maia_modes::PerfModel;

    const PHI_SWEEP: [u32; 4] = [59, 118, 177, 236];

    fn host_rate(b: Benchmark) -> f64 {
        PerfModel::host().gflops(&class_c_profile(b), 16)
    }

    fn phi_best(b: Benchmark) -> (u32, f64) {
        PerfModel::phi().best_threads(&class_c_profile(b), &PHI_SWEEP)
    }

    #[test]
    fn figure19_host_beats_phi_except_mg() {
        for b in Benchmark::FIGURE19 {
            let h = host_rate(b);
            let (_, p) = phi_best(b);
            if b == Benchmark::Mg {
                assert!(
                    p > h,
                    "MG is the paper's exception: phi {p} should beat host {h}"
                );
            } else {
                assert!(h > p, "{b}: host {h} must beat phi {p}");
            }
        }
    }

    #[test]
    fn figure19_bt_highest_cg_lowest_on_phi() {
        let rates: Vec<(Benchmark, f64)> = Benchmark::FIGURE19
            .iter()
            .map(|&b| (b, phi_best(b).1))
            .collect();
        let bt = rates.iter().find(|(b, _)| *b == Benchmark::Bt).unwrap().1;
        let cg = rates.iter().find(|(b, _)| *b == Benchmark::Cg).unwrap().1;
        for (b, r) in &rates {
            if *b != Benchmark::Bt {
                assert!(bt >= *r, "BT ({bt}) must be highest on Phi; {b} = {r}");
            }
            if *b != Benchmark::Cg {
                assert!(cg <= *r, "CG ({cg}) must be lowest on Phi; {b} = {r}");
            }
        }
    }

    #[test]
    fn figure19_three_threads_per_core_usually_best() {
        let mut best_at_177 = 0;
        for b in Benchmark::FIGURE19 {
            if phi_best(b).0 == 177 {
                best_at_177 += 1;
            }
        }
        assert!(
            best_at_177 >= 4,
            "3 threads/core should be the sweet spot for most benchmarks, got {best_at_177}/6"
        );
    }

    #[test]
    fn figure24_collapse_gain_on_phi_not_host() {
        let phi = PerfModel::phi();
        let host = PerfModel::host();
        let plain = mg_profile_uncollapsed();
        let coll = mg_profile_collapsed();
        for threads in [177u32, 236] {
            let gain = phi.gflops(&coll, threads) / phi.gflops(&plain, threads);
            assert!(
                (1.05..1.45).contains(&gain),
                "phi collapse gain at {threads}T: {gain}"
            );
        }
        // On the host 16 threads divide any extent evenly: no gain.
        let host_gain = host.gflops(&coll, 16) / host.gflops(&plain, 16);
        assert!((host_gain - 1.0).abs() < 0.02, "host gain {host_gain}");
    }

    #[test]
    fn ft_class_c_exceeds_phi_memory() {
        let need = memory_required_bytes(Benchmark::Ft, Class::C);
        assert!(
            need > 10 * 1_000_000_000,
            "paper says FT.C needs ~10 GB, computed {need}"
        );
        assert!(need > 8 * (1u64 << 30), "must exceed the 8 GB card");
        // Class B fits.
        assert!(memory_required_bytes(Benchmark::Ft, Class::B) < 6 * (1u64 << 30));
    }

    #[test]
    fn other_class_c_benchmarks_fit_on_the_phi() {
        for b in [
            Benchmark::Cg,
            Benchmark::Mg,
            Benchmark::Bt,
            Benchmark::Sp,
            Benchmark::Lu,
        ] {
            let need = memory_required_bytes(b, Class::C);
            assert!(
                need < 6 * (1u64 << 30),
                "{b}.C needs {need} bytes — should fit the Phi"
            );
        }
    }

    #[test]
    fn profiles_validate() {
        for b in Benchmark::ALL {
            class_c_profile(b).validate();
        }
    }

    #[test]
    fn ft_comm_is_alltoall_dominated() {
        let (p2p, _msgs, a2a) = mpi_comm_profile(Benchmark::Ft, 128);
        assert!(a2a > 10 * p2p);
        let (p2p_mg, _, a2a_mg) = mpi_comm_profile(Benchmark::Mg, 128);
        assert!(a2a_mg == 0 && p2p_mg > 0);
    }
}
