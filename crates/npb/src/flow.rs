//! Shared infrastructure for the BT/SP/LU pseudo-applications: a
//! five-component state on a cubic grid, the coupled
//! convection–diffusion operator that stands in for the linearized
//! Navier–Stokes residual, and the axis rotation that lets every ADI
//! sweep run along the contiguous axis.
//!
//! All three pseudo-applications march `u' = u + Δu` toward the steady
//! state of `A u = f`, differing only in how they approximately invert
//! `A` each step: SP factors it into scalar pentadiagonal line solves,
//! BT into 5×5-block tridiagonal line solves, and LU applies SSOR
//! sweeps. That division of labor mirrors NPB's design.

use maia_omp::Team;

/// Components per grid point (NPB's five conserved variables).
pub const NVAR: usize = 5;

/// Inter-component coupling matrix (constant, diagonally light): the
/// stand-in for the flux Jacobian's off-diagonal structure.
pub const COUPLING: [[f64; NVAR]; NVAR] = [
    [0.00, 0.04, 0.00, 0.00, 0.01],
    [0.04, 0.00, 0.04, 0.00, 0.00],
    [0.00, 0.04, 0.00, 0.04, 0.00],
    [0.00, 0.00, 0.04, 0.00, 0.04],
    [0.01, 0.00, 0.00, 0.04, 0.00],
];

/// Convection coefficient of the model operator.
pub const CONVECT: f64 = 0.30;

/// A five-component field on an n³ grid with zero Dirichlet boundaries,
/// stored `data[((k*n + j)*n + i) * NVAR + m]`.
#[derive(Debug, Clone, PartialEq)]
pub struct State5 {
    pub n: usize,
    pub data: Vec<f64>,
}

impl State5 {
    /// Zero state.
    pub fn zeros(n: usize) -> Self {
        assert!(n >= 4, "grid too small for second-neighbor stencils");
        State5 {
            n,
            data: vec![0.0; n * n * n * NVAR],
        }
    }

    /// Smooth synthetic forcing field: products of quadratics that vanish
    /// on the boundary, different per component.
    pub fn forcing(n: usize) -> Self {
        let mut f = State5::zeros(n);
        let h = 1.0 / (n - 1) as f64;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let (x, y, z) = (i as f64 * h, j as f64 * h, k as f64 * h);
                    let shape = x * (1.0 - x) * y * (1.0 - y) * z * (1.0 - z);
                    for m in 0..NVAR {
                        let idx = f.idx(i, j, k, m);
                        f.data[idx] = shape * (1.0 + m as f64 * 0.3);
                    }
                }
            }
        }
        f
    }

    /// Flat index of component `m` at `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize, m: usize) -> usize {
        ((k * self.n + j) * self.n + i) * NVAR + m
    }

    /// Value with zero Dirichlet exterior.
    #[inline]
    pub fn at(&self, i: isize, j: isize, k: isize, m: usize) -> f64 {
        let n = self.n as isize;
        if i < 0 || j < 0 || k < 0 || i >= n || j >= n || k >= n {
            0.0
        } else {
            self.data[self.idx(i as usize, j as usize, k as usize, m)]
        }
    }

    /// L2 norm over all components (fixed summation order so results are
    /// thread-count independent).
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Rotate axes so the current y becomes x (same scheme as the FT
    /// transpose): applying it three times restores the layout. Sweeping
    /// "along x" after r rotations sweeps the original axis r.
    pub fn rotate(&self, team: &Team) -> State5 {
        let n = self.n;
        let mut out = State5::zeros(n);
        // Pure data movement: walk the output sequentially, stepping the
        // source index incrementally instead of div/mod per element.
        // (i',j',k') = (old j, old k, old i), so consecutive output
        // cells read with stride n·NVAR through the source.
        team.parallel_chunks(&mut out.data, |start, chunk| {
            let mut pos = 0usize;
            let end = chunk.len();
            let mut flat = start;
            while pos < end {
                let m = flat % NVAR;
                let cell = flat / NVAR;
                let ip = cell % n; // = old j
                let jp = (cell / n) % n; // = old k
                let kp = cell / (n * n); // = old i
                // Elements of one output cell are contiguous in both
                // buffers; copy up to the cell boundary.
                let src = ((jp * n + ip) * n + kp) * NVAR + m;
                let take = (NVAR - m).min(end - pos);
                chunk[pos..pos + take].copy_from_slice(&self.data[src..src + take]);
                pos += take;
                flat += take;
            }
        });
        out
    }
}

/// Work-share whole x-lines of a state across the team: `f` receives each
/// line's `n * NVAR` contiguous floats. Chunk boundaries always fall on
/// line boundaries, unlike a raw byte partition.
pub fn for_each_line<F>(team: &Team, state: &mut State5, f: F)
where
    F: Fn(&mut [f64]) + Sync,
{
    let n = state.n;
    let line_floats = n * NVAR;
    let lines = n * n;
    let t = team.num_threads();
    std::thread::scope(|s| {
        let mut rest: &mut [f64] = &mut state.data;
        for id in 0..t {
            let r = maia_omp::block_partition(lines, t, id);
            let (chunk, tail) = rest.split_at_mut(r.len() * line_floats);
            rest = tail;
            let f = &f;
            if id == t - 1 {
                for line in chunk.chunks_mut(line_floats) {
                    f(line);
                }
            } else {
                s.spawn(move || {
                    for line in chunk.chunks_mut(line_floats) {
                        f(line);
                    }
                });
            }
        }
    });
}

/// The model operator `A u` at one point: 3D convection–diffusion with
/// inter-component coupling.
#[inline]
pub fn apply_operator(u: &State5, i: usize, j: usize, k: usize, m: usize) -> f64 {
    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
    let c = u.at(ii, jj, kk, m);
    let lap = 6.0 * c
        - u.at(ii - 1, jj, kk, m)
        - u.at(ii + 1, jj, kk, m)
        - u.at(ii, jj - 1, kk, m)
        - u.at(ii, jj + 1, kk, m)
        - u.at(ii, jj, kk - 1, m)
        - u.at(ii, jj, kk + 1, m);
    let conv = CONVECT
        * ((u.at(ii + 1, jj, kk, m) - u.at(ii - 1, jj, kk, m))
            + (u.at(ii, jj + 1, kk, m) - u.at(ii, jj - 1, kk, m))
            + (u.at(ii, jj, kk + 1, m) - u.at(ii, jj, kk - 1, m)))
        / 2.0;
    let mut couple = 0.0;
    for (l, row) in COUPLING[m].iter().enumerate() {
        couple += row * u.at(ii, jj, kk, l);
    }
    lap + conv + couple + 0.5 * c
}

/// [`apply_operator`] for a point whose full 6-neighborhood is in
/// bounds: the same arithmetic in the same order, with the boundary
/// checks of [`State5::at`] replaced by direct strided loads. Kept
/// bit-identical to the checked path — `residual` dispatches on
/// position, and goldens depend on the results matching exactly.
#[inline]
fn apply_operator_interior(u: &State5, flat: usize, m: usize) -> f64 {
    let n = u.n;
    let (dx, dy, dz) = (NVAR, n * NVAR, n * n * NVAR);
    let d = &u.data;
    let c = d[flat];
    let lap = 6.0 * c
        - d[flat - dx]
        - d[flat + dx]
        - d[flat - dy]
        - d[flat + dy]
        - d[flat - dz]
        - d[flat + dz];
    let conv = CONVECT
        * ((d[flat + dx] - d[flat - dx])
            + (d[flat + dy] - d[flat - dy])
            + (d[flat + dz] - d[flat - dz]))
        / 2.0;
    let mut couple = 0.0;
    let base = flat - m;
    for (l, row) in COUPLING[m].iter().enumerate() {
        couple += row * d[base + l];
    }
    lap + conv + couple + 0.5 * c
}

/// [`apply_operator`] for a boundary point: in-bounds neighbors load
/// directly, out-of-bounds ones contribute the same literal `0.0` the
/// Dirichlet-checked [`State5::at`] would return. Same operations in
/// the same order as the checked path — bit-identical.
#[inline]
fn apply_operator_edge(u: &State5, flat: usize, i: usize, j: usize, k: usize, m: usize) -> f64 {
    let n = u.n;
    let (dx, dy, dz) = (NVAR, n * NVAR, n * n * NVAR);
    let d = &u.data;
    let xm = if i > 0 { d[flat - dx] } else { 0.0 };
    let xp = if i + 1 < n { d[flat + dx] } else { 0.0 };
    let ym = if j > 0 { d[flat - dy] } else { 0.0 };
    let yp = if j + 1 < n { d[flat + dy] } else { 0.0 };
    let zm = if k > 0 { d[flat - dz] } else { 0.0 };
    let zp = if k + 1 < n { d[flat + dz] } else { 0.0 };
    let c = d[flat];
    let lap = 6.0 * c - xm - xp - ym - yp - zm - zp;
    let conv = CONVECT * ((xp - xm) + (yp - ym) + (zp - zm)) / 2.0;
    let mut couple = 0.0;
    let base = flat - m;
    for (l, row) in COUPLING[m].iter().enumerate() {
        couple += row * d[base + l];
    }
    lap + conv + couple + 0.5 * c
}

/// Residual `r = f − A u`, work-shared.
pub fn residual(team: &Team, u: &State5, f: &State5, r: &mut State5) {
    let n = u.n;
    team.parallel_chunks(&mut r.data, |start, chunk| {
        // Decompose the chunk's first flat index once, then step
        // (m, i, j, k) incrementally — the div/mod per element would
        // otherwise dominate the stencil itself at small n.
        let mut m = start % NVAR;
        let cell = start / NVAR;
        let mut i = cell % n;
        let mut j = (cell / n) % n;
        let mut k = cell / (n * n);
        for (flat, v) in (start..).zip(chunk.iter_mut()) {
            let interior = (1..n - 1).contains(&i)
                && (1..n - 1).contains(&j)
                && (1..n - 1).contains(&k);
            *v = f.data[flat]
                - if interior {
                    apply_operator_interior(u, flat, m)
                } else {
                    apply_operator_edge(u, flat, i, j, k, m)
                };
            m += 1;
            if m == NVAR {
                m = 0;
                i += 1;
                if i == n {
                    i = 0;
                    j += 1;
                    if j == n {
                        j = 0;
                        k += 1;
                    }
                }
            }
        }
    });
}

/// `u += delta`, work-shared.
pub fn add_assign(team: &Team, u: &mut State5, delta: &State5) {
    let d = &delta.data;
    team.parallel_chunks(&mut u.data, |start, chunk| {
        for (off, v) in chunk.iter_mut().enumerate() {
            *v += d[start + off];
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_three_times_is_identity() {
        let team = Team::new(3);
        let mut s = State5::forcing(8);
        let idx = s.idx(1, 2, 3, 4);
        s.data[idx] = 42.0;
        let r3 = s.rotate(&team).rotate(&team).rotate(&team);
        assert_eq!(s, r3);
    }

    #[test]
    fn rotate_moves_y_to_x() {
        let team = Team::new(2);
        let mut s = State5::zeros(6);
        let idx = s.idx(1, 2, 3, 0);
        s.data[idx] = 9.0;
        let r = s.rotate(&team);
        // (i,j,k) -> (i'=j, j'=k, k'=i).
        assert_eq!(r.data[r.idx(2, 3, 1, 0)], 9.0);
    }

    #[test]
    fn operator_is_diagonally_dominant_enough_for_sweeps() {
        // Center weight 6.5 vs neighbor weights 6x1 + conv 6x0.15 + coupling
        // row sums <= 0.09: the implicit solvers rely on this margin.
        let row_sum: f64 = COUPLING[0].iter().sum();
        assert!(6.5 > 6.0 * 1.0 * 0.5 + row_sum, "operator not dominant");
    }

    #[test]
    fn residual_of_zero_state_is_forcing() {
        let team = Team::new(2);
        let n = 8;
        let u = State5::zeros(n);
        let f = State5::forcing(n);
        let mut r = State5::zeros(n);
        residual(&team, &u, &f, &mut r);
        assert_eq!(r, f);
    }

    #[test]
    fn boundary_reads_are_zero() {
        let s = State5::forcing(8);
        assert_eq!(s.at(-1, 0, 0, 0), 0.0);
        assert_eq!(s.at(0, 8, 0, 2), 0.0);
    }
}
