//! FT — 3D fast Fourier transform PDE solver.
//!
//! NPB FT solves ∂u/∂t = α∇²u spectrally: FFT the initial state once,
//! damp each mode by `exp(−4απ²|k|²t)` per time step, inverse-FFT, and
//! checksum. This implementation uses an iterative radix-2 Cooley–Tukey
//! transform along the contiguous axis with two axis rotations
//! (transposes) per 3D pass — the same dataflow as the reference code's
//! `cffts1/2/3`, and the reason FT's MPI version needs a full all-to-all.
//!
//! Verification: forward→inverse round trip reproduces the input,
//! Parseval's identity holds, and results are identical across thread
//! counts.

use maia_omp::{block_partition, Team};

use crate::class::{ft_params, Class};
use crate::ep::Ranlc;

/// A complex number (no external dependency needed).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        *self = *self + o;
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place radix-2 FFT of one line. `inverse` applies the conjugate
/// transform scaled by 1/n.
pub fn fft_line(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in buf.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// A 3D complex field, `data[(k*ny + j)*nx + i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub data: Vec<Complex>,
}

impl Field {
    /// Zero field.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Field {
            nx,
            ny,
            nz,
            data: vec![Complex::ZERO; nx * ny * nz],
        }
    }

    /// NPB-style pseudorandom initial state.
    pub fn random(nx: usize, ny: usize, nz: usize, seed: u64) -> Self {
        let mut rng = Ranlc::new(seed);
        let data = (0..nx * ny * nz)
            .map(|_| Complex::new(rng.next_f64(), rng.next_f64()))
            .collect();
        Field { nx, ny, nz, data }
    }

    /// FFT every x-line in place, work-shared line-wise.
    fn fft_x(&mut self, team: &Team, inverse: bool) {
        let nx = self.nx;
        let lines = self.ny * self.nz;
        let t = team.num_threads();
        std::thread::scope(|s| {
            let mut rest: &mut [Complex] = &mut self.data;
            for id in 0..t {
                let r = block_partition(lines, t, id);
                let (chunk, tail) = rest.split_at_mut(r.len() * nx);
                rest = tail;
                if id == t - 1 {
                    for line in chunk.chunks_mut(nx) {
                        fft_line(line, inverse);
                    }
                } else {
                    s.spawn(move || {
                        for line in chunk.chunks_mut(nx) {
                            fft_line(line, inverse);
                        }
                    });
                }
            }
        });
    }

    /// Rotate axes: output dims `(ny, nz, nx)` with
    /// `out(j, k, i) = in(i, j, k)` — after three rotations the layout is
    /// restored.
    fn rotate(&self, team: &Team) -> Field {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mut out = Field::zeros(ny, nz, nx);
        team.parallel_chunks(&mut out.data, |start, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                let flat = start + off;
                // Output coordinates in the rotated frame.
                let ip = flat % ny; // = j
                let jp = (flat / ny) % nz; // = k
                let kp = flat / (ny * nz); // = i
                *v = self.data[(jp * ny + ip) * nx + kp];
            }
        });
        out
    }

    /// Full 3D FFT (or inverse): transform x, rotate, ×3.
    pub fn fft3d(&self, team: &Team, inverse: bool) -> Field {
        let mut f = self.clone();
        for _ in 0..3 {
            f.fft_x(team, inverse);
            f = f.rotate(team);
        }
        f
    }

    /// Sum of |v|² (for Parseval checks).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|v| v.norm_sq()).sum()
    }

    /// NPB-style checksum: 1024 strided samples.
    pub fn checksum(&self) -> Complex {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mut acc = Complex::ZERO;
        for j in 1..=1024usize {
            let i = j % nx;
            let jj = (3 * j) % ny;
            let kk = (5 * j) % nz;
            acc += self.data[(kk * ny + jj) * nx + i];
        }
        acc.scale(1.0 / 1024.0)
    }
}

/// FT run result.
#[derive(Debug, Clone, PartialEq)]
pub struct FtResult {
    /// Checksum after each evolution step.
    pub checksums: Vec<Complex>,
}

/// Evolve the spectrum one step: damp each mode by its |k|².
fn evolve(team: &Team, spectrum: &mut Field, alpha_t: f64) {
    let (nx, ny, nz) = (spectrum.nx, spectrum.ny, spectrum.nz);
    let wave = |idx: usize, n: usize| -> f64 {
        // Signed wavenumber for FFT ordering.
        let k = if idx <= n / 2 { idx as f64 } else { idx as f64 - n as f64 };
        k * k
    };
    team.parallel_chunks(&mut spectrum.data, |start, chunk| {
        for (off, v) in chunk.iter_mut().enumerate() {
            let flat = start + off;
            let i = flat % nx;
            let j = (flat / nx) % ny;
            let k = flat / (nx * ny);
            let k2 = wave(i, nx) + wave(j, ny) + wave(k, nz);
            *v = v.scale((-alpha_t * k2).exp());
        }
    });
}

/// Run FT with explicit dimensions.
pub fn run_custom(nx: usize, ny: usize, nz: usize, steps: usize, threads: usize) -> FtResult {
    let team = Team::new(threads);
    let u0 = Field::random(nx, ny, nz, crate::ep::SEED);
    let mut spectrum = u0.fft3d(&team, false);
    let alpha = 1e-6;
    let mut checksums = Vec::with_capacity(steps);
    for t in 1..=steps {
        evolve(&team, &mut spectrum, alpha * t as f64);
        let ut = spectrum.fft3d(&team, true);
        checksums.push(ut.checksum());
    }
    FtResult { checksums }
}

/// Run the class-parameterized benchmark.
pub fn run(class: Class, threads: usize) -> FtResult {
    let (nx, ny, nz, steps) = ft_params(class);
    run_custom(nx, ny, nz, steps, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fft_round_trips() {
        let mut rng = Ranlc::new(11);
        let orig: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.next_f64(), rng.next_f64()))
            .collect();
        let mut buf = orig.clone();
        fft_line(&mut buf, false);
        fft_line(&mut buf, true);
        for (a, b) in orig.iter().zip(&buf) {
            assert!((a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn line_fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::ZERO; 16];
        buf[0] = Complex::new(1.0, 0.0);
        fft_line(&mut buf, false);
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft3d_round_trips_and_preserves_energy() {
        let team = Team::new(3);
        let f = Field::random(16, 8, 32, 5);
        let spec = f.fft3d(&team, false);
        // Parseval: energy(spec) = N * energy(f) for unnormalized forward.
        let n = (16 * 8 * 32) as f64;
        assert!(
            (spec.energy() / (n * f.energy()) - 1.0).abs() < 1e-10,
            "Parseval violated"
        );
        let back = spec.fft3d(&team, true);
        assert_eq!(back.nx, f.nx);
        for (a, b) in f.data.iter().zip(&back.data) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let a = run_custom(16, 16, 16, 3, 1);
        let b = run_custom(16, 16, 16, 3, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn evolution_damps_the_field() {
        // Total energy decreases monotonically under diffusion.
        let team = Team::new(2);
        let u0 = Field::random(16, 16, 16, 5);
        let mut spec = u0.fft3d(&team, false);
        let mut prev = spec.energy();
        for t in 1..4 {
            evolve(&team, &mut spec, 1e-3 * t as f64);
            let e = spec.energy();
            assert!(e < prev, "energy grew at step {t}");
            prev = e;
        }
    }

    #[test]
    fn class_s_runs() {
        let r = run_custom(64, 64, 64, 2, 4);
        assert_eq!(r.checksums.len(), 2);
        assert!(r.checksums[0].re.is_finite());
    }
}
