//! CG — conjugate gradient.
//!
//! Estimates the smallest eigenvalue of a large sparse symmetric
//! positive-definite matrix by shifted inverse power iteration, with each
//! inverse solved approximately by 25 conjugate-gradient iterations —
//! the structure of NPB CG. The matrix is a randomly patterned symmetric
//! matrix made strictly diagonally dominant (hence SPD), built from the
//! same `Ranlc` stream as the reference generator.
//!
//! The sparse matrix–vector product uses *indirect addressing* — the very
//! access pattern whose gather/scatter cost cripples CG on the Phi
//! (paper Section 6.8.1).

use maia_omp::{Schedule, Team};

use crate::class::{cg_params, Class};
use crate::ep::Ranlc;

/// Compressed sparse row matrix.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    pub n: usize,
    pub row_ptr: Vec<usize>,
    pub col: Vec<u32>,
    pub val: Vec<f64>,
}

impl SparseMatrix {
    /// Nonzero count.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// y = A·x, work-shared over rows.
    pub fn spmv(&self, team: &Team, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        team.parallel_chunks(y, |start, chunk| {
            for (i, yi) in chunk.iter_mut().enumerate() {
                let row = start + i;
                let mut acc = 0.0;
                for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                    acc += self.val[k] * x[self.col[k] as usize];
                }
                *yi = acc;
            }
        });
    }
}

/// [`make_matrix`] behind a process-wide cache. The build is a pure
/// function of its arguments, and the distributed runner re-derives the
/// *same* replicated matrix on every rank of every device placement —
/// sharing one immutable copy changes no numerics, only the build count.
pub fn make_matrix_cached(n: usize, nz_per_row: usize, seed: u64) -> std::sync::Arc<SparseMatrix> {
    static MEMO: std::sync::Mutex<
        std::collections::BTreeMap<(usize, usize, u64), std::sync::Arc<SparseMatrix>>,
    > = std::sync::Mutex::new(std::collections::BTreeMap::new());
    let mut memo = MEMO.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    std::sync::Arc::clone(
        memo.entry((n, nz_per_row, seed))
            .or_insert_with(|| std::sync::Arc::new(make_matrix(n, nz_per_row, seed))),
    )
}

/// Build a random symmetric strictly-diagonally-dominant matrix of order
/// `n` with about `nz_per_row` off-diagonal entries per row.
pub fn make_matrix(n: usize, nz_per_row: usize, seed: u64) -> SparseMatrix {
    assert!(n >= 2 && nz_per_row >= 1);
    let mut rng = Ranlc::new(seed);
    // Triplets (i, j, v) for the strictly-lower triangle; mirrored to
    // keep symmetry.
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::with_capacity(2 * nz_per_row + 1); n];
    for i in 0..n {
        for _ in 0..nz_per_row {
            let j = (rng.next_f64() * n as f64) as usize % n;
            if j == i {
                continue;
            }
            let v = rng.next_f64() - 0.5;
            rows[i].push((j as u32, v));
            rows[j].push((i as u32, v));
        }
    }
    // Diagonal = |row sum| + 1 ensures strict dominance.
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    row_ptr.push(0);
    for (i, entries) in rows.iter_mut().enumerate() {
        entries.sort_by_key(|&(j, _)| j);
        // Merge duplicate columns.
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
        for &(j, v) in entries.iter() {
            match merged.last_mut() {
                Some(last) if last.0 == j => last.1 += v,
                _ => merged.push((j, v)),
            }
        }
        let dom: f64 = merged.iter().map(|&(_, v)| v.abs()).sum::<f64>() + 1.0;
        // Insert the diagonal in sorted position.
        let mut inserted = false;
        for (j, v) in merged {
            if !inserted && j as usize > i {
                col.push(i as u32);
                val.push(dom);
                inserted = true;
            }
            col.push(j);
            val.push(v);
        }
        if !inserted {
            col.push(i as u32);
            val.push(dom);
        }
        row_ptr.push(col.len());
    }
    SparseMatrix {
        n,
        row_ptr,
        col,
        val,
    }
}

fn dot(team: &Team, a: &[f64], b: &[f64]) -> f64 {
    team.parallel_reduce(
        0..a.len(),
        Schedule::Static { chunk: 0 },
        0.0f64,
        |i, acc| *acc += a[i] * b[i],
        |x, y| x + y,
    )
}

/// Result of a CG run.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// The eigenvalue estimate (NPB's `zeta`).
    pub zeta: f64,
    /// ‖r‖ of the final inner solve.
    pub final_rnorm: f64,
    /// zeta drift over the last outer iteration (convergence indicator).
    pub last_delta: f64,
}

/// One inner CG solve of `A z = x` (25 iterations, like NPB). Returns
/// ‖r‖ at exit; `z` holds the solution.
pub fn cg_solve(team: &Team, a: &SparseMatrix, x: &[f64], z: &mut [f64]) -> f64 {
    let n = a.n;
    let mut r = x.to_vec();
    let mut p = x.to_vec();
    for v in z.iter_mut() {
        *v = 0.0;
    }
    let mut rho = dot(team, &r, &r);
    let mut q = vec![0.0; n];
    for _ in 0..25 {
        a.spmv(team, &p, &mut q);
        let alpha = rho / dot(team, &p, &q);
        for i in 0..n {
            z[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new = dot(team, &r, &r);
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    rho.sqrt()
}

/// Run CG for a class's parameters on `threads` threads.
pub fn run(class: Class, threads: usize) -> CgResult {
    let (n, nz, niter, shift) = cg_params(class);
    run_custom(n, nz, niter, shift, threads)
}

/// Run with explicit parameters (used by tests at reduced sizes).
pub fn run_custom(
    n: usize,
    nz_per_row: usize,
    niter: usize,
    shift: f64,
    threads: usize,
) -> CgResult {
    let a = make_matrix(n, nz_per_row, crate::ep::SEED);
    let team = Team::new(threads);
    let mut x = vec![1.0f64; n];
    let mut z = vec![0.0f64; n];
    let mut zeta = 0.0;
    let mut last_delta = f64::INFINITY;
    let mut rnorm = 0.0;
    for _ in 0..niter {
        rnorm = cg_solve(&team, &a, &x, &mut z);
        let xz = dot(&team, &x, &z);
        let new_zeta = shift + 1.0 / xz;
        last_delta = (new_zeta - zeta).abs();
        zeta = new_zeta;
        // x = z / ||z||.
        let znorm = dot(&team, &z, &z).sqrt();
        for i in 0..n {
            x[i] = z[i] / znorm;
        }
    }
    CgResult {
        zeta,
        final_rnorm: rnorm,
        last_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric_and_diagonally_dominant() {
        let a = make_matrix(200, 5, 7);
        // Dominance: |diag| > sum of |off-diag| per row.
        for i in 0..a.n {
            let mut diag = 0.0;
            let mut off = 0.0;
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                if a.col[k] as usize == i {
                    diag = a.val[k].abs();
                } else {
                    off += a.val[k].abs();
                }
            }
            assert!(diag > off, "row {i} not dominant: {diag} vs {off}");
        }
        // Symmetry: dense reconstruction (small n).
        let mut dense = vec![0.0; a.n * a.n];
        for i in 0..a.n {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                dense[i * a.n + a.col[k] as usize] = a.val[k];
            }
        }
        for i in 0..a.n {
            for j in 0..a.n {
                assert_eq!(dense[i * a.n + j], dense[j * a.n + i]);
            }
        }
    }

    #[test]
    fn inner_solve_reduces_residual() {
        let a = make_matrix(500, 6, 3);
        let team = Team::new(2);
        let x = vec![1.0; a.n];
        let mut z = vec![0.0; a.n];
        let rnorm = cg_solve(&team, &a, &x, &mut z);
        let initial = (a.n as f64).sqrt(); // ||x|| with x = ones
        assert!(
            rnorm < 1e-8 * initial,
            "CG barely converged: {rnorm} vs {initial}"
        );
        // And z actually solves A z ≈ x.
        let mut ax = vec![0.0; a.n];
        a.spmv(&team, &z, &mut ax);
        let err: f64 = ax
            .iter()
            .zip(&x)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-8, "solve error {err}");
    }

    #[test]
    fn zeta_converges_and_matches_across_thread_counts() {
        let r1 = run_custom(700, 5, 10, 10.0, 1);
        let r4 = run_custom(700, 5, 10, 10.0, 4);
        // The outer power iteration's drift shrinks as iterations grow.
        let early = run_custom(700, 5, 5, 10.0, 1);
        let late = run_custom(700, 5, 40, 10.0, 1);
        assert!(
            late.last_delta < 0.05 * early.last_delta,
            "outer iteration not converging: {} -> {}",
            early.last_delta,
            late.last_delta
        );
        assert!(
            (r1.zeta - r4.zeta).abs() < 1e-8,
            "thread count changed zeta: {} vs {}",
            r1.zeta,
            r4.zeta
        );
        // Shift + positive 1/(x·z): zeta sits a couple of units above the
        // shift for this diagonally dominant spectrum.
        assert!(r1.zeta > 10.0 && r1.zeta < 13.0, "zeta {}", r1.zeta);
    }

    #[test]
    fn class_s_runs_end_to_end() {
        let r = run(Class::S, 4);
        assert!(r.zeta.is_finite());
        assert!(r.final_rnorm < 1e-6);
    }
}
