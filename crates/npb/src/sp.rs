//! SP — scalar pentadiagonal ADI solver.
//!
//! NPB SP's signature is its approximately factored time step: the
//! implicit operator splits into three one-dimensional factors, each a
//! *scalar* pentadiagonal system (five bands from second-neighbor
//! artificial dissipation) solved independently per component along every
//! grid line. We march the model operator of [`crate::flow`] to steady
//! state with exactly that structure: per step, RHS evaluation, then an
//! x/y/z triplet of line sweeps (each preceded by an axis rotation so the
//! solve always runs along contiguous memory), then the update.

use maia_omp::Team;

use crate::class::{pseudo_app_params, Benchmark, Class};
use crate::flow::{add_assign, for_each_line, residual, State5, CONVECT, NVAR};

/// Time-step of the pseudo-time march.
pub const TAU: f64 = 0.8;
/// Fourth-difference dissipation strength.
pub const EPS4: f64 = 0.05;

/// The constant pentadiagonal coefficients of one 1-D factor
/// `(a, b, c, d, e)` for `u[i-2..=i+2]`.
pub fn penta_coeffs() -> (f64, f64, f64, f64, f64) {
    let a = TAU * EPS4;
    let b = TAU * (-1.0 - 4.0 * EPS4 - CONVECT / 2.0);
    let c = 1.0 + TAU * (2.0 + 6.0 * EPS4 + 0.5 / 3.0);
    let d = TAU * (-1.0 - 4.0 * EPS4 + CONVECT / 2.0);
    let e = TAU * EPS4;
    (a, b, c, d, e)
}

/// The rhs-independent part of the pentadiagonal elimination: the row
/// multipliers and the post-elimination main/first-super bands. The
/// system matrix is fully determined by `(coeffs, n)`, so one factor
/// serves every line of a sweep; the second superdiagonal is never
/// touched by the elimination and stays the scalar `e`.
struct PentaFactor {
    n: usize,
    coeffs: (f64, f64, f64, f64, f64),
    /// `(f, g)` multipliers per row `i` in `1..n` (`g` unused when
    /// `i + 1 == n`).
    fg: Vec<(f64, f64)>,
    diag: Vec<f64>,
    sup1: Vec<f64>,
    e: f64,
}

impl PentaFactor {
    fn new(coeffs: (f64, f64, f64, f64, f64), n: usize) -> PentaFactor {
        let (a, b, c, d, e) = coeffs;
        let mut diag = vec![c; n];
        let mut sup1 = vec![d; n];
        // Row i has sub-bands: a (i-2), b' (i-1) — b' changes as rows
        // above are eliminated.
        let mut sub1 = vec![b; n];
        let mut fg = vec![(0.0, 0.0); n];
        for i in 1..n {
            // Eliminate sub1[i] using row i-1.
            let f = sub1[i] / diag[i - 1];
            diag[i] -= f * sup1[i - 1];
            sup1[i] -= f * e;
            let mut g = 0.0;
            // Eliminate the second sub-band of row i+1 using row i-1.
            if i + 1 < n {
                g = a / diag[i - 1];
                sub1[i + 1] -= g * sup1[i - 1];
                // The remaining effect on the diagonal of row i+1 from
                // the second superdiagonal of row i-1:
                diag[i + 1] -= g * e;
            }
            fg[i] = (f, g);
        }
        PentaFactor { n, coeffs, fg, diag, sup1, e }
    }

    /// Apply the factored elimination to one right-hand side. The rhs
    /// updates are the same operations in the same order as the original
    /// fused elimination, so results are bit-identical.
    fn solve(&self, rhs: &mut [f64]) {
        let n = self.n;
        for i in 1..n {
            let (f, g) = self.fg[i];
            rhs[i] -= f * rhs[i - 1];
            if i + 1 < n {
                rhs[i + 1] -= g * rhs[i - 1];
            }
        }
        // Back substitution.
        rhs[n - 1] /= self.diag[n - 1];
        if n >= 2 {
            rhs[n - 2] = (rhs[n - 2] - self.sup1[n - 2] * rhs[n - 1]) / self.diag[n - 2];
        }
        for i in (0..n.saturating_sub(2)).rev() {
            rhs[i] =
                (rhs[i] - self.sup1[i] * rhs[i + 1] - self.e * rhs[i + 2]) / self.diag[i];
        }
    }
}

/// Solve one constant-coefficient pentadiagonal system in place.
/// Diagonal dominance of [`penta_coeffs`] makes pivoting unnecessary.
/// The factorization is cached per thread — a sweep solves thousands of
/// lines against the same matrix.
pub fn solve_penta(coeffs: (f64, f64, f64, f64, f64), rhs: &mut [f64]) {
    let n = rhs.len();
    assert!(n >= 3, "pentadiagonal line too short");
    thread_local! {
        static FACTOR: std::cell::RefCell<Option<PentaFactor>> =
            const { std::cell::RefCell::new(None) };
    }
    FACTOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        let stale = match slot.as_ref() {
            Some(fac) => fac.n != n || fac.coeffs != coeffs,
            None => true,
        };
        if stale {
            *slot = Some(PentaFactor::new(coeffs, n));
        }
        slot.as_ref().expect("factor just ensured").solve(rhs);
    });
}

/// One sweep: solve the pentadiagonal factor along every x-line, for
/// every component independently (the "scalar" in SP).
fn sweep_x(team: &Team, r: &mut State5) {
    let n = r.n;
    let coeffs = penta_coeffs();
    for_each_line(team, r, |line| {
        let mut scratch = vec![0.0; n];
        for m in 0..NVAR {
            for i in 0..n {
                scratch[i] = line[i * NVAR + m];
            }
            solve_penta(coeffs, &mut scratch);
            for i in 0..n {
                line[i * NVAR + m] = scratch[i];
            }
        }
    });
}

/// Result of an SP run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpResult {
    pub initial_rnorm: f64,
    pub final_rnorm: f64,
    pub steps: usize,
}

/// Run SP with explicit grid size and step count.
pub fn run_custom(n: usize, steps: usize, threads: usize) -> SpResult {
    let team = Team::new(threads);
    let f = State5::forcing(n);
    let mut u = State5::zeros(n);
    let mut r = State5::zeros(n);
    residual(&team, &u, &f, &mut r);
    let initial_rnorm = r.norm();
    for _ in 0..steps {
        residual(&team, &u, &f, &mut r);
        // Scale to τ·r.
        team.parallel_chunks(&mut r.data, |_s, chunk| {
            for v in chunk.iter_mut() {
                *v *= TAU;
            }
        });
        // Factored solve: x, then (rotated) y, then z; the third rotation
        // restores the layout.
        sweep_x(&team, &mut r);
        let mut rr = r.rotate(&team);
        sweep_x(&team, &mut rr);
        let mut rrr = rr.rotate(&team);
        sweep_x(&team, &mut rrr);
        r = rrr.rotate(&team);
        add_assign(&team, &mut u, &r);
    }
    residual(&team, &u, &f, &mut r);
    SpResult {
        initial_rnorm,
        final_rnorm: r.norm(),
        steps,
    }
}

/// Class-parameterized run. Note class grids are not powers of two; any
/// `n ≥ 4` works here.
pub fn run(class: Class, threads: usize) -> SpResult {
    let (n, steps) = pseudo_app_params(Benchmark::Sp, class);
    run_custom(n, steps, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penta_solver_matches_dense_solution() {
        // Build the dense matrix for n=8 and verify A·x == rhs.
        let coeffs = penta_coeffs();
        let (a, b, c, d, e) = coeffs;
        let n = 8;
        let rhs_orig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 1.0).collect();
        let mut x = rhs_orig.clone();
        solve_penta(coeffs, &mut x);
        for i in 0..n {
            let mut acc = c * x[i];
            if i >= 2 {
                acc += a * x[i - 2];
            }
            if i >= 1 {
                acc += b * x[i - 1];
            }
            if i + 1 < n {
                acc += d * x[i + 1];
            }
            if i + 2 < n {
                acc += e * x[i + 2];
            }
            assert!(
                (acc - rhs_orig[i]).abs() < 1e-10,
                "row {i}: {acc} vs {}",
                rhs_orig[i]
            );
        }
    }

    #[test]
    fn residual_decreases_toward_steady_state() {
        let r = run_custom(16, 30, 4);
        assert!(
            r.final_rnorm < 0.05 * r.initial_rnorm,
            "SP failed to converge: {} -> {}",
            r.initial_rnorm,
            r.final_rnorm
        );
    }

    #[test]
    fn thread_count_invariance() {
        let a = run_custom(12, 5, 1);
        let b = run_custom(12, 5, 6);
        assert_eq!(a.final_rnorm.to_bits(), b.final_rnorm.to_bits());
    }

    #[test]
    fn class_s_grid_runs() {
        let r = run_custom(12, 20, 4);
        assert!(r.final_rnorm < r.initial_rnorm);
    }

    #[test]
    fn coefficients_are_diagonally_dominant() {
        let (a, b, c, d, e) = penta_coeffs();
        assert!(c > a.abs() + b.abs() + d.abs() + e.abs());
    }
}
