//! NPB problem classes and per-benchmark problem sizes (NPB 3.3 tables).

use std::fmt;

/// The eight benchmarks of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    Ep,
    Cg,
    Mg,
    Ft,
    Is,
    Bt,
    Sp,
    Lu,
}

impl Benchmark {
    /// All benchmarks, kernels first.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Ep,
        Benchmark::Cg,
        Benchmark::Mg,
        Benchmark::Ft,
        Benchmark::Is,
        Benchmark::Bt,
        Benchmark::Sp,
        Benchmark::Lu,
    ];

    /// The six benchmarks the paper's OpenMP figure plots (EP and IS are
    /// omitted there).
    pub const FIGURE19: [Benchmark; 6] = [
        Benchmark::Bt,
        Benchmark::Cg,
        Benchmark::Ft,
        Benchmark::Lu,
        Benchmark::Mg,
        Benchmark::Sp,
    ];

    /// Upper-case NPB name.
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Ep => "EP",
            Benchmark::Cg => "CG",
            Benchmark::Mg => "MG",
            Benchmark::Ft => "FT",
            Benchmark::Is => "IS",
            Benchmark::Bt => "BT",
            Benchmark::Sp => "SP",
            Benchmark::Lu => "LU",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// NPB problem classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    S,
    W,
    A,
    B,
    C,
}

impl Class {
    /// All classes in size order.
    pub const ALL: [Class; 5] = [Class::S, Class::W, Class::A, Class::B, Class::C];

    /// Class letter.
    pub fn label(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// EP: log2 of the number of random pairs.
pub fn ep_log2_pairs(class: Class) -> u32 {
    match class {
        Class::S => 24,
        Class::W => 25,
        Class::A => 28,
        Class::B => 30,
        Class::C => 32,
    }
}

/// CG: (matrix order, nonzeros per row, outer iterations, eigenvalue
/// shift).
pub fn cg_params(class: Class) -> (usize, usize, usize, f64) {
    match class {
        Class::S => (1400, 7, 15, 10.0),
        Class::W => (7000, 8, 15, 12.0),
        Class::A => (14000, 11, 15, 20.0),
        Class::B => (75000, 13, 75, 60.0),
        Class::C => (150000, 15, 75, 110.0),
    }
}

/// MG: (grid edge, V-cycle iterations).
pub fn mg_params(class: Class) -> (usize, usize) {
    match class {
        Class::S => (32, 4),
        Class::W => (128, 4),
        Class::A => (256, 4),
        Class::B => (256, 20),
        Class::C => (512, 20),
    }
}

/// FT: (nx, ny, nz, iterations).
pub fn ft_params(class: Class) -> (usize, usize, usize, usize) {
    match class {
        Class::S => (64, 64, 64, 6),
        Class::W => (128, 128, 32, 6),
        Class::A => (256, 256, 128, 6),
        Class::B => (512, 256, 256, 20),
        Class::C => (512, 512, 512, 20),
    }
}

/// IS: (log2 keys, log2 max key value).
pub fn is_params(class: Class) -> (u32, u32) {
    match class {
        Class::S => (16, 11),
        Class::W => (20, 16),
        Class::A => (23, 19),
        Class::B => (25, 21),
        Class::C => (27, 23),
    }
}

/// BT/SP/LU: (grid edge, time steps) — BT and SP share grids; LU matches.
pub fn pseudo_app_params(bench: Benchmark, class: Class) -> (usize, usize) {
    let grid = match class {
        Class::S => 12,
        Class::W => match bench {
            Benchmark::Bt => 24,
            Benchmark::Sp => 36,
            _ => 33,
        },
        Class::A => 64,
        Class::B => 102,
        Class::C => 162,
    };
    let steps = match (bench, class) {
        (Benchmark::Bt, Class::S) => 60,
        (Benchmark::Bt, _) => 200,
        (Benchmark::Sp, Class::S) => 100,
        (Benchmark::Sp, _) => 400,
        (Benchmark::Lu, Class::S) => 50,
        (Benchmark::Lu, _) => 250,
        _ => panic!("pseudo_app_params called for kernel benchmark {bench}"),
    };
    (grid, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_c_sizes_match_npb33() {
        assert_eq!(ep_log2_pairs(Class::C), 32);
        assert_eq!(cg_params(Class::C).0, 150000);
        assert_eq!(mg_params(Class::C), (512, 20));
        assert_eq!(ft_params(Class::C), (512, 512, 512, 20));
        assert_eq!(pseudo_app_params(Benchmark::Bt, Class::C).0, 162);
        assert_eq!(pseudo_app_params(Benchmark::Sp, Class::C).0, 162);
        assert_eq!(pseudo_app_params(Benchmark::Lu, Class::C).0, 162);
    }

    #[test]
    #[should_panic(expected = "kernel benchmark")]
    fn pseudo_app_params_rejects_kernels() {
        let _ = pseudo_app_params(Benchmark::Cg, Class::S);
    }

    #[test]
    fn labels_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(format!("{b}"), b.label());
        }
        for c in Class::ALL {
            assert_eq!(format!("{c}"), c.label());
        }
    }
}
