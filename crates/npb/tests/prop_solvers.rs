//! Property-based tests for the numerical building blocks of the NPB
//! pseudo-applications: line solvers verified against dense arithmetic,
//! FFT algebraic identities, and the LCG's jump consistency.

use maia_npb::bt::{adi_blocks, invert, matmul, matvec, solve_block_tridiag, Mat5, Vec5};
use maia_npb::ep::Ranlc;
use maia_npb::ft::{fft_line, Complex};
use maia_npb::lu::hyperplane_cells;
use maia_npb::sp::solve_penta;
use proptest::prelude::*;

/// Random diagonally dominant pentadiagonal coefficients.
fn penta_strategy() -> impl Strategy<Value = (f64, f64, f64, f64, f64)> {
    (
        -1.0f64..1.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
    )
        .prop_map(|(a, b, d, e)| {
            let c = a.abs() + b.abs() + d.abs() + e.abs() + 1.0;
            (a, b, c, d, e)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pentadiagonal solver inverts its own operator for arbitrary
    /// dominant coefficients and right-hand sides.
    #[test]
    fn penta_solver_is_correct(
        coeffs in penta_strategy(),
        rhs in prop::collection::vec(-10.0f64..10.0, 3..40),
    ) {
        let (a, b, c, d, e) = coeffs;
        let mut x = rhs.clone();
        solve_penta(coeffs, &mut x);
        let n = x.len();
        for i in 0..n {
            let mut acc = c * x[i];
            if i >= 2 { acc += a * x[i - 2]; }
            if i >= 1 { acc += b * x[i - 1]; }
            if i + 1 < n { acc += d * x[i + 1]; }
            if i + 2 < n { acc += e * x[i + 2]; }
            prop_assert!(
                (acc - rhs[i]).abs() < 1e-8 * (1.0 + rhs[i].abs()),
                "row {i}: {acc} vs {}", rhs[i]
            );
        }
    }

    /// The block-tridiagonal solver inverts its operator for arbitrary
    /// right-hand sides (blocks fixed to the ADI set, which is the only
    /// dominance-guaranteed family the solver promises to handle).
    #[test]
    fn block_tridiag_solver_is_correct(
        rhs in prop::collection::vec(-5.0f64..5.0, 2..12),
    ) {
        // Expand per-point rhs to 5 components deterministically.
        let n = rhs.len();
        let mut full = Vec::with_capacity(n * 5);
        for (i, &v) in rhs.iter().enumerate() {
            for m in 0..5 {
                full.push(v + (i * 5 + m) as f64 * 0.01);
            }
        }
        let orig = full.clone();
        let blocks = adi_blocks();
        solve_block_tridiag(blocks, &mut full);
        let (sub, diag, sup) = blocks;
        for i in 0..n {
            let xi: Vec5 = full[i * 5..(i + 1) * 5].try_into().unwrap();
            let mut acc = matvec(&diag, &xi);
            if i > 0 {
                let xm: Vec5 = full[(i - 1) * 5..i * 5].try_into().unwrap();
                let t = matvec(&sub, &xm);
                for m in 0..5 { acc[m] += t[m]; }
            }
            if i + 1 < n {
                let xp: Vec5 = full[(i + 1) * 5..(i + 2) * 5].try_into().unwrap();
                let t = matvec(&sup, &xp);
                for m in 0..5 { acc[m] += t[m]; }
            }
            for m in 0..5 {
                prop_assert!(
                    (acc[m] - orig[i * 5 + m]).abs() < 1e-8,
                    "point {i} comp {m}"
                );
            }
        }
    }

    /// Matrix inversion: A · A⁻¹ = I for random dominant 5×5 blocks.
    #[test]
    fn mat5_inverse_round_trips(vals in prop::collection::vec(-1.0f64..1.0, 25)) {
        let mut m: Mat5 = [[0.0; 5]; 5];
        for r in 0..5 {
            for c in 0..5 {
                m[r][c] = vals[r * 5 + c];
            }
            // Force dominance so the matrix is invertible.
            m[r][r] = 6.0 + vals[r * 5 + r].abs();
        }
        let inv = invert(&m);
        let prod = matmul(&m, &inv);
        for (r, row) in prod.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                let expect = if r == c { 1.0 } else { 0.0 };
                prop_assert!((v - expect).abs() < 1e-10);
            }
        }
    }

    /// FFT linearity: F(a·x + y) = a·F(x) + F(y).
    #[test]
    fn fft_is_linear(seed in any::<u64>(), scale in -3.0f64..3.0) {
        let n = 32;
        let mut rng = Ranlc::new(seed % ((1 << 46) - 1) + 1);
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(rng.next_f64(), rng.next_f64())).collect();
        let y: Vec<Complex> = (0..n).map(|_| Complex::new(rng.next_f64(), rng.next_f64())).collect();
        let mut combo: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| a.scale(scale) + *b).collect();
        let mut fx = x.clone();
        let mut fy = y.clone();
        fft_line(&mut combo, false);
        fft_line(&mut fx, false);
        fft_line(&mut fy, false);
        for i in 0..n {
            let expect = fx[i].scale(scale) + fy[i];
            prop_assert!((combo[i].re - expect.re).abs() < 1e-9);
            prop_assert!((combo[i].im - expect.im).abs() < 1e-9);
        }
    }

    /// LCG jump-ahead: batch k's stream equals the sequential stream
    /// advanced by 2·k·2¹⁶ draws, for arbitrary small k.
    #[test]
    fn lcg_jump_consistency(k in 0u64..6) {
        let mut seq = Ranlc::new(maia_npb::ep::SEED);
        for _ in 0..(2 * k * (1 << 16)) {
            seq.next_f64();
        }
        let mut jumped = Ranlc::for_batch(k);
        for _ in 0..8 {
            prop_assert_eq!(seq.next_f64().to_bits(), jumped.next_f64().to_bits());
        }
    }

    /// Hyperplanes partition any grid exactly.
    #[test]
    fn hyperplanes_partition(n in 2usize..10) {
        let mut count = 0usize;
        for h in 0..=3 * (n - 1) {
            for (i, j, k) in hyperplane_cells(n, h) {
                prop_assert_eq!(i + j + k, h);
                prop_assert!(i < n && j < n && k < n);
                count += 1;
            }
        }
        prop_assert_eq!(count, n * n * n);
    }
}
