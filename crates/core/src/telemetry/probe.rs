//! Bridges from the `maia-sim` [`maia_sim::Probe`] hooks and the
//! `maia-omp` [`maia_omp::telemetry::TeamObserver`] hooks into the
//! telemetry sinks of [`super`].

use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use maia_sim::engine::ProcessId;

use super::{lock_sink, SharedSink, VtSpan};

/// Per-engine probe: attributes everything the engine reports to the
/// sink that was innermost on the thread that constructed the engine.
/// The engine executes processes strictly one at a time, so all updates
/// through one `SimProbe` are totally ordered and deterministic.
pub struct SimProbe {
    sink: SharedSink,
    /// Process names in spawn order (`ProcessId` is the dense index).
    names: Mutex<Vec<String>>,
}

impl SimProbe {
    pub(crate) fn new(sink: SharedSink) -> SimProbe {
        lock_sink(&sink).sim.engines += 1;
        SimProbe {
            sink,
            names: Mutex::new(Vec::new()),
        }
    }

    fn name_of(&self, pid: ProcessId) -> String {
        let names = self.names.lock().unwrap_or_else(PoisonError::into_inner);
        names
            .get(pid.index())
            .cloned()
            .unwrap_or_else(|| format!("p{}", pid.index()))
    }
}

impl maia_sim::Probe for SimProbe {
    fn process_spawned(&self, pid: ProcessId, name: &str) {
        let mut names = self.names.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert_eq!(names.len(), pid.index());
        names.push(name.to_string());
        lock_sink(&self.sink).sim.processes += 1;
    }

    fn event_scheduled(&self, _at_ps: u64, _pid: ProcessId) {
        lock_sink(&self.sink).sim.scheduled += 1;
    }

    fn event_fired(&self, _now_ps: u64, _pid: ProcessId, queue_depth: usize) {
        let mut s = lock_sink(&self.sink);
        s.sim.fired += 1;
        s.sim.max_queue_depth = s.sim.max_queue_depth.max(queue_depth as u64);
    }

    fn advanced(&self, _now_ps: u64, pid: ProcessId, dur_ps: u64) {
        let name = self.name_of(pid);
        let mut s = lock_sink(&self.sink);
        *s.proc_vt_ps.entry(name).or_insert(0) += dur_ps;
        s.hist
            .entry("sim.advance_ps".to_string())
            .or_default()
            .record(dur_ps);
    }

    fn blocked(&self, _now_ps: u64, _pid: ProcessId) {
        lock_sink(&self.sink).sim.blocked += 1;
    }

    fn finished(&self, _now_ps: u64, _pid: ProcessId) {
        lock_sink(&self.sink).sim.finished += 1;
    }

    fn sched_stats(&self, stats: &maia_sim::SchedStats) {
        let mut s = lock_sink(&self.sink);
        *s.counters.entry("sched.events_pushed".to_string()).or_insert(0) +=
            stats.events_pushed;
        *s.counters.entry("sched.events_popped".to_string()).or_insert(0) +=
            stats.events_popped;
        *s.counters.entry("sched.procs_inline".to_string()).or_insert(0) +=
            stats.procs_inline;
        *s.counters.entry("sched.procs_threaded".to_string()).or_insert(0) +=
            stats.procs_threaded;
        // Wheel-occupancy histogram: bucket = wheel level (7 = far-future
        // overflow), count = insertions that landed there. Inserted
        // directly — the bucket key is the level itself, not a
        // bit-length.
        let h = s.hist.entry("sched.wheel_level".to_string()).or_default();
        for (level, &pushes) in stats.wheel_level_pushes.iter().enumerate() {
            if pushes > 0 {
                *h.buckets.entry(level as u32).or_insert(0) += pushes;
                h.count += pushes;
                h.sum = h.sum.saturating_add(level as u64 * pushes);
            }
        }
    }

    fn run_complete(&self, end_ps: u64) {
        // Engine makespan is fabric/contention time in this codebase:
        // only the MPI world and resource models drive engines.
        let mut s = lock_sink(&self.sink);
        *s.vt_ps.entry("mpi-fabric".to_string()).or_insert(0) += end_ps;
    }

    fn resource_wait(&self, name: &str, _pid: ProcessId, wait_ps: u64) {
        let mut s = lock_sink(&self.sink);
        *s.counters
            .entry(format!("resource.{name}.acquires"))
            .or_insert(0) += 1;
        s.hist
            .entry(format!("resource.{name}.wait_ps"))
            .or_default()
            .record(wait_ps);
    }

    fn resource_service(&self, name: &str, _pid: ProcessId, held_ps: u64) {
        lock_sink(&self.sink)
            .hist
            .entry(format!("resource.{name}.service_ps"))
            .or_default()
            .record(held_ps);
    }

    fn span(&self, name: &str, start_ps: u64, end_ps: u64, pid: ProcessId) {
        lock_sink(&self.sink).push_span(VtSpan {
            name: name.to_string(),
            start_ps,
            dur_ps: end_ps.saturating_sub(start_ps),
            tid: pid.index() as u32,
        });
    }
}

/// Process-wide team observer: counts parallel regions and records
/// wall-clock per-worker spans for *labeled* teams (the executor labels
/// its sweep team `"sweep"`; the unlabeled inner teams of the NPB
/// kernels would flood the recorder and are only counted).
#[derive(Default)]
pub struct SweepObserver {
    started: Mutex<Vec<((&'static str, usize), Instant)>>,
}

impl maia_omp::telemetry::TeamObserver for SweepObserver {
    fn region_begin(&self, label: &'static str, thread: usize, _team: usize) {
        if thread == 0 {
            super::record_omp_region();
        }
        if label.is_empty() {
            return;
        }
        self.started
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(((label, thread), Instant::now()));
    }

    fn region_end(&self, label: &'static str, thread: usize, _team: usize) {
        if label.is_empty() {
            return;
        }
        let begin = {
            let mut started = self.started.lock().unwrap_or_else(PoisonError::into_inner);
            match started.iter().rposition(|(k, _)| *k == (label, thread)) {
                Some(i) => started.swap_remove(i).1,
                None => return,
            }
        };
        super::record_wall_span(
            &format!("omp/{label}/w{thread}"),
            thread as u32,
            begin,
            begin.elapsed().as_secs_f64(),
            "wall-omp",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maia_sim::Probe as _;
    use std::sync::Arc;

    #[test]
    fn sim_probe_accumulates_into_sink() {
        let sink: SharedSink = Arc::new(Mutex::new(super::super::Sink::default()));
        let probe = SimProbe::new(Arc::clone(&sink));
        let pid = maia_sim::Engine::new().spawn("rank-0", |_| {});
        probe.process_spawned(pid, "rank-0");
        probe.event_scheduled(0, pid);
        probe.event_fired(0, pid, 3);
        probe.advanced(0, pid, 2_500);
        probe.blocked(2_500, pid);
        probe.event_fired(2_500, pid, 0);
        probe.finished(2_500, pid);
        probe.run_complete(2_500);
        probe.span("rank-0", 0, 2_500, pid);
        let s = lock_sink(&sink);
        assert_eq!(s.sim.engines, 1);
        assert_eq!(s.sim.processes, 1);
        assert_eq!(s.sim.scheduled, 1);
        assert_eq!(s.sim.fired, 2);
        assert_eq!(s.sim.blocked, 1);
        assert_eq!(s.sim.finished, 1);
        assert_eq!(s.sim.max_queue_depth, 3);
        assert_eq!(s.proc_vt_ps.get("rank-0"), Some(&2_500));
        assert_eq!(s.vt_ps.get("mpi-fabric"), Some(&2_500));
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].dur_ps, 2_500);
    }

    #[test]
    fn sched_stats_land_in_counters_and_wheel_histogram() {
        let sink: SharedSink = Arc::new(Mutex::new(super::super::Sink::default()));
        let probe = SimProbe::new(Arc::clone(&sink));
        let stats = maia_sim::SchedStats {
            events_pushed: 12,
            events_popped: 12,
            wheel_level_pushes: [8, 3, 0, 0, 0, 0, 0, 1],
            procs_inline: 4,
            procs_threaded: 1,
        };
        probe.sched_stats(&stats);
        let s = lock_sink(&sink);
        assert_eq!(s.counters.get("sched.events_pushed"), Some(&12));
        assert_eq!(s.counters.get("sched.events_popped"), Some(&12));
        assert_eq!(s.counters.get("sched.procs_inline"), Some(&4));
        assert_eq!(s.counters.get("sched.procs_threaded"), Some(&1));
        let h = s.hist.get("sched.wheel_level").expect("wheel histogram");
        assert_eq!(h.buckets.get(&0), Some(&8));
        assert_eq!(h.buckets.get(&1), Some(&3));
        assert_eq!(h.buckets.get(&7), Some(&1)); // overflow level
        assert_eq!(h.count, 12);
    }
}
