//! Profile collection and rendering: markdown/JSON metrics reports and
//! Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! The report splits hard into two worlds:
//!
//! * **`virtual`** — counters, virtual-time buckets, scheduler counters,
//!   histograms and virtual-time spans. Bit-identical across runs at a
//!   fixed `--jobs`, by construction (see the attribution notes in
//!   [`super`]).
//! * **`wall`** — sweep wall time, per-worker busy intervals, parallel
//!   region counts. Real clock readings; never part of golden
//!   comparisons. In the Chrome trace these all live on `pid 0` with
//!   `cat: "wall"` so tooling can filter them out with one predicate.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::executor::SweepReport;

use super::{lock_sink, Histogram, SimCounters, VtSpan, WallSpan};

/// Deterministic per-experiment profile.
#[derive(Debug, Clone)]
pub struct ExperimentProfile {
    /// Canonical experiment code (`F05`).
    pub code: String,
    /// Named event counters (`figdata.rows`, `resource.*.acquires`, ...).
    pub counters: BTreeMap<String, u64>,
    /// Virtual time per subsystem, picoseconds.
    pub vt_ps: BTreeMap<String, u64>,
    /// Sum of the subsystem buckets.
    pub total_vt_ps: u64,
    /// Virtual time advanced per simulated process (descending, top 8).
    pub proc_vt_ps: Vec<(String, u64)>,
    /// Value histograms (advance durations, resource waits, ...).
    pub hist: BTreeMap<String, Histogram>,
    /// Scheduler counters from the engine probe.
    pub sim: SimCounters,
    /// Recorded virtual-time spans (rank annotations and friends).
    pub spans: Vec<VtSpan>,
    /// Spans dropped past the per-sink cap.
    pub dropped_spans: u64,
    /// Subsystem with the most virtual time, or `closed-form` when the
    /// experiment recorded none (pure table generation).
    pub dominant: String,
    /// Wall-clock cost inside the sweep (wall section only).
    pub wall: Duration,
}

impl ExperimentProfile {
    /// Total recorded events (counters plus scheduler actions).
    pub fn events(&self) -> u64 {
        self.counters.values().sum::<u64>() + self.sim.total()
    }
}

/// Deterministic profile of one shared-sub-model domain (the part of a
/// memo key before the first `/`: `stream`, `pcie_bw`, `coll`, ...).
#[derive(Debug, Clone)]
pub struct DomainProfile {
    /// Key-prefix domain name.
    pub domain: String,
    /// Number of distinct keys merged into this row.
    pub keys: u64,
    /// Merged counters.
    pub counters: BTreeMap<String, u64>,
    /// Merged virtual time per subsystem, picoseconds.
    pub vt_ps: BTreeMap<String, u64>,
    /// Merged scheduler counters.
    pub sim: SimCounters,
    /// Merged spans (in key order, engine order within a key).
    pub spans: Vec<VtSpan>,
    /// Spans dropped past the per-sink caps.
    pub dropped_spans: u64,
}

/// Wall-clock utilization of one executor worker.
#[derive(Debug, Clone, Copy)]
pub struct WorkerUtilization {
    /// Worker thread id within the sweep team.
    pub worker: u32,
    /// Seconds spent inside experiments.
    pub busy_s: f64,
    /// `busy_s` over the sweep wall time.
    pub utilization: f64,
}

/// Everything `maia-bench profile` reports.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Worker threads used by the sweep.
    pub jobs: usize,
    /// Selected experiment codes, in request order.
    pub selection: Vec<String>,
    /// Per-experiment deterministic profiles, in request order.
    pub experiments: Vec<ExperimentProfile>,
    /// Shared sub-model domains, sorted by name.
    pub domains: Vec<DomainProfile>,
    /// Memo-cache hits over the sweep (deterministic totals: misses are
    /// the distinct keys touched, hits the remaining lookups).
    pub cache_hits: u64,
    /// Memo-cache misses over the sweep.
    pub cache_misses: u64,
    /// Total events across experiments and domains.
    pub events_total: u64,
    /// Sweep wall time, seconds (wall section).
    pub wall_s: f64,
    /// Per-worker busy time (wall section).
    pub workers: Vec<WorkerUtilization>,
    /// Raw wall spans for the trace (wall section).
    pub wall_spans: Vec<WallSpan>,
    /// Parallel regions observed since telemetry was enabled (wall
    /// section; includes regions inside experiment kernels).
    pub omp_regions: u64,
    /// Process-backend supervisor health (wall section): worker losses,
    /// respawns, missed heartbeats, degraded runs, backoff waits. All
    /// zero under the channel backend or a fault-free process run.
    pub supervise: super::SuperviseCounters,
}

/// Build the profile for `sweep` from everything recorded so far.
/// Call after [`super::enable`] and a sweep through the executor.
pub fn collect(sweep: &SweepReport) -> ProfileReport {
    let recorded = super::snapshot_experiments();
    let mut experiments = Vec::new();
    for run in &sweep.runs {
        let code = run.id.meta().code;
        // Most recent sink wins: a code re-run under a fresh cache (the
        // partition-determinism battery does this) registers a new scope
        // per sweep, and the profile must describe the sweep at hand.
        let profile = match recorded.iter().rfind(|(c, _)| c == code) {
            Some((_, sink)) => {
                let s = lock_sink(sink);
                let mut proc_vt: Vec<(String, u64)> =
                    s.proc_vt_ps.iter().map(|(n, &v)| (n.clone(), v)).collect();
                proc_vt.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                proc_vt.truncate(8);
                let total_vt_ps = s.vt_ps.values().sum();
                ExperimentProfile {
                    code: code.to_string(),
                    counters: s.counters.clone(),
                    vt_ps: s.vt_ps.clone(),
                    total_vt_ps,
                    proc_vt_ps: proc_vt,
                    hist: s.hist.clone(),
                    sim: s.sim,
                    spans: s.spans.clone(),
                    dropped_spans: s.dropped_spans,
                    dominant: dominant_subsystem(&s.vt_ps),
                    wall: run.wall,
                }
            }
            // Experiment memoized by an earlier sweep in this process:
            // nothing recorded this time around.
            None => ExperimentProfile {
                code: code.to_string(),
                counters: BTreeMap::new(),
                vt_ps: BTreeMap::new(),
                total_vt_ps: 0,
                proc_vt_ps: Vec::new(),
                hist: BTreeMap::new(),
                sim: SimCounters::default(),
                spans: Vec::new(),
                dropped_spans: 0,
                dominant: "closed-form".to_string(),
                wall: run.wall,
            },
        };
        experiments.push(profile);
    }

    let mut domains: BTreeMap<String, DomainProfile> = BTreeMap::new();
    for (key, sink) in super::snapshot_keys() {
        let domain = key.split('/').next().unwrap_or("misc").to_string();
        let s = lock_sink(&sink);
        let d = domains.entry(domain.clone()).or_insert_with(|| DomainProfile {
            domain,
            keys: 0,
            counters: BTreeMap::new(),
            vt_ps: BTreeMap::new(),
            sim: SimCounters::default(),
            spans: Vec::new(),
            dropped_spans: 0,
        });
        d.keys += 1;
        for (n, &v) in &s.counters {
            *d.counters.entry(n.clone()).or_insert(0) += v;
        }
        for (n, &v) in &s.vt_ps {
            *d.vt_ps.entry(n.clone()).or_insert(0) += v;
        }
        d.sim.engines += s.sim.engines;
        d.sim.processes += s.sim.processes;
        d.sim.scheduled += s.sim.scheduled;
        d.sim.fired += s.sim.fired;
        d.sim.blocked += s.sim.blocked;
        d.sim.finished += s.sim.finished;
        d.sim.max_queue_depth = d.sim.max_queue_depth.max(s.sim.max_queue_depth);
        if d.spans.len() + s.spans.len() <= super::MAX_SPANS_PER_SINK {
            d.spans.extend(s.spans.iter().cloned());
        } else {
            d.dropped_spans += s.spans.len() as u64;
        }
        d.dropped_spans += s.dropped_spans;
    }
    // Fault-injected time noted on scope-less sim rank threads lands in
    // a process-global bucket; surface it as the shared `faults` domain.
    let orphan_fault_ps = super::take_orphan_fault_vt_ps();
    if orphan_fault_ps > 0 {
        let d = domains
            .entry("faults".to_string())
            .or_insert_with(|| DomainProfile {
                domain: "faults".to_string(),
                keys: 0,
                counters: BTreeMap::new(),
                vt_ps: BTreeMap::new(),
                sim: SimCounters::default(),
                spans: Vec::new(),
                dropped_spans: 0,
            });
        *d.vt_ps.entry("faults".to_string()).or_insert(0) += orphan_fault_ps;
    }
    let domains: Vec<DomainProfile> = domains.into_values().collect();

    let requested: Vec<&str> = sweep.runs.iter().map(|r| r.id.meta().code).collect();
    let wall_spans: Vec<WallSpan> = super::snapshot_wall_spans()
        .into_iter()
        .filter(|s| s.cat != "wall-exp" || requested.iter().any(|c| *c == s.name))
        .collect();
    let mut busy: BTreeMap<u32, f64> = BTreeMap::new();
    for s in wall_spans.iter().filter(|s| s.cat == "wall-exp") {
        *busy.entry(s.tid).or_insert(0.0) += s.dur_s;
    }
    let wall_s = sweep.wall.as_secs_f64();
    let workers: Vec<WorkerUtilization> = busy
        .into_iter()
        .map(|(worker, busy_s)| WorkerUtilization {
            worker,
            busy_s,
            utilization: if wall_s > 0.0 { busy_s / wall_s } else { 0.0 },
        })
        .collect();

    let events_total = experiments.iter().map(ExperimentProfile::events).sum::<u64>()
        + domains
            .iter()
            .map(|d| d.counters.values().sum::<u64>() + d.sim.total())
            .sum::<u64>();

    ProfileReport {
        jobs: sweep.jobs,
        selection: requested.iter().map(|c| c.to_string()).collect(),
        experiments,
        domains,
        cache_hits: sweep.cache.hits,
        cache_misses: sweep.cache.misses,
        events_total,
        wall_s,
        workers,
        wall_spans,
        omp_regions: super::omp_regions(),
        supervise: super::supervise_counters(),
    }
}

fn dominant_subsystem(vt_ps: &BTreeMap<String, u64>) -> String {
    vt_ps
        .iter()
        .filter(|(_, &v)| v > 0)
        .max_by_key(|(_, &v)| v)
        .map(|(n, _)| n.clone())
        .unwrap_or_else(|| "closed-form".to_string())
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn ps_as_ms(ps: u64) -> f64 {
    ps as f64 / 1e9
}

impl ProfileReport {
    /// Deterministic-first JSON: the whole `virtual` object is
    /// bit-identical across runs at fixed `--jobs`; `wall` is not.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n  \"schema\": \"maia-profile-v1\",\n");
        o.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        let sel: Vec<String> = self.selection.iter().map(|c| format!("\"{}\"", esc(c))).collect();
        o.push_str(&format!("  \"selection\": [{}],\n", sel.join(", ")));
        o.push_str("  \"virtual\": {\n");
        o.push_str(&format!("    \"events_total\": {},\n", self.events_total));
        o.push_str(&format!(
            "    \"cache\": {{ \"hits\": {}, \"misses\": {} }},\n",
            self.cache_hits, self.cache_misses
        ));
        o.push_str("    \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            o.push_str("      {\n");
            o.push_str(&format!("        \"code\": \"{}\",\n", esc(&e.code)));
            o.push_str(&format!("        \"dominant\": \"{}\",\n", esc(&e.dominant)));
            o.push_str(&format!("        \"events\": {},\n", e.events()));
            o.push_str(&format!("        \"total_vt_ps\": {},\n", e.total_vt_ps));
            o.push_str(&format!("        \"vt_ps\": {},\n", json_u64_map(&e.vt_ps, 8)));
            o.push_str(&format!(
                "        \"counters\": {},\n",
                json_u64_map(&e.counters, 8)
            ));
            o.push_str(&format!("        \"sim\": {},\n", json_sim(&e.sim)));
            let procs: Vec<String> = e
                .proc_vt_ps
                .iter()
                .map(|(n, v)| format!("[\"{}\", {v}]", esc(n)))
                .collect();
            o.push_str(&format!("        \"processes\": [{}],\n", procs.join(", ")));
            o.push_str(&format!("        \"hist\": {},\n", json_hists(&e.hist, 8)));
            o.push_str(&format!(
                "        \"spans\": {}, \"dropped_spans\": {}\n",
                e.spans.len(),
                e.dropped_spans
            ));
            o.push_str(&format!(
                "      }}{}\n",
                if i + 1 == self.experiments.len() { "" } else { "," }
            ));
        }
        o.push_str("    ],\n");
        o.push_str("    \"shared\": [\n");
        for (i, d) in self.domains.iter().enumerate() {
            o.push_str("      {\n");
            o.push_str(&format!("        \"domain\": \"{}\",\n", esc(&d.domain)));
            o.push_str(&format!("        \"keys\": {},\n", d.keys));
            o.push_str(&format!("        \"vt_ps\": {},\n", json_u64_map(&d.vt_ps, 8)));
            o.push_str(&format!(
                "        \"counters\": {},\n",
                json_u64_map(&d.counters, 8)
            ));
            o.push_str(&format!("        \"sim\": {},\n", json_sim(&d.sim)));
            o.push_str(&format!(
                "        \"spans\": {}, \"dropped_spans\": {}\n",
                d.spans.len(),
                d.dropped_spans
            ));
            o.push_str(&format!(
                "      }}{}\n",
                if i + 1 == self.domains.len() { "" } else { "," }
            ));
        }
        o.push_str("    ]\n  },\n");
        o.push_str("  \"wall\": {\n");
        o.push_str(&format!("    \"wall_s\": {:.6},\n", self.wall_s));
        o.push_str(&format!("    \"omp_regions\": {},\n", self.omp_regions));
        o.push_str(&format!(
            "    \"supervise\": {{ \"workers_lost\": {}, \"respawns\": {}, \
             \"missed_heartbeats\": {}, \"degraded\": {}, \"backoff_wait_ms\": {} }},\n",
            self.supervise.workers_lost,
            self.supervise.respawns,
            self.supervise.missed_heartbeats,
            self.supervise.degraded,
            self.supervise.backoff_wait_ms,
        ));
        o.push_str("    \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            o.push_str(&format!(
                "      {{ \"worker\": {}, \"busy_s\": {:.6}, \"utilization\": {:.4} }}{}\n",
                w.worker,
                w.busy_s,
                w.utilization,
                if i + 1 == self.workers.len() { "" } else { "," }
            ));
        }
        o.push_str("    ],\n");
        o.push_str("    \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            o.push_str(&format!(
                "      {{ \"code\": \"{}\", \"wall_ms\": {:.3} }}{}\n",
                esc(&e.code),
                e.wall.as_secs_f64() * 1e3,
                if i + 1 == self.experiments.len() { "" } else { "," }
            ));
        }
        o.push_str("    ]\n  }\n}\n");
        o
    }

    /// Human-oriented markdown report; virtual sections first, wall last.
    pub fn to_markdown(&self) -> String {
        let mut o = String::from("# maia-bench profile\n\n");
        o.push_str(&format!(
            "Selection: {} — {} events, cache {} hit / {} miss, {} job(s).\n\n",
            self.selection.join(", "),
            self.events_total,
            self.cache_hits,
            self.cache_misses,
            self.jobs,
        ));
        o.push_str("## Experiments (virtual time — deterministic)\n\n");
        o.push_str("| code | dominant | events | vt (ms) | engines | scheduled | fired | max queue | spans |\n");
        o.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|\n");
        for e in &self.experiments {
            o.push_str(&format!(
                "| {} | {} | {} | {:.3} | {} | {} | {} | {} | {} |\n",
                e.code,
                e.dominant,
                e.events(),
                ps_as_ms(e.total_vt_ps),
                e.sim.engines,
                e.sim.scheduled,
                e.sim.fired,
                e.sim.max_queue_depth,
                e.spans.len(),
            ));
        }
        o.push('\n');
        o.push_str("### Virtual time by subsystem (ms)\n\n");
        for e in &self.experiments {
            if e.vt_ps.is_empty() {
                continue;
            }
            let parts: Vec<String> = e
                .vt_ps
                .iter()
                .map(|(n, &v)| format!("{n} {:.3}", ps_as_ms(v)))
                .collect();
            o.push_str(&format!("- **{}**: {}\n", e.code, parts.join(", ")));
        }
        o.push('\n');
        if !self.domains.is_empty() {
            o.push_str("## Shared sub-models (attributed to cache keys)\n\n");
            o.push_str("| domain | keys | vt (ms) | engines | events | spans |\n");
            o.push_str("|---|---:|---:|---:|---:|---:|\n");
            for d in &self.domains {
                o.push_str(&format!(
                    "| {} | {} | {:.3} | {} | {} | {} |\n",
                    d.domain,
                    d.keys,
                    ps_as_ms(d.vt_ps.values().sum()),
                    d.sim.engines,
                    d.counters.values().sum::<u64>() + d.sim.total(),
                    d.spans.len(),
                ));
            }
            o.push('\n');
        }
        o.push_str("## Wall clock (not deterministic)\n\n");
        o.push_str(&format!(
            "Sweep: {:.1} ms on {} job(s); {} parallel region(s) observed.\n\n",
            self.wall_s * 1e3,
            self.jobs,
            self.omp_regions,
        ));
        if !self.supervise.is_zero() {
            o.push_str(&format!(
                "Supervisor: {} worker(s) lost, {} respawn(s), {} missed heartbeat(s), \
                 {} degraded run(s), {} ms in backoff.\n\n",
                self.supervise.workers_lost,
                self.supervise.respawns,
                self.supervise.missed_heartbeats,
                self.supervise.degraded,
                self.supervise.backoff_wait_ms,
            ));
        }
        o.push_str("| worker | busy (ms) | utilization |\n|---:|---:|---:|\n");
        for w in &self.workers {
            o.push_str(&format!(
                "| {} | {:.1} | {:.0}% |\n",
                w.worker,
                w.busy_s * 1e3,
                w.utilization * 100.0
            ));
        }
        o
    }

    /// Chrome trace-event JSON array (Perfetto / `chrome://tracing`).
    ///
    /// Layout: pid 0 carries wall-clock events (`cat: "wall"`), pid
    /// `1+i` carries the i-th experiment's virtual-time events, pid
    /// `100+j` the j-th shared domain. Filtering out `cat == "wall"`
    /// leaves a bit-deterministic event sequence; timestamps are virtual
    /// picoseconds rendered as microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let mut ev: Vec<String> = Vec::new();
        let meta = |pid: usize, name: &str, cat: &str| {
            format!(
                "{{\"ph\": \"M\", \"ts\": 0, \"pid\": {pid}, \"tid\": 0, \"cat\": \"{cat}\", \
                 \"name\": \"process_name\", \"args\": {{\"name\": \"{}\"}}}}",
                esc(name)
            )
        };
        for (i, e) in self.experiments.iter().enumerate() {
            let pid = 1 + i;
            ev.push(meta(pid, &format!("exp {}", e.code), "meta"));
            for (sub, &ps) in &e.vt_ps {
                ev.push(format!(
                    "{{\"ph\": \"X\", \"ts\": 0.000, \"dur\": {:.3}, \"pid\": {pid}, \"tid\": 0, \
                     \"cat\": \"vt\", \"name\": \"{}\"}}",
                    ps as f64 / 1e6,
                    esc(&format!("{}:{sub}", e.code)),
                ));
            }
            for s in &e.spans {
                ev.push(format!(
                    "{{\"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {pid}, \"tid\": {}, \
                     \"cat\": \"vt\", \"name\": \"{}\"}}",
                    s.start_ps as f64 / 1e6,
                    s.dur_ps as f64 / 1e6,
                    s.tid + 1,
                    esc(&s.name),
                ));
            }
        }
        for (j, d) in self.domains.iter().enumerate() {
            let pid = 100 + j;
            ev.push(meta(pid, &format!("shared {}", d.domain), "meta"));
            for (sub, &ps) in &d.vt_ps {
                ev.push(format!(
                    "{{\"ph\": \"X\", \"ts\": 0.000, \"dur\": {:.3}, \"pid\": {pid}, \"tid\": 0, \
                     \"cat\": \"vt\", \"name\": \"{}\"}}",
                    ps as f64 / 1e6,
                    esc(&format!("{}:{sub}", d.domain)),
                ));
            }
            for s in &d.spans {
                ev.push(format!(
                    "{{\"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {pid}, \"tid\": {}, \
                     \"cat\": \"vt\", \"name\": \"{}\"}}",
                    s.start_ps as f64 / 1e6,
                    s.dur_ps as f64 / 1e6,
                    s.tid + 1,
                    esc(&s.name),
                ));
            }
        }
        ev.push(meta(0, "wall", "wall"));
        for s in &self.wall_spans {
            ev.push(format!(
                "{{\"ph\": \"X\", \"ts\": {:.1}, \"dur\": {:.1}, \"pid\": 0, \"tid\": {}, \
                 \"cat\": \"wall\", \"name\": \"{}\"}}",
                s.start_s * 1e6,
                s.dur_s * 1e6,
                s.tid,
                esc(&s.name),
            ));
        }
        let mut o = String::from("[\n");
        for (i, e) in ev.iter().enumerate() {
            o.push_str("  ");
            o.push_str(e);
            o.push_str(if i + 1 == ev.len() { "\n" } else { ",\n" });
        }
        o.push_str("]\n");
        o
    }
}

fn json_u64_map(map: &BTreeMap<String, u64>, indent: usize) -> String {
    if map.is_empty() {
        return "{}".to_string();
    }
    let pad = " ".repeat(indent);
    let items: Vec<String> = map
        .iter()
        .map(|(k, v)| format!("{pad}  \"{}\": {v}", esc(k)))
        .collect();
    format!("{{\n{}\n{pad}}}", items.join(",\n"))
}

fn json_sim(sim: &SimCounters) -> String {
    format!(
        "{{ \"engines\": {}, \"processes\": {}, \"scheduled\": {}, \"fired\": {}, \
         \"blocked\": {}, \"finished\": {}, \"max_queue_depth\": {} }}",
        sim.engines,
        sim.processes,
        sim.scheduled,
        sim.fired,
        sim.blocked,
        sim.finished,
        sim.max_queue_depth
    )
}

fn json_hists(hists: &BTreeMap<String, Histogram>, indent: usize) -> String {
    if hists.is_empty() {
        return "{}".to_string();
    }
    let pad = " ".repeat(indent);
    let items: Vec<String> = hists
        .iter()
        .map(|(k, h)| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, c)| format!("\"{b}\": {c}"))
                .collect();
            format!(
                "{pad}  \"{}\": {{ \"count\": {}, \"sum\": {}, \"log2\": {{ {} }} }}",
                esc(k),
                h.count,
                h.sum,
                buckets.join(", ")
            )
        })
        .collect();
    format!("{{\n{}\n{pad}}}", items.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfileReport {
        let mut vt = BTreeMap::new();
        vt.insert("memory".to_string(), 2_000_000u64);
        vt.insert("pcie".to_string(), 500_000u64);
        let mut counters = BTreeMap::new();
        counters.insert("figdata.rows".to_string(), 16u64);
        ProfileReport {
            jobs: 2,
            selection: vec!["F05".to_string()],
            experiments: vec![ExperimentProfile {
                code: "F05".to_string(),
                counters,
                vt_ps: vt.clone(),
                total_vt_ps: 2_500_000,
                proc_vt_ps: vec![("rank-0".to_string(), 1_000)],
                hist: BTreeMap::new(),
                sim: SimCounters {
                    engines: 1,
                    processes: 2,
                    scheduled: 5,
                    fired: 5,
                    blocked: 1,
                    finished: 2,
                    max_queue_depth: 3,
                },
                spans: vec![VtSpan {
                    name: "rank-0".to_string(),
                    start_ps: 0,
                    dur_ps: 1_000,
                    tid: 0,
                }],
                dropped_spans: 0,
                dominant: "memory".to_string(),
                wall: Duration::from_millis(3),
            }],
            domains: vec![],
            cache_hits: 4,
            cache_misses: 2,
            events_total: 29,
            wall_s: 0.012,
            workers: vec![WorkerUtilization {
                worker: 0,
                busy_s: 0.01,
                utilization: 0.83,
            }],
            wall_spans: vec![WallSpan {
                name: "F05".to_string(),
                tid: 0,
                start_s: 0.001,
                dur_s: 0.003,
                cat: "wall-exp",
            }],
            omp_regions: 7,
            supervise: crate::telemetry::SuperviseCounters::default(),
        }
    }

    #[test]
    fn json_separates_virtual_and_wall() {
        let j = sample_report().to_json();
        assert!(j.contains("\"schema\": \"maia-profile-v1\""));
        assert!(j.contains("\"virtual\""));
        assert!(j.contains("\"wall\""));
        assert!(j.contains("\"dominant\": \"memory\""));
        assert!(j.contains("\"events\": 29"));
        let virt = j.split("\"wall\"").next().unwrap();
        assert!(!virt.contains("wall_ms"), "virtual section leaked wall data");
    }

    #[test]
    fn markdown_mentions_codes_and_buckets() {
        let m = sample_report().to_markdown();
        assert!(m.contains("F05"));
        assert!(m.contains("memory"));
        assert!(m.contains("Wall clock (not deterministic)"));
    }

    #[test]
    fn chrome_trace_is_an_array_with_required_keys() {
        let t = sample_report().to_chrome_trace();
        assert!(t.trim_start().starts_with('['));
        assert!(t.trim_end().ends_with(']'));
        assert!(t.contains("\"ph\": \"X\""));
        assert!(t.contains("\"ph\": \"M\""));
        assert!(t.contains("\"name\": \"F05:memory\""));
        assert!(t.contains("\"cat\": \"wall\""));
        // Every event line carries ph, ts and name.
        for line in t.lines().filter(|l| l.trim_start().starts_with('{')) {
            assert!(line.contains("\"ph\""), "{line}");
            assert!(line.contains("\"ts\""), "{line}");
            assert!(line.contains("\"name\""), "{line}");
        }
    }

    #[test]
    fn dominant_falls_back_to_closed_form() {
        assert_eq!(dominant_subsystem(&BTreeMap::new()), "closed-form");
        let mut m = BTreeMap::new();
        m.insert("io".to_string(), 0u64);
        assert_eq!(dominant_subsystem(&m), "closed-form");
        m.insert("omp".to_string(), 9u64);
        assert_eq!(dominant_subsystem(&m), "omp");
    }
}
