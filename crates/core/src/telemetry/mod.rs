//! Zero-cost-when-disabled instrumentation for the experiment pipeline.
//!
//! This is the observability layer the paper's methodology calls for
//! turned inward: instead of probing the modeled hardware, it probes the
//! *simulator* — where virtual and wall time go inside `maia-sim`
//! engines, the executor, the memo cache and the OpenMP-style team
//! runtime. It spans four crates:
//!
//! * `maia-sim` reports scheduler activity through a [`maia_sim::Probe`]
//!   installed per engine (see [`probe::SimProbe`]),
//! * `maia-omp` reports team-worker region begin/end,
//! * `maia-mpi` annotates rank-level virtual-time spans,
//! * this crate owns the metrics registry (counters, virtual-time
//!   buckets, histograms), the span recorder, and the Chrome
//!   trace-event/Perfetto emitter (see [`report`]).
//!
//! # Attribution model
//!
//! Recording is scoped through a thread-local *sink stack*:
//! [`with_experiment_scope`] pushes a per-experiment sink around
//! `run_experiment`, and the memo cache pushes a per-key sink around
//! each sub-model computation. Because shared sub-models may be computed
//! by whichever experiment reaches them first (racy under a parallel
//! sweep), their cost is attributed to the *cache key* — deterministic —
//! and then *credited* to every consumer at lookup time, hit or miss.
//! The result: at fixed `--jobs`, every virtual-time field of the
//! profile report is bit-identical across runs, and only wall-clock
//! fields (kept in a separate section) vary.
//!
//! When disabled (the default), every entry point is a single relaxed
//! atomic load; `run`/`check` output is unaffected either way.

pub mod probe;
pub mod report;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

pub use report::{collect, DomainProfile, ExperimentProfile, ProfileReport, WorkerUtilization};

/// Spans kept per sink before counting drops instead (bounds memory for
/// the 236-rank collective worlds). The cap applies to the deterministic
/// prefix of the span sequence, so capped traces stay deterministic too.
pub(crate) const MAX_SPANS_PER_SINK: usize = 4096;

/// Scheduler-level counters mirrored from the [`maia_sim::Probe`] hooks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimCounters {
    /// Engines constructed under this sink.
    pub engines: u64,
    /// Processes spawned.
    pub processes: u64,
    /// Events pushed onto engine queues.
    pub scheduled: u64,
    /// Events popped (process resumptions).
    pub fired: u64,
    /// Process block operations.
    pub blocked: u64,
    /// Process completions.
    pub finished: u64,
    /// Deepest pending-event queue observed.
    pub max_queue_depth: u64,
}

impl SimCounters {
    /// Total scheduler actions (for "events" summaries).
    pub fn total(&self) -> u64 {
        self.scheduled + self.fired + self.blocked + self.finished
    }
}

/// A power-of-two histogram over `u64` samples (picoseconds, bytes, ...).
/// Bucket `k` counts samples with `bit_length(v) == k`, i.e. in
/// `[2^(k-1), 2^k)`; bucket 0 counts zeros.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Sparse bucket -> count map.
    pub buckets: BTreeMap<u32, u64>,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = 64 - v.leading_zeros();
        *self.buckets.entry(bucket).or_insert(0) += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&b, &c) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// A recorded virtual-time span (deterministic; picosecond fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VtSpan {
    /// Span name (e.g. `rank-17`).
    pub name: String,
    /// Start, picoseconds of virtual time.
    pub start_ps: u64,
    /// Duration, picoseconds.
    pub dur_ps: u64,
    /// Lane within the owning timeline (the simulated process index).
    pub tid: u32,
}

/// A recorded wall-clock span (nondeterministic; excluded from golden
/// comparisons).
#[derive(Debug, Clone)]
pub struct WallSpan {
    /// Span name (experiment code or `omp/<label>/w<thread>`).
    pub name: String,
    /// Worker thread lane.
    pub tid: u32,
    /// Seconds since the telemetry epoch.
    pub start_s: f64,
    /// Duration, seconds.
    pub dur_s: f64,
    /// `wall-exp` (executor) or `wall-omp` (team region).
    pub cat: &'static str,
}

/// One scope's accumulator. Everything in here is deterministic at fixed
/// `--jobs` because each scope's work is either single-threaded or
/// serialized by the simulation engine.
#[derive(Debug, Default)]
pub(crate) struct Sink {
    pub counters: BTreeMap<String, u64>,
    /// Virtual time attributed per subsystem (`mpi-fabric`, `memory`,
    /// `omp`, `io`, `pcie`, `faults`, ...), picoseconds. The `faults`
    /// bucket holds model time injected by an active
    /// [`crate::faults::FaultPlan`] (clamped at zero per contribution).
    pub vt_ps: BTreeMap<String, u64>,
    /// Virtual time advanced per simulated process name.
    pub proc_vt_ps: BTreeMap<String, u64>,
    pub hist: BTreeMap<String, Histogram>,
    pub sim: SimCounters,
    pub spans: Vec<VtSpan>,
    pub dropped_spans: u64,
}

impl Sink {
    pub(crate) fn push_span(&mut self, span: VtSpan) {
        if self.spans.len() < MAX_SPANS_PER_SINK {
            self.spans.push(span);
        } else {
            self.dropped_spans += 1;
        }
    }

    fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.vt_ps.is_empty()
            && self.spans.is_empty()
            && self.sim == SimCounters::default()
    }
}

pub(crate) type SharedSink = Arc<Mutex<Sink>>;

pub(crate) fn lock_sink(sink: &SharedSink) -> std::sync::MutexGuard<'_, Sink> {
    sink.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Global {
    epoch: Instant,
    /// Finished experiment scopes, in completion order; `collect`
    /// re-orders by the requested selection.
    experiments: Mutex<Vec<(String, SharedSink)>>,
    /// Finished memo-key scopes, by key.
    keys: Mutex<BTreeMap<String, SharedSink>>,
    wall_spans: Mutex<Vec<WallSpan>>,
    omp_regions: AtomicU64,
    supervise: SuperviseAtomics,
}

#[derive(Default)]
struct SuperviseAtomics {
    workers_lost: AtomicU64,
    respawns: AtomicU64,
    missed_heartbeats: AtomicU64,
    degraded: AtomicU64,
    backoff_wait_ms: AtomicU64,
}

/// Wall-side health counters of the process-backend supervisor. These
/// describe *this machine's* behaviour (crashes observed, heartbeats
/// missed, respawn waits), never the simulation — they live outside the
/// sink stack precisely so the virtual-side telemetry stays bit-identical
/// between the channel and process backends even under fault injection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperviseCounters {
    /// Worker processes declared lost (crash or heartbeat deadline).
    pub workers_lost: u64,
    /// Respawn attempts the supervisor made after a loss.
    pub respawns: u64,
    /// Heartbeat intervals that elapsed without a worker frame.
    pub missed_heartbeats: u64,
    /// Runs that exhausted the retry budget and were re-run in-process.
    pub degraded: u64,
    /// Total milliseconds spent in pre-respawn backoff waits.
    pub backoff_wait_ms: u64,
}

impl SuperviseCounters {
    /// True when nothing supervision-worthy happened (the common case —
    /// reports omit the bucket entirely then).
    pub fn is_zero(&self) -> bool {
        *self == SuperviseCounters::default()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Global> = OnceLock::new();

fn global() -> &'static Global {
    GLOBAL.get_or_init(|| Global {
        epoch: Instant::now(),
        experiments: Mutex::new(Vec::new()),
        keys: Mutex::new(BTreeMap::new()),
        wall_spans: Mutex::new(Vec::new()),
        omp_regions: AtomicU64::new(0),
        supervise: SuperviseAtomics::default(),
    })
}

thread_local! {
    static STACK: RefCell<Vec<SharedSink>> = const { RefCell::new(Vec::new()) };
}

/// Is the telemetry layer recording?
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the instrumentation layer on for the rest of the process:
/// installs the `maia-sim` probe factory and the `maia-omp` team
/// observer, and starts the wall-clock epoch. Idempotent.
pub fn enable() {
    if ENABLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let _ = global();
    maia_sim::probe::set_probe_factory(Some(Arc::new(|| {
        current_sink().map(|sink| Arc::new(probe::SimProbe::new(sink)) as Arc<dyn maia_sim::Probe>)
    })));
    maia_omp::telemetry::set_team_observer(Some(Arc::new(probe::SweepObserver::default())));
}

/// The innermost recording scope on this thread, if any.
pub(crate) fn current_sink() -> Option<SharedSink> {
    if !is_enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().cloned())
}

/// Guard that pops the scope it pushed, panic-safe.
struct ScopeGuard;

impl ScopeGuard {
    fn push(sink: SharedSink) -> ScopeGuard {
        STACK.with(|s| s.borrow_mut().push(sink));
        ScopeGuard
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Bump counter `name` on the innermost scope. No-op outside a scope or
/// with telemetry disabled.
pub fn count(name: &str, n: u64) {
    if let Some(sink) = current_sink() {
        *lock_sink(&sink).counters.entry(name.to_string()).or_insert(0) += n;
    }
}

/// Attribute `ns` nanoseconds of *modeled* virtual time to `subsystem`
/// (`memory`, `omp`, `io`, `pcie`, ...). Used by the analytic
/// (non-DES) experiments so profiles can still say where modeled time
/// goes; engine-driven experiments get their `mpi-fabric` bucket from
/// the probe instead.
pub fn add_model_vt(subsystem: &str, ns: f64) {
    if let Some(sink) = current_sink() {
        let ps = (ns * 1e3).round().max(0.0) as u64;
        *lock_sink(&sink).vt_ps.entry(subsystem.to_string()).or_insert(0) += ps;
    }
}

/// Fault-injected model time from threads without a scope (simulated
/// rank threads never inherit the experiment sink), merged by `collect`
/// into the shared `faults` domain.
static ORPHAN_FAULT_VT_PS: AtomicU64 = AtomicU64::new(0);

/// Attribute fault-injected model time to the `faults` subsystem
/// bucket. Unlike [`add_model_vt`] this also works on threads without a
/// scope — the fault observers fire on simulated rank threads, which
/// run outside any experiment scope — by accumulating into a
/// process-global bucket that [`collect`] reports as a shared `faults`
/// domain. The total stays deterministic: it is a sum over the fixed
/// multiset of model calls, regardless of thread interleaving.
pub(crate) fn add_fault_vt(ns: f64) {
    if !is_enabled() {
        return;
    }
    let ps = (ns * 1e3).round().max(0.0) as u64;
    if ps == 0 {
        return;
    }
    if let Some(sink) = current_sink() {
        *lock_sink(&sink).vt_ps.entry("faults".to_string()).or_insert(0) += ps;
    } else {
        ORPHAN_FAULT_VT_PS.fetch_add(ps, Ordering::Relaxed);
    }
}

/// Drain the orphan fault bucket (called once per [`collect`]).
pub(crate) fn take_orphan_fault_vt_ps() -> u64 {
    ORPHAN_FAULT_VT_PS.swap(0, Ordering::Relaxed)
}

/// Record `value` into histogram `name` on the innermost scope.
pub fn observe(name: &str, value: u64) {
    if let Some(sink) = current_sink() {
        lock_sink(&sink).hist.entry(name.to_string()).or_default().record(value);
    }
}

/// Run `f` inside a fresh per-experiment scope and register the result
/// under `code`. Everything recorded on this thread — and by engines
/// constructed on it — lands in the experiment's sink.
pub fn with_experiment_scope<T>(code: &str, f: impl FnOnce() -> T) -> T {
    if !is_enabled() {
        return f();
    }
    let sink: SharedSink = Arc::new(Mutex::new(Sink::default()));
    let out = {
        let _guard = ScopeGuard::push(Arc::clone(&sink));
        f()
    };
    global()
        .experiments
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push((code.to_string(), sink));
    out
}

/// Run a memo-cache compute closure inside a per-key scope, so the cost
/// of shared sub-models is attributed deterministically to the key (not
/// to whichever experiment won the race to compute it).
pub(crate) fn memo_scope<T>(key: &str, compute: impl FnOnce() -> T) -> T {
    if !is_enabled() {
        return compute();
    }
    let sink: SharedSink = Arc::new(Mutex::new(Sink::default()));
    let out = {
        let _guard = ScopeGuard::push(Arc::clone(&sink));
        compute()
    };
    global()
        .keys
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key.to_string(), sink);
    out
}

/// Credit the current scope with the virtual time recorded under `key`'s
/// sink (called on every memo lookup, hit or miss — so consumers of a
/// cached sub-model account its cost deterministically).
pub(crate) fn memo_credit(key: &str) {
    if !is_enabled() {
        return;
    }
    let Some(consumer) = current_sink() else { return };
    let key_sink = {
        let keys = global().keys.lock().unwrap_or_else(PoisonError::into_inner);
        keys.get(key).cloned()
    };
    let Some(key_sink) = key_sink else { return };
    if Arc::ptr_eq(&consumer, &key_sink) {
        return;
    }
    let credited: Vec<(String, u64)> = {
        let k = lock_sink(&key_sink);
        k.vt_ps.iter().map(|(s, &ps)| (s.clone(), ps)).collect()
    };
    let mut c = lock_sink(&consumer);
    for (subsystem, ps) in credited {
        *c.vt_ps.entry(subsystem).or_insert(0) += ps;
    }
    *c.counters.entry("cache.lookups".to_string()).or_insert(0) += 1;
}

/// Record the wall-clock interval one executor worker spent on one
/// experiment. Wall data is kept apart from the deterministic sinks.
pub(crate) fn record_wall_span(name: &str, tid: u32, started: Instant, dur_s: f64, cat: &'static str) {
    if !is_enabled() {
        return;
    }
    let g = global();
    let start_s = started.saturating_duration_since(g.epoch).as_secs_f64();
    g.wall_spans
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(WallSpan {
            name: name.to_string(),
            tid,
            start_s,
            dur_s,
            cat,
        });
}

/// Record one partitioned-DES run. The window and message totals are
/// deterministic and partition-count-invariant (windows follow the
/// global floor sequence; messages count cross-*domain* sends, not
/// cross-wheel ones), so they land in the virtual-side counters the
/// determinism battery pins. Per-wheel buckets — final virtual time,
/// outbound messages, wall nanoseconds stalled at window barriers —
/// legitimately vary with the wheel count and machine load, so they go
/// to the wall side under their own category.
pub fn record_partition_run(stats: &maia_sim::partition::PartitionRunStats) {
    if !is_enabled() {
        return;
    }
    count("partition.runs", 1);
    count("partition.windows", stats.windows);
    count("partition.messages", stats.messages);
    let started = Instant::now();
    for (wheel, w) in stats.wheels.iter().enumerate() {
        record_wall_span(
            &format!("partition/w{wheel}/end{}ps/out{}", w.end_ps, w.messages_out),
            wheel as u32,
            started,
            w.stall_wall_ns as f64 / 1e9,
            "wall-partition",
        );
    }
}

pub(crate) fn record_omp_region() {
    global().omp_regions.fetch_add(1, Ordering::Relaxed);
}

/// Total parallel regions observed since enablement (wall-side metric).
pub fn omp_regions() -> u64 {
    global().omp_regions.load(Ordering::Relaxed)
}

/// A worker process was declared lost (crash or heartbeat deadline).
pub fn record_worker_lost() {
    global().supervise.workers_lost.fetch_add(1, Ordering::Relaxed);
}

/// The supervisor is about to respawn after waiting `backoff`.
pub fn record_respawn(backoff: std::time::Duration) {
    let s = &global().supervise;
    s.respawns.fetch_add(1, Ordering::Relaxed);
    s.backoff_wait_ms
        .fetch_add(backoff.as_millis() as u64, Ordering::Relaxed);
}

/// `n` heartbeat intervals elapsed without a frame from some worker.
pub fn record_missed_heartbeats(n: u64) {
    if n > 0 {
        global()
            .supervise
            .missed_heartbeats
            .fetch_add(n, Ordering::Relaxed);
    }
}

/// A run exhausted its retry budget and degraded to in-process execution.
pub fn record_degraded() {
    global().supervise.degraded.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the supervisor's wall-side health counters.
pub fn supervise_counters() -> SuperviseCounters {
    let s = &global().supervise;
    SuperviseCounters {
        workers_lost: s.workers_lost.load(Ordering::Relaxed),
        respawns: s.respawns.load(Ordering::Relaxed),
        missed_heartbeats: s.missed_heartbeats.load(Ordering::Relaxed),
        degraded: s.degraded.load(Ordering::Relaxed),
        backoff_wait_ms: s.backoff_wait_ms.load(Ordering::Relaxed),
    }
}

/// Snapshot accessors used by [`report`].
pub(crate) fn snapshot_experiments() -> Vec<(String, SharedSink)> {
    global()
        .experiments
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

pub(crate) fn snapshot_keys() -> Vec<(String, SharedSink)> {
    global()
        .keys
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .filter(|(_, s)| !lock_sink(s).is_empty())
        .map(|(k, s)| (k.clone(), Arc::clone(s)))
        .collect()
}

pub(crate) fn snapshot_wall_spans() -> Vec<WallSpan> {
    global()
        .wall_spans
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Drop all recorded data (scopes currently on stacks are unaffected).
/// Intended for tests; the CLI uses one process per profile run.
pub fn reset_recorded() {
    if GLOBAL.get().is_none() {
        return;
    }
    let g = global();
    g.experiments
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    g.keys.lock().unwrap_or_else(PoisonError::into_inner).clear();
    g.wall_spans
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    g.omp_regions.store(0, Ordering::Relaxed);
    for c in [
        &g.supervise.workers_lost,
        &g.supervise.respawns,
        &g.supervise.missed_heartbeats,
        &g.supervise.degraded,
        &g.supervise.backoff_wait_ms,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scopes_are_transparent() {
        // Do not enable() here: this is the disabled-path contract.
        let v = with_experiment_scope("TEST-DISABLED", || 41 + 1);
        assert_eq!(v, 42);
        count("ignored", 5);
        add_model_vt("memory", 10.0);
        assert!(current_sink().is_none() || is_enabled());
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 3, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.buckets.get(&0), Some(&1)); // the zero
        assert_eq!(h.buckets.get(&1), Some(&2)); // 1, 1
        assert_eq!(h.buckets.get(&2), Some(&1)); // 3
        assert_eq!(h.buckets.get(&4), Some(&1)); // 8
        assert_eq!(h.buckets.get(&10), Some(&1)); // 1023
        assert_eq!(h.buckets.get(&11), Some(&1)); // 1024
        assert_eq!(h.sum, 2060);
    }

    #[test]
    fn span_cap_counts_drops() {
        let mut sink = Sink::default();
        for i in 0..(MAX_SPANS_PER_SINK + 10) {
            sink.push_span(VtSpan {
                name: format!("s{i}"),
                start_ps: i as u64,
                dur_ps: 1,
                tid: 0,
            });
        }
        assert_eq!(sink.spans.len(), MAX_SPANS_PER_SINK);
        assert_eq!(sink.dropped_spans, 10);
    }
}
