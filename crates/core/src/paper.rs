//! Paper-reported reference values, used by EXPERIMENTS.md to print the
//! measured-vs-paper comparison for every artifact.

use crate::experiments::ExperimentId;

/// A qualitative or quantitative claim the paper makes about one figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaperClaim {
    /// What the paper reports.
    pub claim: &'static str,
}

/// The paper's headline claims for an experiment (used for side-by-side
/// reporting; the automated shape checks live in the test suites).
pub fn paper_claims(id: ExperimentId) -> Vec<PaperClaim> {
    use ExperimentId::*;
    let texts: &[&str] = match id {
        T1Table => &[
            "Host: 20.8 Gflop/s/core, 166.4 Gflop/s/socket; Phi: 16.8 Gflop/s/core, 1008 Gflop/s/card",
            "System: 42.6 Tflop/s host + 258 Tflop/s Phi; Phi holds 86% of the flops",
        ],
        F4Stream => &[
            "Phi triad: 180 GB/s at 59 and 118 threads, 140 GB/s beyond 118",
            "Cause: GDDR5 exposes 128 open banks (16 banks x 8 devices)",
        ],
        F5Latency => &[
            "Host: 1.5 / 4.6 / 15 / 81 ns (L1 / L2 / L3 / DRAM)",
            "Phi: 2.9 / 22.9 / 295 ns (L1 / L2 / DRAM)",
        ],
        F6Bandwidth => &[
            "Host per-core: read 12.6..7.5 GB/s, write 10.4..7.2 GB/s",
            "Phi per-core: read 1.68..0.504 GB/s, write 1.538..0.263 GB/s",
        ],
        F7PcieLatency => &[
            "Pre-update: 3.3 / 4.6 / 6.3 us; post-update: 3.3 / 4.1 / 6.6 us",
        ],
        F8PcieBandwidth => &[
            "4 MB pre-update: 1.6 / 0.455 / 0.444 GB/s",
            "4 MB post-update: 6 / 6 / 0.899 GB/s (asymmetry removed)",
        ],
        F9UpdateGain => &[
            ">=256 KB (SCIF): 2-3.8x host-phi0, 7-13x host-phi1, ~2x phi0-phi1",
            "Small/medium messages: 1-1.5x",
        ],
        F10SendRecv => &["Host over Phi: 1.3-3.5x at 1 thread/core, 24-54x at 4 threads/core"],
        F11Bcast => &["Host over Phi0 (59T): 1.1-3.8x; per-core vs 236T: 20-35x"],
        F12Allreduce => &["Host over Phi0: 2.2-13.4x (59T), 28-104x (236T)"],
        F13Allgather => &[
            "Abrupt time jump at 2 KB and 4 KB (collective algorithm change)",
            "Host over Phi0: 2.6-17.1x (59T), 68-1146x (236T)",
        ],
        F14Alltoall => &[
            "236-rank runs only complete up to 4 KB (out of memory beyond)",
            "Host over Phi0: 8-20x (59T), 1003-2603x (236T)",
        ],
        F15OmpSync => &[
            "Phi overheads ~an order of magnitude above host",
            "Reduction most expensive, then PARALLEL FOR and PARALLEL; ATOMIC least",
        ],
        F16OmpSched => &["STATIC < GUIDED < DYNAMIC; Phi an order of magnitude above host"],
        F17Io => &[
            "Host: 210 MB/s write, 295 MB/s read; Phi0: 80 / 75 MB/s",
            "Cause: NFS reaches the Phi via the MPSS TCP/IP stack over PCIe",
        ],
        F18OffloadBw => &[
            "~6.4 GB/s for large transfers; ceilings 6.1/6.9 GB/s from 20-byte TLP wrapping",
            "Phi0 ~3% above Phi1; unexplained dip at 64 KB",
        ],
        F19NpbOmp => &[
            "Host beats the best Phi result for every benchmark except MG",
            "BT highest / CG lowest on the Phi; 3 threads/core generally best",
            "Vectorized sparse CG only 10% faster than unvectorized (gather/scatter inefficiency)",
        ],
        F20NpbMpi => &[
            "FT needs ~10 GB and cannot run on the 8 GB Phi",
            "BT best at 4 threads/core (225 ranks), unlike the OpenMP version",
        ],
        F21Cart3d => &[
            "Host performance 2x the best Phi result",
            "Phi best at 4 threads/core (236) — Cart3D is not heavily vectorized",
        ],
        F22OverflowNative => &[
            "Host best 16x1, worst 1x16; Phi best 8x28 (224T), worst 4x14 (56T)",
            "Host best beats Phi best by 1.8x",
        ],
        F23OverflowSymmetric => &[
            "Post-update software gains 2-28%",
            "Symmetric (host+Phi0+Phi1) beats native host by 1.9x but loses to two hosts",
            "Compute parts ~15% faster than two hosts; communication + imbalance outweigh",
        ],
        F24MgCollapse => &[
            "Loop collapse gains 25-28% on Phi0, loses ~1% on the host (16T)",
            "59/118/177/236 threads much better than 60/120/180/240 (the 60th core runs OS services)",
        ],
        F25MgModes => &[
            "Native host 23.5 Gflop/s (16T); HT (32T) 6% lower; native Phi 29.9 (177T, 3t/c)",
            "All offload variants slower than both native modes; whole > subroutine > loop",
        ],
        F26OffloadOverhead => &["Offloading one OpenMP loop worst; whole computation best"],
        F27OffloadCost => &["Transfer volume and invocation count maximal for the loop variant, minimal for whole"],
        A1NpbMpiMeasured => &[
            "(beyond paper) validation: the distributed kernels compute results identical to the shared-memory kernels while the DES prices their communication",
        ],
        A2OverflowHybrid => &[
            "(beyond paper) validation: zone data crosses the simulated fabric; PCIe layouts show the communication dominance the paper describes for symmetric mode",
        ],
        C1ClusterAllreduce => &[
            "(beyond paper) extrapolation: hierarchical allreduce over the 128-node FDR fabric grows logarithmically in nodes; the partitioned DES agrees bit-for-bit with the closed form",
        ],
        C2ClusterAlltoall => &[
            "(beyond paper) extrapolation: pairwise-exchange alltoall among node leaders grows linearly in nodes plus incast contention, scaling far worse than allreduce",
        ],
    };
    texts.iter().map(|t| PaperClaim { claim: t }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::all_experiments;

    #[test]
    fn every_experiment_has_claims() {
        for id in all_experiments() {
            assert!(!paper_claims(id).is_empty(), "{id:?} lacks paper claims");
        }
    }
}
