//! Fast-path vs DES cross-check oracle.
//!
//! The closed forms in `maia_mpi::fastpath` claim *exact* equality with
//! the discrete-event engine — not approximately, bit for bit. This
//! module makes that claim operational: it regenerates every Figure
//! 10–14 cell twice, once with the engine forced to the DES and once
//! forced to the closed forms, and compares the *formatted* tables (the
//! same strings the goldens pin, OOM markers included). `ci.sh` runs it
//! on every push via `maia-bench crosscheck`.
//!
//! Both sweeps run under dedicated cache epochs (`crosscheck/des`,
//! `crosscheck/fast`) so neither seeds the nominal memo namespace, and
//! under the fault-activation gate so an armed fault plan can never
//! interleave with the forced engine modes.

use std::collections::HashMap;

use maia_mpi::fastpath::{self, EngineMode};

use crate::cache;
use crate::executor::{run_experiments_parallel, ExperimentFailure};
use crate::experiments::ExperimentId;
use crate::figdata::FigureData;

/// The experiments whose cells have closed-form fast paths. The cluster
/// experiments run their DES side *partitioned* (at the process-global
/// `maia_mpi::partition::partitions()` count), so the cross-check also
/// pins closed form == partitioned DES.
pub const CROSSCHECK_IDS: [ExperimentId; 7] = [
    ExperimentId::F10SendRecv,
    ExperimentId::F11Bcast,
    ExperimentId::F12Allreduce,
    ExperimentId::F13Allgather,
    ExperimentId::F14Alltoall,
    ExperimentId::C1ClusterAllreduce,
    ExperimentId::C2ClusterAlltoall,
];

/// One experiment's DES-vs-fastpath cell comparison.
#[derive(Debug, Clone)]
pub struct ExperimentCrosscheck {
    /// Paper code (`F10`, ...).
    pub code: String,
    /// Data cells compared.
    pub cells: usize,
    /// Cells whose rendered value differed between the engines.
    pub mismatched: usize,
    /// First differing cell, as `row/column: des vs fast`.
    pub first_mismatch: Option<String>,
    /// Set when the two tables differ in headers or row count.
    pub shape_note: Option<String>,
}

impl ExperimentCrosscheck {
    /// Did this experiment render identically under both engines?
    pub fn is_match(&self) -> bool {
        self.mismatched == 0 && self.shape_note.is_none()
    }
}

/// Output of [`run_crosscheck`]: deterministic at fixed jobs.
#[derive(Debug, Clone)]
pub struct CrosscheckReport {
    pub jobs: usize,
    pub experiments: Vec<ExperimentCrosscheck>,
    pub des_failures: Vec<ExperimentFailure>,
    pub fast_failures: Vec<ExperimentFailure>,
}

impl CrosscheckReport {
    /// True iff every cell matched and both sweeps completed fully.
    pub fn is_match(&self) -> bool {
        self.experiments.iter().all(ExperimentCrosscheck::is_match)
            && self.des_failures.is_empty()
            && self.fast_failures.is_empty()
    }

    /// Deterministic Markdown rendering (drives the CLI output).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Engine cross-check — closed forms vs DES\n\n");
        out.push_str(&format!("- jobs: {}\n", self.jobs));
        out.push_str(&format!(
            "- verdict: {}\n\n",
            if self.is_match() { "MATCH" } else { "MISMATCH" }
        ));
        out.push_str("| experiment | cells | mismatched |\n|---|---|---|\n");
        for e in &self.experiments {
            out.push_str(&format!(
                "| {} | {} | {} |{}\n",
                e.code,
                e.cells,
                e.mismatched,
                e.shape_note
                    .as_ref()
                    .map_or(String::new(), |n| format!(" <!-- {n} -->")),
            ));
        }
        let mismatches: Vec<&ExperimentCrosscheck> = self
            .experiments
            .iter()
            .filter(|e| !e.is_match())
            .collect();
        if !mismatches.is_empty() {
            out.push_str("\n## Mismatches\n\n");
            for e in mismatches {
                if let Some(first) = &e.first_mismatch {
                    out.push_str(&format!("- {}: {first}\n", e.code));
                }
                if let Some(note) = &e.shape_note {
                    out.push_str(&format!("- {}: {note}\n", e.code));
                }
            }
        }
        if !self.des_failures.is_empty() || !self.fast_failures.is_empty() {
            out.push_str("\n## Failures\n\n");
            for (label, failures) in [("des", &self.des_failures), ("fast", &self.fast_failures)] {
                for f in failures {
                    out.push_str(&format!(
                        "- {label} {} [{}]: {}\n",
                        f.id.meta().code,
                        f.kind,
                        f.detail
                    ));
                }
            }
        }
        out
    }
}

/// Compute every F10–F14 cell on both engines and diff the rendered
/// tables. Serialized against fault activations (the engine mode is
/// process-global); the mode is always restored to [`EngineMode::Auto`].
pub fn run_crosscheck(jobs: usize) -> CrosscheckReport {
    let _gate = crate::faults::lock_gate();
    let ids: Vec<ExperimentId> = CROSSCHECK_IDS.to_vec();

    let sweep = |mode: EngineMode, epoch: &str| {
        fastpath::set_engine_mode(mode);
        cache::set_epoch(Some(epoch));
        let out = run_experiments_parallel(&ids, jobs);
        cache::set_epoch(None);
        fastpath::set_engine_mode(EngineMode::Auto);
        out
    };
    let des = sweep(EngineMode::Des, "crosscheck/des");
    let fast = sweep(EngineMode::Fast, "crosscheck/fast");

    let fast_by_code: HashMap<&str, &FigureData> = fast
        .runs
        .iter()
        .map(|r| (r.id.meta().code, &r.data))
        .collect();
    let mut experiments = Vec::new();
    for run in &des.runs {
        let code = run.id.meta().code;
        let Some(fast_data) = fast_by_code.get(code) else {
            continue; // failed in the fast sweep; listed under failures
        };
        experiments.push(diff_tables(code, &run.data, fast_data));
    }

    CrosscheckReport {
        jobs,
        experiments,
        des_failures: des.failures,
        fast_failures: fast.failures,
    }
}

fn diff_tables(code: &str, des: &FigureData, fast: &FigureData) -> ExperimentCrosscheck {
    let mut cells = 0usize;
    let mut mismatched = 0usize;
    let mut first_mismatch = None;
    let shape_note = if des.headers != fast.headers || des.rows.len() != fast.rows.len() {
        Some(format!(
            "table shape differs: {}x{} des vs {}x{} fast",
            des.rows.len(),
            des.headers.len(),
            fast.rows.len(),
            fast.headers.len()
        ))
    } else {
        None
    };
    for (d_row, f_row) in des.rows.iter().zip(fast.rows.iter()) {
        for (col, (d_cell, f_cell)) in d_row.iter().zip(f_row.iter()).enumerate() {
            cells += 1;
            if d_cell != f_cell {
                mismatched += 1;
                if first_mismatch.is_none() {
                    let header = des.headers.get(col).map_or("?", String::as_str);
                    let key = d_row.first().map_or("?", String::as_str);
                    first_mismatch =
                        Some(format!("{key}/{header}: des {d_cell:?} vs fast {f_cell:?}"));
                }
            }
        }
    }
    ExperimentCrosscheck {
        code: code.to_string(),
        cells,
        mismatched,
        first_mismatch,
        shape_note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full two-engine sweep runs in the serialized cross-crate
    // suite (tests/tests/fastpath_equivalence.rs) and in ci.sh; running
    // it here would flip the process-global engine mode under this
    // binary's nominal-value tests.

    #[test]
    fn crosscheck_covers_the_collective_figures() {
        let codes: Vec<&str> = CROSSCHECK_IDS.iter().map(|id| id.meta().code).collect();
        assert_eq!(codes, ["F10", "F11", "F12", "F13", "F14", "C01", "C02"]);
    }

    #[test]
    fn mismatches_render_with_coordinates() {
        let mut des = FigureData::new("F10", "t", &["config", "size", "MB/s"]);
        des.push_row(vec!["host-16".into(), "64B".into(), "1.0".into()]);
        let mut fast = FigureData::new("F10", "t", &["config", "size", "MB/s"]);
        fast.push_row(vec!["host-16".into(), "64B".into(), "2.0".into()]);
        let d = diff_tables("F10", &des, &fast);
        assert!(!d.is_match());
        assert_eq!(d.mismatched, 1);
        assert_eq!(
            d.first_mismatch.as_deref(),
            Some("host-16/MB/s: des \"1.0\" vs fast \"2.0\"")
        );
        let report = CrosscheckReport {
            jobs: 1,
            experiments: vec![d],
            des_failures: vec![],
            fast_failures: vec![],
        };
        assert!(!report.is_match());
        assert!(report.to_markdown().contains("MISMATCH"));
    }
}
