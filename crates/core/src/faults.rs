//! Deterministic fault plans and the resilience harness.
//!
//! The paper is an *early-system* evaluation: its headline PCIe/MPI
//! results exist in two variants because the DAPL/MPSS stack misbehaved
//! until a software update (Figures 8–9), and the companion
//! early-experience reports describe stragglers, degraded links, and
//! dying cards as routine. This module lets the reproduction ask "what
//! would the paper's numbers have looked like on the degraded machine?"
//! — deterministically.
//!
//! A [`FaultPlan`] is a seeded, fully deterministic set of [`Fault`]s.
//! [`activate`] arms the injection hooks that the lower crates expose
//! (`maia_interconnect::faults`, `maia_mem::faults`, `maia_mpi::faults`,
//! `maia_modes::faults`), switches the memo cache to a fresh epoch so
//! degraded sub-models never collide with nominal cache entries, and
//! wires the injected-time/mode-switch observers into the `faults`
//! telemetry bucket. [`run_resilience`] then runs the selection twice —
//! nominal, then degraded — and reports per-experiment deltas.
//!
//! Everything is reproducible: same plan + same seed + same jobs ⇒
//! bit-identical resilience report (pinned by `tests/golden/resilience.md`
//! and the proptests in `tests/tests/faults_resilience.rs`).
//!
//! The module also hosts the *forced-failure* switchboard used by the
//! fail-soft executor tests: `MAIA_FAULT_PANIC` / `MAIA_FAULT_DEADLOCK` /
//! `MAIA_FAULT_HANG` name experiment codes that should be killed in a
//! controlled way (through a real `maia_sim` engine, so the failure
//! carries a process name and virtual time).

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::cache;
use crate::executor::{run_experiments_parallel, ExperimentFailure};
use crate::experiments::{ExperimentId, ExperimentSelection};
use crate::telemetry;

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// One injectable fault. Parameters are chosen so every variant prints
/// and re-parses exactly (integers, or floats via shortest-roundtrip
/// `{:?}`).
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Rank `rank` computes `slowdown`× slower from virtual time
    /// `from_us` onward (thermal throttling / sick core).
    StragglerRank { rank: u32, slowdown: f64, from_us: f64 },
    /// The host↔Phi PCIe link drops to `lanes` surviving lanes.
    DegradedPcie { lanes: u32 },
    /// The post-update DAPL stack regresses to the pre-update CCL path.
    DaplFallback,
    /// A coprocessor dies (0 = Phi0, 1 = Phi1); offload/symmetric runs
    /// degrade to host-only / host + 1 Phi.
    DeadCard { card: u8 },
    /// `disabled_banks` GDDR5 banks are retired on the Phi.
    GddrBankDegradation { disabled_banks: u32 },
    /// Every PCIe-crossing MPI message pays `extra_retries`
    /// timeout/retry rounds with exponential backoff.
    DegradedLink { extra_retries: u32, timeout_us: f64 },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::StragglerRank { rank, slowdown, from_us } => {
                write!(f, "straggler rank={rank} slowdown={slowdown:?} from_us={from_us:?}")
            }
            Fault::DegradedPcie { lanes } => write!(f, "degraded-pcie lanes={lanes}"),
            Fault::DaplFallback => write!(f, "dapl-fallback"),
            Fault::DeadCard { card } => write!(f, "dead-card card={card}"),
            Fault::GddrBankDegradation { disabled_banks } => {
                write!(f, "gddr-banks disabled={disabled_banks}")
            }
            Fault::DegradedLink { extra_retries, timeout_us } => {
                write!(f, "degraded-link retries={extra_retries} timeout_us={timeout_us:?}")
            }
        }
    }
}

/// A named, seeded set of faults. The seed is part of the identity: it
/// drives [`FaultPlan::generate`] and namespaces the degraded cache
/// epoch, so two plans with the same faults but different seeds are
/// distinct (and both deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub name: String,
    pub seed: u64,
    pub faults: Vec<Fault>,
}

/// The canned plan names accepted by `maia-bench faults --plan <name>`.
pub const PLAN_NAMES: &[&str] = &["degraded-stack", "dead-card", "gddr-degraded", "straggler"];

impl FaultPlan {
    /// Look up a canned plan by name.
    pub fn named(name: &str) -> Option<FaultPlan> {
        let (seed, faults) = match name {
            // The paper's own degraded machine: pre-update DAPL path,
            // a narrowed PCIe link, and a flaky retrying link.
            "degraded-stack" => (
                13,
                vec![
                    Fault::DaplFallback,
                    Fault::DegradedPcie { lanes: 8 },
                    Fault::DegradedLink { extra_retries: 2, timeout_us: 50.0 },
                ],
            ),
            "dead-card" => (17, vec![Fault::DeadCard { card: 1 }]),
            "gddr-degraded" => (23, vec![Fault::GddrBankDegradation { disabled_banks: 64 }]),
            "straggler" => (
                29,
                vec![Fault::StragglerRank { rank: 3, slowdown: 4.0, from_us: 0.0 }],
            ),
            _ => return None,
        };
        Some(FaultPlan { name: name.to_string(), seed, faults })
    }

    /// Generate a random-but-reproducible plan: the same seed always
    /// yields the identical plan (at most one fault per kind, so
    /// activation is unambiguous).
    pub fn generate(seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1usize..5);
        let mut faults: Vec<Fault> = Vec::new();
        for _ in 0..count {
            let fault = match rng.gen_range(0u32..6) {
                0 => Fault::DaplFallback,
                1 => {
                    let lanes = [1u32, 2, 4, 8][rng.gen_range(0usize..4)];
                    Fault::DegradedPcie { lanes }
                }
                2 => Fault::StragglerRank {
                    rank: rng.gen_range(0u32..16),
                    slowdown: f64::from(rng.gen_range(15u32..80)) / 10.0,
                    from_us: f64::from(rng.gen_range(0u32..1000)),
                },
                3 => Fault::DeadCard { card: rng.gen_range(0u8..2) },
                4 => Fault::GddrBankDegradation { disabled_banks: rng.gen_range(8u32..96) },
                _ => Fault::DegradedLink {
                    extra_retries: rng.gen_range(1u32..4),
                    timeout_us: f64::from(rng.gen_range(10u32..200)),
                },
            };
            if !faults.iter().any(|f| kind_tag(f) == kind_tag(&fault)) {
                faults.push(fault);
            }
        }
        FaultPlan { name: format!("generated-{seed}"), seed, faults }
    }

    /// Render the plan in the line-based text format [`FaultPlan::parse`]
    /// reads back (exact round trip).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# maia fault plan\n");
        out.push_str(&format!("name: {}\n", self.name));
        out.push_str(&format!("seed: {}\n", self.seed));
        for fault in &self.faults {
            out.push_str(&format!("fault: {fault}\n"));
        }
        out
    }

    /// Parse the text format produced by [`FaultPlan::to_text`]:
    /// `name:` / `seed:` headers and one `fault: <kind> k=v ...` line
    /// per fault; `#` comments and blank lines are ignored.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut name: Option<String> = None;
        let mut seed: u64 = 0;
        let mut faults = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| format!("fault plan line {}: {msg}: {line:?}", lineno + 1);
            if let Some(v) = line.strip_prefix("name:") {
                name = Some(v.trim().to_string());
            } else if let Some(v) = line.strip_prefix("seed:") {
                seed = v.trim().parse().map_err(|_| err("bad seed"))?;
            } else if let Some(v) = line.strip_prefix("fault:") {
                faults.push(parse_fault(v.trim()).map_err(|m| err(&m))?);
            } else {
                return Err(err("unrecognized line"));
            }
        }
        let name = name.ok_or("fault plan is missing a `name:` line".to_string())?;
        if faults.is_empty() {
            return Err(format!("fault plan '{name}' declares no faults"));
        }
        Ok(FaultPlan { name, seed, faults })
    }
}

/// Stable discriminant tag (used to keep generated plans unambiguous).
fn kind_tag(f: &Fault) -> &'static str {
    match f {
        Fault::StragglerRank { .. } => "straggler",
        Fault::DegradedPcie { .. } => "degraded-pcie",
        Fault::DaplFallback => "dapl-fallback",
        Fault::DeadCard { .. } => "dead-card",
        Fault::GddrBankDegradation { .. } => "gddr-banks",
        Fault::DegradedLink { .. } => "degraded-link",
    }
}

fn parse_fault(s: &str) -> Result<Fault, String> {
    let mut parts = s.split_whitespace();
    let kind = parts.next().ok_or("empty fault")?;
    let mut kv: HashMap<&str, &str> = HashMap::new();
    for p in parts {
        let (k, v) = p.split_once('=').ok_or_else(|| format!("expected k=v, got {p:?}"))?;
        kv.insert(k, v);
    }
    let get = |k: &str| kv.get(k).copied().ok_or_else(|| format!("missing {k}="));
    let num_u32 = |k: &str| -> Result<u32, String> {
        get(k)?.parse().map_err(|_| format!("bad {k}= value"))
    };
    let num_f64 = |k: &str| -> Result<f64, String> {
        get(k)?.parse().map_err(|_| format!("bad {k}= value"))
    };
    match kind {
        "straggler" => Ok(Fault::StragglerRank {
            rank: num_u32("rank")?,
            slowdown: num_f64("slowdown")?,
            from_us: num_f64("from_us")?,
        }),
        "degraded-pcie" => Ok(Fault::DegradedPcie { lanes: num_u32("lanes")? }),
        "dapl-fallback" => Ok(Fault::DaplFallback),
        "dead-card" => Ok(Fault::DeadCard {
            card: get("card")?.parse().map_err(|_| "bad card= value".to_string())?,
        }),
        "gddr-banks" => Ok(Fault::GddrBankDegradation { disabled_banks: num_u32("disabled")? }),
        "degraded-link" => Ok(Fault::DegradedLink {
            extra_retries: num_u32("retries")?,
            timeout_us: num_f64("timeout_us")?,
        }),
        other => Err(format!("unknown fault kind {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Activation
// ---------------------------------------------------------------------------

/// Serializes fault activations process-wide: the injection hooks are
/// global, so two overlapping activations would interleave their state.
static GATE: Mutex<()> = Mutex::new(());

/// Lock the process-wide activation gate for a non-fault caller. The
/// engine cross-check flips the global engine mode, which must not
/// interleave with an armed fault plan (or another cross-check).
pub(crate) fn lock_gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}
/// Monotone activation counter: part of the cache epoch so repeated
/// activations of the *same* plan recompute their degraded sub-models
/// (keeping injected-time totals identical per activation).
static ACTIVATIONS: AtomicU64 = AtomicU64::new(0);
/// Net model time injected by the active plan, signed picoseconds.
/// (Signed because a forced DAPL fallback can be *cheaper* on some
/// paths: the pre-update phi0-phi1 eager latency undercuts post-update.)
static INJECTED_PS: AtomicI64 = AtomicI64::new(0);

static MODE_SWITCHES: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();

fn mode_switches_slot() -> &'static Mutex<BTreeSet<String>> {
    MODE_SWITCHES.get_or_init(|| Mutex::new(BTreeSet::new()))
}

fn note_injected_s(extra_s: f64) {
    INJECTED_PS.fetch_add((extra_s * 1e12) as i64, Ordering::Relaxed);
    // The telemetry bucket clamps negatives itself; the signed total
    // above is what the resilience report prints.
    telemetry::add_fault_vt(extra_s * 1e9);
}

/// RAII guard for an armed fault plan. Dropping it disarms every hook,
/// restores the default cache epoch, and releases the activation gate.
pub struct ActiveFaults {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for ActiveFaults {
    fn drop(&mut self) {
        cache::set_epoch(None);
        maia_interconnect::faults::clear();
        maia_mem::faults::clear();
        maia_mpi::faults::clear();
        maia_modes::faults::clear();
        maia_mpi::fastpath::set_fault_override(false);
    }
}

/// Arm `plan`: install every hook in the lower crates, wire the
/// injected-time and mode-switch observers, and switch the memo cache
/// to a fresh epoch. Returns the guard that disarms everything on drop.
/// Activations are serialized process-wide (the hooks are global).
pub fn activate(plan: &FaultPlan) -> ActiveFaults {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    // Some faults arm hooks the MPI layer cannot see (dead cards in
    // `maia_modes`, GDDR banks in `maia_mem`), so engine selection
    // cannot infer "a plan is active" from its own crates' flags alone.
    // Force the discrete-event engine for the whole activation.
    maia_mpi::fastpath::set_fault_override(true);
    INJECTED_PS.store(0, Ordering::Relaxed);
    mode_switches_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();

    let injected: Arc<dyn Fn(f64) + Send + Sync> = Arc::new(note_injected_s);
    maia_interconnect::faults::set_injected_time_observer(Some(Arc::clone(&injected)));
    maia_mpi::faults::set_injected_time_observer(Some(injected));
    maia_modes::faults::set_mode_switch_observer(Some(Arc::new(|msg: &str| {
        mode_switches_slot()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(msg.to_string());
    })));

    let mut stragglers = Vec::new();
    for fault in &plan.faults {
        match *fault {
            Fault::StragglerRank { rank, slowdown, from_us } => {
                stragglers.push(maia_mpi::faults::Straggler {
                    rank,
                    slowdown,
                    from_s: from_us * 1e-6,
                });
            }
            Fault::DegradedPcie { lanes } => {
                maia_interconnect::faults::set_degraded_pcie_lanes(Some(lanes));
            }
            Fault::DaplFallback => maia_interconnect::faults::set_dapl_fallback(true),
            Fault::DeadCard { card } => {
                let device = if card == 0 {
                    maia_arch::Device::Phi0
                } else {
                    maia_arch::Device::Phi1
                };
                maia_modes::faults::set_dead_card(Some(device));
            }
            Fault::GddrBankDegradation { disabled_banks } => {
                maia_mem::faults::set_gddr_disabled_banks(disabled_banks);
            }
            Fault::DegradedLink { extra_retries, timeout_us } => {
                // Jitter-free doubling: the schedule is a pure function
                // of the fault parameters (the golden resilience report
                // pins every injected picosecond), so the plan seed is
                // irrelevant here by construction.
                let schedule = crate::backoff::BackoffPolicy::doubling(timeout_us * 1e-6, extra_retries)
                    .schedule(plan.seed);
                maia_mpi::faults::set_link_fault(Some(maia_mpi::faults::LinkFault {
                    timeouts_s: schedule,
                }));
            }
        }
    }
    if !stragglers.is_empty() {
        maia_mpi::faults::set_stragglers(stragglers);
    }

    // The `faults/` prefix doubles as the telemetry domain: memo keys
    // recomputed under the degraded stack group under a shared `faults`
    // row instead of polluting the nominal domains.
    let n = ACTIVATIONS.fetch_add(1, Ordering::Relaxed);
    cache::set_epoch(Some(&format!("faults/{}/{}/{n}", plan.name, plan.seed)));
    ActiveFaults { _gate: gate }
}

/// Net injected model time of the activation in progress, picoseconds.
pub fn injected_vt_ps() -> i64 {
    INJECTED_PS.load(Ordering::Relaxed)
}

/// Deduplicated, sorted mode-switch notes from the activation in
/// progress.
pub fn mode_switches() -> Vec<String> {
    mode_switches_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .cloned()
        .collect()
}

// ---------------------------------------------------------------------------
// Resilience report
// ---------------------------------------------------------------------------

/// Nominal-vs-degraded comparison of one experiment's table.
#[derive(Debug, Clone)]
pub struct ExperimentDelta {
    /// Paper code (`F8`, `T1`, ...).
    pub code: String,
    /// Total data cells compared.
    pub cells: usize,
    /// Cells whose rendered value changed under the fault plan.
    pub changed: usize,
    /// Largest relative change over numeric cells, `|d-n| / max(|n|,ε)`.
    pub max_rel_delta: f64,
    /// Set when the degraded table changed shape (headers/row count).
    pub shape_note: Option<String>,
}

/// Output of [`run_resilience`]: deterministic at fixed plan and jobs.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    pub plan: FaultPlan,
    pub jobs: usize,
    pub deltas: Vec<ExperimentDelta>,
    pub nominal_failures: Vec<ExperimentFailure>,
    pub degraded_failures: Vec<ExperimentFailure>,
    pub mode_switches: Vec<String>,
    /// Net model time the faults injected, signed picoseconds.
    pub injected_vt_ps: i64,
}

impl ResilienceReport {
    /// True when either sweep lost experiments to panics/deadlocks/
    /// timeouts (drives the CLI exit code).
    pub fn has_failures(&self) -> bool {
        !self.nominal_failures.is_empty() || !self.degraded_failures.is_empty()
    }

    /// Deterministic Markdown rendering (no wall-clock values) — the
    /// golden format pinned by `tests/golden/resilience.md`.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# Resilience report — plan '{}'\n\n", self.plan.name);
        out.push_str(&format!("- seed: {}\n", self.plan.seed));
        out.push_str(&format!("- jobs: {}\n", self.jobs));
        out.push_str("- faults:\n");
        for fault in &self.plan.faults {
            out.push_str(&format!("  - {fault}\n"));
        }
        out.push_str(&format!(
            "- injected model time: {} ps ({:.3} us)\n",
            self.injected_vt_ps,
            self.injected_vt_ps as f64 / 1e6
        ));
        if self.mode_switches.is_empty() {
            out.push_str("- mode switches: none\n");
        } else {
            out.push_str("- mode switches:\n");
            for m in &self.mode_switches {
                out.push_str(&format!("  - {m}\n"));
            }
        }
        out.push_str("\n## Nominal vs degraded\n\n");
        out.push_str("| experiment | cells | changed | max rel delta |\n|---|---|---|---|\n");
        for d in &self.deltas {
            out.push_str(&format!(
                "| {} | {} | {} | {:.4} |{}\n",
                d.code,
                d.cells,
                d.changed,
                d.max_rel_delta,
                d.shape_note
                    .as_ref()
                    .map_or(String::new(), |n| format!(" <!-- {n} -->")),
            ));
        }
        out.push_str("\n## Failures\n\n");
        if !self.has_failures() {
            out.push_str("none — every experiment completed in both sweeps\n");
        } else {
            for (label, failures) in [
                ("nominal", &self.nominal_failures),
                ("degraded", &self.degraded_failures),
            ] {
                for f in failures {
                    out.push_str(&format!(
                        "- {label} {} [{}]: {}\n",
                        f.id.meta().code,
                        f.kind,
                        f.detail
                    ));
                }
            }
        }
        out
    }

    /// Deterministic JSON rendering (same content as the Markdown).
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"plan\": \"{}\",\n", esc(&self.plan.name)));
        out.push_str(&format!("  \"seed\": {},\n", self.plan.seed));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str("  \"faults\": [\n");
        for (i, fault) in self.plan.faults.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\"{}\n",
                esc(&fault.to_string()),
                if i + 1 == self.plan.faults.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"injected_vt_ps\": {},\n", self.injected_vt_ps));
        out.push_str("  \"mode_switches\": [\n");
        for (i, m) in self.mode_switches.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\"{}\n",
                esc(m),
                if i + 1 == self.mode_switches.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"experiments\": [\n");
        for (i, d) in self.deltas.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"code\": \"{}\", \"cells\": {}, \"changed\": {}, \
                 \"max_rel_delta\": {:.6} }}{}\n",
                d.code,
                d.cells,
                d.changed,
                d.max_rel_delta,
                if i + 1 == self.deltas.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        let all_failures: Vec<(&str, &ExperimentFailure)> = self
            .nominal_failures
            .iter()
            .map(|f| ("nominal", f))
            .chain(self.degraded_failures.iter().map(|f| ("degraded", f)))
            .collect();
        out.push_str("  \"failures\": [\n");
        for (i, (label, f)) in all_failures.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"sweep\": \"{label}\", \"code\": \"{}\", \"kind\": \"{}\", \
                 \"detail\": \"{}\" }}{}\n",
                f.id.meta().code,
                f.kind,
                esc(&f.detail),
                if i + 1 == all_failures.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Run `selection` nominally, then under `plan`, and diff the tables.
/// Both sweeps are fail-soft: failures land in the report instead of
/// aborting it.
pub fn run_resilience(
    plan: &FaultPlan,
    selection: &ExperimentSelection,
    jobs: usize,
) -> ResilienceReport {
    let ids = selection.resolve();
    let nominal = run_experiments_parallel(&ids, jobs);

    let guard = activate(plan);
    let degraded = run_experiments_parallel(&ids, jobs);
    let injected_vt_ps = injected_vt_ps();
    let switches = mode_switches();
    drop(guard);

    let degraded_by_code: HashMap<&str, &crate::figdata::FigureData> = degraded
        .runs
        .iter()
        .map(|r| (r.id.meta().code, &r.data))
        .collect();
    let mut deltas = Vec::new();
    for run in &nominal.runs {
        let code = run.id.meta().code;
        let Some(deg) = degraded_by_code.get(code) else {
            continue; // failed in the degraded sweep; listed under failures
        };
        deltas.push(diff_tables(code, &run.data, deg));
    }

    ResilienceReport {
        plan: plan.clone(),
        jobs,
        deltas,
        nominal_failures: nominal.failures,
        degraded_failures: degraded.failures,
        mode_switches: switches,
        injected_vt_ps,
    }
}

fn diff_tables(
    code: &str,
    nominal: &crate::figdata::FigureData,
    degraded: &crate::figdata::FigureData,
) -> ExperimentDelta {
    let mut cells = 0usize;
    let mut changed = 0usize;
    let mut max_rel = 0.0f64;
    let shape_note = if nominal.headers != degraded.headers
        || nominal.rows.len() != degraded.rows.len()
    {
        Some(format!(
            "table shape changed: {}x{} -> {}x{}",
            nominal.rows.len(),
            nominal.headers.len(),
            degraded.rows.len(),
            degraded.headers.len()
        ))
    } else {
        None
    };
    for (n_row, d_row) in nominal.rows.iter().zip(degraded.rows.iter()) {
        for (n_cell, d_cell) in n_row.iter().zip(d_row.iter()) {
            cells += 1;
            if n_cell != d_cell {
                changed += 1;
                if let (Ok(n), Ok(d)) = (n_cell.parse::<f64>(), d_cell.parse::<f64>()) {
                    let rel = (d - n).abs() / n.abs().max(1e-12);
                    max_rel = max_rel.max(rel);
                }
            }
        }
    }
    ExperimentDelta {
        code: code.to_string(),
        cells,
        changed,
        max_rel_delta: max_rel,
        shape_note,
    }
}

// ---------------------------------------------------------------------------
// Forced failures (fail-soft harness test switchboard)
// ---------------------------------------------------------------------------

/// How a forced failure should kill its experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcedFailure {
    /// A simulated process panics (through a real engine, so the error
    /// names the process and its virtual time).
    Panic,
    /// A simulated process blocks on a message nobody sends.
    Deadlock,
    /// The experiment thread sleeps forever (exercises the watchdog).
    Hang,
}

static FORCED: OnceLock<RwLock<HashMap<&'static str, ForcedFailure>>> = OnceLock::new();

fn forced_slot() -> &'static RwLock<HashMap<&'static str, ForcedFailure>> {
    FORCED.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Programmatically force (or clear, with `None`) a failure for one
/// experiment — the in-process counterpart of the `MAIA_FAULT_*`
/// environment variables.
pub fn force_failure_for_tests(id: ExperimentId, failure: Option<ForcedFailure>) {
    let mut map = forced_slot()
        .write()
        .unwrap_or_else(PoisonError::into_inner);
    match failure {
        Some(f) => {
            map.insert(id.meta().code, f);
        }
        None => {
            map.remove(id.meta().code);
        }
    }
}

fn forced_for(id: ExperimentId) -> Option<ForcedFailure> {
    if let Some(f) = forced_slot()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(id.meta().code)
    {
        return Some(*f);
    }
    for (var, kind) in [
        ("MAIA_FAULT_PANIC", ForcedFailure::Panic),
        ("MAIA_FAULT_DEADLOCK", ForcedFailure::Deadlock),
        ("MAIA_FAULT_HANG", ForcedFailure::Hang),
    ] {
        if let Ok(v) = std::env::var(var) {
            if v.split(',').any(|tok| ExperimentId::parse(tok) == Some(id)) {
                return Some(kind);
            }
        }
    }
    None
}

/// Executor hook: kill the current experiment the forced way, if one is
/// forced. Panic and deadlock go through a real `maia_sim` engine so
/// the resulting error message carries the simulated process name and
/// virtual time (`SimError` Display), then re-panic with that rendering
/// for the guard thread's `catch_unwind` to classify.
pub(crate) fn forced_failure_trigger(id: ExperimentId) {
    let Some(kind) = forced_for(id) else { return };
    let code = id.meta().code;
    match kind {
        ForcedFailure::Panic => {
            let mut eng = maia_sim::Engine::new();
            eng.spawn(format!("rank-0-{code}"), |ctx| {
                ctx.advance(maia_sim::SimDuration::from_us(1.0));
                panic!("injected fault: forced panic");
            });
            if let Err(e) = eng.run() {
                panic!("{e}");
            }
        }
        ForcedFailure::Deadlock => {
            let ch = maia_sim::channel::SimChannel::<u8>::new("injected-fault");
            let mut eng = maia_sim::Engine::new();
            eng.spawn(format!("rank-0-{code}"), move |ctx| {
                let _ = ch.recv(ctx);
            });
            if let Err(e) = eng.run() {
                panic!("{e}");
            }
        }
        ForcedFailure::Hang => loop {
            // Cooperative cancellation point: once the executor's
            // watchdog gives up on this experiment, stop hanging so the
            // guard thread can be joined instead of leaking into later
            // experiments.
            if crate::executor::guard_cancelled() {
                panic!("injected fault: forced hang cancelled by watchdog");
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that *activate* plans live in the serialized cross-crate
    // suite (tests/tests/faults_resilience.rs); arming the process-wide
    // hooks here would race this binary's nominal-value tests.

    #[test]
    fn canned_plans_resolve_and_roundtrip() {
        for name in PLAN_NAMES {
            let plan = FaultPlan::named(name).expect("canned plan");
            assert_eq!(&plan.name, name);
            assert!(!plan.faults.is_empty());
            let reparsed = FaultPlan::parse(&plan.to_text()).expect("roundtrip");
            assert_eq!(plan, reparsed);
        }
        assert_eq!(FaultPlan::named("no-such-plan"), None);
    }

    #[test]
    fn generated_plans_are_seed_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = FaultPlan::generate(seed);
            let b = FaultPlan::generate(seed);
            assert_eq!(a, b);
            assert!(!a.faults.is_empty());
            let reparsed = FaultPlan::parse(&a.to_text()).expect("roundtrip");
            assert_eq!(a, reparsed);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("name: x\nseed: 1\nfault: warp-core breach=1\n").is_err());
        assert!(FaultPlan::parse("seed: 1\nfault: dapl-fallback\n").is_err());
        assert!(FaultPlan::parse("name: x\nseed: 1\n").is_err());
        assert!(FaultPlan::parse("name: x\nseed: one\nfault: dapl-fallback\n").is_err());
    }

    #[test]
    fn forced_failure_defaults_to_none() {
        // No env vars, no programmatic forcing: the trigger is a no-op.
        forced_failure_trigger(ExperimentId::T1Table);
    }
}
