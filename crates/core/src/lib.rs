//! # maia-core — the public facade of the Maia reproduction
//!
//! Ties the substrates together into an *experiment registry*: every
//! table and figure of Saini et al. (SC'13) is an [`ExperimentId`] whose
//! [`run_experiment`] regenerates the corresponding data series from the
//! models and simulators in the lower crates.
//!
//! ```
//! use maia_core::{run_experiment, ExperimentId};
//!
//! let fig4 = run_experiment(ExperimentId::F4Stream);
//! assert_eq!(fig4.id, "F4");
//! assert!(fig4.to_markdown().contains("GB/s"));
//! ```
//!
//! The per-figure binaries in `maia-bench` and the EXPERIMENTS.md report
//! are thin wrappers over this API.

pub mod backoff;
pub mod cache;
pub mod crosscheck;
pub mod executor;
pub mod experiments;
pub mod faults;
pub mod figdata;
pub mod oracle;
pub mod paper;
pub mod supervise;
pub mod telemetry;

pub use executor::{
    run_experiments_parallel, run_selection, ExperimentFailure, ExperimentRun, FailureKind,
    SweepReport,
};
pub use crosscheck::{run_crosscheck, CrosscheckReport};
pub use faults::{run_resilience, Fault, FaultPlan, ForcedFailure, ResilienceReport};
pub use experiments::{
    all_experiments, run_experiment, ExperimentId, ExperimentMeta, ExperimentSelection,
};
pub use figdata::{write_all_csv, FigureData};
pub use oracle::{
    check, check_figure, check_selection, check_sweep, Check, ConformanceReport, PredicateResult,
};
pub use telemetry::ProfileReport;

/// Library version, mirrored from the workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// A convenience façade describing the modeled system.
pub struct Maia;

impl Maia {
    /// The full system description (Table 1 source).
    pub fn system() -> maia_arch::SystemSpec {
        maia_arch::presets::maia_system()
    }

    /// Render the paper's Table 1.
    pub fn table1() -> String {
        maia_arch::table::render_table1(&Self::system())
    }

    /// Run every experiment and render the complete report.
    pub fn full_report() -> String {
        let mut out = String::new();
        out.push_str("# Maia reproduction — experiment report\n\n");
        for id in all_experiments() {
            let data = run_experiment(id);
            out.push_str(&data.to_markdown());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_phi_peak() {
        assert!(Maia::table1().contains("1008"));
    }

    #[test]
    fn csv_export_writes_every_artifact() {
        let dir = std::env::temp_dir().join("maia-csv-test");
        let paths = write_all_csv(&dir).expect("csv export failed");
        assert_eq!(paths.len(), all_experiments().len());
        for p in &paths {
            let content = std::fs::read_to_string(p).unwrap();
            assert!(content.lines().count() >= 2, "{p:?} nearly empty");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_experiment_runs_and_renders() {
        for id in all_experiments() {
            let data = run_experiment(id);
            assert!(!data.rows.is_empty(), "{} produced no rows", data.id);
            let md = data.to_markdown();
            assert!(md.contains(&data.title), "{} markdown lacks title", data.id);
            let csv = data.to_csv();
            assert_eq!(
                csv.lines().count(),
                data.rows.len() + 1,
                "{} csv row count",
                data.id
            );
        }
    }
}
