//! Seeded exponential-backoff schedules shared by the fault model and
//! the worker supervisor.
//!
//! Two consumers need the *same* arithmetic for very different reasons:
//!
//! * the PR 5 retrying-link fault charges each PCIe-crossing message a
//!   deterministic sequence of modeled timeout rounds (jitter-free —
//!   the golden resilience report pins every injected picosecond), and
//! * the process-backend supervisor waits real wall-clock time between
//!   worker respawns, where jitter is *wanted* (it decorrelates retry
//!   storms) but must stay reproducible per seed so chaos drills are
//!   byte-stable.
//!
//! Both are projections of one [`BackoffPolicy`]: a base delay doubled
//! (or `factor`-ed) per attempt, clamped to `cap_s`, drawn `budget`
//! times, with each delay scaled by a seeded jitter factor in
//! `[1 - jitter, 1]`. `jitter = 0` makes the schedule a pure function
//! of the policy, which is exactly the retrying-link configuration.

/// SplitMix64 step — the same tiny deterministic generator the fault
/// plans use for seed derivation. Good enough for jitter; no external
/// RNG crates are reachable from this environment.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An exponential-backoff schedule: `budget` delays starting at
/// `base_s`, multiplied by `factor` per attempt, clamped to `cap_s`,
/// each scaled by a seeded jitter draw in `[1 - jitter, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// First delay, seconds (>= 0).
    pub base_s: f64,
    /// Per-attempt multiplier (>= 1; 2.0 for classic doubling).
    pub factor: f64,
    /// Upper bound on any single delay, seconds (`f64::INFINITY` to
    /// disable). Applied *before* jitter, so jitter can only shorten.
    pub cap_s: f64,
    /// Jitter fraction in `[0, 1)`: delay `i` is scaled by a seeded
    /// uniform draw from `[1 - jitter, 1]`. Zero means no jitter and a
    /// seed-independent schedule.
    pub jitter: f64,
    /// Number of delays in the schedule (the retry budget).
    pub budget: u32,
}

impl BackoffPolicy {
    /// Jitter-free doubling schedule — the retrying-link shape.
    pub fn doubling(base_s: f64, budget: u32) -> Self {
        BackoffPolicy {
            base_s,
            factor: 2.0,
            cap_s: f64::INFINITY,
            jitter: 0.0,
            budget,
        }
    }

    /// The full schedule for `seed`: exactly `budget` delays, in order.
    /// Deterministic: same policy + same seed → identical `Vec<f64>`
    /// bit-for-bit.
    pub fn schedule(&self, seed: u64) -> Vec<f64> {
        let mut rng = seed;
        let mut delay = self.base_s.max(0.0);
        let factor = self.factor.max(1.0);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let mut out = Vec::with_capacity(self.budget as usize);
        for _ in 0..self.budget {
            let capped = delay.min(self.cap_s);
            let scale = if jitter == 0.0 {
                1.0
            } else {
                // Uniform in [1 - jitter, 1]: never lengthens a delay
                // past the cap, never collapses below (1-jitter)·cap.
                let u = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
                1.0 - jitter * u
            };
            out.push(capped * scale);
            delay *= factor;
        }
        out
    }

    /// Sum of the whole schedule — the worst-case seconds a caller can
    /// spend retrying before the budget is exhausted.
    pub fn total_s(&self, seed: u64) -> f64 {
        self.schedule(seed).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn doubling_matches_retrying_link_shape() {
        // The degraded-stack plan: 2 retries at 50 µs — the schedule the
        // golden resilience report's injected time is derived from.
        let s = BackoffPolicy::doubling(50e-6, 2).schedule(13);
        assert_eq!(s, vec![50e-6, 100e-6]);
        // Jitter-free schedules ignore the seed entirely.
        assert_eq!(s, BackoffPolicy::doubling(50e-6, 2).schedule(9999));
    }

    #[test]
    fn zero_budget_is_empty() {
        assert!(BackoffPolicy::doubling(1.0, 0).schedule(1).is_empty());
    }

    proptest! {
        #[test]
        fn schedule_deterministic_per_seed(
            seed in any::<u64>(),
            base_ms in 1u64..1000,
            budget in 0u32..16,
            jitter_pct in 0u32..100,
        ) {
            let p = BackoffPolicy {
                base_s: base_ms as f64 * 1e-3,
                factor: 2.0,
                cap_s: 2.0,
                jitter: jitter_pct as f64 / 100.0,
                budget,
            };
            let a = p.schedule(seed);
            let b = p.schedule(seed);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn schedule_respects_cap_and_budget(
            seed in any::<u64>(),
            base_ms in 1u64..1000,
            cap_ms in 1u64..500,
            budget in 0u32..16,
            jitter_pct in 0u32..100,
        ) {
            let p = BackoffPolicy {
                base_s: base_ms as f64 * 1e-3,
                factor: 2.0,
                cap_s: cap_ms as f64 * 1e-3,
                jitter: jitter_pct as f64 / 100.0,
                budget,
            };
            let s = p.schedule(seed);
            prop_assert_eq!(s.len(), budget as usize);
            for d in &s {
                prop_assert!(*d >= 0.0, "negative delay {d}");
                prop_assert!(*d <= p.cap_s + f64::EPSILON, "delay {d} above cap {}", p.cap_s);
            }
            // Jitter only shortens: every delay is at least (1-jitter)
            // of its deterministic value.
            let clean = BackoffPolicy { jitter: 0.0, ..p }.schedule(seed);
            for (d, c) in s.iter().zip(&clean) {
                prop_assert!(*d <= *c + f64::EPSILON);
                prop_assert!(*d >= *c * (1.0 - p.jitter) - f64::EPSILON);
            }
        }

        #[test]
        fn jitter_free_schedule_is_seed_invariant(
            seed_a in any::<u64>(),
            seed_b in any::<u64>(),
            base_ms in 1u64..1000,
            budget in 0u32..16,
        ) {
            let p = BackoffPolicy::doubling(base_ms as f64 * 1e-3, budget);
            prop_assert_eq!(p.schedule(seed_a), p.schedule(seed_b));
        }
    }
}
