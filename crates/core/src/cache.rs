//! Memoization of expensive sub-model results shared between experiments.
//!
//! Several figures recompute each other's inputs: Figure 9 (update gain)
//! is a ratio of the Figure 8 bandwidth table, the collective figures
//! replay identical worlds for overlapping (device, ranks, size) points,
//! and the STREAM curve feeds both Figure 4 and the application models.
//! This process-wide cache runs each such sub-model once per key and hands
//! clones to every later caller — including concurrent callers during a
//! parallel sweep, which block on the in-flight computation instead of
//! duplicating it.
//!
//! Keys are plain strings of the form `domain/param/param/...`; values can
//! be any `Clone + Send + Sync` type. Determinism of the underlying models
//! makes cache reuse output-invariant: a hit returns bit-identical data to
//! what a fresh computation would produce.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

type Slot = Arc<dyn Any + Send + Sync>;

static CACHE: OnceLock<Mutex<HashMap<String, Slot>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Active epoch prefix; when set, every key is namespaced under it.
static EPOCH_ACTIVE: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<RwLock<String>> = OnceLock::new();

fn map() -> &'static Mutex<HashMap<String, Slot>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn epoch_slot() -> &'static RwLock<String> {
    EPOCH.get_or_init(|| RwLock::new(String::new()))
}

/// Namespace every subsequent [`memo`] key under `epoch` (`None`
/// restores the default namespace). Used by [`crate::faults`]: a fault
/// activation switches to a fresh epoch so degraded sub-models never
/// collide with (or poison) the nominal cache entries, and deactivation
/// switches back. The default namespace is exactly the pre-existing raw
/// keys, so goldens are unaffected.
pub(crate) fn set_epoch(epoch: Option<&str>) {
    match epoch {
        Some(e) => {
            *epoch_slot().write().unwrap_or_else(PoisonError::into_inner) = e.to_string();
            EPOCH_ACTIVE.store(true, Ordering::Release);
        }
        None => {
            EPOCH_ACTIVE.store(false, Ordering::Release);
            epoch_slot()
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
        }
    }
}

/// Counters describing cache effectiveness since process start (or the
/// last [`clear`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a finished computation.
    pub hits: u64,
    /// Lookups that had to run the computation.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Return the cached value for `key`, computing it with `compute` on the
/// first call. Concurrent callers with the same key block until the one
/// in-flight computation finishes, then share its result.
///
/// # Panics
/// Panics if `key` was previously used with a different value type.
pub fn memo<T, F>(key: &str, compute: F) -> T
where
    T: Clone + Send + Sync + 'static,
    F: FnOnce() -> T,
{
    // Under an active epoch (fault activation) the key is namespaced so
    // degraded results live beside, not instead of, the nominal ones.
    let namespaced;
    let key: &str = if EPOCH_ACTIVE.load(Ordering::Acquire) {
        namespaced = format!(
            "{}::{key}",
            epoch_slot().read().unwrap_or_else(PoisonError::into_inner)
        );
        &namespaced
    } else {
        key
    };
    let slot = {
        let mut m = map().lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            m.entry(key.to_string())
                .or_insert_with(|| Arc::new(OnceLock::<T>::new())),
        )
    };
    let cell = slot
        .downcast_ref::<OnceLock<T>>()
        .unwrap_or_else(|| panic!("cache key {key:?} reused with a different type"));
    if let Some(v) = cell.get() {
        HITS.fetch_add(1, Ordering::Relaxed);
        crate::telemetry::memo_credit(key);
        return v.clone();
    }
    // get_or_init serializes racing initializers; exactly one runs compute.
    // The computation runs inside a per-key telemetry scope so its cost is
    // attributed to the key (deterministic) rather than to whichever
    // experiment won the race; every lookup below then credits that cost
    // to its own scope.
    let mut ran_compute = false;
    let v = cell.get_or_init(|| {
        ran_compute = true;
        crate::telemetry::memo_scope(key, compute)
    });
    if ran_compute {
        MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    let out = v.clone();
    crate::telemetry::memo_credit(key);
    out
}

/// Current hit/miss counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Drop every cached value and reset the counters (for tests).
pub fn clear() {
    map()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn computes_once_then_hits() {
        let calls = AtomicU32::new(0);
        let f = || {
            calls.fetch_add(1, Ordering::SeqCst);
            21 * 2
        };
        assert_eq!(memo("test/computes_once", f), 42);
        assert_eq!(memo("test/computes_once", f), 42);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        assert_eq!(memo("test/key_a", || String::from("a")), "a");
        assert_eq!(memo("test/key_b", || String::from("b")), "b");
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let values: Vec<u64> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    s.spawn(|| {
                        memo("test/concurrent", || {
                            CALLS.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            7u64
                        })
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(values.iter().all(|&v| v == 7));
        assert_eq!(CALLS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let before = stats();
        memo("test/stats_key", || 1u8);
        memo("test/stats_key", || 1u8);
        let after = stats();
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);
        assert!(after.hit_rate() > 0.0);
    }
}
