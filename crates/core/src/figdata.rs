//! The data container produced by every experiment, with Markdown and CSV
//! renderers used by the `fig_*` binaries and EXPERIMENTS.md.

/// One regenerated table or figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Short id matching the paper ("T1", "F4", ... "F27").
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: paper-reported values, calibration remarks,
    /// observed shape checks.
    pub notes: Vec<String>,
}

impl FigureData {
    /// Start an empty figure.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Self {
        crate::telemetry::count("figdata.figures", 1);
        FigureData {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "{}: row width {} vs {} headers",
            self.id,
            cells.len(),
            self.headers.len()
        );
        crate::telemetry::count("figdata.rows", 1);
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Find the numeric value of the cell at `(row_key, column)` where
    /// `row_key` matches the first cell of the row.
    pub fn value(&self, row_key: &str, column: &str) -> Option<f64> {
        let col = self.headers.iter().position(|h| h == column)?;
        let row = self.rows.iter().find(|r| r[0] == row_key)?;
        row[col].parse().ok()
    }

    /// GitHub-flavoured Markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }

    /// JSON rendering: `{id, title, headers, rows, notes}` with rows as
    /// arrays of strings (cells are pre-formatted, like the other emitters).
    pub fn to_json(&self) -> String {
        fn arr(items: &[String]) -> String {
            let cells: Vec<String> = items.iter().map(|s| json_escape(s)).collect();
            format!("[{}]", cells.join(", "))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| format!("    {}", arr(r))).collect();
        format!(
            "{{\n  \"id\": {},\n  \"title\": {},\n  \"headers\": {},\n  \"rows\": [\n{}\n  ],\n  \"notes\": {}\n}}\n",
            json_escape(self.id),
            json_escape(&self.title),
            arr(&self.headers),
            rows.join(",\n"),
            arr(&self.notes),
        )
    }

    /// CSV rendering (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Write every experiment's CSV into `dir` as `<id>.csv`; returns the
/// written paths. Used by plotting pipelines outside this repository.
pub fn write_all_csv(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for id in crate::experiments::all_experiments() {
        let data = crate::experiments::run_experiment(id);
        let path = dir.join(format!("{}.csv", data.id));
        std::fs::write(&path, data.to_csv())?;
        paths.push(path);
    }
    Ok(paths)
}

/// Quote and escape a string for JSON output.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format helper: engineering notation for byte counts.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        let mut f = FigureData::new("F0", "sample", &["size", "value"]);
        f.push_row(vec!["64B".into(), "1.5".into()]);
        f.push_row(vec!["128B".into(), "2.5".into()]);
        f.note("a note");
        f
    }

    #[test]
    fn markdown_has_table_and_notes() {
        let md = sample().to_markdown();
        assert!(md.contains("| size | value |"));
        assert!(md.contains("| 64B | 1.5 |"));
        assert!(md.contains("- a note"));
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("size,value\n"));
        assert!(csv.contains("128B,2.5"));
    }

    #[test]
    fn json_has_every_section_and_escapes() {
        let mut f = sample();
        f.note("quote \" and backslash \\ survive");
        let j = f.to_json();
        assert!(j.contains("\"id\": \"F0\""));
        assert!(j.contains("[\"size\", \"value\"]"));
        assert!(j.contains("[\"64B\", \"1.5\"]"));
        assert!(j.contains("quote \\\" and backslash \\\\ survive"));
    }

    #[test]
    fn value_lookup() {
        let f = sample();
        assert_eq!(f.value("64B", "value"), Some(1.5));
        assert_eq!(f.value("missing", "value"), None);
        assert_eq!(f.value("64B", "nope"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut f = FigureData::new("F0", "x", &["a", "b"]);
        f.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4096), "4KiB");
        assert_eq!(fmt_bytes(4 << 20), "4MiB");
    }
}
