//! The paper-conformance oracle: machine-checkable shape predicates over
//! [`FigureData`].
//!
//! DESIGN.md §6 states the validation targets as prose ("STREAM knees at
//! 118 threads", "Allreduce host-over-Phi 2.2–13.4×", "MG is the only
//! kernel faster on Phi"). This module turns each of those shapes into a
//! composable predicate — [`monotone_nondecreasing`], [`plateau_between`],
//! [`step_up_across`], [`crossover_between`], [`ratio_band`],
//! [`peak_in_range`], [`marked_oom`], … — evaluated against the tables the
//! experiment registry regenerates. Violations are *collected*, not
//! fail-fast, into a [`ConformanceReport`] that names the figure, the
//! predicate, the expected band and the observed values, so a model change
//! that silently bends a published shape fails CI with a readable
//! diagnosis instead of a green run.
//!
//! The per-experiment predicate lists live in
//! [`crate::experiments::conformance::checklist`]; [`check`] runs any
//! subset of experiments through the cached parallel executor and applies
//! its checklist to each regenerated table.

use std::sync::Arc;

use crate::executor::run_experiments_parallel;
use crate::experiments::ExperimentId;
use crate::figdata::FigureData;

/// Parse a table cell as a number. Accepts plain floats and the byte
/// renderings produced by [`crate::figdata::fmt_bytes`] (`64B`, `4KiB`,
/// `16MiB`, `1GiB`). Returns `None` for labels and OOM markers.
pub fn parse_cell(cell: &str) -> Option<f64> {
    let t = cell.trim();
    if let Ok(v) = t.parse::<f64>() {
        return Some(v);
    }
    for (suffix, mult) in [
        ("GiB", (1u64 << 30) as f64),
        ("MiB", (1u64 << 20) as f64),
        ("KiB", 1024.0),
        ("B", 1.0),
    ] {
        if let Some(num) = t.strip_suffix(suffix) {
            return num.trim().parse::<f64>().ok().map(|v| v * mult);
        }
    }
    None
}

/// Compact, deterministic number rendering for report cells.
fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

/// An (x, y) data series extracted from a figure: `y` column against `x`
/// column, restricted to rows whose filter columns match exactly. When any
/// x cell is non-numeric (layout labels like `16x1`), row order stands in
/// for x.
#[derive(Debug, Clone, Default)]
pub struct Series {
    x: &'static str,
    y: &'static str,
    filters: Vec<(&'static str, &'static str)>,
    x_range: Option<(f64, f64)>,
}

/// Start a series of column `y` against column `x`.
pub fn series(x: &'static str, y: &'static str) -> Series {
    Series {
        x,
        y,
        filters: Vec::new(),
        x_range: None,
    }
}

impl Series {
    /// Keep only rows where column `col` equals `value` exactly.
    pub fn only(mut self, col: &'static str, value: &'static str) -> Self {
        self.filters.push((col, value));
        self
    }

    /// Keep only points with `lo <= x <= hi` (after parsing).
    pub fn x_in(mut self, lo: f64, hi: f64) -> Self {
        self.x_range = Some((lo, hi));
        self
    }

    /// Short label used inside predicate names.
    fn label(&self) -> String {
        let mut s = format!("{}({})", self.y, self.x);
        for (c, v) in &self.filters {
            s.push_str(&format!("; {c}={v}"));
        }
        if let Some((lo, hi)) = self.x_range {
            s.push_str(&format!("; x in [{}, {}]", fmt_num(lo), fmt_num(hi)));
        }
        s
    }

    fn col_index(fig: &FigureData, name: &str) -> Result<usize, String> {
        fig.headers
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| format!("column '{name}' missing"))
    }

    fn matching_rows<'a>(&self, fig: &'a FigureData) -> Result<Vec<&'a Vec<String>>, String> {
        let mut idx = Vec::new();
        for (c, _) in &self.filters {
            idx.push(Self::col_index(fig, c)?);
        }
        let rows: Vec<&Vec<String>> = fig
            .rows
            .iter()
            .filter(|r| {
                self.filters
                    .iter()
                    .zip(&idx)
                    .all(|((_, v), &i)| r[i].trim() == *v)
            })
            .collect();
        if rows.is_empty() {
            return Err(format!("no rows match {}", self.label()));
        }
        Ok(rows)
    }

    /// Extract the numeric points, sorted by x. Rows whose y cell is
    /// non-numeric (OOM markers) are skipped; an all-skipped series is an
    /// error so a column silently turning textual cannot pass.
    fn points(&self, fig: &FigureData) -> Result<Vec<(f64, f64)>, String> {
        let xi = Self::col_index(fig, self.x)?;
        let yi = Self::col_index(fig, self.y)?;
        let rows = self.matching_rows(fig)?;
        let xs: Vec<Option<f64>> = rows.iter().map(|r| parse_cell(&r[xi])).collect();
        let by_index = xs.iter().any(Option::is_none);
        let mut pts = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let x = if by_index { i as f64 } else { xs[i].unwrap() };
            if let Some((lo, hi)) = self.x_range {
                if x < lo || x > hi {
                    continue;
                }
            }
            if let Some(y) = parse_cell(&row[yi]) {
                pts.push((x, y));
            }
        }
        if pts.is_empty() {
            return Err(format!("no numeric points in {}", self.label()));
        }
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        Ok(pts)
    }
}

/// How a [`Scalar`] reduces a series to one number.
#[derive(Debug, Clone, Copy)]
pub enum Agg {
    /// Maximum y.
    Max,
    /// Minimum y.
    Min,
    /// y of the first point (smallest x).
    First,
    /// y of the last point (largest x).
    Last,
    /// y at exactly this x.
    At(f64),
}

/// A single number extracted from a figure.
#[derive(Debug, Clone)]
pub enum Scalar {
    /// A reduction over a [`Series`].
    Reduce(Series, Agg),
    /// The value of `col` in the first row matching every filter.
    Cell {
        /// Equality filters `(column, value)` selecting the row.
        filters: Vec<(&'static str, &'static str)>,
        /// Column whose cell is read.
        col: &'static str,
    },
    /// The maximum over several named columns of the first matching row.
    RowMax {
        /// Equality filters `(column, value)` selecting the row.
        filters: Vec<(&'static str, &'static str)>,
        /// Columns scanned for the maximum.
        cols: Vec<&'static str>,
    },
}

/// Shorthand for [`Scalar::Cell`].
pub fn cell(filters: &[(&'static str, &'static str)], col: &'static str) -> Scalar {
    Scalar::Cell {
        filters: filters.to_vec(),
        col,
    }
}

/// Shorthand for [`Scalar::RowMax`].
pub fn row_max(filters: &[(&'static str, &'static str)], cols: &[&'static str]) -> Scalar {
    Scalar::RowMax {
        filters: filters.to_vec(),
        cols: cols.to_vec(),
    }
}

impl Scalar {
    /// Reduce `series` with `agg`.
    pub fn reduce(series: Series, agg: Agg) -> Scalar {
        Scalar::Reduce(series, agg)
    }

    fn label(&self) -> String {
        match self {
            Scalar::Reduce(s, a) => format!("{:?}[{}]", a, s.label()),
            Scalar::Cell { filters, col } => {
                let f: Vec<String> = filters.iter().map(|(c, v)| format!("{c}={v}")).collect();
                format!("{col}[{}]", f.join("; "))
            }
            Scalar::RowMax { filters, cols } => {
                let f: Vec<String> = filters.iter().map(|(c, v)| format!("{c}={v}")).collect();
                format!("max({})[{}]", cols.join(","), f.join("; "))
            }
        }
    }

    fn eval(&self, fig: &FigureData) -> Result<f64, String> {
        match self {
            Scalar::Reduce(s, agg) => {
                let pts = s.points(fig)?;
                Ok(match agg {
                    Agg::Max => pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max),
                    Agg::Min => pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min),
                    Agg::First => pts[0].1,
                    Agg::Last => pts[pts.len() - 1].1,
                    Agg::At(x) => pts
                        .iter()
                        .find(|p| p.0 == *x)
                        .map(|p| p.1)
                        .ok_or_else(|| format!("no point at x={} in {}", fmt_num(*x), s.label()))?,
                })
            }
            Scalar::Cell { filters, col } => {
                let s = Series {
                    x: col,
                    y: col,
                    filters: filters.clone(),
                    x_range: None,
                };
                let ci = Series::col_index(fig, col)?;
                let rows = s.matching_rows(fig)?;
                parse_cell(&rows[0][ci])
                    .ok_or_else(|| format!("cell {} is not numeric: '{}'", self.label(), rows[0][ci]))
            }
            Scalar::RowMax { filters, cols } => {
                let s = Series {
                    x: cols[0],
                    y: cols[0],
                    filters: filters.clone(),
                    x_range: None,
                };
                let rows = s.matching_rows(fig)?;
                let mut best = f64::NEG_INFINITY;
                for c in cols {
                    let ci = Series::col_index(fig, c)?;
                    if let Some(v) = parse_cell(&rows[0][ci]) {
                        best = best.max(v);
                    }
                }
                if best == f64::NEG_INFINITY {
                    return Err(format!("no numeric cell in {}", self.label()));
                }
                Ok(best)
            }
        }
    }
}

/// Outcome of one predicate against one figure.
struct Outcome {
    pass: bool,
    observed: String,
}

impl Outcome {
    fn pass(observed: String) -> Outcome {
        Outcome {
            pass: true,
            observed,
        }
    }
    fn fail(observed: String) -> Outcome {
        Outcome {
            pass: false,
            observed,
        }
    }
    fn of(pass: bool, observed: String) -> Outcome {
        Outcome { pass, observed }
    }
}

type CheckFn = Arc<dyn Fn(&FigureData) -> Outcome + Send + Sync>;

/// One machine-checkable shape predicate bound to expected-band text.
#[derive(Clone)]
pub struct Check {
    /// Predicate name with its arguments, e.g.
    /// `ratio_band[time us(size; config=phi-59 (1t/c)) / time us(size; config=host-16)]`.
    pub name: String,
    /// Human-readable expected band.
    pub expected: String,
    run: CheckFn,
}

impl std::fmt::Debug for Check {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Check")
            .field("name", &self.name)
            .field("expected", &self.expected)
            .finish()
    }
}

impl Check {
    /// Escape hatch for shapes the primitives do not cover: `f` returns
    /// `Ok(observed)` on pass and `Err(observed)` on violation.
    pub fn custom(
        name: impl Into<String>,
        expected: impl Into<String>,
        f: impl Fn(&FigureData) -> Result<String, String> + Send + Sync + 'static,
    ) -> Check {
        Check {
            name: name.into(),
            expected: expected.into(),
            run: Arc::new(move |fig| match f(fig) {
                Ok(obs) => Outcome::pass(obs),
                Err(obs) => Outcome::fail(obs),
            }),
        }
    }

    fn new(name: String, expected: String, run: CheckFn) -> Check {
        Check {
            name,
            expected,
            run,
        }
    }

    /// Evaluate against a figure, tagging the result with its code.
    pub fn eval(&self, figure: &'static str, fig: &FigureData) -> PredicateResult {
        let outcome = (self.run)(fig);
        PredicateResult {
            figure,
            predicate: self.name.clone(),
            expected: self.expected.clone(),
            observed: outcome.observed,
            pass: outcome.pass,
        }
    }
}

fn extract(series: &Series, fig: &FigureData) -> Result<Vec<(f64, f64)>, String> {
    series.points(fig)
}

/// y never decreases as x grows (ties allowed).
pub fn monotone_nondecreasing(s: Series) -> Check {
    monotone(s, true)
}

/// y never increases as x grows (ties allowed).
pub fn monotone_nonincreasing(s: Series) -> Check {
    monotone(s, false)
}

fn monotone(s: Series, increasing: bool) -> Check {
    let dir = if increasing {
        "monotone_nondecreasing"
    } else {
        "monotone_nonincreasing"
    };
    Check::new(
        format!("{dir}[{}]", s.label()),
        format!(
            "y {} as x grows",
            if increasing {
                "never decreases"
            } else {
                "never increases"
            }
        ),
        Arc::new(move |fig| match extract(&s, fig) {
            Err(e) => Outcome::fail(e),
            Ok(pts) => {
                for w in pts.windows(2) {
                    let ok = if increasing {
                        w[1].1 >= w[0].1
                    } else {
                        w[1].1 <= w[0].1
                    };
                    if !ok {
                        return Outcome::fail(format!(
                            "y({}) = {} vs y({}) = {}",
                            fmt_num(w[0].0),
                            fmt_num(w[0].1),
                            fmt_num(w[1].0),
                            fmt_num(w[1].1)
                        ));
                    }
                }
                Outcome::pass(format!(
                    "{} points, y {}..{}",
                    pts.len(),
                    fmt_num(pts[0].1),
                    fmt_num(pts[pts.len() - 1].1)
                ))
            }
        }),
    )
}

/// Every point with `x_lo <= x <= x_hi` lies within `rel_tol` relative
/// spread of the region mean — a cache-level plateau.
pub fn plateau_between(s: Series, x_lo: f64, x_hi: f64, rel_tol: f64) -> Check {
    Check::new(
        format!(
            "plateau_between[{}; x={}..{}]",
            s.label(),
            fmt_num(x_lo),
            fmt_num(x_hi)
        ),
        format!("relative spread <= {rel_tol}"),
        Arc::new(move |fig| match extract(&s, fig) {
            Err(e) => Outcome::fail(e),
            Ok(pts) => {
                let region: Vec<f64> = pts
                    .iter()
                    .filter(|p| p.0 >= x_lo && p.0 <= x_hi)
                    .map(|p| p.1)
                    .collect();
                if region.len() < 2 {
                    return Outcome::fail(format!("{} points in region", region.len()));
                }
                let mean = region.iter().sum::<f64>() / region.len() as f64;
                let lo = region.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = region.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let spread = (hi - lo) / mean;
                Outcome::of(
                    spread <= rel_tol,
                    format!(
                        "y {}..{} over {} points (spread {:.4})",
                        fmt_num(lo),
                        fmt_num(hi),
                        region.len(),
                        spread
                    ),
                )
            }
        }),
    )
}

/// Crossing the boundary steps the curve *up*: the first y past `boundary`
/// is at least `min_factor` times the last y at or before it. This is the
/// machine form of "a plateau ends at the 32 KB / 256 KB / 20 MB cache
/// boundary".
pub fn step_up_across(s: Series, boundary: f64, min_factor: f64) -> Check {
    step_across(s, boundary, min_factor, true)
}

/// Crossing the boundary steps the curve *down* by at least `min_factor`
/// (the STREAM 180→140 GB/s bank-occupancy knee).
pub fn step_down_across(s: Series, boundary: f64, min_factor: f64) -> Check {
    step_across(s, boundary, min_factor, false)
}

fn step_across(s: Series, boundary: f64, min_factor: f64, up: bool) -> Check {
    let dir = if up { "step_up_across" } else { "step_down_across" };
    Check::new(
        format!("{dir}[{}; x={}]", s.label(), fmt_num(boundary)),
        format!(
            "{} by >= {min_factor}x across the boundary",
            if up { "rises" } else { "falls" }
        ),
        Arc::new(move |fig| match extract(&s, fig) {
            Err(e) => Outcome::fail(e),
            Ok(pts) => {
                let below = pts.iter().rev().find(|p| p.0 <= boundary);
                let above = pts.iter().find(|p| p.0 > boundary);
                match (below, above) {
                    (Some(b), Some(a)) => {
                        let factor = if up { a.1 / b.1 } else { b.1 / a.1 };
                        Outcome::of(
                            factor >= min_factor,
                            format!(
                                "y({}) = {} vs y({}) = {} ({:.2}x)",
                                fmt_num(b.0),
                                fmt_num(b.1),
                                fmt_num(a.0),
                                fmt_num(a.1),
                                factor
                            ),
                        )
                    }
                    _ => Outcome::fail("no points on both sides of the boundary".into()),
                }
            }
        }),
    )
}

/// Series `a` starts below `b` (at each series' last point with
/// `x <= x_lo`) and ends above it (at the first point with `x >= x_hi`,
/// falling back to the final point when the series ends earlier). Encodes
/// e.g. "Phi STREAM overtakes the host once enough threads are active".
pub fn crossover_between(a: Series, b: Series, x_lo: f64, x_hi: f64) -> Check {
    Check::new(
        format!(
            "crossover_between[{} x {}; x={}..{}]",
            a.label(),
            b.label(),
            fmt_num(x_lo),
            fmt_num(x_hi)
        ),
        "a < b before the window, a > b after it".into(),
        Arc::new(move |fig| {
            let pa = match extract(&a, fig) {
                Ok(p) => p,
                Err(e) => return Outcome::fail(e),
            };
            let pb = match extract(&b, fig) {
                Ok(p) => p,
                Err(e) => return Outcome::fail(e),
            };
            let at = |pts: &[(f64, f64)], lo: bool| -> Option<f64> {
                if lo {
                    pts.iter().rev().find(|p| p.0 <= x_lo).map(|p| p.1)
                } else {
                    pts.iter()
                        .find(|p| p.0 >= x_hi)
                        .or_else(|| pts.last())
                        .map(|p| p.1)
                }
            };
            match (at(&pa, true), at(&pb, true), at(&pa, false), at(&pb, false)) {
                (Some(a1), Some(b1), Some(a2), Some(b2)) => Outcome::of(
                    a1 < b1 && a2 > b2,
                    format!(
                        "before: {} vs {}; after: {} vs {}",
                        fmt_num(a1),
                        fmt_num(b1),
                        fmt_num(a2),
                        fmt_num(b2)
                    ),
                ),
                _ => Outcome::fail("series empty around the window".into()),
            }
        }),
    )
}

/// At every common x, `a/b` lies in `[lo, hi]` — the paper's
/// "host-over-Phi by N–M×" bands.
pub fn ratio_band(a: Series, b: Series, lo: f64, hi: f64) -> Check {
    Check::new(
        format!("ratio_band[{} / {}]", a.label(), b.label()),
        format!("every ratio in [{}, {}]", fmt_num(lo), fmt_num(hi)),
        Arc::new(move |fig| {
            let pa = match extract(&a, fig) {
                Ok(p) => p,
                Err(e) => return Outcome::fail(e),
            };
            let pb = match extract(&b, fig) {
                Ok(p) => p,
                Err(e) => return Outcome::fail(e),
            };
            let mut ratios = Vec::new();
            for (x, ya) in &pa {
                if let Some((_, yb)) = pb.iter().find(|p| p.0 == *x) {
                    let r = ya / yb;
                    if r < lo || r > hi {
                        return Outcome::fail(format!("ratio {:.3} at x={}", r, fmt_num(*x)));
                    }
                    ratios.push(r);
                }
            }
            if ratios.is_empty() {
                return Outcome::fail("no common x between the series".into());
            }
            let rmin = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
            let rmax = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            Outcome::pass(format!(
                "{} ratios in {:.3}..{:.3}",
                ratios.len(),
                rmin,
                rmax
            ))
        }),
    )
}

/// Every y of the series lies in `[lo, hi]` (combine with
/// [`Series::x_in`] to band one region of a curve).
pub fn within_band(s: Series, lo: f64, hi: f64) -> Check {
    Check::new(
        format!("within_band[{}]", s.label()),
        format!("every y in [{}, {}]", fmt_num(lo), fmt_num(hi)),
        Arc::new(move |fig| match extract(&s, fig) {
            Err(e) => Outcome::fail(e),
            Ok(pts) => {
                for (x, y) in &pts {
                    if *y < lo || *y > hi {
                        return Outcome::fail(format!("y({}) = {}", fmt_num(*x), fmt_num(*y)));
                    }
                }
                let ymin = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
                let ymax = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
                Outcome::pass(format!(
                    "{} points, y {}..{}",
                    pts.len(),
                    fmt_num(ymin),
                    fmt_num(ymax)
                ))
            }
        }),
    )
}

/// The series attains its maximum at some `x` in `[x_lo, x_hi]` (first
/// maximum on ties) — "Phi STREAM peaks at 59–118 threads".
pub fn peak_in_range(s: Series, x_lo: f64, x_hi: f64) -> Check {
    Check::new(
        format!(
            "peak_in_range[{}; x={}..{}]",
            s.label(),
            fmt_num(x_lo),
            fmt_num(x_hi)
        ),
        "argmax(y) inside the window".into(),
        Arc::new(move |fig| match extract(&s, fig) {
            Err(e) => Outcome::fail(e),
            Ok(pts) => {
                let (px, py) = pts
                    .iter()
                    .fold((f64::NAN, f64::NEG_INFINITY), |(bx, by), &(x, y)| {
                        if y > by {
                            (x, y)
                        } else {
                            (bx, by)
                        }
                    });
                Outcome::of(
                    px >= x_lo && px <= x_hi,
                    format!("peak y = {} at x = {}", fmt_num(py), fmt_num(px)),
                )
            }
        }),
    )
}

/// Every row matching the filters carries an `OOM` marker in `col` — the
/// paper's out-of-memory failures must stay failures.
pub fn marked_oom(filters: &[(&'static str, &'static str)], col: &'static str) -> Check {
    oom(filters, col, true)
}

/// Every row matching the filters is numeric in `col` (did *not* hit OOM).
pub fn not_oom(filters: &[(&'static str, &'static str)], col: &'static str) -> Check {
    oom(filters, col, false)
}

fn oom(filters: &[(&'static str, &'static str)], col: &'static str, want_oom: bool) -> Check {
    let sel = Series {
        x: col,
        y: col,
        filters: filters.to_vec(),
        x_range: None,
    };
    let name = if want_oom { "marked_oom" } else { "not_oom" };
    Check::new(
        format!("{name}[{}]", sel.label()),
        if want_oom {
            "every matching row carries an OOM marker"
        } else {
            "every matching row is numeric"
        }
        .into(),
        Arc::new(move |fig| {
            let ci = match Series::col_index(fig, col) {
                Ok(i) => i,
                Err(e) => return Outcome::fail(e),
            };
            let rows = match sel.matching_rows(fig) {
                Ok(r) => r,
                Err(e) => return Outcome::fail(e),
            };
            for r in &rows {
                let is_oom = r[ci].contains("OOM");
                if is_oom != want_oom {
                    return Outcome::fail(format!("cell '{}'", r[ci]));
                }
            }
            Outcome::pass(format!("{} row(s)", rows.len()))
        }),
    )
}

/// The scalar lies in `[lo, hi]`.
pub fn scalar_band(sc: Scalar, lo: f64, hi: f64) -> Check {
    Check::new(
        format!("scalar_band[{}]", sc.label()),
        format!("in [{}, {}]", fmt_num(lo), fmt_num(hi)),
        Arc::new(move |fig| match sc.eval(fig) {
            Err(e) => Outcome::fail(e),
            Ok(v) => Outcome::of(v >= lo && v <= hi, fmt_num(v)),
        }),
    )
}

/// The ratio of two scalars lies in `[lo, hi]`.
pub fn scalar_ratio_band(a: Scalar, b: Scalar, lo: f64, hi: f64) -> Check {
    Check::new(
        format!("ratio_band[{} / {}]", a.label(), b.label()),
        format!("in [{}, {}]", fmt_num(lo), fmt_num(hi)),
        Arc::new(move |fig| match (a.eval(fig), b.eval(fig)) {
            (Ok(va), Ok(vb)) => {
                let r = va / vb;
                Outcome::of(
                    r >= lo && r <= hi,
                    format!("{} / {} = {:.3}", fmt_num(va), fmt_num(vb), r),
                )
            }
            (Err(e), _) | (_, Err(e)) => Outcome::fail(e),
        }),
    )
}

/// The named scalars are strictly decreasing in the given order —
/// "Reduction > PARALLEL FOR > … > ATOMIC", "whole > subroutine > loop".
pub fn ordered_desc(what: &str, items: Vec<(&'static str, Scalar)>) -> Check {
    let order: Vec<&str> = items.iter().map(|(n, _)| *n).collect();
    Check::new(
        format!("ordered_desc[{what}]"),
        format!("strictly {}", order.join(" > ")),
        Arc::new(move |fig| {
            let mut vals = Vec::new();
            for (n, sc) in &items {
                match sc.eval(fig) {
                    Ok(v) => vals.push((*n, v)),
                    Err(e) => return Outcome::fail(e),
                }
            }
            let obs: Vec<String> = vals
                .iter()
                .map(|(n, v)| format!("{n} = {}", fmt_num(*v)))
                .collect();
            for w in vals.windows(2) {
                if w[0].1 <= w[1].1 {
                    return Outcome::fail(obs.join(", "));
                }
            }
            Outcome::pass(obs.join(", "))
        }),
    )
}

/// Which extremum [`best_label`] looks for.
#[derive(Debug, Clone, Copy)]
pub enum Best {
    /// The row minimizing `y_col` ("fastest layout").
    Min,
    /// The row maximizing `y_col`.
    Max,
}

/// Among the filtered rows, the one with the extreme `y_col` carries
/// `expected` in `label_col` — "the host's best OVERFLOW layout is 16x1".
pub fn best_label(
    filters: &[(&'static str, &'static str)],
    y_col: &'static str,
    best: Best,
    label_col: &'static str,
    expected: &'static str,
) -> Check {
    let sel = Series {
        x: y_col,
        y: y_col,
        filters: filters.to_vec(),
        x_range: None,
    };
    Check::new(
        format!("best_label[{:?} {}; {}]", best, y_col, sel.label()),
        format!("{label_col} = {expected}"),
        Arc::new(move |fig| {
            let yi = match Series::col_index(fig, y_col) {
                Ok(i) => i,
                Err(e) => return Outcome::fail(e),
            };
            let li = match Series::col_index(fig, label_col) {
                Ok(i) => i,
                Err(e) => return Outcome::fail(e),
            };
            let rows = match sel.matching_rows(fig) {
                Ok(r) => r,
                Err(e) => return Outcome::fail(e),
            };
            let mut best_row: Option<(&Vec<String>, f64)> = None;
            for r in rows {
                if let Some(v) = parse_cell(&r[yi]) {
                    let better = match (&best_row, best) {
                        (None, _) => true,
                        (Some((_, bv)), Best::Min) => v < *bv,
                        (Some((_, bv)), Best::Max) => v > *bv,
                    };
                    if better {
                        best_row = Some((r, v));
                    }
                }
            }
            match best_row {
                None => Outcome::fail("no numeric rows".into()),
                Some((r, v)) => Outcome::of(
                    r[li] == expected,
                    format!("{label_col} = {} (y = {})", r[li], fmt_num(v)),
                ),
            }
        }),
    )
}

/// Among the named columns of the first matching row, the maximum sits in
/// `expected_col` — "MG's best Phi thread count is 177 (3 per core)".
pub fn row_argmax(
    filters: &[(&'static str, &'static str)],
    cols: &[&'static str],
    expected_col: &'static str,
) -> Check {
    let sel = Series {
        x: cols[0],
        y: cols[0],
        filters: filters.to_vec(),
        x_range: None,
    };
    let cols: Vec<&'static str> = cols.to_vec();
    Check::new(
        format!("row_argmax[{}; {}]", cols.join(","), sel.label()),
        format!("max in column {expected_col}"),
        Arc::new(move |fig| {
            let rows = match sel.matching_rows(fig) {
                Ok(r) => r,
                Err(e) => return Outcome::fail(e),
            };
            let mut best: Option<(&'static str, f64)> = None;
            for c in &cols {
                let ci = match Series::col_index(fig, c) {
                    Ok(i) => i,
                    Err(e) => return Outcome::fail(e),
                };
                if let Some(v) = parse_cell(&rows[0][ci]) {
                    if best.is_none_or(|(_, bv)| v > bv) {
                        best = Some((c, v));
                    }
                }
            }
            match best {
                None => Outcome::fail("no numeric cell".into()),
                Some((c, v)) => Outcome::of(
                    c == expected_col,
                    format!("max {} in column {c}", fmt_num(v)),
                ),
            }
        }),
    )
}

/// Some cell of the table contains the substring — for prerendered tables
/// like Table 1 where the derived constants must survive.
pub fn contains(needle: &'static str) -> Check {
    Check::new(
        format!("contains[{needle}]"),
        "some cell contains the text".into(),
        Arc::new(move |fig| {
            let hit = fig
                .rows
                .iter()
                .any(|r| r.iter().any(|c| c.contains(needle)));
            Outcome::of(
                hit,
                if hit {
                    format!("found '{needle}'")
                } else {
                    format!("'{needle}' absent")
                },
            )
        }),
    )
}

/// One predicate's verdict against one figure.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateResult {
    /// Canonical experiment code (`"F04"`).
    pub figure: &'static str,
    /// Predicate name with its arguments.
    pub predicate: String,
    /// Expected band, as prose.
    pub expected: String,
    /// What the table actually showed.
    pub observed: String,
    /// Whether the shape held.
    pub pass: bool,
}

/// Collected verdicts of a conformance run — violations are gathered, not
/// fail-fast, so one report names every bent shape at once.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// Every predicate evaluated, in registry order.
    pub results: Vec<PredicateResult>,
}

impl ConformanceReport {
    /// The failing predicates.
    pub fn violations(&self) -> Vec<&PredicateResult> {
        self.results.iter().filter(|r| !r.pass).collect()
    }

    /// True when every predicate held.
    pub fn is_conformant(&self) -> bool {
        self.results.iter().all(|r| r.pass)
    }

    /// Number of distinct figures checked.
    pub fn figures(&self) -> usize {
        let mut codes: Vec<&str> = self.results.iter().map(|r| r.figure).collect();
        codes.dedup();
        codes.len()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} predicates over {} artifacts; {} violation(s)",
            self.results.len(),
            self.figures(),
            self.violations().len()
        )
    }

    /// GitHub-flavoured Markdown report (also the golden-file format).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Conformance — paper-shape oracle\n\n");
        out.push_str(&format!("{}.\n\n", self.summary()));
        out.push_str("| figure | predicate | expected | observed | status |\n");
        out.push_str("|---|---|---|---|---|\n");
        for r in &self.results {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                r.figure,
                r.predicate,
                r.expected,
                r.observed,
                if r.pass { "ok" } else { "FAIL" }
            ));
        }
        out
    }

    /// JSON report for machine consumers.
    pub fn to_json(&self) -> String {
        use crate::figdata::json_escape;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"predicates\": {},\n", self.results.len()));
        out.push_str(&format!("  \"figures\": {},\n", self.figures()));
        out.push_str(&format!("  \"violations\": {},\n", self.violations().len()));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"figure\": {}, \"predicate\": {}, \"expected\": {}, \"observed\": {}, \"pass\": {} }}{}\n",
                json_escape(r.figure),
                json_escape(&r.predicate),
                json_escape(&r.expected),
                json_escape(&r.observed),
                r.pass,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Evaluate a checklist against one regenerated figure.
pub fn check_figure(
    figure: &'static str,
    fig: &FigureData,
    checks: &[Check],
) -> Vec<PredicateResult> {
    checks.iter().map(|c| c.eval(figure, fig)).collect()
}

/// Run `ids` through the cached parallel executor and apply each
/// experiment's checklist to its regenerated table.
pub fn check(ids: &[ExperimentId], jobs: usize) -> ConformanceReport {
    check_sweep(&run_experiments_parallel(ids, jobs))
}

/// Apply each experiment's checklist to the tables of an already-run
/// sweep (lets the CLI reuse one sweep for both the report and the
/// `--metrics` profile).
pub fn check_sweep(sweep: &crate::SweepReport) -> ConformanceReport {
    let mut results = Vec::new();
    for run in &sweep.runs {
        let checks = crate::experiments::conformance::checklist(run.id);
        results.extend(check_figure(run.id.meta().code, &run.data, &checks));
    }
    ConformanceReport { results }
}

/// [`check`] over an [`crate::ExperimentSelection`] — the form the CLI
/// uses, so every subcommand resolves its experiment set the same way.
pub fn check_selection(
    selection: &crate::ExperimentSelection,
    jobs: usize,
) -> ConformanceReport {
    check(&selection.resolve(), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureData {
        let mut f = FigureData::new("F0", "synthetic", &["device", "size", "bw"]);
        for (d, s, b) in [
            ("host", "1KiB", "1.0"),
            ("host", "4KiB", "2.0"),
            ("host", "16KiB", "2.0"),
            ("host", "64KiB", "8.0"),
            ("phi", "1KiB", "0.5"),
            ("phi", "4KiB", "1.0"),
            ("phi", "16KiB", "1.0"),
            ("phi", "64KiB", "OOM (too big)"),
        ] {
            f.push_row(vec![d.into(), s.into(), b.into()]);
        }
        f
    }

    #[test]
    fn cell_parsing_handles_bytes_and_text() {
        assert_eq!(parse_cell("2.5"), Some(2.5));
        assert_eq!(parse_cell("4KiB"), Some(4096.0));
        assert_eq!(parse_cell("16MiB"), Some((16u64 << 20) as f64));
        assert_eq!(parse_cell("64B"), Some(64.0));
        assert_eq!(parse_cell("OOM (1.4 GB needed)"), None);
        assert_eq!(parse_cell("16x1"), None);
    }

    #[test]
    fn primitives_pass_on_matching_shapes() {
        let f = fig();
        let host = || series("size", "bw").only("device", "host");
        let phi = || series("size", "bw").only("device", "phi");
        let checks = vec![
            monotone_nondecreasing(host()),
            plateau_between(host(), 4096.0, 16384.0, 0.01),
            step_up_across(host(), 16384.0, 3.0),
            ratio_band(host(), phi(), 1.9, 2.1),
            within_band(host().x_in(4096.0, 16384.0), 1.9, 2.1),
            peak_in_range(host(), 65536.0, 65536.0),
            marked_oom(&[("device", "phi"), ("size", "64KiB")], "bw"),
            not_oom(&[("device", "host")], "bw"),
            scalar_band(cell(&[("device", "host"), ("size", "64KiB")], "bw"), 8.0, 8.0),
            ordered_desc(
                "host sizes",
                vec![
                    ("64KiB", cell(&[("device", "host"), ("size", "64KiB")], "bw")),
                    ("4KiB", cell(&[("device", "host"), ("size", "4KiB")], "bw")),
                    ("1KiB", cell(&[("device", "host"), ("size", "1KiB")], "bw")),
                ],
            ),
            best_label(&[("device", "host")], "bw", Best::Max, "size", "64KiB"),
        ];
        for r in check_figure("F0", &f, &checks) {
            assert!(r.pass, "{}: {} (expected {})", r.predicate, r.observed, r.expected);
        }
    }

    #[test]
    fn violations_name_the_offending_values() {
        let f = fig();
        let phi = series("size", "bw").only("device", "phi");
        // The phi series plateaus at 1.0; demanding a step up must fail
        // and the observed string must carry the actual values.
        let r = step_up_across(phi, 4096.0, 2.0).eval("F0", &f);
        assert!(!r.pass);
        assert!(r.observed.contains("1"), "observed: {}", r.observed);
    }

    #[test]
    fn missing_columns_fail_instead_of_panicking() {
        let f = fig();
        let r = monotone_nondecreasing(series("size", "nope")).eval("F0", &f);
        assert!(!r.pass);
        assert!(r.observed.contains("missing"));
        let r = scalar_band(cell(&[("device", "none")], "bw"), 0.0, 1.0).eval("F0", &f);
        assert!(!r.pass);
    }

    #[test]
    fn oom_only_rows_cannot_sneak_through_numeric_predicates() {
        let mut f = FigureData::new("F0", "all oom", &["k", "v"]);
        f.push_row(vec!["a".into(), "OOM".into()]);
        let r = monotone_nondecreasing(series("k", "v")).eval("F0", &f);
        assert!(!r.pass, "an all-OOM series must be a violation");
    }

    #[test]
    fn report_collects_and_renders() {
        let f = fig();
        let checks = vec![
            monotone_nondecreasing(series("size", "bw").only("device", "host")),
            within_band(series("size", "bw").only("device", "host"), 100.0, 200.0),
        ];
        let report = ConformanceReport {
            results: check_figure("F0", &f, &checks),
        };
        assert!(!report.is_conformant());
        assert_eq!(report.violations().len(), 1);
        assert_eq!(report.figures(), 1);
        let md = report.to_markdown();
        assert!(md.contains("| F0 |"));
        assert!(md.contains("FAIL"));
        assert!(md.contains("1 violation(s)"));
        let json = report.to_json();
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"pass\": false"));
    }
}
