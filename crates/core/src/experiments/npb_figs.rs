//! NPB experiments: Figures 19 (OpenMP), 20 (MPI), 24 (MG collapse) and
//! 25–27 (MG offload studies).

use maia_arch::Device;
use maia_modes::{OffloadPlan, OffloadRegion, PerfModel};
use maia_mpi::transport::intra_device_params;
use maia_mpi::MemoryBudget;
use maia_npb::descriptors::{
    class_c_profile, class_c_profile_mpi, memory_required_bytes, mg_profile_collapsed,
    mg_profile_uncollapsed, mpi_comm_profile,
};
use maia_npb::{Benchmark, Class};

use crate::figdata::FigureData;

const PHI_THREADS: [u32; 4] = [59, 118, 177, 236];

/// Figure 19: OpenMP NPB rates on host (16T) and Phi (59–236T).
pub fn fig19_npb_omp() -> FigureData {
    let host = PerfModel::host();
    let phi = PerfModel::phi();
    let mut f = FigureData::new(
        "F19",
        "NPB OpenMP Class C performance (Gflop/s)",
        &["benchmark", "host-16", "phi-59", "phi-118", "phi-177", "phi-236"],
    );
    for b in Benchmark::FIGURE19 {
        let k = class_c_profile(b);
        let mut row = vec![b.label().to_string(), format!("{:.1}", host.gflops(&k, 16))];
        for t in PHI_THREADS {
            row.push(format!("{:.1}", phi.gflops(&k, t)));
        }
        f.push_row(row);
    }
    f.note("Paper: host beats the best Phi for every benchmark except MG; BT highest and CG lowest on the Phi; 3 threads/core generally best.");
    f
}

/// Modeled run time of one MPI NPB configuration.
fn mpi_run_time_s(bench: Benchmark, device: Device, ranks: usize) -> Result<f64, String> {
    // Memory gate: the whole problem must fit the device.
    let budget = MemoryBudget::for_device(device);
    let need = memory_required_bytes(bench, Class::C);
    if need > budget.capacity - budget.reserve {
        return Err(format!("OOM: needs {:.1} GB", need as f64 / 1e9));
    }
    let k = class_c_profile_mpi(bench);
    let model = match device {
        Device::Host => PerfModel::host(),
        _ => PerfModel::phi(),
    };
    let compute = model.unit_time_s(&k, ranks as u32);
    let tpc = match device {
        Device::Host => 1 + (ranks > 16) as u32,
        _ => (ranks as u32).div_ceil(59).min(4),
    };
    let (lat_us, bw_gbs) = intra_device_params(device, tpc);
    let (p2p, msgs, a2a) = mpi_comm_profile(bench, ranks);
    let comm = msgs as f64 * lat_us * 1e-6
        + p2p as f64 / (bw_gbs * 1e9)
        // All-to-all sees additional incast contention.
        + a2a as f64 / (bw_gbs * 1e9 * 0.5);
    Ok(compute + comm)
}

/// Figure 20: MPI NPB rates.
pub fn fig20_npb_mpi() -> FigureData {
    let mut f = FigureData::new(
        "F20",
        "NPB MPI Class C performance (Gflop/s)",
        &["benchmark", "config", "Gflop/s"],
    );
    for b in Benchmark::FIGURE19 {
        let flops = class_c_profile(b).flops;
        let mut cell = |label: String, device, ranks| {
            let value = match mpi_run_time_s(b, device, ranks) {
                Ok(t) => format!("{:.1}", flops / t / 1e9),
                Err(e) => e,
            };
            f.push_row(vec![b.label().to_string(), label, value]);
        };
        cell("host-16".into(), Device::Host, 16);
        let ranks: &[usize] = match b {
            Benchmark::Bt | Benchmark::Sp => &[64, 121, 169, 225],
            _ => &[64, 128],
        };
        for &r in ranks {
            cell(format!("phi-{r}"), Device::Phi0, r);
        }
    }
    f.note("Paper: FT cannot run on the Phi (needs ~10 GB of the 8 GB card); BT is best at 4 ranks/core (225), unlike the OpenMP version.");
    f
}

/// Figure 24: the MG loop-collapse study.
pub fn fig24_mg_collapse() -> FigureData {
    let phi = PerfModel::phi();
    let host = PerfModel::host();
    let plain = mg_profile_uncollapsed();
    let coll = mg_profile_collapsed();
    let mut f = FigureData::new(
        "F24",
        "MG: OpenMP loop collapse gain",
        &["config", "original Gflop/s", "collapsed Gflop/s", "gain %"],
    );
    let mut row = |label: String, model: &PerfModel, threads: u32| {
        let a = model.gflops(&plain, threads);
        // The host pays a ~1% index-arithmetic cost for collapse; the
        // paper measures exactly that.
        let host_cost = if matches!(model.target.proc.kind, maia_arch::ProcessorKind::SandyBridge)
        {
            0.99
        } else {
            1.0
        };
        let b = model.gflops(&coll, threads) * host_cost;
        f.push_row(vec![
            label,
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{:.0}", (b / a - 1.0) * 100.0),
        ]);
    };
    row("host-16".into(), &host, 16);
    for t in PHI_THREADS {
        row(format!("phi-{t}"), &phi, t);
    }
    // The OS-core comparison the paper makes alongside: 60th core hurts.
    for (good, bad) in [(59u32, 60u32), (118, 120), (177, 180), (236, 240)] {
        let g = phi.gflops(&coll, good);
        let b = phi.gflops(&coll, bad);
        f.push_row(vec![
            format!("phi-{good} vs phi-{bad}"),
            format!("{g:.1}"),
            format!("{b:.1}"),
            format!("{:.0}", (b / g - 1.0) * 100.0),
        ]);
    }
    f.note("Paper: collapse gains 25-28% on the Phi, loses ~1% on the host; using the 60th (OS) core is always slower.");
    f
}

/// The three MG offload plans of Section 6.9.1.4 (granularity study).
pub fn mg_offload_plans() -> Vec<OffloadPlan> {
    let full = mg_profile_collapsed();
    let gb = |x: f64| (x * 1e9) as u64;
    // Class C fields: u, v, r at 512^3 x 8 B ≈ 1.07 GB each.
    let whole = OffloadPlan {
        name: "offload-whole".into(),
        regions: vec![OffloadRegion {
            name: "everything".into(),
            kernel: full.clone(),
            input_bytes: gb(2.15), // u and v shipped once
            output_bytes: gb(1.07),
            invocations: 1,
        }],
        host_kernel: None,
    };
    let mut per_call = full.clone();
    per_call.flops /= 160.0;
    per_call.dram_bytes /= 160.0;
    let subroutine = OffloadPlan {
        name: "offload-resid".into(),
        regions: vec![OffloadRegion {
            name: "resid".into(),
            kernel: per_call.clone(),
            input_bytes: gb(0.25),
            output_bytes: gb(0.12),
            invocations: 160,
        }],
        host_kernel: None,
    };
    let mut per_loop = full.clone();
    per_loop.flops /= 1600.0;
    per_loop.dram_bytes /= 1600.0;
    let one_loop = OffloadPlan {
        name: "offload-loop".into(),
        regions: vec![OffloadRegion {
            name: "resid-inner-loop".into(),
            kernel: per_loop,
            input_bytes: gb(0.08),
            output_bytes: gb(0.04),
            invocations: 1600,
        }],
        host_kernel: None,
    };
    vec![whole, subroutine, one_loop]
}

/// Figure 25: MG in native host, native Phi, and the three offload modes.
pub fn fig25_mg_modes() -> FigureData {
    let k = mg_profile_collapsed();
    let host = PerfModel::host();
    let phi = PerfModel::phi();
    let mut f = FigureData::new(
        "F25",
        "MG Class C in three modes (Gflop/s)",
        &["mode", "threads", "Gflop/s"],
    );
    f.push_row(vec![
        "native-host".into(),
        "16".into(),
        format!("{:.1}", host.gflops(&k, 16)),
    ]);
    f.push_row(vec![
        "native-host (HT)".into(),
        "32".into(),
        format!("{:.1}", host.gflops(&k, 32)),
    ]);
    for t in PHI_THREADS {
        f.push_row(vec![
            "native-phi".into(),
            t.to_string(),
            format!("{:.1}", phi.gflops(&k, t)),
        ]);
    }
    for plan in mg_offload_plans() {
        let rep = plan.report(Device::Phi0, 177, 16);
        f.push_row(vec![
            plan.name.clone(),
            "177".into(),
            format!("{:.1}", k.flops / rep.total_s() / 1e9),
        ]);
    }
    f.note("Paper: native host 23.5 Gflop/s (16T; HT at 32T is 6% lower), native Phi 29.9 (177T); every offload variant is slower, whole > subroutine > loop.");
    f
}

/// Figure 26: overhead breakdown of the three offload variants.
pub fn fig26_offload_overhead() -> FigureData {
    let mut f = FigureData::new(
        "F26",
        "Offload overhead breakdown (s)",
        &["variant", "host-side", "pcie", "phi-side", "total overhead"],
    );
    for plan in mg_offload_plans() {
        let r = plan.report(Device::Phi0, 177, 16);
        f.push_row(vec![
            r.plan_name.clone(),
            format!("{:.2}", r.host_side_s),
            format!("{:.2}", r.pcie_s),
            format!("{:.2}", r.phi_side_s),
            format!("{:.2}", r.overhead_s()),
        ]);
    }
    f.note("Paper: offloading one loop has the highest overhead; offloading the whole computation the least.");
    f
}

/// Figure 27: invocation counts and data volume of the three variants.
pub fn fig27_offload_cost() -> FigureData {
    let mut f = FigureData::new(
        "F27",
        "Offload invocations and transferred data",
        &["variant", "invocations", "GB transferred"],
    );
    for plan in mg_offload_plans() {
        let r = plan.report(Device::Phi0, 177, 16);
        f.push_row(vec![
            r.plan_name.clone(),
            r.invocations.to_string(),
            format!("{:.1}", r.bytes_transferred as f64 / 1e9),
        ]);
    }
    f.note("Paper: cost is maximal when offloading one OpenMP loop and minimal for the whole computation.");
    f
}

/// A1 (beyond paper): distributed NPB kernels executed for real over the
/// simulated fabric — virtual wall times per device.
pub fn a1_npb_mpi_measured() -> FigureData {
    use maia_mpi::WorldSpec;
    use maia_npb::mpi_npb;
    let mut f = FigureData::new(
        "A1",
        "Distributed NPB (small problems, real numerics) on the simulated fabric",
        &["benchmark", "ranks", "host ms", "phi0 ms", "phi/host"],
    );
    let ranks = 8usize;
    let host = WorldSpec::all_on(Device::Host, ranks);
    let phi = WorldSpec::all_on(Device::Phi0, ranks);
    let mut row = |name: &str, h: f64, p: f64| {
        f.push_row(vec![
            name.into(),
            ranks.to_string(),
            format!("{:.3}", h * 1e3),
            format!("{:.3}", p * 1e3),
            format!("{:.1}", p / h),
        ]);
    };
    row(
        "EP (2^18 pairs)",
        mpi_npb::ep_mpi(18, &host).wall_s,
        mpi_npb::ep_mpi(18, &phi).wall_s,
    );
    row(
        "CG (n=600)",
        mpi_npb::cg_mpi(600, 5, 3, 10.0, &host).wall_s,
        mpi_npb::cg_mpi(600, 5, 3, 10.0, &phi).wall_s,
    );
    row(
        "FT (16^3)",
        mpi_npb::ft_mpi(16, 16, 16, &host).wall_s,
        mpi_npb::ft_mpi(16, 16, 16, &phi).wall_s,
    );
    row(
        "IS (2^14 keys)",
        mpi_npb::is_mpi(14, 10, &host).wall_s,
        mpi_npb::is_mpi(14, 10, &phi).wall_s,
    );
    f.note("Results are bit-verified against the shared-memory kernels; only the virtual communication time differs between devices.");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig20_ft_is_oom_on_phi_only() {
        let f = fig20_npb_mpi();
        let ft_phi: Vec<_> = f
            .rows
            .iter()
            .filter(|r| r[0] == "FT" && r[1].starts_with("phi"))
            .collect();
        assert!(!ft_phi.is_empty());
        for r in &ft_phi {
            assert!(r[2].starts_with("OOM"), "FT on Phi must OOM: {:?}", r);
        }
        let ft_host = f
            .rows
            .iter()
            .find(|r| r[0] == "FT" && r[1] == "host-16")
            .unwrap();
        assert!(!ft_host[2].starts_with("OOM"));
    }

    #[test]
    fn fig20_bt_best_at_225_ranks() {
        let f = fig20_npb_mpi();
        let bt: Vec<(String, f64)> = f
            .rows
            .iter()
            .filter(|r| r[0] == "BT" && r[1].starts_with("phi"))
            .map(|r| (r[1].clone(), r[2].parse().unwrap()))
            .collect();
        let best = bt
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(best.0, "phi-225", "BT best config: {bt:?}");
    }

    #[test]
    fn fig20_host_beats_phi() {
        let f = fig20_npb_mpi();
        for b in ["BT", "SP", "LU", "CG"] {
            let host: f64 = f
                .rows
                .iter()
                .find(|r| r[0] == b && r[1] == "host-16")
                .unwrap()[2]
                .parse()
                .unwrap();
            let best_phi = f
                .rows
                .iter()
                .filter(|r| r[0] == b && r[1].starts_with("phi"))
                .filter_map(|r| r[2].parse::<f64>().ok())
                .fold(0.0f64, f64::max);
            assert!(host > best_phi, "{b}: host {host} vs phi {best_phi}");
        }
    }

    #[test]
    fn fig24_collapse_gains() {
        let f = fig24_mg_collapse();
        for t in ["phi-177", "phi-236"] {
            let row = f.rows.iter().find(|r| r[0] == t).unwrap();
            let gain: f64 = row[3].parse().unwrap();
            assert!((5.0..45.0).contains(&gain), "{t} gain {gain}%");
        }
        let host = f.rows.iter().find(|r| r[0] == "host-16").unwrap();
        let host_gain: f64 = host[3].parse().unwrap();
        assert!(host_gain <= 0.0, "host collapse gain {host_gain}%");
    }

    #[test]
    fn fig25_mode_ordering() {
        let f = fig25_mg_modes();
        let v = |mode: &str| -> f64 {
            f.rows
                .iter()
                .filter(|r| r[0] == mode)
                .map(|r| r[2].parse::<f64>().unwrap())
                .fold(0.0f64, f64::max)
        };
        let native_phi = v("native-phi");
        let native_host = v("native-host");
        let whole = v("offload-whole");
        let sub = v("offload-resid");
        let lp = v("offload-loop");
        assert!(native_phi > native_host, "{native_phi} vs {native_host}");
        assert!(native_host > whole, "host {native_host} vs whole {whole}");
        assert!(whole > sub && sub > lp, "{whole} {sub} {lp}");
        // HT row is a few percent below the 16-thread row.
        let ht = v("native-host (HT)");
        assert!(ht < native_host && ht > 0.85 * native_host);
    }

    #[test]
    fn fig26_fig27_orderings() {
        let f26 = fig26_offload_overhead();
        let ov = |name: &str| {
            f26.rows.iter().find(|r| r[0] == name).unwrap()[4]
                .parse::<f64>()
                .unwrap()
        };
        assert!(ov("offload-loop") > ov("offload-resid"));
        assert!(ov("offload-resid") > ov("offload-whole"));

        let f27 = fig27_offload_cost();
        let gb = |name: &str| {
            f27.rows.iter().find(|r| r[0] == name).unwrap()[2]
                .parse::<f64>()
                .unwrap()
        };
        assert!(gb("offload-loop") > gb("offload-resid"));
        assert!(gb("offload-resid") > gb("offload-whole"));
    }
}
