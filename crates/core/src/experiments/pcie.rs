//! PCIe experiments: Figures 7–9 (MPI over PCIe under the two software
//! stacks) and 18 (offload DMA bandwidth).

use maia_arch::Device;
use maia_interconnect::{NodePath, PcieModel, SoftwareStack};
use maia_mpi::bench::{pcie_bandwidth, pcie_latency_us, P2pPoint};

use crate::cache;
use crate::figdata::{fmt_bytes, FigureData};
use crate::telemetry;

/// Memoized Figure 7 ping-pong: one simulated world per (stack, path).
/// The modeled round-trip time is attributed to the `pcie` subsystem of
/// the key's telemetry scope (and credited to every consumer).
fn cached_latency_us(stack: SoftwareStack, path: NodePath) -> f64 {
    let key = format!("pcie_latency/{stack:?}/{path:?}");
    cache::memo(&key, || {
        let us = pcie_latency_us(stack, path);
        telemetry::add_model_vt("pcie", us * 1e3);
        us
    })
}

/// Memoized Figure 8 bandwidth point: Figure 9 divides the same table, so
/// the 42 underlying world runs happen once per process.
fn cached_bandwidth(stack: SoftwareStack, path: NodePath, bytes: u64) -> P2pPoint {
    let key = format!("pcie_bw/{stack:?}/{path:?}/{bytes}");
    cache::memo(&key, || {
        let p = pcie_bandwidth(stack, path, bytes);
        // Time to move the message once at the modeled rate.
        telemetry::add_model_vt("pcie", bytes as f64 / p.bandwidth_gbs);
        p
    })
}

const SIZES: [u64; 7] = [
    1024,
    8 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
    16 * 1024 * 1024,
];

/// Figure 7: zero-byte MPI latency per path and stack.
pub fn fig7_latency() -> FigureData {
    let mut f = FigureData::new(
        "F7",
        "MPI latency over PCIe (us)",
        &["path", "pre-update", "post-update"],
    );
    for path in NodePath::ALL {
        f.push_row(vec![
            path.label().into(),
            format!("{:.1}", cached_latency_us(SoftwareStack::PreUpdate, path)),
            format!("{:.1}", cached_latency_us(SoftwareStack::PostUpdate, path)),
        ]);
    }
    f.note("Paper: pre 3.3/4.6/6.3 us; post 3.3/4.1/6.6 us.");
    f
}

/// Figure 8: MPI bandwidth per message size, path and stack.
pub fn fig8_bandwidth() -> FigureData {
    let mut f = FigureData::new(
        "F8",
        "MPI bandwidth over PCIe (GB/s)",
        &["path", "size", "pre GB/s", "post GB/s"],
    );
    for path in NodePath::ALL {
        for &size in &SIZES {
            f.push_row(vec![
                path.label().into(),
                fmt_bytes(size),
                format!(
                    "{:.3}",
                    cached_bandwidth(SoftwareStack::PreUpdate, path, size).bandwidth_gbs
                ),
                format!(
                    "{:.3}",
                    cached_bandwidth(SoftwareStack::PostUpdate, path, size).bandwidth_gbs
                ),
            ]);
        }
    }
    f.note("Paper at 4 MB: pre 1.6 / 0.455 / 0.444 GB/s; post 6 / 6 / 0.899 GB/s.");
    f
}

/// Figure 9: post/pre bandwidth gain ratio.
pub fn fig9_gain() -> FigureData {
    let mut f = FigureData::new(
        "F9",
        "Post-update / pre-update bandwidth gain",
        &["path", "size", "gain"],
    );
    for path in NodePath::ALL {
        for &size in &SIZES {
            // Same arithmetic as `maia_mpi::bench::update_gain`, but over
            // the memoized Figure 8 table instead of fresh world runs.
            let gain = cached_bandwidth(SoftwareStack::PostUpdate, path, size).bandwidth_gbs
                / cached_bandwidth(SoftwareStack::PreUpdate, path, size).bandwidth_gbs;
            f.push_row(vec![path.label().into(), fmt_bytes(size), format!("{gain:.2}")]);
        }
    }
    f.note("Paper: >=256 KB gains 2-3.8x (host-phi0), 7-13x (host-phi1), ~2x (phi0-phi1); smaller messages 1-1.5x.");
    f
}

/// Figure 18: offload DMA bandwidth over PCIe.
pub fn fig18_offload_bw() -> FigureData {
    let model = PcieModel::default();
    let mut f = FigureData::new(
        "F18",
        "Offload-mode PCIe bandwidth (GB/s)",
        &["size", "phi0 GB/s", "phi1 GB/s"],
    );
    let mut size = 4 * 1024u64;
    let mut model_ns = 0.0;
    while size <= 256 * 1024 * 1024 {
        let p0 = model.dma_bandwidth_gbs(Device::Phi0, size);
        let p1 = model.dma_bandwidth_gbs(Device::Phi1, size);
        model_ns += size as f64 * (1.0 / p0 + 1.0 / p1);
        f.push_row(vec![fmt_bytes(size), format!("{p0:.2}"), format!("{p1:.2}")]);
        if size == 32 * 1024 {
            // Include the dip point the paper highlights.
            size = 64 * 1024;
        } else {
            size *= 4;
        }
    }
    telemetry::add_model_vt("pcie", model_ns);
    f.note("Paper: ~6.4 GB/s plateau; Phi0 ~3% above Phi1; unexplained dip at 64 KB (modeled as a buffer-scheme switch).");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_rows_match_paper_to_tenths() {
        let f = fig7_latency();
        let row = |p: &str| f.rows.iter().find(|r| r[0] == p).unwrap().clone();
        assert_eq!(row("host-phi0")[1], "3.3");
        assert_eq!(row("host-phi1")[2], "4.1");
        assert_eq!(row("phi0-phi1")[1], "6.3");
    }

    #[test]
    fn fig8_4mb_post_values() {
        let f = fig8_bandwidth();
        let v = |path: &str| {
            f.rows
                .iter()
                .find(|r| r[0] == path && r[1] == "4MiB")
                .unwrap()[3]
                .parse::<f64>()
                .unwrap()
        };
        assert!((v("host-phi0") - 6.0).abs() < 0.3);
        assert!((v("phi0-phi1") - 0.9).abs() < 0.1);
    }

    #[test]
    fn fig18_has_dip_row() {
        let f = fig18_offload_bw();
        assert!(f.rows.iter().any(|r| r[0] == "64KiB"));
        // Plateau near 6.4 with phi1 lower.
        let last = f.rows.last().unwrap();
        let p0: f64 = last[1].parse().unwrap();
        let p1: f64 = last[2].parse().unwrap();
        assert!((p0 - 6.4).abs() < 0.1 && p1 < p0);
    }
}
