//! The experiment registry: one entry per table/figure of the paper.

mod app_figs;
pub mod cluster;
pub mod coll;
pub mod conformance;
mod micro;
mod npb_figs;
mod pcie;

use crate::figdata::FigureData;

/// Every artifact of the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table 1: system characteristics.
    T1Table,
    /// Figure 4: STREAM triad bandwidth vs threads.
    F4Stream,
    /// Figure 5: memory load latency vs working set.
    F5Latency,
    /// Figure 6: per-core read/write bandwidth vs working set.
    F6Bandwidth,
    /// Figure 7: MPI latency over PCIe (pre/post update).
    F7PcieLatency,
    /// Figure 8: MPI bandwidth over PCIe (pre/post update).
    F8PcieBandwidth,
    /// Figure 9: post/pre bandwidth gain.
    F9UpdateGain,
    /// Figure 10: MPI_Send/Recv ring.
    F10SendRecv,
    /// Figure 11: MPI_Bcast.
    F11Bcast,
    /// Figure 12: MPI_Allreduce.
    F12Allreduce,
    /// Figure 13: MPI_Allgather.
    F13Allgather,
    /// Figure 14: MPI_Alltoall (with OOM gating).
    F14Alltoall,
    /// Figure 15: OpenMP synchronization overheads.
    F15OmpSync,
    /// Figure 16: OpenMP scheduling overheads.
    F16OmpSched,
    /// Figure 17: sequential I/O bandwidth.
    F17Io,
    /// Figure 18: offload PCIe bandwidth.
    F18OffloadBw,
    /// Figure 19: NPB OpenMP performance.
    F19NpbOmp,
    /// Figure 20: NPB MPI performance.
    F20NpbMpi,
    /// Figure 21: Cart3D native host vs Phi.
    F21Cart3d,
    /// Figure 22: OVERFLOW native (I × J) sweep.
    F22OverflowNative,
    /// Figure 23: OVERFLOW symmetric mode pre/post update.
    F23OverflowSymmetric,
    /// Figure 24: MG loop-collapse gain.
    F24MgCollapse,
    /// Figure 25: MG in native and offload modes.
    F25MgModes,
    /// Figure 26: offload overhead breakdown.
    F26OffloadOverhead,
    /// Figure 27: offload invocations and transfer volume.
    F27OffloadCost,
    /// Beyond-paper validation: distributed NPB kernels (real numerics)
    /// measured on the simulated fabric.
    A1NpbMpiMeasured,
    /// Beyond-paper validation: hybrid OVERFLOW zones over the simulated
    /// fabric with communication/compute accounting.
    A2OverflowHybrid,
    /// Beyond-paper extrapolation: cluster-wide MPI_Allreduce over the
    /// partitioned multi-node DES (128 × (16 host + 2×60 Phi) ranks).
    C1ClusterAllreduce,
    /// Beyond-paper extrapolation: cluster-wide MPI_Alltoall, same world.
    C2ClusterAlltoall,
}

/// All experiments in paper order.
pub fn all_experiments() -> Vec<ExperimentId> {
    use ExperimentId::*;
    vec![
        T1Table,
        F4Stream,
        F5Latency,
        F6Bandwidth,
        F7PcieLatency,
        F8PcieBandwidth,
        F9UpdateGain,
        F10SendRecv,
        F11Bcast,
        F12Allreduce,
        F13Allgather,
        F14Alltoall,
        F15OmpSync,
        F16OmpSched,
        F17Io,
        F18OffloadBw,
        F19NpbOmp,
        F20NpbMpi,
        F21Cart3d,
        F22OverflowNative,
        F23OverflowSymmetric,
        F24MgCollapse,
        F25MgModes,
        F26OffloadOverhead,
        F27OffloadCost,
        A1NpbMpiMeasured,
        A2OverflowHybrid,
        C1ClusterAllreduce,
        C2ClusterAlltoall,
    ]
}

/// Static metadata about one experiment, used by the parallel runner for
/// scheduling and by the CLI for selection and display.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentMeta {
    /// Canonical zero-padded code (`"T01"`, `"F04"`, `"A01"`), accepted by
    /// `maia-bench run --only` alongside the short `FigureData` id.
    pub code: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Relative cost estimate (arbitrary units ~ serial milliseconds).
    /// The executor schedules longest-first so stragglers start early.
    pub cost_estimate: u32,
    /// Experiments whose cached sub-models this one reuses. Purely
    /// informational: the cache makes order irrelevant for correctness.
    pub depends_on: &'static [ExperimentId],
    /// Seed for any stochastic sub-model (pointer-chase shuffles, EP
    /// streams). Fixed per experiment so reruns are bit-identical.
    pub seed: u64,
}

impl ExperimentId {
    /// Metadata for this experiment.
    pub fn meta(self) -> ExperimentMeta {
        use ExperimentId::*;
        let (code, title, cost_estimate, depends_on): (_, _, u32, &'static [ExperimentId]) =
            match self {
                T1Table => ("T01", "Table 1: system characteristics", 1, &[]),
                F4Stream => ("F04", "STREAM triad bandwidth vs threads", 2, &[]),
                F5Latency => ("F05", "Memory load latency vs working set", 2, &[]),
                F6Bandwidth => ("F06", "Per-core bandwidth vs working set", 2, &[]),
                F7PcieLatency => ("F07", "MPI latency over PCIe", 5, &[]),
                F8PcieBandwidth => ("F08", "MPI bandwidth over PCIe", 20, &[F7PcieLatency]),
                F9UpdateGain => ("F09", "Post/pre update bandwidth gain", 20, &[F8PcieBandwidth]),
                F10SendRecv => ("F10", "MPI_Send/Recv ring", 300, &[]),
                F11Bcast => ("F11", "MPI_Bcast", 250, &[]),
                F12Allreduce => ("F12", "MPI_Allreduce", 350, &[]),
                F13Allgather => ("F13", "MPI_Allgather", 500, &[]),
                F14Alltoall => ("F14", "MPI_Alltoall with OOM gating", 600, &[]),
                F15OmpSync => ("F15", "OpenMP synchronization overheads", 50, &[]),
                F16OmpSched => ("F16", "OpenMP scheduling overheads", 50, &[]),
                F17Io => ("F17", "Sequential I/O bandwidth", 1, &[]),
                F18OffloadBw => ("F18", "Offload PCIe bandwidth", 1, &[]),
                F19NpbOmp => ("F19", "NPB OpenMP performance", 400, &[F4Stream]),
                F20NpbMpi => ("F20", "NPB MPI performance", 700, &[]),
                F21Cart3d => ("F21", "Cart3D native host vs Phi", 100, &[F4Stream]),
                F22OverflowNative => ("F22", "OVERFLOW native sweep", 100, &[F4Stream]),
                F23OverflowSymmetric => ("F23", "OVERFLOW symmetric pre/post", 200, &[]),
                F24MgCollapse => ("F24", "MG loop-collapse gain", 100, &[]),
                F25MgModes => ("F25", "MG native and offload modes", 100, &[]),
                F26OffloadOverhead => ("F26", "Offload overhead breakdown", 50, &[]),
                F27OffloadCost => ("F27", "Offload invocations and volume", 50, &[]),
                A1NpbMpiMeasured => ("A01", "Distributed NPB kernels (measured)", 800, &[]),
                A2OverflowHybrid => ("A02", "Hybrid OVERFLOW zones (measured)", 400, &[]),
                C1ClusterAllreduce => ("C01", "Cluster MPI_Allreduce (partitioned DES)", 150, &[]),
                C2ClusterAlltoall => ("C02", "Cluster MPI_Alltoall (partitioned DES)", 200, &[]),
            };
        ExperimentMeta {
            code,
            title,
            cost_estimate,
            depends_on,
            // Decorrelated per-experiment stream; any fixed constant works,
            // it only has to be stable across runs.
            seed: 0x6D61_6961_0000_0000 | code.as_bytes()[0] as u64 | (cost_estimate as u64) << 8,
        }
    }

    /// Parse a user-supplied experiment code: accepts the canonical
    /// zero-padded form (`F04`), the short `FigureData` id (`F4`, `T1`),
    /// spelled-out forms (`fig_04`, `fig4`, `table1`, `app_1`), and any
    /// case.
    pub fn parse(text: &str) -> Option<ExperimentId> {
        let mut want = text.trim().to_ascii_uppercase().replace('-', "_");
        for (long, short) in [("FIG", "F"), ("TABLE", "T"), ("APP", "A"), ("CLUSTER", "C")] {
            if let Some(rest) = want.strip_prefix(long) {
                let digits = rest.strip_prefix('_').unwrap_or(rest);
                if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                    want = format!("{short}{digits}");
                }
                break;
            }
        }
        all_experiments().into_iter().find(|&id| {
            let meta = id.meta();
            let short = {
                // "F04" -> "F4"; "T01" -> "T1"; "F10" stays "F10".
                let (prefix, digits) = meta.code.split_at(1);
                format!("{prefix}{}", digits.trim_start_matches('0'))
            };
            want == meta.code || want == short
        })
    }
}

/// Which experiments an invocation operates on. All entry points —
/// `run`, `check`, `profile` and the `fig_NN` aliases — parse their
/// selection flags into this one type and hand it to the executor, so
/// "which experiments" is decided in exactly one place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentSelection {
    /// Every experiment, in paper order.
    All,
    /// An explicit list, in request order, without duplicates.
    Ids(Vec<ExperimentId>),
}

impl ExperimentSelection {
    /// Parse a comma-separated code list (`F04,f21,T1`, `fig_05`, ...).
    /// Fails with the offending code on the first unknown entry.
    pub fn from_spec(spec: &str) -> Result<ExperimentSelection, String> {
        let mut ids = Vec::new();
        for code in spec.split(',').filter(|s| !s.is_empty()) {
            let id = ExperimentId::parse(code)
                .ok_or_else(|| format!("unknown experiment '{code}'"))?;
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        if ids.is_empty() {
            return Err("empty experiment selection".into());
        }
        Ok(ExperimentSelection::Ids(ids))
    }

    /// The concrete experiment list this selection denotes.
    pub fn resolve(&self) -> Vec<ExperimentId> {
        match self {
            ExperimentSelection::All => all_experiments(),
            ExperimentSelection::Ids(ids) => ids.clone(),
        }
    }

    /// Number of selected experiments.
    pub fn len(&self) -> usize {
        match self {
            ExperimentSelection::All => all_experiments().len(),
            ExperimentSelection::Ids(ids) => ids.len(),
        }
    }

    /// True when the selection denotes no experiments (never produced by
    /// [`ExperimentSelection::from_spec`]).
    pub fn is_empty(&self) -> bool {
        matches!(self, ExperimentSelection::Ids(ids) if ids.is_empty())
    }
}

/// Regenerate the data for one experiment.
pub fn run_experiment(id: ExperimentId) -> FigureData {
    use ExperimentId::*;
    match id {
        T1Table => micro::table1(),
        F4Stream => micro::fig4_stream(),
        F5Latency => micro::fig5_latency(),
        F6Bandwidth => micro::fig6_bandwidth(),
        F7PcieLatency => pcie::fig7_latency(),
        F8PcieBandwidth => pcie::fig8_bandwidth(),
        F9UpdateGain => pcie::fig9_gain(),
        F10SendRecv => coll::fig10_sendrecv(),
        F11Bcast => coll::fig11_bcast(),
        F12Allreduce => coll::fig12_allreduce(),
        F13Allgather => coll::fig13_allgather(),
        F14Alltoall => coll::fig14_alltoall(),
        F15OmpSync => micro::fig15_omp_sync(),
        F16OmpSched => micro::fig16_omp_sched(),
        F17Io => micro::fig17_io(),
        F18OffloadBw => pcie::fig18_offload_bw(),
        F19NpbOmp => npb_figs::fig19_npb_omp(),
        F20NpbMpi => npb_figs::fig20_npb_mpi(),
        F21Cart3d => app_figs::fig21_cart3d(),
        F22OverflowNative => app_figs::fig22_overflow_native(),
        F23OverflowSymmetric => app_figs::fig23_overflow_symmetric(),
        F24MgCollapse => npb_figs::fig24_mg_collapse(),
        F25MgModes => npb_figs::fig25_mg_modes(),
        F26OffloadOverhead => npb_figs::fig26_offload_overhead(),
        F27OffloadCost => npb_figs::fig27_offload_cost(),
        A1NpbMpiMeasured => npb_figs::a1_npb_mpi_measured(),
        A2OverflowHybrid => app_figs::a2_overflow_hybrid(),
        C1ClusterAllreduce => cluster::c1_cluster_allreduce(),
        C2ClusterAlltoall => cluster::c2_cluster_alltoall(),
    }
}

#[cfg(test)]
mod selection_tests {
    use super::*;

    #[test]
    fn parse_accepts_spelled_out_codes() {
        for (text, want) in [
            ("fig_05", ExperimentId::F5Latency),
            ("FIG5", ExperimentId::F5Latency),
            ("fig-10", ExperimentId::F10SendRecv),
            ("table1", ExperimentId::T1Table),
            ("TABLE_01", ExperimentId::T1Table),
            ("app_1", ExperimentId::A1NpbMpiMeasured),
            ("F04", ExperimentId::F4Stream),
            ("f4", ExperimentId::F4Stream),
            ("C01", ExperimentId::C1ClusterAllreduce),
            ("c2", ExperimentId::C2ClusterAlltoall),
            ("cluster_1", ExperimentId::C1ClusterAllreduce),
        ] {
            assert_eq!(ExperimentId::parse(text), Some(want), "parsing {text:?}");
        }
        for bad in ["fig_", "fig_99", "figx", "table", "F99", ""] {
            assert_eq!(ExperimentId::parse(bad), None, "parsing {bad:?}");
        }
    }

    #[test]
    fn selection_resolves_and_dedups() {
        assert_eq!(ExperimentSelection::All.resolve(), all_experiments());
        let sel = ExperimentSelection::from_spec("F04,fig_04,T1").unwrap();
        assert_eq!(
            sel.resolve(),
            vec![ExperimentId::F4Stream, ExperimentId::T1Table]
        );
        assert_eq!(sel.len(), 2);
        assert!(!sel.is_empty());
        let err = ExperimentSelection::from_spec("F04,F99").unwrap_err();
        assert!(err.contains("F99"), "{err}");
        assert!(ExperimentSelection::from_spec("").is_err());
    }
}
