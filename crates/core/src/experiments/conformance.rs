//! Per-experiment conformance checklists: every DESIGN.md §6 validation
//! target bound to oracle predicates over the regenerated tables.
//!
//! Bands pin the *shape* the paper publishes, not absolute numbers: cache
//! plateaus end at the documented boundaries, the STREAM knee falls at
//! 118 threads, the DAPL update lifts only SCIF-sized messages, the
//! paper's OOM failures stay failures, MG stays the only kernel faster on
//! the Phi. The widths leave the calibration room DESIGN.md grants
//! (repro band 1/5) while staying tight enough that reverting a modeled
//! mechanism — e.g. the 256 KiB SCIF threshold — produces a named
//! violation.

use crate::experiments::ExperimentId;
use crate::oracle::{
    best_label, cell, contains, crossover_between, marked_oom, monotone_nondecreasing,
    monotone_nonincreasing, not_oom, ordered_desc, peak_in_range, plateau_between, ratio_band,
    row_argmax, row_max, scalar_band, scalar_ratio_band, series, step_down_across, step_up_across,
    within_band, Agg, Best, Check, Scalar,
};

const KIB: f64 = 1024.0;
const MIB: f64 = 1024.0 * 1024.0;
const HUGE: f64 = 1e18;

/// Minimum multiplicative step the Figure 13 algorithm switch must
/// produce between 2 KiB and 4 KiB, in every configuration. Shared with
/// the `fig13_shows_the_jump` unit test in [`crate::experiments::coll`]
/// so the two margins cannot drift apart.
pub const F13_JUMP_FACTOR: f64 = 1.9;

/// The oracle predicates for one experiment. Every artifact has a
/// non-empty checklist; the suite averages well over three predicates per
/// experiment (asserted in `tests/tests/paper_shapes.rs`).
pub fn checklist(id: ExperimentId) -> Vec<Check> {
    use ExperimentId::*;
    match id {
        T1Table => table1(),
        F4Stream => fig4(),
        F5Latency => fig5(),
        F6Bandwidth => fig6(),
        F7PcieLatency => fig7(),
        F8PcieBandwidth => fig8(),
        F9UpdateGain => fig9(),
        F10SendRecv => fig10(),
        F11Bcast => fig11(),
        F12Allreduce => fig12(),
        F13Allgather => fig13(),
        F14Alltoall => fig14(),
        F15OmpSync => fig15(),
        F16OmpSched => fig16(),
        F17Io => fig17(),
        F18OffloadBw => fig18(),
        F19NpbOmp => fig19(),
        F20NpbMpi => fig20(),
        F21Cart3d => fig21(),
        F22OverflowNative => fig22(),
        F23OverflowSymmetric => fig23(),
        F24MgCollapse => fig24(),
        F25MgModes => fig25(),
        F26OffloadOverhead => fig26(),
        F27OffloadCost => fig27(),
        A1NpbMpiMeasured => a1(),
        A2OverflowHybrid => a2(),
        C1ClusterAllreduce => c1(),
        C2ClusterAlltoall => c2(),
    }
}

/// Table 1 is prerendered text; the derived headline constants must
/// survive any refactor of the spec builders.
fn table1() -> Vec<Check> {
    vec![
        contains("1008"),  // Phi card peak Gflop/s
        contains("20.8"),  // host Gflop/s per core
        contains("258"),   // Phi system Tflop/s
        contains("86"),    // Phi share of the flops (%)
    ]
}

fn fig4() -> Vec<Check> {
    let host = || series("threads", "GB/s").only("device", "host");
    let phi = || series("threads", "GB/s").only("device", "phi0");
    vec![
        monotone_nondecreasing(host()),
        // Host saturates in the mid-70s GB/s.
        scalar_band(Scalar::reduce(host(), Agg::Max), 70.0, 85.0),
        // Phi plateau ~180 GB/s at 59 and 118 threads...
        scalar_band(Scalar::reduce(phi(), Agg::At(59.0)), 170.0, 190.0),
        peak_in_range(phi(), 59.0, 118.0),
        // ...with the GDDR5 bank-occupancy knee past 118 threads...
        step_down_across(phi(), 120.0, 1.2),
        // ...down to ~140 GB/s for every higher thread count.
        within_band(phi().x_in(119.0, HUGE), 130.0, 150.0),
        // Enough threads carry the Phi past the host's saturated curve.
        crossover_between(phi(), host(), 1.0, 59.0),
    ]
}

fn fig5() -> Vec<Check> {
    let host = || series("working-set", "host ns");
    let phi = || series("working-set", "phi ns");
    vec![
        monotone_nondecreasing(host()),
        monotone_nondecreasing(phi()),
        // L1 plateau, then the documented region boundaries:
        // host 32 KB / 256 KB / 20 MB, Phi 32 KB / 512 KB.
        plateau_between(host(), 0.0, 32.0 * KIB, 0.05),
        step_up_across(host(), 32.0 * KIB, 1.5),
        step_up_across(host(), 256.0 * KIB, 2.0),
        step_up_across(host(), 20.0 * MIB, 2.5),
        plateau_between(phi(), 0.0, 32.0 * KIB, 0.05),
        step_up_across(phi(), 32.0 * KIB, 3.0),
        step_up_across(phi(), 512.0 * KIB, 5.0),
        // Host under Phi at every level.
        ratio_band(phi(), host(), 1.5, 25.0),
        // DRAM plateaus near the paper's 81 / 295 ns.
        scalar_band(Scalar::reduce(host(), Agg::Last), 60.0, 95.0),
        scalar_band(Scalar::reduce(phi(), Agg::Last), 270.0, 320.0),
    ]
}

fn fig6() -> Vec<Check> {
    let col = |c: &'static str| series("working-set", c);
    vec![
        monotone_nonincreasing(col("host read")),
        monotone_nonincreasing(col("host write")),
        monotone_nonincreasing(col("phi read")),
        monotone_nonincreasing(col("phi write")),
        // Paper endpoints: host read 12.6 -> 7.5 GB/s.
        scalar_band(Scalar::reduce(col("host read"), Agg::First), 12.0, 13.2),
        scalar_band(Scalar::reduce(col("host read"), Agg::Last), 7.0, 9.0),
        // Phi per-core DRAM: read 0.504, write 0.263 GB/s.
        scalar_band(Scalar::reduce(col("phi read"), Agg::Last), 0.45, 0.56),
        scalar_band(Scalar::reduce(col("phi write"), Agg::Last), 0.2, 0.3),
        ratio_band(col("host read"), col("phi read"), 7.0, 25.0),
    ]
}

fn fig7() -> Vec<Check> {
    let pre = |p: &'static str| cell(&[("path", p)], "pre-update");
    vec![
        scalar_band(pre("host-phi0"), 3.0, 3.6),
        scalar_band(pre("host-phi1"), 4.3, 4.9),
        scalar_band(pre("phi0-phi1"), 6.0, 6.6),
        // Each PCIe hop adds latency: two-hop > far-socket > near.
        ordered_desc(
            "pre-update path latency",
            vec![
                ("phi0-phi1", pre("phi0-phi1")),
                ("host-phi1", pre("host-phi1")),
                ("host-phi0", pre("host-phi0")),
            ],
        ),
        // The update trims the far-socket (host-phi1) latency.
        scalar_ratio_band(
            cell(&[("path", "host-phi1")], "post-update"),
            pre("host-phi1"),
            0.80,
            0.99,
        ),
    ]
}

fn fig8() -> Vec<Check> {
    let pre = |p: &'static str| series("size", "pre GB/s").only("path", p);
    let post = |p: &'static str| series("size", "post GB/s").only("path", p);
    let at4m = |s: Scalar| s;
    vec![
        monotone_nondecreasing(pre("host-phi0")),
        monotone_nondecreasing(pre("host-phi1")),
        monotone_nondecreasing(pre("phi0-phi1")),
        monotone_nondecreasing(post("host-phi0")),
        // Paper's 4 MB endpoints: pre 1.6 / 0.455 / 0.444 GB/s.
        scalar_band(at4m(Scalar::reduce(pre("host-phi0"), Agg::At(4.0 * MIB))), 1.4, 1.8),
        scalar_band(at4m(Scalar::reduce(pre("host-phi1"), Agg::At(4.0 * MIB))), 0.40, 0.50),
        scalar_band(at4m(Scalar::reduce(pre("phi0-phi1"), Agg::At(4.0 * MIB))), 0.40, 0.50),
        // Post 6 / 6 / 0.899 GB/s.
        scalar_band(at4m(Scalar::reduce(post("host-phi0"), Agg::At(4.0 * MIB))), 5.5, 6.5),
        scalar_band(at4m(Scalar::reduce(post("host-phi1"), Agg::At(4.0 * MIB))), 5.5, 6.5),
        scalar_band(at4m(Scalar::reduce(post("phi0-phi1"), Agg::At(4.0 * MIB))), 0.85, 0.95),
        // Pre-update asymmetry between the two host paths, removed post.
        scalar_ratio_band(
            Scalar::reduce(pre("host-phi0"), Agg::At(4.0 * MIB)),
            Scalar::reduce(pre("host-phi1"), Agg::At(4.0 * MIB)),
            3.0,
            4.0,
        ),
        scalar_ratio_band(
            Scalar::reduce(post("host-phi0"), Agg::At(4.0 * MIB)),
            Scalar::reduce(post("host-phi1"), Agg::At(4.0 * MIB)),
            0.95,
            1.10,
        ),
    ]
}

fn fig9() -> Vec<Check> {
    let gain = |p: &'static str| series("size", "gain").only("path", p);
    vec![
        // SCIF-sized messages (>= 256 KiB) get the documented lift.
        within_band(gain("host-phi0").x_in(256.0 * KIB, HUGE), 2.0, 4.2),
        within_band(gain("host-phi1").x_in(256.0 * KIB, HUGE), 7.0, 14.0),
        within_band(gain("phi0-phi1").x_in(256.0 * KIB, HUGE), 1.8, 2.2),
        // Below the SCIF threshold the update barely moves the needle.
        within_band(gain("host-phi0").x_in(0.0, 64.0 * KIB), 0.9, 1.6),
        within_band(gain("host-phi1").x_in(0.0, 64.0 * KIB), 0.9, 1.6),
        within_band(gain("phi0-phi1").x_in(0.0, 64.0 * KIB), 0.9, 1.6),
        // The gain step sits exactly at the provider switch: these fire
        // if the 256 KiB SCIF threshold drifts (the PR 1 off-by-one).
        step_up_across(gain("host-phi0"), 128.0 * KIB, 2.0),
        step_up_across(gain("host-phi1"), 128.0 * KIB, 5.0),
        step_up_across(gain("phi0-phi1"), 128.0 * KIB, 1.7),
    ]
}

fn fig10() -> Vec<Check> {
    let cfg = |c: &'static str| series("size", "MB/s").only("config", c);
    vec![
        monotone_nondecreasing(cfg("host-16")),
        monotone_nondecreasing(cfg("phi-59 (1t/c)")),
        monotone_nondecreasing(cfg("phi-236 (4t/c)")),
        // Paper: host over Phi 1.3-3.5x at 1 t/c, 24-54x at 4 t/c.
        ratio_band(cfg("host-16"), cfg("phi-59 (1t/c)"), 1.3, 3.5),
        ratio_band(cfg("host-16"), cfg("phi-236 (4t/c)"), 24.0, 54.0),
    ]
}

fn fig11() -> Vec<Check> {
    let cfg = |c: &'static str| series("size", "time us").only("config", c);
    vec![
        monotone_nondecreasing(cfg("host-16")),
        monotone_nondecreasing(cfg("phi-59 (1t/c)")),
        monotone_nondecreasing(cfg("phi-236 (4t/c)")),
        ratio_band(cfg("phi-59 (1t/c)"), cfg("host-16"), 1.1, 5.0),
        ratio_band(cfg("phi-236 (4t/c)"), cfg("host-16"), 40.0, 120.0),
    ]
}

fn fig12() -> Vec<Check> {
    let cfg = |c: &'static str| series("size", "time us").only("config", c);
    vec![
        monotone_nondecreasing(cfg("host-16")),
        monotone_nondecreasing(cfg("phi-59 (1t/c)")),
        // Paper bands: 2.2-13.4x at 59 T, 28-104x at 236 T.
        ratio_band(cfg("phi-59 (1t/c)"), cfg("host-16"), 2.2, 13.4),
        ratio_band(cfg("phi-236 (4t/c)"), cfg("host-16"), 28.0, 110.0),
    ]
}

fn fig13() -> Vec<Check> {
    let cfg = |c: &'static str| series("size", "time us").only("config", c);
    vec![
        // The algorithm-switch jump between 2 KiB and 4 KiB, every world.
        step_up_across(cfg("host-16"), 3.0 * KIB, F13_JUMP_FACTOR),
        step_up_across(cfg("phi-59 (1t/c)"), 3.0 * KIB, F13_JUMP_FACTOR),
        step_up_across(cfg("phi-236 (4t/c)"), 3.0 * KIB, F13_JUMP_FACTOR),
        ratio_band(cfg("phi-59 (1t/c)"), cfg("host-16"), 2.6, 17.1),
        ratio_band(cfg("phi-236 (4t/c)"), cfg("host-16"), 68.0, 1146.0),
    ]
}

fn fig14() -> Vec<Check> {
    let cfg = |c: &'static str| series("size", "time us").only("config", c);
    vec![
        // 236-rank Alltoall dies beyond 4 KiB for lack of card memory...
        marked_oom(&[("config", "phi-236 (4t/c)"), ("size", "8KiB")], "time us"),
        marked_oom(&[("config", "phi-236 (4t/c)"), ("size", "64KiB")], "time us"),
        // ...but completes at and below it, and 59 ranks always fit.
        not_oom(&[("config", "phi-236 (4t/c)"), ("size", "4KiB")], "time us"),
        not_oom(&[("config", "phi-59 (1t/c)")], "time us"),
        ratio_band(cfg("phi-59 (1t/c)"), cfg("host-16"), 8.0, 20.0),
        ratio_band(cfg("phi-236 (4t/c)"), cfg("host-16"), 1000.0, 2700.0),
    ]
}

fn fig15() -> Vec<Check> {
    let phi = |c: &'static str| cell(&[("construct", c)], "phi us");
    let host = |c: &'static str| cell(&[("construct", c)], "host us");
    vec![
        // Phi overheads roughly an order of magnitude above host.
        within_band(series("construct", "phi/host"), 3.0, 20.0),
        // Construct ordering on both architectures.
        ordered_desc(
            "phi construct overhead",
            vec![
                ("REDUCTION", phi("REDUCTION")),
                ("PARALLEL FOR", phi("PARALLEL FOR")),
                ("PARALLEL", phi("PARALLEL")),
                ("BARRIER", phi("BARRIER")),
                ("SINGLE", phi("SINGLE")),
                ("ATOMIC", phi("ATOMIC")),
            ],
        ),
        ordered_desc(
            "host construct overhead",
            vec![
                ("REDUCTION", host("REDUCTION")),
                ("PARALLEL FOR", host("PARALLEL FOR")),
                ("PARALLEL", host("PARALLEL")),
                ("BARRIER", host("BARRIER")),
                ("SINGLE", host("SINGLE")),
                ("ATOMIC", host("ATOMIC")),
            ],
        ),
        best_label(&[], "phi us", Best::Max, "construct", "REDUCTION"),
        best_label(&[], "phi us", Best::Min, "construct", "ATOMIC"),
    ]
}

fn fig16() -> Vec<Check> {
    let at = |s: &'static str, chunk: &'static str, col: &'static str| {
        cell(&[("schedule", s), ("chunk", chunk)], col)
    };
    vec![
        // STATIC < GUIDED < DYNAMIC at matched chunk, both devices.
        ordered_desc(
            "host schedule overhead (chunk 1)",
            vec![
                ("DYNAMIC", at("DYNAMIC", "1", "host us")),
                ("GUIDED", at("GUIDED", "1", "host us")),
                ("STATIC", at("STATIC", "0", "host us")),
            ],
        ),
        ordered_desc(
            "phi schedule overhead (chunk 1)",
            vec![
                ("DYNAMIC", at("DYNAMIC", "1", "phi us")),
                ("GUIDED", at("GUIDED", "1", "phi us")),
                ("STATIC", at("STATIC", "0", "phi us")),
            ],
        ),
        // Bigger chunks amortize the dynamic dispatch.
        monotone_nonincreasing(series("chunk", "host us").only("schedule", "DYNAMIC")),
        monotone_nonincreasing(series("chunk", "phi us").only("schedule", "DYNAMIC")),
        // Phi an order of magnitude above host for the static baseline.
        scalar_ratio_band(at("STATIC", "0", "phi us"), at("STATIC", "0", "host us"), 5.0, 15.0),
    ]
}

fn fig17() -> Vec<Check> {
    let dev = |d: &'static str, op: &'static str| {
        series("block", "MB/s").only("device", d).only("op", op)
    };
    let at64 = |d: &'static str, op: &'static str| {
        cell(&[("device", d), ("op", op), ("block", "64MiB")], "MB/s")
    };
    vec![
        monotone_nondecreasing(dev("host", "Read")),
        monotone_nondecreasing(dev("host", "Write")),
        monotone_nondecreasing(dev("phi0", "Read")),
        // Paper plateaus: host 295 read / 210 write, Phi ~75-80 MB/s.
        scalar_band(at64("host", "Read"), 280.0, 310.0),
        scalar_band(at64("host", "Write"), 200.0, 220.0),
        scalar_band(at64("phi0", "Read"), 70.0, 80.0),
        // The MPSS TCP/IP-over-PCIe stack costs the Phi ~4x on reads.
        scalar_ratio_band(at64("host", "Read"), at64("phi0", "Read"), 3.5, 4.5),
        // Both cards behave identically.
        ratio_band(dev("phi0", "Read"), dev("phi1", "Read"), 0.95, 1.05),
    ]
}

fn fig18() -> Vec<Check> {
    let phi0 = || series("size", "phi0 GB/s");
    let phi1 = || series("size", "phi1 GB/s");
    vec![
        monotone_nondecreasing(phi0()),
        monotone_nondecreasing(phi1()),
        // TLP-framing ceiling ~6.4 GB/s.
        within_band(phi0().x_in(4.0 * MIB, HUGE), 6.0, 6.6),
        plateau_between(phi0(), 64.0 * MIB, 256.0 * MIB, 0.01),
        // Phi0 sits ~3% above Phi1 once transfers amortize setup.
        ratio_band(phi0().x_in(64.0 * KIB, HUGE), phi1().x_in(64.0 * KIB, HUGE), 1.005, 1.05),
        // Small transfers are latency-bound far below the ceiling.
        scalar_band(Scalar::reduce(phi0(), Agg::At(4.0 * KIB)), 0.3, 0.5),
    ]
}

fn fig19() -> Vec<Check> {
    const PHI_COLS: [&str; 4] = ["phi-59", "phi-118", "phi-177", "phi-236"];
    let best_phi = |b: &'static str| row_max(&[("benchmark", b)], &PHI_COLS);
    let host = |b: &'static str| cell(&[("benchmark", b)], "host-16");
    let mut checks = vec![
        // MG is the only kernel faster on the Phi than on the host.
        scalar_ratio_band(best_phi("MG"), host("MG"), 1.0, 1.4),
    ];
    for b in ["BT", "CG", "FT", "LU", "SP"] {
        checks.push(scalar_ratio_band(best_phi(b), host(b), 0.01, 0.999));
    }
    // BT highest / CG lowest among the Phi results (MG is the runner-up
    // maximum, LU the runner-up minimum).
    checks.push(ordered_desc(
        "phi-best extremes",
        vec![
            ("BT", best_phi("BT")),
            ("MG", best_phi("MG")),
            ("LU", best_phi("LU")),
            ("CG", best_phi("CG")),
        ],
    ));
    // 3 threads/core is the sweet spot for all but gather-bound CG.
    for b in ["BT", "FT", "LU", "MG", "SP"] {
        checks.push(row_argmax(&[("benchmark", b)], &PHI_COLS, "phi-177"));
    }
    checks.push(row_argmax(&[("benchmark", "CG")], &PHI_COLS, "phi-236"));
    checks
}

fn fig20() -> Vec<Check> {
    let at = |b: &'static str, c: &'static str| cell(&[("benchmark", b), ("config", c)], "Gflop/s");
    vec![
        // FT needs ~10 GB and cannot run on the 8 GB card...
        marked_oom(&[("benchmark", "FT"), ("config", "phi-64")], "Gflop/s"),
        marked_oom(&[("benchmark", "FT"), ("config", "phi-128")], "Gflop/s"),
        // ...but runs fine on the host.
        not_oom(&[("benchmark", "FT"), ("config", "host-16")], "Gflop/s"),
        // BT-MPI is the one code best at 4 ranks/core.
        ordered_desc(
            "BT rank counts",
            vec![
                ("phi-225", at("BT", "phi-225")),
                ("phi-169", at("BT", "phi-169")),
            ],
        ),
        // MG again close to host parity; CG again the worst.
        scalar_ratio_band(at("MG", "phi-128"), at("MG", "host-16"), 0.8, 1.0),
        scalar_ratio_band(at("CG", "host-16"), at("CG", "phi-128"), 5.0, 15.0),
    ]
}

fn fig21() -> Vec<Check> {
    let phi = || series("threads", "relative perf").only("device", "phi0");
    vec![
        monotone_nondecreasing(phi()),
        // Cart3D is the 4 t/c outlier: more threads always help.
        peak_in_range(phi(), 200.0, 240.0),
        // Host ~2x the best Phi result.
        scalar_band(Scalar::reduce(phi(), Agg::Max), 0.3, 0.75),
        scalar_band(cell(&[("device", "host")], "relative perf"), 0.999, 1.001),
    ]
}

fn fig22() -> Vec<Check> {
    vec![
        best_label(&[("device", "host")], "s/step", Best::Min, "layout", "16x1"),
        best_label(&[("device", "host")], "s/step", Best::Max, "layout", "1x16"),
        best_label(&[("device", "phi0")], "s/step", Best::Min, "layout", "8x28"),
        best_label(&[("device", "phi0")], "s/step", Best::Max, "layout", "4x14"),
        // Host best beats Phi best by ~1.8x.
        scalar_ratio_band(
            Scalar::reduce(series("layout", "s/step").only("device", "phi0"), Agg::Min),
            Scalar::reduce(series("layout", "s/step").only("device", "host"), Agg::Min),
            1.6,
            2.2,
        ),
    ]
}

fn fig23() -> Vec<Check> {
    vec![
        // Post-update gains land in the paper's 2-28% band.
        within_band(series("phi layout", "gain %"), 1.0, 30.0),
        ratio_band(
            series("phi layout", "pre-update s/step"),
            series("phi layout", "post-update s/step"),
            1.005,
            1.35,
        ),
        best_label(&[], "post-update s/step", Best::Min, "phi layout", "8x28"),
        // The headline: symmetric mode ~1.9x the best native-host run.
        // Computed against the model directly (native host is not a row
        // of this figure), exactly as the paper frames the comparison.
        Check::custom(
            "symmetric_boost_vs_native_host[model]",
            "boost in [1.6, 2.2]",
            |_fig| {
                use maia_apps::overflow::overflow_profile;
                use maia_interconnect::SoftwareStack;
                use maia_modes::SymmetricLayout;
                let k = overflow_profile(35.9e6);
                let layout = SymmetricLayout {
                    host_ranks: 16,
                    host_threads_per_rank: 1,
                    phi_ranks: 8,
                    phi_threads_per_rank: 28,
                    stack: SoftwareStack::PostUpdate,
                    imbalance: 0.25,
                };
                let boost = layout.native_host_step(&k) / layout.step(&k, 24 << 20).step_s;
                let obs = format!("boost {boost:.3}");
                if (1.6..=2.2).contains(&boost) {
                    Ok(obs)
                } else {
                    Err(obs)
                }
            },
        ),
    ]
}

fn fig24() -> Vec<Check> {
    let gain = |c: &'static str| cell(&[("config", c)], "gain %");
    vec![
        // Collapse is a wash on the host...
        scalar_band(gain("host-16"), -3.0, 1.0),
        // ...and a real win on the Phi.
        scalar_band(gain("phi-118"), 5.0, 40.0),
        scalar_band(gain("phi-236"), 5.0, 40.0),
        // Scheduling onto the OS core always hurts.
        scalar_band(gain("phi-59 vs phi-60"), -100.0, -3.0),
        scalar_band(gain("phi-118 vs phi-120"), -100.0, -3.0),
        scalar_band(gain("phi-177 vs phi-180"), -100.0, -3.0),
        scalar_band(gain("phi-236 vs phi-240"), -100.0, -3.0),
    ]
}

fn fig25() -> Vec<Check> {
    let mode = |m: &'static str| cell(&[("mode", m)], "Gflop/s");
    vec![
        // Offload granularity: whole > subroutine > loop.
        ordered_desc(
            "offload granularity",
            vec![
                ("whole", mode("offload-whole")),
                ("resid", mode("offload-resid")),
                ("loop", mode("offload-loop")),
            ],
        ),
        // Every offload variant loses to native host...
        scalar_ratio_band(mode("offload-whole"), mode("native-host"), 0.01, 0.95),
        // ...and hyperthreading the host costs ~6%.
        scalar_ratio_band(mode("native-host (HT)"), mode("native-host"), 0.90, 0.98),
        // MG native on Phi overtakes the host once threads scale.
        crossover_between(
            series("threads", "Gflop/s").only("mode", "native-phi"),
            series("threads", "Gflop/s").only("mode", "native-host"),
            59.0,
            177.0,
        ),
        best_label(&[("mode", "native-phi")], "Gflop/s", Best::Max, "threads", "177"),
        scalar_ratio_band(
            Scalar::reduce(series("threads", "Gflop/s").only("mode", "native-phi"), Agg::Max),
            mode("native-host"),
            1.0,
            1.4,
        ),
    ]
}

fn fig26() -> Vec<Check> {
    let total = |v: &'static str| cell(&[("variant", v)], "total overhead");
    let mut checks = vec![
        ordered_desc(
            "total offload overhead",
            vec![
                ("loop", total("offload-loop")),
                ("resid", total("offload-resid")),
                ("whole", total("offload-whole")),
            ],
        ),
        scalar_ratio_band(total("offload-loop"), total("offload-whole"), 3.0, 100.0),
    ];
    // The Phi-side setup dominates every variant's overhead.
    for v in ["offload-whole", "offload-resid", "offload-loop"] {
        checks.push(scalar_ratio_band(
            cell(&[("variant", v)], "phi-side"),
            total(v),
            0.6,
            0.85,
        ));
    }
    checks
}

fn fig27() -> Vec<Check> {
    let inv = |v: &'static str| cell(&[("variant", v)], "invocations");
    let gb = |v: &'static str| cell(&[("variant", v)], "GB transferred");
    vec![
        ordered_desc(
            "offload invocations",
            vec![
                ("loop", inv("offload-loop")),
                ("resid", inv("offload-resid")),
                ("whole", inv("offload-whole")),
            ],
        ),
        ordered_desc(
            "transferred volume",
            vec![
                ("loop", gb("offload-loop")),
                ("resid", gb("offload-resid")),
                ("whole", gb("offload-whole")),
            ],
        ),
        // Whole-program offload ships data exactly once.
        scalar_band(inv("offload-whole"), 1.0, 1.0),
        scalar_ratio_band(inv("offload-loop"), inv("offload-resid"), 5.0, 20.0),
    ]
}

fn a1() -> Vec<Check> {
    vec![
        within_band(series("benchmark", "phi/host"), 2.0, 5.0),
        within_band(series("benchmark", "host ms"), 1e-6, 1e6),
        // The printed ratio column agrees with the printed times.
        Check::custom(
            "ratio_column_consistent[phi/host = phi0 ms / host ms]",
            "per-row |ratio - phi0/host| <= 0.2",
            |fig| {
                let hi = fig.headers.iter().position(|h| h == "host ms");
                let pi = fig.headers.iter().position(|h| h == "phi0 ms");
                let ri = fig.headers.iter().position(|h| h == "phi/host");
                let (Some(hi), Some(pi), Some(ri)) = (hi, pi, ri) else {
                    return Err("expected columns missing".into());
                };
                for r in &fig.rows {
                    let (Some(h), Some(p), Some(ratio)) = (
                        crate::oracle::parse_cell(&r[hi]),
                        crate::oracle::parse_cell(&r[pi]),
                        crate::oracle::parse_cell(&r[ri]),
                    ) else {
                        return Err(format!("non-numeric row {}", r[0]));
                    };
                    if (ratio - p / h).abs() > 0.2 {
                        return Err(format!("{}: {} vs {:.3}", r[0], ratio, p / h));
                    }
                }
                Ok(format!("{} rows consistent", fig.rows.len()))
            },
        ),
    ]
}

fn a2() -> Vec<Check> {
    vec![
        // The distributed solver computes the same answer everywhere.
        Check::custom(
            "residuals_identical[final residual]",
            "every layout's residual is bit-identical text",
            |fig| {
                let ri = fig
                    .headers
                    .iter()
                    .position(|h| h == "final residual")
                    .ok_or("column 'final residual' missing")?;
                let first = &fig.rows[0][ri];
                for r in &fig.rows {
                    if &r[ri] != first {
                        return Err(format!("{} vs {}", r[ri], first));
                    }
                }
                Ok(format!("all {}", first))
            },
        ),
        // Symmetric mode pays the PCIe communication tax.
        ordered_desc(
            "communication fraction",
            vec![
                (
                    "symmetric",
                    cell(
                        &[("layout", "host x2 + phi x1 each (symmetric)")],
                        "comm fraction",
                    ),
                ),
                ("host x4", cell(&[("layout", "host x4")], "comm fraction")),
                ("phi0 x4", cell(&[("layout", "phi0 x4")], "comm fraction")),
            ],
        ),
        ordered_desc(
            "wall clock",
            vec![
                ("phi0 x4", cell(&[("layout", "phi0 x4")], "wall ms")),
                ("host x4", cell(&[("layout", "host x4")], "wall ms")),
            ],
        ),
    ]
}

fn c1() -> Vec<Check> {
    let at_nodes = |n: &'static str| series("size", "time us").only("nodes", n);
    let at_size = |s: &'static str| series("nodes", "time us").only("size", s);
    vec![
        // Bigger payloads and bigger clusters both cost more.
        monotone_nondecreasing(at_nodes("2")),
        monotone_nondecreasing(at_nodes("128")),
        monotone_nondecreasing(at_size("64B")),
        monotone_nondecreasing(at_size("64KiB")),
        // Recursive doubling: 2 -> 128 nodes adds rounds logarithmically.
        // Probed at 64B, where the inter-node stage isn't drowned by the
        // (payload-scaled) intra-node phases: the full rack costs a bit
        // more than 2 nodes, but never multiples.
        scalar_ratio_band(
            cell(&[("nodes", "128"), ("size", "64B")], "time us"),
            cell(&[("nodes", "2"), ("size", "64B")], "time us"),
            1.05,
            2.0,
        ),
    ]
}

fn c2() -> Vec<Check> {
    let at_nodes = |n: &'static str| series("size", "time us").only("nodes", n);
    let at_size = |s: &'static str| series("nodes", "time us").only("size", s);
    let full_rack = |sz: &'static str| cell(&[("nodes", "128"), ("size", sz)], "time us");
    vec![
        monotone_nondecreasing(at_nodes("2")),
        monotone_nondecreasing(at_nodes("128")),
        monotone_nondecreasing(at_size("64B")),
        monotone_nondecreasing(at_size("64KiB")),
        // Pairwise exchange pays p-1 contended rounds. Probed at 64B
        // (the inter-node stage dominates there): the full rack costs
        // multiples of 2 nodes — scaling far worse than Allreduce's
        // log-round 1.0x-2.0x band over the same endpoints...
        scalar_ratio_band(
            full_rack("64B"),
            cell(&[("nodes", "2"), ("size", "64B")], "time us"),
            2.0,
            50.0,
        ),
        // ...and 32 -> 128 nodes alone quadruples the rounds.
        scalar_ratio_band(
            full_rack("64B"),
            cell(&[("nodes", "32"), ("size", "64B")], "time us"),
            1.5,
            10.0,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::all_experiments;

    #[test]
    fn every_experiment_has_a_checklist() {
        for id in all_experiments() {
            assert!(!checklist(id).is_empty(), "{id:?} has no predicates");
        }
    }

    #[test]
    fn average_predicate_count_is_at_least_three() {
        let ids = all_experiments();
        let total: usize = ids.iter().map(|&id| checklist(id).len()).sum();
        assert!(
            total >= 3 * ids.len(),
            "{total} predicates over {} experiments",
            ids.len()
        );
    }

    #[test]
    fn predicate_names_are_unique_within_each_figure() {
        for id in all_experiments() {
            let mut names: Vec<String> = checklist(id).iter().map(|c| c.name.clone()).collect();
            let before = names.len();
            names.sort();
            names.dedup();
            assert_eq!(before, names.len(), "{id:?} has duplicate predicate names");
        }
    }
}
