//! Application experiments: Figures 21 (Cart3D), 22 (OVERFLOW native)
//! and 23 (OVERFLOW symmetric).

use maia_apps::cart3d::fig21_series;
use maia_apps::overflow::{fig22_series, fig23_series};

use crate::figdata::FigureData;

/// Figure 21.
pub fn fig21_cart3d() -> FigureData {
    let mut f = FigureData::new(
        "F21",
        "Cart3D (OneraM6-like) performance relative to host-16T",
        &["device", "threads", "relative perf"],
    );
    for p in fig21_series() {
        f.push_row(vec![
            p.device_label.into(),
            p.threads.to_string(),
            format!("{:.2}", p.relative_perf),
        ]);
    }
    f.note("Paper: host performance is 2x the best Phi result; Phi is best at 4 threads/core (236), unlike the NPBs.");
    f
}

/// Figure 22.
pub fn fig22_overflow_native() -> FigureData {
    let mut f = FigureData::new(
        "F22",
        "OVERFLOW DLRF6-Medium: seconds/step by (ranks x threads)",
        &["device", "layout", "s/step"],
    );
    for p in fig22_series() {
        f.push_row(vec![
            p.device.label().into(),
            format!("{}x{}", p.ranks, p.threads_per_rank),
            format!("{:.2}", p.seconds_per_step),
        ]);
    }
    f.note("Paper: host best 16x1, worst 1x16; Phi best 8x28, worst 4x14; host best beats Phi best by 1.8x.");
    f
}

/// Figure 23.
pub fn fig23_overflow_symmetric() -> FigureData {
    let mut f = FigureData::new(
        "F23",
        "OVERFLOW DLRF6-Large symmetric mode (host+Phi0+Phi1)",
        &["phi layout", "pre-update s/step", "post-update s/step", "gain %"],
    );
    for p in fig23_series() {
        f.push_row(vec![
            format!("{}x{}", p.phi_ranks, p.phi_threads),
            format!("{:.2}", p.pre_s),
            format!("{:.2}", p.post_s),
            format!("{:.1}", p.gain_percent),
        ]);
    }
    f.note("Paper: post-update gains 2-28%; best layout 8x28; symmetric mode beats native host 1.9x but loses to two hosts.");
    f
}

/// A2 (beyond paper): the hybrid OVERFLOW proxy with its zones dealt to
/// simulated MPI ranks — residuals match the shared-memory solver while
/// the fabric prices the Chimera exchanges.
pub fn a2_overflow_hybrid() -> FigureData {
    use maia_apps::overflow::OverflowCase;
    use maia_apps::overflow_mpi::run_mpi;
    use maia_arch::Device;
    use maia_interconnect::SoftwareStack;
    use maia_mpi::WorldSpec;

    let case = OverflowCase {
        zone_n: 10,
        zones: 4,
    };
    let steps = 3;
    let mut f = FigureData::new(
        "A2",
        "Hybrid OVERFLOW (4 zones, real data) on the simulated fabric",
        &["layout", "wall ms", "comm fraction", "final residual"],
    );
    let mut row = |label: &str, spec: &WorldSpec| {
        let r = run_mpi(&case, steps, 1, spec);
        f.push_row(vec![
            label.into(),
            format!("{:.3}", r.wall_s * 1e3),
            format!("{:.2}", r.comm_fraction),
            format!("{:.4e}", r.final_residual),
        ]);
    };
    row("host x4", &WorldSpec::all_on(Device::Host, 4));
    row("phi0 x4", &WorldSpec::all_on(Device::Phi0, 4));
    row(
        "host x2 + phi x1 each (symmetric)",
        &WorldSpec::symmetric(2, 1, SoftwareStack::PostUpdate),
    );
    f.note("The symmetric layout's Chimera planes cross PCIe: its communication fraction dwarfs the single-device layouts', the paper's core symmetric-mode observation.");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig21_ratio() {
        let f = fig21_cart3d();
        let best_phi = f
            .rows
            .iter()
            .filter(|r| r[0] == "phi0")
            .map(|r| r[2].parse::<f64>().unwrap())
            .fold(0.0f64, f64::max);
        assert!((0.35..0.7).contains(&best_phi), "phi/host {best_phi}");
    }

    #[test]
    fn fig22_has_both_devices() {
        let f = fig22_overflow_native();
        assert!(f.rows.iter().any(|r| r[0] == "host"));
        assert!(f.rows.iter().any(|r| r[0] == "phi0"));
    }

    #[test]
    fn fig23_gains_positive() {
        let f = fig23_overflow_symmetric();
        for row in &f.rows {
            assert!(row[3].parse::<f64>().unwrap() > 0.0);
        }
    }
}
