//! Intra-device MPI collective experiments: Figures 10–14. Every data
//! point runs the real collective algorithm on the discrete-event engine.

use maia_arch::Device;
use maia_mpi::bench::{alltoall_time, collective_time, ring_sendrecv, CollectiveOp, P2pPoint};
use maia_mpi::memory::OomError;

use crate::cache;
use crate::figdata::{fmt_bytes, FigureData};

/// Memoized collective world run. The 236-rank worlds are the most
/// expensive sub-models in the registry; within one process each
/// (device, ranks, size, op) point simulates once — including Alltoall,
/// which is routed through [`cached_alltoall_time`] so both entry points
/// share one memo entry. (They used to live in split `alltoall/...` vs
/// `coll/.../Alltoall` namespaces, so a caller mixing the two simulated
/// the same world twice.)
pub fn cached_collective_time(device: Device, ranks: usize, bytes: u64, op: CollectiveOp) -> f64 {
    if op == CollectiveOp::Alltoall {
        return cached_alltoall_time(device, ranks, bytes)
            .expect("alltoall exceeds the device budget; call cached_alltoall_time for the gated variant");
    }
    let key = format!("coll/{device:?}/{ranks}/{bytes}/{op:?}");
    cache::memo(&key, || collective_time(device, ranks, bytes, op))
}

pub fn cached_ring_sendrecv(device: Device, ranks: usize, bytes: u64) -> P2pPoint {
    let key = format!("ring/{device:?}/{ranks}/{bytes}");
    cache::memo(&key, || ring_sendrecv(device, ranks, bytes))
}

pub fn cached_alltoall_time(device: Device, ranks: usize, bytes: u64) -> Result<f64, OomError> {
    let key = format!("coll/{device:?}/{ranks}/{bytes}/Alltoall");
    cache::memo(&key, || alltoall_time(device, ranks, bytes))
}

/// The three configurations the paper compares.
const CONFIGS: [(&str, Device, usize); 3] = [
    ("host-16", Device::Host, 16),
    ("phi-59 (1t/c)", Device::Phi0, 59),
    ("phi-236 (4t/c)", Device::Phi0, 236),
];

const SIZES: [u64; 3] = [64, 4 * 1024, 256 * 1024];

/// Figure 10: ring Send/Recv per-pair bandwidth.
pub fn fig10_sendrecv() -> FigureData {
    let mut f = FigureData::new(
        "F10",
        "MPI_Send/Recv ring: per-pair bandwidth (MB/s)",
        &["config", "size", "MB/s"],
    );
    for (label, dev, ranks) in CONFIGS {
        for &size in &SIZES {
            let p = cached_ring_sendrecv(dev, ranks, size);
            f.push_row(vec![
                label.into(),
                fmt_bytes(size),
                format!("{:.1}", p.bandwidth_gbs * 1000.0),
            ]);
        }
    }
    f.note("Paper: host above Phi 1t/c by 1.3-3.5x and above Phi 4t/c by 24-54x.");
    f
}

fn collective_fig(
    id: &'static str,
    title: &str,
    op: CollectiveOp,
    factor_note: &str,
) -> FigureData {
    let mut f = FigureData::new(id, title, &["config", "size", "time us"]);
    for (label, dev, ranks) in CONFIGS {
        for &size in &SIZES {
            let t = cached_collective_time(dev, ranks, size, op);
            f.push_row(vec![label.into(), fmt_bytes(size), format!("{:.1}", t * 1e6)]);
        }
    }
    f.note(factor_note);
    f
}

/// Figure 11.
pub fn fig11_bcast() -> FigureData {
    collective_fig(
        "F11",
        "MPI_Bcast completion time",
        CollectiveOp::Bcast,
        "Paper: host above Phi 1t/c by 1.1-3.8x; per-core above Phi 4t/c by 20-35x.",
    )
}

/// Figure 12.
pub fn fig12_allreduce() -> FigureData {
    collective_fig(
        "F12",
        "MPI_Allreduce completion time",
        CollectiveOp::Allreduce,
        "Paper: host above Phi 1t/c by 2.2-13.4x and above Phi 4t/c by 28-104x.",
    )
}

/// Figure 13.
pub fn fig13_allgather() -> FigureData {
    let mut f = FigureData::new(
        "F13",
        "MPI_Allgather completion time",
        &["config", "size", "time us"],
    );
    // Extra sizes to expose the Bruck->ring switch at 2-4 KB.
    let sizes = [64u64, 1024, 2 * 1024, 4 * 1024, 8 * 1024, 64 * 1024];
    for (label, dev, ranks) in CONFIGS {
        for &size in &sizes {
            let t = cached_collective_time(dev, ranks, size, CollectiveOp::Allgather);
            f.push_row(vec![label.into(), fmt_bytes(size), format!("{:.1}", t * 1e6)]);
        }
    }
    f.note("Paper: abrupt jump at 2-4 KB from the collective-algorithm switch; host above Phi by 2.6-17.1x (1t/c) and 68-1146x (4t/c).");
    f
}

/// Figure 14 (with the 236-rank OOM gate).
pub fn fig14_alltoall() -> FigureData {
    let mut f = FigureData::new(
        "F14",
        "MPI_Alltoall completion time",
        &["config", "size", "time us"],
    );
    let sizes = [64u64, 1024, 4 * 1024, 8 * 1024, 64 * 1024];
    for (label, dev, ranks) in CONFIGS {
        for &size in &sizes {
            let cell = match cached_alltoall_time(dev, ranks, size) {
                Ok(t) => format!("{:.1}", t * 1e6),
                Err(e) => format!("OOM ({:.1} GB needed)", e.required_bytes as f64 / 1e9),
            };
            f.push_row(vec![label.into(), fmt_bytes(size), cell]);
        }
    }
    f.note("Paper: the 236-rank runs fail beyond 4 KB for lack of memory; host above Phi by 8-20x (1t/c) and 1003-2603x (4t/c).");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_shows_the_jump() {
        let f = fig13_allgather();
        let t = |cfg: &str, size: &str| {
            f.rows
                .iter()
                .find(|r| r[0] == cfg && r[1] == size)
                .unwrap()[2]
                .parse::<f64>()
                .unwrap()
        };
        // Multiplicative margin shared with the F13 conformance
        // predicate: the switch step clears the factor, the adjacent
        // smooth doubling stays under it. (The old additive form
        // `jump > smooth + 0.3` passed even for two smooth doublings
        // that merely differ by the latency term.)
        use crate::experiments::conformance::F13_JUMP_FACTOR;
        let jump = t("phi-59 (1t/c)", "4KiB") / t("phi-59 (1t/c)", "2KiB");
        let smooth = t("phi-59 (1t/c)", "8KiB") / t("phi-59 (1t/c)", "4KiB");
        assert!(
            jump > F13_JUMP_FACTOR && smooth < F13_JUMP_FACTOR,
            "jump {jump} vs smooth {smooth} (factor {F13_JUMP_FACTOR})"
        );
    }

    #[test]
    fn fig14_marks_oom() {
        let f = fig14_alltoall();
        let oom_rows: Vec<_> = f
            .rows
            .iter()
            .filter(|r| r[2].starts_with("OOM"))
            .collect();
        assert!(!oom_rows.is_empty());
        for r in &oom_rows {
            assert_eq!(r[0], "phi-236 (4t/c)");
        }
        // 4 KiB at 236 ranks still runs.
        assert!(f
            .rows
            .iter()
            .any(|r| r[0] == "phi-236 (4t/c)" && r[1] == "4KiB" && !r[2].starts_with("OOM")));
    }
}
