//! Microbenchmark experiments: Table 1, Figures 4–6 (memory), 15–16
//! (OpenMP overheads) and 17 (I/O).

use maia_arch::{presets, Device};
use maia_iosim::{io_sweep, IoOp, IoPath};
use maia_mem::bandwidth::{per_core_bw_gbs, stream_triad_gbs, AccessKind};
use maia_mem::latency::analytic_latency_ns;
use maia_omp::{OmpConstruct, OverheadModel, Schedule};

use crate::cache;
use crate::figdata::{fmt_bytes, FigureData};
use crate::telemetry;

/// Memoized STREAM triad point; the curve also feeds the application
/// models (F19/F21/F22), so it is shared through the cache.
fn cached_stream_gbs(label: &str, proc: &maia_arch::ProcessorSpec, tpc: u32, threads: u32) -> f64 {
    let key = format!("stream/{label}/{tpc}/{threads}");
    cache::memo(&key, || stream_triad_gbs(proc, tpc, threads))
}

/// Table 1.
pub fn table1() -> FigureData {
    let sys = presets::maia_system();
    let text = maia_arch::table::render_table1(&sys);
    let mut f = FigureData::new("T1", "Characteristics of Maia (computed)", &["row"]);
    for line in text.lines() {
        f.push_row(vec![line.to_string()]);
    }
    f.note("Every numeric cell is derived from first-principle parameters.");
    f
}

/// Figure 4: STREAM triad bandwidth vs thread count.
pub fn fig4_stream() -> FigureData {
    let host = presets::xeon_e5_2670();
    let phi = presets::xeon_phi_5110p();
    let mut f = FigureData::new(
        "F4",
        "STREAM triad bandwidth (GB/s) vs threads",
        &["device", "threads", "GB/s"],
    );
    // Modeled time to triad-stream 1 GiB at each measured bandwidth —
    // the virtual time this figure "spends" in the memory subsystem.
    let mut model_ns = 0.0;
    let gib = (1u64 << 30) as f64;
    for t in [1u32, 2, 4, 8, 16, 32] {
        let gbs = cached_stream_gbs("host", &host, 2, t);
        model_ns += gib / gbs;
        f.push_row(vec!["host".into(), t.to_string(), format!("{gbs:.1}")]);
    }
    for t in [1u32, 30, 59, 118, 130, 177, 236] {
        let gbs = cached_stream_gbs("phi0", &phi, 1, t);
        model_ns += gib / gbs;
        f.push_row(vec!["phi0".into(), t.to_string(), format!("{gbs:.1}")]);
    }
    telemetry::add_model_vt("memory", model_ns);
    f.note("Paper: Phi peaks at 180 GB/s for 59/118 threads, drops to 140 GB/s beyond (GDDR5 open-bank limit of 128).");
    f
}

/// Figure 5: load latency vs working-set size.
pub fn fig5_latency() -> FigureData {
    let host = presets::xeon_e5_2670();
    let phi = presets::xeon_phi_5110p();
    let mut f = FigureData::new(
        "F5",
        "Memory load latency (ns) vs working set",
        &["working-set", "host ns", "phi ns"],
    );
    // Modeled time for one dependent-load walk over each working set
    // (one 64-byte line per access) — the figure's memory virtual time.
    let mut model_ns = 0.0;
    let mut ws = 4 * 1024u64;
    while ws <= 256 * 1024 * 1024 {
        let host_ns = analytic_latency_ns(&host, ws);
        let phi_ns = analytic_latency_ns(&phi, ws);
        model_ns += (ws / 64) as f64 * (host_ns + phi_ns);
        f.push_row(vec![
            fmt_bytes(ws),
            format!("{host_ns:.1}"),
            format!("{phi_ns:.1}"),
        ]);
        ws *= 4;
    }
    telemetry::add_model_vt("memory", model_ns);
    f.note("Paper plateaus — host: 1.5/4.6/15/81 ns (L1/L2/L3/DRAM); Phi: 2.9/22.9/295 ns (L1/L2/DRAM).");
    f
}

/// Figure 6: per-core read/write bandwidth vs working-set size.
pub fn fig6_bandwidth() -> FigureData {
    let host = presets::xeon_e5_2670();
    let phi = presets::xeon_phi_5110p();
    let mut f = FigureData::new(
        "F6",
        "Per-core load bandwidth (GB/s) vs working set",
        &["working-set", "host read", "host write", "phi read", "phi write"],
    );
    // Modeled time to touch each working set once at the modeled rate.
    let mut model_ns = 0.0;
    let mut ws = 16 * 1024u64;
    while ws <= 256 * 1024 * 1024 {
        let hr = per_core_bw_gbs(&host, ws, AccessKind::Read);
        let hw = per_core_bw_gbs(&host, ws, AccessKind::Write);
        let pr = per_core_bw_gbs(&phi, ws, AccessKind::Read);
        let pw = per_core_bw_gbs(&phi, ws, AccessKind::Write);
        model_ns += ws as f64 * (1.0 / hr + 1.0 / hw + 1.0 / pr + 1.0 / pw);
        f.push_row(vec![
            fmt_bytes(ws),
            format!("{hr:.2}"),
            format!("{hw:.2}"),
            format!("{pr:.3}"),
            format!("{pw:.3}"),
        ]);
        ws *= 8;
    }
    telemetry::add_model_vt("memory", model_ns);
    f.note("Paper DRAM plateaus — host 7.5/7.2 GB/s; Phi 0.504/0.263 GB/s.");
    f
}

/// Figure 15: OpenMP synchronization overheads.
pub fn fig15_omp_sync() -> FigureData {
    let host = OverheadModel::for_processor(&presets::xeon_e5_2670());
    let phi = OverheadModel::for_processor(&presets::xeon_phi_5110p());
    let mut f = FigureData::new(
        "F15",
        "OpenMP construct overhead (us): host 16T vs Phi 236T",
        &["construct", "host us", "phi us", "phi/host"],
    );
    let mut model_us = 0.0;
    for c in OmpConstruct::ALL {
        let h = host.construct_overhead_us(c, 16);
        let p = phi.construct_overhead_us(c, 236);
        model_us += h + p;
        f.push_row(vec![
            c.label().into(),
            format!("{h:.2}"),
            format!("{p:.2}"),
            format!("{:.1}", p / h),
        ]);
    }
    telemetry::add_model_vt("omp", model_us * 1e3);
    f.note("Paper: ~an order of magnitude higher on the Phi; Reduction most expensive, ATOMIC least.");
    f
}

/// Figure 16: OpenMP scheduling overheads.
pub fn fig16_omp_sched() -> FigureData {
    let host = OverheadModel::for_processor(&presets::xeon_e5_2670());
    let phi = OverheadModel::for_processor(&presets::xeon_phi_5110p());
    let mut f = FigureData::new(
        "F16",
        "OpenMP scheduling overhead (us) for a 1024-iteration loop",
        &["schedule", "chunk", "host us", "phi us"],
    );
    let cases = [
        (Schedule::static_default(), 0usize),
        (Schedule::Dynamic { chunk: 1 }, 1),
        (Schedule::Dynamic { chunk: 8 }, 8),
        (Schedule::Dynamic { chunk: 64 }, 64),
        (Schedule::Guided { min_chunk: 1 }, 1),
        (Schedule::Guided { min_chunk: 8 }, 8),
    ];
    let mut model_us = 0.0;
    for (sched, chunk) in cases {
        let h = host.schedule_overhead_us(sched, 1024, 16);
        let p = phi.schedule_overhead_us(sched, 1024, 236);
        model_us += h + p;
        f.push_row(vec![
            sched.label().into(),
            chunk.to_string(),
            format!("{h:.2}"),
            format!("{p:.2}"),
        ]);
    }
    telemetry::add_model_vt("omp", model_us * 1e3);
    f.note("Paper: STATIC < GUIDED < DYNAMIC; Phi an order of magnitude above host.");
    f
}

/// Figure 17: sequential I/O bandwidth.
pub fn fig17_io() -> FigureData {
    let mut f = FigureData::new(
        "F17",
        "Sequential I/O bandwidth (MB/s)",
        &["device", "op", "block", "MB/s"],
    );
    let blocks = [64 * 1024u64, 1 << 20, 16 << 20, 64 << 20];
    // Modeled time to move each block once at its modeled rate.
    let mut model_ns = 0.0;
    for device in [Device::Host, Device::Phi0, Device::Phi1] {
        for op in [IoOp::Read, IoOp::Write] {
            for p in io_sweep(device, op, &blocks) {
                model_ns += p.block_bytes as f64 * 1e3 / p.bandwidth_mbs;
                f.push_row(vec![
                    device.label().into(),
                    format!("{op:?}"),
                    fmt_bytes(p.block_bytes),
                    format!("{:.0}", p.bandwidth_mbs),
                ]);
            }
        }
    }
    telemetry::add_model_vt("io", model_ns);
    let proxy = IoPath::phi_via_host_proxy(IoOp::Write).plateau_mbs();
    f.note(format!(
        "Paper: host 210 (write) / 295 (read) MB/s; Phi 80 / 75 MB/s. SCIF-proxy workaround reaches {proxy:.0} MB/s."
    ));
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_reproduces_bank_cliff() {
        let f = fig4_stream();
        // The device label is not unique per row, so pull the phi rows directly.
        let phi: Vec<f64> = f
            .rows
            .iter()
            .filter(|r| r[0] == "phi0")
            .map(|r| r[2].parse().unwrap())
            .collect();
        let threads: Vec<u32> = f
            .rows
            .iter()
            .filter(|r| r[0] == "phi0")
            .map(|r| r[1].parse().unwrap())
            .collect();
        let v = |t: u32| phi[threads.iter().position(|&x| x == t).unwrap()];
        assert!((v(59) - 180.0).abs() < 1.0);
        assert!((v(118) - 180.0).abs() < 1.0);
        assert!((v(177) - 140.0).abs() < 1.0);
        assert!(v(130) < 160.0, "cliff should start past 128 threads");
    }

    #[test]
    fn fig5_endpoints_match_paper() {
        let f = fig5_latency();
        let first = &f.rows[0];
        let last = &f.rows[f.rows.len() - 1];
        assert!(first[1].parse::<f64>().unwrap() < 2.0); // host L1
        assert!(last[2].parse::<f64>().unwrap() > 280.0); // phi DRAM
    }

    #[test]
    fn fig15_has_all_constructs() {
        let f = fig15_omp_sync();
        assert_eq!(f.rows.len(), OmpConstruct::ALL.len());
        // Every ratio column shows the Phi worse.
        for row in &f.rows {
            assert!(row[3].parse::<f64>().unwrap() > 3.0);
        }
    }

    #[test]
    fn fig17_factors() {
        let f = fig17_io();
        let big = |dev: &str, op: &str| {
            f.rows
                .iter()
                .find(|r| r[0] == dev && r[1] == op && r[2] == "64MiB")
                .unwrap()[3]
                .parse::<f64>()
                .unwrap()
        };
        let wf = big("host", "Write") / big("phi0", "Write");
        let rf = big("host", "Read") / big("phi0", "Read");
        assert!((wf - 2.6).abs() < 0.4, "write factor {wf}");
        assert!((rf - 3.9).abs() < 0.5, "read factor {rf}");
    }
}
