//! Cluster-scale collective experiments: multi-node MPI_Allreduce and
//! MPI_Alltoall over the SGI Rackable system's FDR InfiniBand fabric, up
//! to 128 nodes of 16 host + 2×60 Phi ranks (17 408 ranks total).
//!
//! The paper evaluates a single node; these experiments extrapolate its
//! calibrated intra-node model to the full rack using a hierarchical
//! collective: every node reduces/gathers internally (closed-form phase
//! from the single-node transport model), the 128 node leaders run the
//! real collective algorithm over InfiniBand on the discrete-event
//! engine, and the result fans back out. The leader stage runs
//! *partitioned* — one event wheel per worker thread, one simulation
//! domain per node — through `maia_sim::partition`, and is bit-identical
//! at every `--partitions` count.

use maia_mpi::bench::{cluster_collective_run, CollectiveOp};

use crate::cache;
use crate::figdata::{fmt_bytes, FigureData};
use crate::telemetry;

/// Simulated node counts (the machine tops out at 128 nodes).
const NODES: [usize; 4] = [2, 8, 32, 128];

/// Per-pair payload sizes.
const SIZES: [u64; 3] = [64, 4 * 1024, 64 * 1024];

/// Total MPI ranks a hierarchical run stands in for.
fn total_ranks(nodes: usize) -> usize {
    nodes * (maia_mpi::fastpath::NODE_HOST_RANKS + 2 * maia_mpi::fastpath::NODE_PHI_RANKS)
}

/// Memoized cluster collective. The key carries the wheel count so a
/// process that sweeps several `--partitions` values (the cross-check
/// harness) never serves one count's run as another's — the *values*
/// are partition-invariant, but hiding that behind a cache hit would
/// defeat the invariance tests.
pub fn cached_cluster_time(nodes: usize, bytes: u64, op: CollectiveOp) -> f64 {
    let backend = maia_mpi::process_backend::backend();
    // The backend tag keeps a process-backend run from serving a
    // channel-backend sweep's cached value (and vice versa) inside the
    // byte-identity harness; values are backend-invariant, but the
    // identity tests must see both backends actually run.
    let key = match backend {
        maia_mpi::process_backend::Backend::Channel => format!(
            "cluster/{nodes}/{bytes}/{op:?}/p{}",
            maia_mpi::partition::partitions()
        ),
        maia_mpi::process_backend::Backend::Process => format!(
            "cluster/{nodes}/{bytes}/{op:?}/p{}/process",
            maia_mpi::partition::partitions()
        ),
    };
    // The partition stats are recorded *outside* the memo compute so the
    // window/message counters land on the experiment's own sink (the
    // determinism battery pins them per experiment); the engine's virtual
    // time stays attributed to the shared `cluster/...` key as usual.
    let mut recorded = None;
    let time_s = cache::memo(&key, || match maia_mpi::fastpath::selected_engine() {
        maia_mpi::fastpath::SelectedEngine::Fast => {
            maia_mpi::fastpath::cluster_collective_time(nodes, bytes, op)
        }
        maia_mpi::fastpath::SelectedEngine::Des => {
            let (time_s, stats) = match backend {
                maia_mpi::process_backend::Backend::Channel => {
                    cluster_collective_run(nodes, bytes, op)
                }
                maia_mpi::process_backend::Backend::Process => {
                    crate::supervise::supervised_cluster_run(
                        nodes,
                        bytes,
                        op,
                        maia_mpi::partition::partitions(),
                    )
                }
            };
            recorded = Some(stats);
            time_s
        }
    });
    if let Some(stats) = recorded {
        telemetry::record_partition_run(&stats);
    }
    time_s
}

fn cluster_fig(id: &'static str, title: &str, op: CollectiveOp, note: &str) -> FigureData {
    let mut f = FigureData::new(id, title, &["nodes", "ranks", "size", "time us"]);
    for nodes in NODES {
        for &size in &SIZES {
            let t = cached_cluster_time(nodes, size, op);
            f.push_row(vec![
                nodes.to_string(),
                total_ranks(nodes).to_string(),
                fmt_bytes(size),
                format!("{:.1}", t * 1e6),
            ]);
        }
    }
    f.note(note);
    f
}

/// C01: cluster-wide MPI_Allreduce.
pub fn c1_cluster_allreduce() -> FigureData {
    cluster_fig(
        "C1",
        "Cluster MPI_Allreduce: hierarchical, node leaders over InfiniBand",
        CollectiveOp::Allreduce,
        "Inter-node stage is recursive doubling among node leaders (log2 growth); \
         intra-node phases from the calibrated single-node model.",
    )
}

/// C02: cluster-wide MPI_Alltoall.
pub fn c2_cluster_alltoall() -> FigureData {
    cluster_fig(
        "C2",
        "Cluster MPI_Alltoall: hierarchical, node leaders over InfiniBand",
        CollectiveOp::Alltoall,
        "Inter-node stage is pairwise exchange among node leaders — rounds grow \
         linearly with nodes and pay incast contention, so scaling is far worse \
         than Allreduce's.",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_the_full_rack() {
        for f in [c1_cluster_allreduce(), c2_cluster_alltoall()] {
            assert_eq!(f.rows.len(), NODES.len() * SIZES.len());
            assert!(f.rows.iter().any(|r| r[0] == "128" && r[1] == "17408"));
        }
    }

    #[test]
    fn alltoall_scales_worse_than_allreduce() {
        let t = |op, nodes| cached_cluster_time(nodes, 4 * 1024, op);
        let ar_growth = t(CollectiveOp::Allreduce, 128) / t(CollectiveOp::Allreduce, 2);
        let a2a_growth = t(CollectiveOp::Alltoall, 128) / t(CollectiveOp::Alltoall, 2);
        assert!(
            a2a_growth > ar_growth,
            "alltoall growth {a2a_growth} vs allreduce {ar_growth}"
        );
    }
}
