//! Supervision of the multi-process cluster backend: spawn one worker
//! process per non-hub event wheel, watch their heartbeats through the
//! hub, and when a worker crashes or goes silent, respawn the whole cell
//! under a seeded exponential-backoff schedule ([`crate::backoff`]).
//! Because a partitioned run is a pure function of its job description,
//! a re-run after a loss is byte-identical to an undisturbed one — retry
//! is *safe*, never "best effort".
//!
//! The degradation ladder, in order:
//!
//! 1. **Run** under the process backend; worker loss aborts the cell.
//! 2. **Respawn** everything after a backoff delay, up to
//!    `MAIA_SUPERVISE_RETRIES` times (default 2).
//! 3. **Degrade** to the in-process channel backend (identical results,
//!    no isolation) when the budget is exhausted — counted and reported,
//!    never silent. Disabled with `MAIA_SUPERVISE_DEGRADE=0`.
//! 4. **Fail** the experiment with a [`crate::FailureKind::WorkerLost`]
//!    entry naming the wheel, the exchange window and the virtual time
//!    of the loss; the rest of the sweep continues.
//!
//! Every supervision event lands in the wall-side
//! [`crate::telemetry::SuperviseCounters`] bucket, kept apart from the
//! virtual-side counters so backend identity stays bit-exact.

use std::io::{Read, Write};
use std::process::Child;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use maia_mpi::bench::{cluster_collective_run_with, CollectiveOp};
use maia_mpi::process_backend::{cluster_collective_run_process, effective_partitions};
use maia_mpi::world::ProcessWorldError;
use maia_sim::partition::{PartitionRunStats, ProcessConfig};

use crate::backoff::BackoffPolicy;
use crate::telemetry;

/// Everything a launcher needs to spawn one worker process.
#[derive(Debug, Clone, Copy)]
pub struct WorkerSpawnCtx {
    /// The event wheel the worker will host (`1..partitions`).
    pub wheel: usize,
    /// Respawn attempt number, 0 on the first try. Exported to the
    /// child as `MAIA_WORKER_ATTEMPT` so `:once` chaos heals on respawn.
    pub attempt: u32,
    /// Effective wheel count of the run.
    pub partitions: usize,
}

type Launcher = dyn Fn(&WorkerSpawnCtx) -> std::io::Result<Child> + Send + Sync;

static LAUNCHER: Mutex<Option<Box<Launcher>>> = Mutex::new(None);

/// Install the closure that spawns worker processes. The CLI installs a
/// self-exec (`maia-bench partition-worker ...`); tests install one
/// pointing at a built `maia-bench` binary.
pub fn install_worker_launcher(f: Box<Launcher>) {
    *LAUNCHER.lock().unwrap_or_else(PoisonError::into_inner) = Some(f);
}

/// Build the canonical worker command for `ctx` over `program`: the
/// `partition-worker` subcommand with stdin/stdout piped (they carry the
/// wire protocol), stderr inherited, and the attempt number exported.
pub fn worker_command(program: &std::path::Path, ctx: &WorkerSpawnCtx) -> std::process::Command {
    let mut cmd = std::process::Command::new(program);
    cmd.arg("partition-worker")
        .arg("--wheel")
        .arg(ctx.wheel.to_string())
        .arg("--partitions")
        .arg(ctx.partitions.to_string())
        .env("MAIA_WORKER_ATTEMPT", ctx.attempt.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit());
    cmd
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Retry budget: respawn attempts after the first loss.
fn retry_budget() -> u32 {
    env_u64("MAIA_SUPERVISE_RETRIES", 2) as u32
}

/// Whether budget exhaustion degrades to in-process execution (default)
/// or fails the experiment (`MAIA_SUPERVISE_DEGRADE=0`).
fn degrade_enabled() -> bool {
    std::env::var("MAIA_SUPERVISE_DEGRADE").map_or(true, |v| v != "0")
}

/// Install the standard launcher over a worker binary path: spawns
/// `program partition-worker ...` via [`worker_command`]. The CLI passes
/// its own executable; tests pass a built `maia-bench`.
pub fn install_default_launcher(program: std::path::PathBuf) {
    install_worker_launcher(Box::new(move |ctx| worker_command(&program, ctx).spawn()));
}

/// Heartbeat config: `MAIA_SUPERVISE_HEARTBEAT_MS` sets the interval
/// (default 100 ms); the silence deadline is 20 intervals. Shared by the
/// hub (deadline enforcement) and the worker entry point (send cadence)
/// so one knob tunes both sides.
pub fn process_config() -> ProcessConfig {
    let interval_ms = env_u64("MAIA_SUPERVISE_HEARTBEAT_MS", 100).max(1);
    ProcessConfig {
        heartbeat_interval: Duration::from_millis(interval_ms),
        heartbeat_deadline: Duration::from_millis(interval_ms * 20),
        handshake_deadline: Duration::from_secs(20),
    }
}

/// Deterministic backoff seed for one cell: the supervision schedule is
/// a pure function of what is being retried, so two runs of the same
/// failing cell wait identically.
fn cell_seed(nodes: usize, bytes: u64, op: CollectiveOp, partitions: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in [nodes as u64, bytes, op as u64, partitions as u64] {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn kill_all(children: &mut Vec<Child>) {
    for child in children.iter_mut() {
        let _ = child.kill();
    }
    for child in children.iter_mut() {
        let _ = child.wait();
    }
    children.clear();
}

/// One supervised cluster collective under the process backend. Returns
/// the same `(time, stats)` as
/// [`maia_mpi::bench::cluster_collective_run_with`] — byte-identical —
/// or panics the way the channel backend does on a deterministic
/// simulation error, or (budget exhausted, degradation disabled) with
/// the rendered worker loss, which the executor classifies as
/// [`crate::FailureKind::WorkerLost`].
pub fn supervised_cluster_run(
    nodes: usize,
    bytes: u64,
    op: CollectiveOp,
    partitions: usize,
) -> (f64, PartitionRunStats) {
    let eff = effective_partitions(nodes, partitions);
    if eff == 1 {
        // Single wheel: there are no workers to supervise.
        return cluster_collective_run_with(nodes, bytes, op, partitions);
    }
    let cfg = process_config();
    let budget = retry_budget();
    let policy = BackoffPolicy {
        base_s: 0.05,
        factor: 2.0,
        cap_s: 2.0,
        jitter: 0.25,
        budget,
    };
    let delays = policy.schedule(cell_seed(nodes, bytes, op, partitions));

    let mut last_loss = None;
    for attempt in 0..=budget {
        let mut children = Vec::with_capacity(eff - 1);
        let mut workers: Vec<(Box<dyn Read + Send>, Box<dyn Write + Send>)> =
            Vec::with_capacity(eff - 1);
        let spawn_err = {
            let launcher = LAUNCHER.lock().unwrap_or_else(PoisonError::into_inner);
            let launcher = launcher.as_ref().expect(
                "process backend selected but no worker launcher installed \
                 (maia_core::supervise::install_worker_launcher)",
            );
            let mut err = None;
            for wheel in 1..eff {
                let ctx = WorkerSpawnCtx {
                    wheel,
                    attempt,
                    partitions: eff,
                };
                match launcher(&ctx) {
                    Ok(mut child) => {
                        let stdin = child.stdin.take().expect("worker stdin must be piped");
                        let stdout = child.stdout.take().expect("worker stdout must be piped");
                        workers.push((Box::new(stdout), Box::new(stdin)));
                        children.push(child);
                    }
                    Err(e) => {
                        err = Some(format!("worker for wheel {wheel} failed to spawn: {e}"));
                        break;
                    }
                }
            }
            err
        };

        let loss_detail = if let Some(err) = spawn_err {
            err
        } else {
            match cluster_collective_run_process(nodes, bytes, op, partitions, workers, cfg) {
                Ok((time_s, stats, missed)) => {
                    telemetry::record_missed_heartbeats(missed);
                    for child in children.iter_mut() {
                        let _ = child.wait();
                    }
                    return (time_s, stats);
                }
                Err(ProcessWorldError::Sim(e)) => {
                    kill_all(&mut children);
                    // Deterministic simulation failure: identical to what
                    // the channel backend reports, so fail the same way.
                    panic!("cluster collective failed: {e}");
                }
                Err(ProcessWorldError::Lost { loss, missed }) => {
                    kill_all(&mut children);
                    // Failed attempts still account for the silence the
                    // hub observed — a stalled worker's missed beats are
                    // evidence, not noise to drop with the attempt.
                    telemetry::record_missed_heartbeats(missed);
                    loss.to_string()
                }
            }
        };
        kill_all(&mut children);
        telemetry::record_worker_lost();
        eprintln!("supervise: {loss_detail} (attempt {attempt}/{budget})");
        last_loss = Some(loss_detail);
        if (attempt as usize) < delays.len() {
            let delay = Duration::from_secs_f64(delays[attempt as usize]);
            telemetry::record_respawn(delay);
            std::thread::sleep(delay);
        }
    }

    let loss = last_loss.expect("loop exits via return or records a loss");
    if degrade_enabled() {
        // Graceful degradation: the channel backend computes the
        // identical result in-process. Honest about it: counted in the
        // supervise bucket and narrated on stderr.
        telemetry::record_degraded();
        eprintln!(
            "supervise: retry budget exhausted ({loss}); \
             degrading to in-process channel backend"
        );
        return cluster_collective_run_with(nodes, bytes, op, partitions);
    }
    panic!("{loss} (retry budget exhausted, degradation disabled)");
}
