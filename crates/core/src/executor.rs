//! The parallel experiment runner: one thread pool, all experiments.
//!
//! Replaces "run 21 binaries one after another" with a single sweep that
//! work-shares the experiment list across a reused [`maia_omp::Team`]
//! (the same pool runtime the OpenMP figures model, here doing real
//! work). Experiments are claimed longest-estimated-first under dynamic
//! self-scheduling, so the expensive 236-rank collective worlds start
//! immediately and short figures fill the tail.
//!
//! Output is deterministic and identical to serial execution: every
//! experiment builds its own [`FigureData`] from deterministic models, and
//! the [`crate::cache`] layer guarantees a shared sub-model is computed
//! once and reused bit-identically regardless of which experiment reaches
//! it first.
//!
//! The sweep is **fail-soft**: each experiment executes on a dedicated
//! guard thread under `catch_unwind` with a wall-clock watchdog
//! (`MAIA_EXPERIMENT_TIMEOUT_S`, default 300 s). A panicking,
//! deadlocking, or hung experiment becomes an [`ExperimentFailure`] in
//! [`SweepReport::failures`] while every other experiment still
//! completes — one sick model no longer tears down the whole sweep.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use maia_omp::{LoopState, Schedule, Team};

use crate::cache;
use crate::experiments::{run_experiment, ExperimentId, ExperimentSelection};
use crate::figdata::FigureData;
use crate::telemetry;

/// One finished experiment with its wall-clock cost.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Which experiment ran.
    pub id: ExperimentId,
    /// The regenerated table.
    pub data: FigureData,
    /// Wall-clock time this experiment took inside the sweep. With
    /// `jobs > 1` the interval overlaps other experiments', so these
    /// *inclusive* walls sum to more than the sweep wall.
    pub wall: Duration,
    /// Exclusive wall: this experiment's interval with every instant
    /// divided by the number of experiments running at that instant
    /// (∫ dt / active(t)). Exclusive walls sum to at most the sweep
    /// wall, so they are the per-experiment costs a budget can add up.
    pub excl: Duration,
}

/// Why an experiment failed to produce its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The experiment (or a simulated process inside it) panicked.
    Panic,
    /// The simulation deadlocked (`SimError::Deadlock`).
    Deadlock,
    /// The wall-clock watchdog expired before the experiment yielded a
    /// result.
    Timeout,
    /// A partition worker process crashed or went silent and the
    /// supervisor's retry budget (and, if disabled, in-process
    /// degradation) could not recover the run.
    WorkerLost,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Panic => "panic",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Timeout => "timeout",
            FailureKind::WorkerLost => "worker-lost",
        })
    }
}

/// One experiment that did not finish: the panic payload, deadlock
/// detail, or watchdog verdict, with the wall time spent before giving
/// up.
#[derive(Debug, Clone)]
pub struct ExperimentFailure {
    /// Which experiment failed.
    pub id: ExperimentId,
    /// How it failed.
    pub kind: FailureKind,
    /// Panic payload / `SimError` rendering / watchdog message. Sim
    /// errors carry the originating process name and virtual time.
    pub detail: String,
    /// Wall-clock time spent before the failure was declared.
    pub wall: Duration,
}

impl ExperimentFailure {
    /// One-line rendering for stderr reports.
    pub fn to_line(&self) -> String {
        format!(
            "FAILED {} [{}] after {:.1} ms: {}",
            self.id.meta().code,
            self.kind,
            self.wall.as_secs_f64() * 1e3,
            self.detail
        )
    }
}

/// Result of a full sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Finished experiments, in the order they were requested.
    pub runs: Vec<ExperimentRun>,
    /// Experiments that panicked, deadlocked, or timed out — the sweep
    /// completed everything else regardless.
    pub failures: Vec<ExperimentFailure>,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Cache effectiveness over the sweep.
    pub cache: cache::CacheStats,
}

impl SweepReport {
    /// Human-readable per-experiment timing summary (for stderr).
    pub fn timing_summary(&self) -> String {
        let mut out = String::new();
        let mut sorted: Vec<&ExperimentRun> = self.runs.iter().collect();
        sorted.sort_by_key(|r| std::cmp::Reverse(r.wall));
        for run in sorted {
            out.push_str(&format!(
                "{:<4} {:>9.1} ms  {}\n",
                run.id.meta().code,
                run.wall.as_secs_f64() * 1e3,
                run.id.meta().title,
            ));
        }
        for failure in &self.failures {
            out.push_str(&failure.to_line());
            out.push('\n');
        }
        let serial: f64 = self.runs.iter().map(|r| r.wall.as_secs_f64()).sum();
        out.push_str(&format!(
            "total {:.1} ms wall on {} job(s); {:.1} ms summed across experiments; \
             cache {} hit / {} miss\n",
            self.wall.as_secs_f64() * 1e3,
            self.jobs,
            serial * 1e3,
            self.cache.hits,
            self.cache.misses,
        ));
        if !self.failures.is_empty() {
            out.push_str(&format!(
                "{} experiment(s) FAILED; {} completed\n",
                self.failures.len(),
                self.runs.len()
            ));
        }
        out
    }

    /// Machine-readable timing record (`BENCH_*.json` trajectory).
    pub fn to_bench_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"wall_s\": {:.6},\n",
            self.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"cache\": {{ \"hits\": {}, \"misses\": {} }},\n",
            self.cache.hits, self.cache.misses
        ));
        out.push_str("  \"experiments\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"code\": \"{}\", \"wall_s\": {:.6}, \"excl_s\": {:.6} }}{}\n",
                run.id.meta().code,
                run.wall.as_secs_f64(),
                run.excl.as_secs_f64(),
                if i + 1 == self.runs.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"code\": \"{}\", \"kind\": \"{}\", \"wall_s\": {:.6} }}{}\n",
                f.id.meta().code,
                f.kind,
                f.wall.as_secs_f64(),
                if i + 1 == self.failures.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Run `ids` across `jobs` worker threads and collect the tables.
///
/// `jobs` is clamped to `[1, ids.len()]`. The returned runs are in the
/// same order as `ids` regardless of completion order.
pub fn run_experiments_parallel(ids: &[ExperimentId], jobs: usize) -> SweepReport {
    let start = Instant::now();
    let cache_before = cache::stats();
    let jobs = jobs.max(1).min(ids.len().max(1));

    // Longest-estimated-first claim order (LPT): index list sorted by
    // descending cost, claimed one at a time by whichever worker is free.
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(ids[i].meta().cost_estimate));

    type SlotResult = Result<ExperimentRun, ExperimentFailure>;
    let slots: Mutex<Vec<Option<SlotResult>>> = Mutex::new((0..ids.len()).map(|_| None).collect());
    // Per-slot (start, end) offsets from sweep start, for the exclusive-
    // wall computation (failures occupy a worker too, so they count).
    let intervals: Mutex<Vec<Option<(f64, f64)>>> =
        Mutex::new((0..ids.len()).map(|_| None).collect());
    let team = Team::labeled(jobs, "sweep");
    let state = LoopState::new(0..order.len(), Schedule::Dynamic { chunk: 1 });
    team.parallel(|ctx| {
        let worker = ctx.thread_num() as u32;
        ctx.for_loop(&state, |k| {
            let idx = order[k];
            let id = ids[idx];
            let t0 = Instant::now();
            let result = run_experiment_guarded(id);
            let wall = t0.elapsed();
            telemetry::record_wall_span(
                id.meta().code,
                worker,
                t0,
                wall.as_secs_f64(),
                "wall-exp",
            );
            let started_s = t0.duration_since(start).as_secs_f64();
            intervals.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[idx] =
                Some((started_s, started_s + wall.as_secs_f64()));
            let entry = result.map(|data| ExperimentRun {
                id,
                data,
                wall,
                excl: Duration::ZERO, // filled in below from the timeline
            });
            slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[idx] = Some(entry);
        });
    });

    let intervals = intervals
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let exclusive = exclusive_walls(&intervals);

    let mut runs: Vec<ExperimentRun> = Vec::with_capacity(ids.len());
    let mut failures: Vec<ExperimentFailure> = Vec::new();
    for (idx, slot) in slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .enumerate()
    {
        match slot {
            Some(Ok(mut run)) => {
                run.excl = Duration::from_secs_f64(exclusive[idx].unwrap_or(0.0));
                runs.push(run);
            }
            Some(Err(failure)) => failures.push(failure),
            // A worker that died before storing anything (e.g. killed by
            // the pool) is reported, not expect()-ed on.
            None => failures.push(ExperimentFailure {
                id: ids[idx],
                kind: FailureKind::Panic,
                detail: "worker finished without storing a result".to_string(),
                wall: Duration::ZERO,
            }),
        }
    }

    let cache_after = cache::stats();
    SweepReport {
        runs,
        failures,
        wall: start.elapsed(),
        jobs,
        cache: cache::CacheStats {
            hits: cache_after.hits - cache_before.hits,
            misses: cache_after.misses - cache_before.misses,
        },
    }
}

/// Contention-discounted wall per interval: split every elementary time
/// segment evenly among the experiments active during it, so the results
/// sum to (at most) the sweep wall regardless of `jobs`. O(n²) in the
/// experiment count, which never exceeds a few dozen.
fn exclusive_walls(intervals: &[Option<(f64, f64)>]) -> Vec<Option<f64>> {
    let mut bounds: Vec<f64> = intervals
        .iter()
        .flatten()
        .flat_map(|&(s, e)| [s, e])
        .collect();
    bounds.sort_by(f64::total_cmp);
    bounds.dedup();
    intervals
        .iter()
        .map(|iv| {
            let (s, e) = (*iv)?;
            let mut acc = 0.0;
            for w in bounds.windows(2) {
                let (t0, t1) = (w[0].max(s), w[1].min(e));
                if t1 <= t0 {
                    continue;
                }
                let active = intervals
                    .iter()
                    .flatten()
                    .filter(|&&(s2, e2)| s2 < t1 && e2 > t0)
                    .count();
                acc += (t1 - t0) / active as f64;
            }
            Some(acc)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Guard-thread lifecycle: cancellation + reaping
// ---------------------------------------------------------------------------

thread_local! {
    /// The cancellation flag of the guard thread this code runs on, set
    /// by the watchdog when its budget expires. `None` off guard threads.
    static GUARD_CANCEL: RefCell<Option<Arc<AtomicBool>>> = const { RefCell::new(None) };
}

/// True on an experiment guard thread whose watchdog has already fired.
/// Long-running cooperative loops (the forced-hang injector, supervisor
/// waits) poll this and bail out so the thread can be reaped instead of
/// lingering into subsequent experiments.
pub fn guard_cancelled() -> bool {
    GUARD_CANCEL.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Acquire))
    })
}

/// A timed-out guard thread that refused the cancellation grace period:
/// detached, but tracked so it is joined as soon as it finishes instead
/// of leaking silently.
struct ZombieGuard {
    code: &'static str,
    handle: std::thread::JoinHandle<()>,
}

static ZOMBIES: Mutex<Vec<ZombieGuard>> = Mutex::new(Vec::new());
static REAPED: AtomicU64 = AtomicU64::new(0);

/// Join every detached guard thread that has since finished. Called
/// before each guarded run, so a hung-then-woken guard is collected by
/// the next experiment rather than never.
fn reap_finished_guards() {
    let mut zombies = ZOMBIES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut kept = Vec::new();
    for z in zombies.drain(..) {
        if z.handle.is_finished() {
            let _ = z.handle.join();
            REAPED.fetch_add(1, Ordering::Relaxed);
        } else {
            kept.push(z);
        }
    }
    *zombies = kept;
}

/// Watchdog bookkeeping snapshot: how many timed-out guard threads are
/// still detached (alive past cancellation) and how many were joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Detached guard threads not yet finished.
    pub zombies: usize,
    /// Guard threads joined after a timeout (at cancellation or later).
    pub reaped: u64,
}

/// Current [`WatchdogStats`]; reaps finished detached guards first so
/// the zombie count reflects threads that are actually still running.
pub fn watchdog_stats() -> WatchdogStats {
    reap_finished_guards();
    WatchdogStats {
        zombies: ZOMBIES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len(),
        reaped: REAPED.load(Ordering::Relaxed),
    }
}

/// Experiment codes of detached guard threads still running.
pub fn zombie_guard_codes() -> Vec<&'static str> {
    reap_finished_guards();
    ZOMBIES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|z| z.code)
        .collect()
}

/// How long the watchdog waits, after setting the cancellation flag,
/// for the guard thread to reach a cancellation point and exit.
const CANCEL_GRACE: Duration = Duration::from_millis(500);

/// Watchdog budget per experiment (`MAIA_EXPERIMENT_TIMEOUT_S`,
/// default 300 s — far above any healthy experiment's wall time).
fn watchdog_timeout() -> Duration {
    std::env::var("MAIA_EXPERIMENT_TIMEOUT_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .map_or(Duration::from_secs(300), Duration::from_secs_f64)
}

/// Suppress the default panic hook's output for experiment guard
/// threads: their panics are caught, classified, and reported through
/// [`SweepReport::failures`], so the raw hook output would be noise.
/// Chained like `maia_sim`'s quiet-shutdown hook; panics on any other
/// thread still print normally.
fn install_quiet_experiment_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("maia-exp-"));
            if !quiet {
                prev(info);
            }
        }));
    });
}

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Run one experiment on a dedicated guard thread under `catch_unwind`,
/// with the wall-clock watchdog. Panics become [`FailureKind::Panic`]
/// (or [`FailureKind::Deadlock`] when the payload is a rendered
/// `SimError::Deadlock`); a blown watchdog cancels the guard thread,
/// joins it if it reaches a cancellation point within the grace period,
/// and otherwise detaches it into the zombie registry (joined by a
/// later [`reap_finished_guards`] pass) — either way the failure is
/// [`FailureKind::Timeout`] and the thread never bleeds its state into
/// a subsequent experiment's failure.
fn run_experiment_guarded(id: ExperimentId) -> Result<FigureData, ExperimentFailure> {
    install_quiet_experiment_hook();
    reap_finished_guards();
    let code = id.meta().code;
    let t0 = Instant::now();
    let timeout = watchdog_timeout();
    let cancel = Arc::new(AtomicBool::new(false));
    let cancel_in = Arc::clone(&cancel);
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("maia-exp-{code}"))
        .spawn(move || {
            GUARD_CANCEL.with(|c| *c.borrow_mut() = Some(cancel_in));
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                crate::faults::forced_failure_trigger(id);
                run_experiment_cached(id)
            }));
            // After a timeout the receiver is gone; the send failing is
            // exactly how a cancelled guard retires quietly.
            let _ = tx.send(result);
        })
        .expect("failed to spawn experiment guard thread");

    match rx.recv_timeout(timeout) {
        Ok(Ok(data)) => {
            let _ = handle.join();
            Ok(data)
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            let detail = payload_to_string(payload);
            let kind = if detail.contains("simulation deadlocked") {
                FailureKind::Deadlock
            } else if detail.contains("worker for wheel") {
                // The supervisor's give-up panic carries the WorkerLoss
                // rendering (wheel, window, virtual time, cause).
                FailureKind::WorkerLost
            } else {
                FailureKind::Panic
            };
            Err(ExperimentFailure {
                id,
                kind,
                detail,
                wall: t0.elapsed(),
            })
        }
        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
            // Signal cancellation, then give cooperative code (the
            // forced-hang loop, supervisor waits) a short grace period
            // to unwind so the thread can be joined right here.
            cancel.store(true, Ordering::Release);
            let grace_deadline = Instant::now() + CANCEL_GRACE;
            while !handle.is_finished() && Instant::now() < grace_deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            let reaped = handle.is_finished();
            if reaped {
                let _ = handle.join();
                REAPED.fetch_add(1, Ordering::Relaxed);
            } else {
                // Truly stuck (no portable way to kill a thread): track
                // it so a later pass joins it the moment it finishes.
                ZOMBIES
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(ZombieGuard { code, handle });
            }
            Err(ExperimentFailure {
                id,
                kind: FailureKind::Timeout,
                detail: format!(
                    "no result within the {:.0} s watchdog (MAIA_EXPERIMENT_TIMEOUT_S); \
                     guard thread {}",
                    timeout.as_secs_f64(),
                    if reaped {
                        "cancelled and reaped"
                    } else {
                        "detached pending reap"
                    }
                ),
                wall: t0.elapsed(),
            })
        }
    }
}

/// Run one experiment through the process-wide memo cache, inside its
/// own telemetry scope when profiling is enabled.
///
/// The nesting order matters: the memo scope is *outer* so the wrapper
/// key stays empty, and the experiment scope is *inner* so everything
/// the experiment does — engines it builds, counters it bumps, model
/// time it attributes — lands in the experiment's own sink. Re-running
/// the same experiment in one process is a cache hit that returns the
/// first table bit-identically.
fn run_experiment_cached(id: ExperimentId) -> FigureData {
    let code = id.meta().code;
    cache::memo(&format!("experiment/{code}"), || {
        telemetry::with_experiment_scope(code, || run_experiment(id))
    })
}

/// Run a [`ExperimentSelection`] — the one entry point `run`, `check`,
/// `profile` and the `fig_NN` aliases all funnel through.
pub fn run_selection(selection: &ExperimentSelection, jobs: usize) -> SweepReport {
    run_experiments_parallel(&selection.resolve(), jobs)
}

/// Serial convenience wrapper: run one experiment through the same
/// machinery the sweep uses (shared cache, timed, fail-soft) and return
/// its table, or the failure that stopped it.
pub fn run_one(id: ExperimentId) -> Result<FigureData, ExperimentFailure> {
    let mut report = run_experiments_parallel(&[id], 1);
    match (report.runs.pop(), report.failures.pop()) {
        (Some(run), _) => Ok(run.data),
        (None, Some(failure)) => Err(failure),
        (None, None) => Err(ExperimentFailure {
            id,
            kind: FailureKind::Panic,
            detail: "sweep returned neither a run nor a failure".to_string(),
            wall: Duration::ZERO,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_requested_order() {
        let ids = [
            ExperimentId::F18OffloadBw,
            ExperimentId::T1Table,
            ExperimentId::F17Io,
        ];
        let report = run_experiments_parallel(&ids, 2);
        let got: Vec<ExperimentId> = report.runs.iter().map(|r| r.id).collect();
        assert_eq!(got, ids);
        assert_eq!(report.jobs, 2);
    }

    #[test]
    fn parallel_output_matches_serial() {
        let ids = [
            ExperimentId::F7PcieLatency,
            ExperimentId::F18OffloadBw,
            ExperimentId::F17Io,
            ExperimentId::T1Table,
        ];
        let parallel = run_experiments_parallel(&ids, 4);
        for run in &parallel.runs {
            let serial = run_experiment(run.id);
            assert_eq!(run.data.to_markdown(), serial.to_markdown());
            assert_eq!(run.data.to_csv(), serial.to_csv());
        }
    }

    #[test]
    fn exclusive_walls_split_overlap_evenly() {
        // Two fully overlapping intervals of 2 s each: 1 s exclusive.
        let both = exclusive_walls(&[Some((0.0, 2.0)), Some((0.0, 2.0))]);
        assert!((both[0].unwrap() - 1.0).abs() < 1e-12);
        assert!((both[1].unwrap() - 1.0).abs() < 1e-12);
        // Half overlap: [0,2) and [1,3) — each gets 1 + 0.5.
        let half = exclusive_walls(&[Some((0.0, 2.0)), Some((1.0, 3.0)), None]);
        assert!((half[0].unwrap() - 1.5).abs() < 1e-12);
        assert!((half[1].unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(half[2], None);
        // Disjoint intervals keep their full wall.
        let apart = exclusive_walls(&[Some((0.0, 1.0)), Some((2.0, 3.0))]);
        assert!((apart[0].unwrap() - 1.0).abs() < 1e-12);
        assert!((apart[1].unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exclusive_walls_sum_to_at_most_the_sweep_wall() {
        let ids = [
            ExperimentId::F7PcieLatency,
            ExperimentId::F18OffloadBw,
            ExperimentId::F17Io,
            ExperimentId::T1Table,
        ];
        let report = run_experiments_parallel(&ids, 2);
        let excl_sum: f64 = report.runs.iter().map(|r| r.excl.as_secs_f64()).sum();
        assert!(
            excl_sum <= report.wall.as_secs_f64() * 1.001 + 1e-6,
            "exclusive sum {excl_sum} exceeds sweep wall {}",
            report.wall.as_secs_f64()
        );
        for run in &report.runs {
            assert!(run.excl <= run.wall, "{}", run.id.meta().code);
            assert!(run.excl > Duration::ZERO, "{}", run.id.meta().code);
        }
    }

    #[test]
    fn timing_summary_and_json_mention_every_code() {
        let ids = [ExperimentId::T1Table, ExperimentId::F17Io];
        let report = run_experiments_parallel(&ids, 1);
        let summary = report.timing_summary();
        let json = report.to_bench_json();
        for id in ids {
            assert!(summary.contains(id.meta().code));
            assert!(json.contains(id.meta().code));
        }
        assert!(json.contains("\"jobs\": 1"));
    }
}
