//! The parallel experiment runner: one thread pool, all experiments.
//!
//! Replaces "run 21 binaries one after another" with a single sweep that
//! work-shares the experiment list across a reused [`maia_omp::Team`]
//! (the same pool runtime the OpenMP figures model, here doing real
//! work). Experiments are claimed longest-estimated-first under dynamic
//! self-scheduling, so the expensive 236-rank collective worlds start
//! immediately and short figures fill the tail.
//!
//! Output is deterministic and identical to serial execution: every
//! experiment builds its own [`FigureData`] from deterministic models, and
//! the [`crate::cache`] layer guarantees a shared sub-model is computed
//! once and reused bit-identically regardless of which experiment reaches
//! it first.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use maia_omp::{LoopState, Schedule, Team};

use crate::cache;
use crate::experiments::{run_experiment, ExperimentId, ExperimentSelection};
use crate::figdata::FigureData;
use crate::telemetry;

/// One finished experiment with its wall-clock cost.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Which experiment ran.
    pub id: ExperimentId,
    /// The regenerated table.
    pub data: FigureData,
    /// Wall-clock time this experiment took inside the sweep.
    pub wall: Duration,
}

/// Result of a full sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Finished experiments, in the order they were requested.
    pub runs: Vec<ExperimentRun>,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Cache effectiveness over the sweep.
    pub cache: cache::CacheStats,
}

impl SweepReport {
    /// Human-readable per-experiment timing summary (for stderr).
    pub fn timing_summary(&self) -> String {
        let mut out = String::new();
        let mut sorted: Vec<&ExperimentRun> = self.runs.iter().collect();
        sorted.sort_by_key(|r| std::cmp::Reverse(r.wall));
        for run in sorted {
            out.push_str(&format!(
                "{:<4} {:>9.1} ms  {}\n",
                run.id.meta().code,
                run.wall.as_secs_f64() * 1e3,
                run.id.meta().title,
            ));
        }
        let serial: f64 = self.runs.iter().map(|r| r.wall.as_secs_f64()).sum();
        out.push_str(&format!(
            "total {:.1} ms wall on {} job(s); {:.1} ms summed across experiments; \
             cache {} hit / {} miss\n",
            self.wall.as_secs_f64() * 1e3,
            self.jobs,
            serial * 1e3,
            self.cache.hits,
            self.cache.misses,
        ));
        out
    }

    /// Machine-readable timing record (`BENCH_*.json` trajectory).
    pub fn to_bench_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"wall_s\": {:.6},\n",
            self.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"cache\": {{ \"hits\": {}, \"misses\": {} }},\n",
            self.cache.hits, self.cache.misses
        ));
        out.push_str("  \"experiments\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"code\": \"{}\", \"wall_s\": {:.6} }}{}\n",
                run.id.meta().code,
                run.wall.as_secs_f64(),
                if i + 1 == self.runs.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Run `ids` across `jobs` worker threads and collect the tables.
///
/// `jobs` is clamped to `[1, ids.len()]`. The returned runs are in the
/// same order as `ids` regardless of completion order.
pub fn run_experiments_parallel(ids: &[ExperimentId], jobs: usize) -> SweepReport {
    let start = Instant::now();
    let cache_before = cache::stats();
    let jobs = jobs.max(1).min(ids.len().max(1));

    // Longest-estimated-first claim order (LPT): index list sorted by
    // descending cost, claimed one at a time by whichever worker is free.
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(ids[i].meta().cost_estimate));

    let slots: Mutex<Vec<Option<ExperimentRun>>> = Mutex::new((0..ids.len()).map(|_| None).collect());
    let team = Team::labeled(jobs, "sweep");
    let state = LoopState::new(0..order.len(), Schedule::Dynamic { chunk: 1 });
    team.parallel(|ctx| {
        let worker = ctx.thread_num() as u32;
        ctx.for_loop(&state, |k| {
            let idx = order[k];
            let id = ids[idx];
            let t0 = Instant::now();
            let data = run_experiment_cached(id);
            let wall = t0.elapsed();
            telemetry::record_wall_span(
                id.meta().code,
                worker,
                t0,
                wall.as_secs_f64(),
                "wall-exp",
            );
            let run = ExperimentRun { id, data, wall };
            slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[idx] = Some(run);
        });
    });

    let runs: Vec<ExperimentRun> = slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("worker finished without storing a result"))
        .collect();

    let cache_after = cache::stats();
    SweepReport {
        runs,
        wall: start.elapsed(),
        jobs,
        cache: cache::CacheStats {
            hits: cache_after.hits - cache_before.hits,
            misses: cache_after.misses - cache_before.misses,
        },
    }
}

/// Run one experiment through the process-wide memo cache, inside its
/// own telemetry scope when profiling is enabled.
///
/// The nesting order matters: the memo scope is *outer* so the wrapper
/// key stays empty, and the experiment scope is *inner* so everything
/// the experiment does — engines it builds, counters it bumps, model
/// time it attributes — lands in the experiment's own sink. Re-running
/// the same experiment in one process is a cache hit that returns the
/// first table bit-identically.
fn run_experiment_cached(id: ExperimentId) -> FigureData {
    let code = id.meta().code;
    cache::memo(&format!("experiment/{code}"), || {
        telemetry::with_experiment_scope(code, || run_experiment(id))
    })
}

/// Run a [`ExperimentSelection`] — the one entry point `run`, `check`,
/// `profile` and the `fig_NN` aliases all funnel through.
pub fn run_selection(selection: &ExperimentSelection, jobs: usize) -> SweepReport {
    run_experiments_parallel(&selection.resolve(), jobs)
}

/// Serial convenience wrapper: run one experiment through the same
/// machinery the sweep uses (shared cache, timed) and return its table.
pub fn run_one(id: ExperimentId) -> FigureData {
    let report = run_experiments_parallel(&[id], 1);
    report.runs.into_iter().next().expect("one run requested").data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_requested_order() {
        let ids = [
            ExperimentId::F18OffloadBw,
            ExperimentId::T1Table,
            ExperimentId::F17Io,
        ];
        let report = run_experiments_parallel(&ids, 2);
        let got: Vec<ExperimentId> = report.runs.iter().map(|r| r.id).collect();
        assert_eq!(got, ids);
        assert_eq!(report.jobs, 2);
    }

    #[test]
    fn parallel_output_matches_serial() {
        let ids = [
            ExperimentId::F7PcieLatency,
            ExperimentId::F18OffloadBw,
            ExperimentId::F17Io,
            ExperimentId::T1Table,
        ];
        let parallel = run_experiments_parallel(&ids, 4);
        for run in &parallel.runs {
            let serial = run_experiment(run.id);
            assert_eq!(run.data.to_markdown(), serial.to_markdown());
            assert_eq!(run.data.to_csv(), serial.to_csv());
        }
    }

    #[test]
    fn timing_summary_and_json_mention_every_code() {
        let ids = [ExperimentId::T1Table, ExperimentId::F17Io];
        let report = run_experiments_parallel(&ids, 1);
        let summary = report.timing_summary();
        let json = report.to_bench_json();
        for id in ids {
            assert!(summary.contains(id.meta().code));
            assert!(json.contains(id.meta().code));
        }
        assert!(json.contains("\"jobs\": 1"));
    }
}
