//! Property-based tests for the OpenMP runtime: loop coverage under
//! arbitrary schedules and monotonicity laws of the overhead model.

use maia_arch::presets;
use maia_omp::{OmpConstruct, OverheadModel, Schedule, Team};
use parking_lot::Mutex;
use proptest::prelude::*;

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::static_default()),
        (1usize..32).prop_map(|chunk| Schedule::Static { chunk }),
        (1usize..32).prop_map(|chunk| Schedule::Dynamic { chunk }),
        (1usize..16).prop_map(|min_chunk| Schedule::Guided { min_chunk }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every (schedule, thread count, loop length) covers each index
    /// exactly once.
    #[test]
    fn any_schedule_covers_exactly_once(
        sched in schedule_strategy(),
        threads in 1usize..7,
        n in 0usize..300,
    ) {
        let team = Team::new(threads);
        let hits = Mutex::new(vec![0u32; n]);
        team.parallel_for(0..n, sched, |i| {
            hits.lock()[i] += 1;
        });
        let h = hits.into_inner();
        prop_assert!(h.iter().all(|&c| c == 1), "coverage {h:?} under {sched:?}");
    }

    /// Construct overheads grow (weakly) with thread count on both
    /// architectures.
    #[test]
    fn overheads_monotone_in_threads(t1 in 1u32..64, t2 in 1u32..64) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        for p in [presets::xeon_e5_2670(), presets::xeon_phi_5110p()] {
            let m = OverheadModel::for_processor(&p);
            for c in OmpConstruct::ALL {
                prop_assert!(
                    m.construct_overhead_us(c, lo) <= m.construct_overhead_us(c, hi) + 1e-12,
                    "{} overhead decreased from {lo} to {hi} threads",
                    c.label()
                );
            }
        }
    }

    /// Dynamic scheduling overhead decreases (weakly) with chunk size.
    #[test]
    fn dynamic_overhead_monotone_in_chunk(c1 in 1usize..256, c2 in 1usize..256) {
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let m = OverheadModel::for_processor(&presets::xeon_phi_5110p());
        let big = m.schedule_overhead_us(Schedule::Dynamic { chunk: lo }, 4096, 236);
        let small = m.schedule_overhead_us(Schedule::Dynamic { chunk: hi }, 4096, 236);
        prop_assert!(small <= big + 1e-12);
    }

    /// Reduction over any input matches the sequential fold.
    #[test]
    fn reduce_matches_sequential(
        values in prop::collection::vec(-100i64..100, 0..200),
        threads in 1usize..6,
    ) {
        let team = Team::new(threads);
        let vals = values.clone();
        let sum = team.parallel_reduce(
            0..vals.len(),
            Schedule::Dynamic { chunk: 7 },
            0i64,
            |i, acc| *acc += vals[i],
            |a, b| a + b,
        );
        prop_assert_eq!(sum, values.iter().sum::<i64>());
    }
}
