//! Additional OpenMP synchronization objects: explicit locks
//! (`omp_init_lock` / `omp_set_lock` / `omp_unset_lock` / `omp_test_lock`)
//! and the `sections` work-sharing construct.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::team::Team;

/// An OpenMP-style lock: unlike a scoped mutex guard, set and unset are
/// independent calls, possibly in different lexical scopes (the usage
/// pattern the EPCC LOCK/UNLOCK benchmark measures).
#[derive(Debug, Default)]
pub struct OmpLock {
    locked: Mutex<bool>,
    cv: Condvar,
}

impl OmpLock {
    /// `omp_init_lock`.
    pub fn new() -> Self {
        Self::default()
    }

    /// `omp_set_lock`: block until the lock is acquired.
    pub fn set(&self) {
        let mut locked = self.locked.lock();
        while *locked {
            self.cv.wait(&mut locked);
        }
        *locked = true;
    }

    /// `omp_unset_lock`.
    ///
    /// # Panics
    /// Panics if the lock is not held — an unset without a set is
    /// undefined behaviour in OpenMP and a bug here.
    pub fn unset(&self) {
        let mut locked = self.locked.lock();
        assert!(*locked, "omp_unset_lock on an unlocked lock");
        *locked = false;
        self.cv.notify_one();
    }

    /// `omp_test_lock`: acquire if free, never block. Returns whether
    /// the lock was acquired.
    pub fn test(&self) -> bool {
        let mut locked = self.locked.lock();
        if *locked {
            false
        } else {
            *locked = true;
            true
        }
    }
}

impl Team {
    /// The `sections` construct: each closure runs exactly once, on some
    /// thread of the team, with an implicit barrier at the end.
    pub fn parallel_sections(&self, sections: &[&(dyn Fn() + Sync)]) {
        let next = AtomicUsize::new(0);
        self.parallel(|_ctx| loop {
            let i = next.fetch_add(1, Ordering::AcqRel);
            if i >= sections.len() {
                break;
            }
            sections[i]();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn lock_provides_mutual_exclusion() {
        let team = Team::new(8);
        let lock = OmpLock::new();
        let inside = AtomicU32::new(0);
        let max_inside = AtomicU32::new(0);
        team.parallel(|_ctx| {
            for _ in 0..50 {
                lock.set();
                let v = inside.fetch_add(1, Ordering::SeqCst) + 1;
                max_inside.fetch_max(v, Ordering::SeqCst);
                inside.fetch_sub(1, Ordering::SeqCst);
                lock.unset();
            }
        });
        assert_eq!(max_inside.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn test_lock_does_not_block() {
        let lock = OmpLock::new();
        assert!(lock.test());
        assert!(!lock.test()); // already held
        lock.unset();
        assert!(lock.test());
        lock.unset();
    }

    #[test]
    #[should_panic(expected = "unlocked")]
    fn unset_without_set_panics() {
        OmpLock::new().unset();
    }

    #[test]
    fn sections_each_run_exactly_once() {
        let team = Team::new(3);
        let counts: Vec<AtomicU32> = (0..7).map(|_| AtomicU32::new(0)).collect();
        let closures: Vec<Box<dyn Fn() + Sync + '_>> = (0..7)
            .map(|i| {
                let counts = &counts;
                Box::new(move || {
                    counts[i].fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn Fn() + Sync + '_>
            })
            .collect();
        let refs: Vec<&(dyn Fn() + Sync)> = closures.iter().map(|b| b.as_ref()).collect();
        team.parallel_sections(&refs);
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "section {i}");
        }
    }

    #[test]
    fn more_sections_than_threads_still_covered() {
        let team = Team::new(2);
        let count = AtomicU32::new(0);
        let inc: &(dyn Fn() + Sync) = &|| {
            count.fetch_add(1, Ordering::SeqCst);
        };
        let sections = vec![inc; 9];
        team.parallel_sections(&sections);
        assert_eq!(count.load(Ordering::SeqCst), 9);
    }
}
