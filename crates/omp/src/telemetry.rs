//! Observer hook for parallel regions.
//!
//! A [`TeamObserver`] is notified when each worker of a [`crate::Team`]
//! enters and leaves a parallel region, identified by the team's label
//! (see [`crate::Team::labeled`]). The instrumentation layer in
//! `maia-core` uses this to draw per-worker timelines of the experiment
//! sweep; with no observer installed the cost is one atomic load per
//! region, and zero per construct inside the region.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Region-level callbacks. Both have no-op defaults.
pub trait TeamObserver: Send + Sync {
    /// Worker `thread` of a `team`-wide region labeled `label` started
    /// executing the region body.
    fn region_begin(&self, _label: &'static str, _thread: usize, _team: usize) {}
    /// Worker `thread` finished the region body.
    fn region_end(&self, _label: &'static str, _thread: usize, _team: usize) {}
}

static OBSERVER_SET: AtomicBool = AtomicBool::new(false);
static OBSERVER: RwLock<Option<Arc<dyn TeamObserver>>> = RwLock::new(None);

/// Install (or, with `None`, remove) the process-wide region observer.
pub fn set_team_observer(obs: Option<Arc<dyn TeamObserver>>) {
    let mut slot = OBSERVER
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    OBSERVER_SET.store(obs.is_some(), Ordering::Release);
    *slot = obs;
}

/// The currently installed observer, if any. Captured once per region.
pub(crate) fn observer() -> Option<Arc<dyn TeamObserver>> {
    if !OBSERVER_SET.load(Ordering::Acquire) {
        return None;
    }
    OBSERVER
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Team;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<(&'static str, usize, usize, bool)>>,
    }

    impl TeamObserver for Recorder {
        fn region_begin(&self, label: &'static str, thread: usize, team: usize) {
            self.events.lock().unwrap().push((label, thread, team, true));
        }
        fn region_end(&self, label: &'static str, thread: usize, team: usize) {
            self.events.lock().unwrap().push((label, thread, team, false));
        }
    }

    // The observer slot is process-global; serialize the tests that set it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn observer_sees_every_worker_once_per_region() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Arc::new(Recorder::default());
        set_team_observer(Some(Arc::clone(&rec) as Arc<dyn TeamObserver>));
        Team::labeled(3, "probe-test").parallel(|_ctx| {});
        set_team_observer(None);
        let events = rec.events.lock().unwrap();
        let begins: Vec<usize> = events
            .iter()
            .filter(|e| e.0 == "probe-test" && e.3)
            .map(|e| e.1)
            .collect();
        let ends: Vec<usize> = events
            .iter()
            .filter(|e| e.0 == "probe-test" && !e.3)
            .map(|e| e.1)
            .collect();
        let mut b = begins.clone();
        b.sort_unstable();
        let mut e = ends.clone();
        e.sort_unstable();
        assert_eq!(b, vec![0, 1, 2]);
        assert_eq!(e, vec![0, 1, 2]);
        assert!(events.iter().all(|ev| ev.2 == 3));
    }

    #[test]
    fn no_observer_is_a_no_op() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_team_observer(None);
        assert!(observer().is_none());
        Team::new(2).parallel(|_ctx| {});
    }
}
