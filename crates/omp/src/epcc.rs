//! EPCC-style measurement of *this* runtime's construct overheads on the
//! build machine.
//!
//! Follows the paper's Section 3.4 definition: run a delay kernel `reps`
//! times sequentially (time `Ts`), run the same per-thread work wrapped in
//! the construct on `p` threads (time `Tp`), and report
//! `overhead = (Tp − Ts) / reps` per construct execution. These numbers
//! characterize the machine the tests run on — the *figures* use the
//! calibrated [`crate::model`] — but they let us check that the measured
//! orderings of our own runtime match the modeled orderings.

use std::hint::black_box;
use std::sync::atomic::AtomicU64;
use std::time::Instant;

use crate::model::OmpConstruct;
use crate::schedule::Schedule;
use crate::team::{atomic_add_f64, Team};

/// Measurement harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct EpccHarness {
    /// Threads in the team under test.
    pub threads: usize,
    /// Construct executions per timed sample.
    pub reps: usize,
    /// Delay-kernel iterations per construct execution.
    pub delay: usize,
}

impl Default for EpccHarness {
    fn default() -> Self {
        EpccHarness {
            threads: 4,
            reps: 200,
            delay: 200,
        }
    }
}

/// The EPCC delay kernel: opaque floating-point work the optimizer cannot
/// remove.
#[inline]
fn delay_kernel(n: usize) -> f64 {
    let mut a = 0.0f64;
    for i in 0..n {
        a += black_box(i as f64 * 1e-9);
    }
    black_box(a)
}

impl EpccHarness {
    /// Sequential reference time for `reps` delay executions, seconds.
    fn reference_s(&self) -> f64 {
        let t0 = Instant::now();
        for _ in 0..self.reps {
            black_box(delay_kernel(self.delay));
        }
        t0.elapsed().as_secs_f64()
    }

    /// Measure the per-execution overhead of `construct`, microseconds.
    pub fn measure(&self, construct: OmpConstruct) -> f64 {
        let team = Team::new(self.threads);
        let ts = self.reference_s();
        let reps = self.reps;
        let delay = self.delay;

        let t0 = Instant::now();
        match construct {
            OmpConstruct::Parallel => {
                for _ in 0..reps {
                    team.parallel(|_ctx| {
                        black_box(delay_kernel(delay));
                    });
                }
            }
            OmpConstruct::ParallelFor => {
                for _ in 0..reps {
                    team.parallel_for(0..self.threads, Schedule::static_default(), |_i| {
                        black_box(delay_kernel(delay));
                    });
                }
            }
            OmpConstruct::For => {
                team.parallel(|ctx| {
                    for _ in 0..reps {
                        for _i in ctx.my_block(self.threads) {
                            black_box(delay_kernel(delay));
                        }
                        ctx.barrier();
                    }
                });
            }
            OmpConstruct::Barrier => {
                team.parallel(|ctx| {
                    for _ in 0..reps {
                        black_box(delay_kernel(delay));
                        ctx.barrier();
                    }
                });
            }
            OmpConstruct::Single => {
                team.parallel(|ctx| {
                    for _ in 0..reps {
                        ctx.single(|| black_box(delay_kernel(delay)));
                    }
                });
            }
            OmpConstruct::Critical => {
                team.parallel(|ctx| {
                    for _ in 0..reps {
                        ctx.critical(|| black_box(delay_kernel(delay)));
                    }
                });
            }
            OmpConstruct::LockUnlock => {
                // Our runtime's lock is the critical mutex taken explicitly.
                team.parallel(|ctx| {
                    for _ in 0..reps {
                        ctx.critical(|| black_box(delay_kernel(delay)));
                    }
                });
            }
            OmpConstruct::Ordered => {
                team.parallel(|ctx| {
                    for _ in 0..reps {
                        ctx.ordered(|| black_box(delay_kernel(delay)));
                    }
                });
            }
            OmpConstruct::Atomic => {
                let acc = AtomicU64::new(0f64.to_bits());
                team.parallel(|_ctx| {
                    for _ in 0..reps {
                        black_box(delay_kernel(delay));
                        atomic_add_f64(&acc, 1.0);
                    }
                });
                black_box(f64::from_bits(
                    acc.load(std::sync::atomic::Ordering::SeqCst),
                ));
            }
            OmpConstruct::Reduction => {
                for _ in 0..reps {
                    let s = team.parallel_reduce(
                        0..self.threads,
                        Schedule::static_default(),
                        0.0f64,
                        |_i, acc| *acc += black_box(delay_kernel(delay)),
                        |a, b| a + b,
                    );
                    black_box(s);
                }
            }
        }
        let tp = t0.elapsed().as_secs_f64();

        // Overhead per construct execution. Constructs where each thread
        // does the full delay work per rep compare against Ts (per-thread
        // reference equals the sequential reference).
        ((tp - ts) / reps as f64 * 1e6).max(0.0)
    }

    /// Measure all constructs; returns (construct, overhead µs) pairs.
    pub fn measure_all(&self) -> Vec<(OmpConstruct, f64)> {
        OmpConstruct::ALL
            .iter()
            .map(|&c| (c, self.measure(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_finite_and_bounded() {
        let h = EpccHarness {
            threads: 2,
            reps: 20,
            delay: 50,
        };
        for (c, us) in h.measure_all() {
            assert!(us.is_finite(), "{} overhead not finite", c.label());
            assert!(us < 1e6, "{} overhead implausibly large: {us} µs", c.label());
        }
    }

    #[test]
    fn delay_kernel_scales_with_length() {
        // Guards against the kernel being optimized away entirely.
        let t0 = Instant::now();
        black_box(delay_kernel(2_000_000));
        let long = t0.elapsed();
        let t0 = Instant::now();
        black_box(delay_kernel(100));
        let short = t0.elapsed();
        assert!(long > short);
    }
}
