//! Loop scheduling policies (OpenMP `schedule` clause).

/// How a work-shared loop's iterations map onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Iterations are divided into contiguous blocks assigned round-robin
    /// at region entry; zero per-chunk dispatch cost. `chunk = 0` means
    /// one block per thread (OpenMP's default static schedule).
    Static { chunk: usize },
    /// Threads grab `chunk` iterations at a time from a shared counter.
    Dynamic { chunk: usize },
    /// Like dynamic but with geometrically shrinking chunks, never smaller
    /// than `min_chunk`.
    Guided { min_chunk: usize },
}

impl Schedule {
    /// The default `schedule(static)`.
    pub fn static_default() -> Self {
        Schedule::Static { chunk: 0 }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::Static { .. } => "STATIC",
            Schedule::Dynamic { .. } => "DYNAMIC",
            Schedule::Guided { .. } => "GUIDED",
        }
    }

    /// Number of chunk dispatches a loop of `n` iterations on `threads`
    /// threads performs under this schedule — the quantity that drives
    /// scheduling overhead (Figure 16).
    pub fn dispatch_count(&self, n: usize, threads: usize) -> usize {
        assert!(threads >= 1);
        if n == 0 {
            return 0;
        }
        match *self {
            Schedule::Static { chunk } => {
                if chunk == 0 {
                    threads.min(n)
                } else {
                    n.div_ceil(chunk)
                }
            }
            Schedule::Dynamic { chunk } => n.div_ceil(chunk.max(1)),
            Schedule::Guided { min_chunk } => {
                // Each dispatch takes remaining/threads, floored at
                // min_chunk.
                let min_chunk = min_chunk.max(1);
                let mut remaining = n;
                let mut dispatches = 0;
                while remaining > 0 {
                    let take = (remaining / threads).max(min_chunk).min(remaining);
                    remaining -= take;
                    dispatches += 1;
                }
                dispatches
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_default_dispatches_once_per_thread() {
        let s = Schedule::static_default();
        assert_eq!(s.dispatch_count(1000, 8), 8);
        assert_eq!(s.dispatch_count(4, 8), 4); // fewer iters than threads
    }

    #[test]
    fn dynamic_dispatches_per_chunk() {
        let s = Schedule::Dynamic { chunk: 10 };
        assert_eq!(s.dispatch_count(1000, 8), 100);
        assert_eq!(s.dispatch_count(1001, 8), 101);
    }

    #[test]
    fn guided_dispatch_count_between_static_and_dynamic() {
        let n = 10_000;
        let t = 16;
        let st = Schedule::static_default().dispatch_count(n, t);
        let dy = Schedule::Dynamic { chunk: 1 }.dispatch_count(n, t);
        let gu = Schedule::Guided { min_chunk: 1 }.dispatch_count(n, t);
        assert!(st < gu && gu < dy, "{st} !< {gu} !< {dy}");
    }

    #[test]
    fn zero_iterations_dispatch_nothing() {
        for s in [
            Schedule::static_default(),
            Schedule::Dynamic { chunk: 4 },
            Schedule::Guided { min_chunk: 2 },
        ] {
            assert_eq!(s.dispatch_count(0, 8), 0);
        }
    }

    #[test]
    fn guided_terminates_with_large_threads() {
        let s = Schedule::Guided { min_chunk: 7 };
        // Would loop forever if the floor were not applied.
        assert!(s.dispatch_count(100, 1000) <= 100 / 7 + 2);
    }
}
