//! Work-shared loops: scheduling state and collapse helpers.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::schedule::Schedule;

/// Shared dispatch state for one work-shared loop instance.
///
/// Created once (outside or by `Team::parallel_for`) and consumed by one
/// traversal per thread. Static schedules are stateless; dynamic and
/// guided schedules pull chunks from the shared `next` counter.
pub struct LoopState {
    start: usize,
    end: usize,
    sched: Schedule,
    next: AtomicUsize,
}

impl LoopState {
    /// Describe a loop over `range` under `sched`.
    pub fn new(range: Range<usize>, sched: Schedule) -> Self {
        LoopState {
            start: range.start,
            end: range.end,
            sched,
            next: AtomicUsize::new(range.start),
        }
    }

    /// Total iterations.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the loop is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Run this thread's share, invoking `body` per owned index.
    pub fn run(&self, id: usize, n_threads: usize, mut body: impl FnMut(usize)) {
        match self.sched {
            Schedule::Static { chunk } => {
                if chunk == 0 {
                    let len = self.len();
                    let blk = crate::team::block_partition(len, n_threads, id);
                    for i in blk {
                        body(self.start + i);
                    }
                } else {
                    // Round-robin chunks of fixed size.
                    let mut base = self.start + id * chunk;
                    while base < self.end {
                        let hi = (base + chunk).min(self.end);
                        for i in base..hi {
                            body(i);
                        }
                        base += n_threads * chunk;
                    }
                }
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                loop {
                    let base = self.next.fetch_add(chunk, Ordering::AcqRel);
                    if base >= self.end {
                        break;
                    }
                    let hi = (base + chunk).min(self.end);
                    for i in base..hi {
                        body(i);
                    }
                }
            }
            Schedule::Guided { min_chunk } => {
                let min_chunk = min_chunk.max(1);
                loop {
                    let mut cur = self.next.load(Ordering::Acquire);
                    let take = loop {
                        if cur >= self.end {
                            return;
                        }
                        let remaining = self.end - cur;
                        let take = (remaining / n_threads).max(min_chunk).min(remaining);
                        match self.next.compare_exchange_weak(
                            cur,
                            cur + take,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => break take,
                            Err(actual) => cur = actual,
                        }
                    };
                    let base = cur;
                    for i in base..base + take {
                        body(i);
                    }
                }
            }
        }
    }
}

/// Flatten a 2-deep loop nest (`collapse(2)`): maps a flat index over
/// `n1 * n2` back to `(i, j)`.
#[inline]
pub fn collapse2(flat: usize, n2: usize) -> (usize, usize) {
    debug_assert!(n2 > 0);
    (flat / n2, flat % n2)
}

/// Flatten a 3-deep loop nest (`collapse(3)`): maps a flat index over
/// `n1 * n2 * n3` back to `(i, j, k)`.
#[inline]
pub fn collapse3(flat: usize, n2: usize, n3: usize) -> (usize, usize, usize) {
    debug_assert!(n2 > 0 && n3 > 0);
    let i = flat / (n2 * n3);
    let rem = flat % (n2 * n3);
    (i, rem / n3, rem % n3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;
    use parking_lot::Mutex;

    fn run_and_collect(n: usize, threads: usize, sched: Schedule) -> Vec<usize> {
        let team = Team::new(threads);
        let seen = Mutex::new(Vec::new());
        team.parallel_for(0..n, sched, |i| {
            seen.lock().push(i);
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        v
    }

    #[test]
    fn every_schedule_covers_every_index_exactly_once() {
        let expect: Vec<usize> = (0..1000).collect();
        for sched in [
            Schedule::static_default(),
            Schedule::Static { chunk: 7 },
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 13 },
            Schedule::Guided { min_chunk: 1 },
            Schedule::Guided { min_chunk: 8 },
        ] {
            assert_eq!(
                run_and_collect(1000, 6, sched),
                expect,
                "coverage failure for {sched:?}"
            );
        }
    }

    #[test]
    fn empty_loop_is_a_noop() {
        for sched in [
            Schedule::static_default(),
            Schedule::Dynamic { chunk: 4 },
            Schedule::Guided { min_chunk: 2 },
        ] {
            assert!(run_and_collect(0, 4, sched).is_empty());
        }
    }

    #[test]
    fn nonzero_range_start_respected() {
        let team = Team::new(3);
        let seen = Mutex::new(Vec::new());
        team.parallel_for(100..110, Schedule::Dynamic { chunk: 2 }, |i| {
            seen.lock().push(i);
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn static_chunked_round_robin_assignment() {
        // With 2 threads and chunk 2 over 0..8: t0 gets {0,1,4,5}.
        let state = LoopState::new(0..8, Schedule::Static { chunk: 2 });
        let mut mine = Vec::new();
        state.run(0, 2, |i| mine.push(i));
        assert_eq!(mine, vec![0, 1, 4, 5]);
    }

    #[test]
    fn collapse_round_trips() {
        let (n1, n2, n3) = (4, 5, 6);
        let mut seen2 = vec![false; n1 * n2];
        for flat in 0..n1 * n2 {
            let (i, j) = collapse2(flat, n2);
            assert!(i < n1 && j < n2);
            assert!(!seen2[i * n2 + j]);
            seen2[i * n2 + j] = true;
        }
        let mut seen3 = vec![false; n1 * n2 * n3];
        for flat in 0..n1 * n2 * n3 {
            let (i, j, k) = collapse3(flat, n2, n3);
            assert!(i < n1 && j < n2 && k < n3);
            let idx = (i * n2 + j) * n3 + k;
            assert!(!seen3[idx]);
            seen3[idx] = true;
        }
        assert!(seen2.iter().all(|&b| b) && seen3.iter().all(|&b| b));
    }
}
