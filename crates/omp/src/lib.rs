//! # maia-omp — an OpenMP-style work-sharing runtime and its overhead model
//!
//! The paper measures OpenMP construct overheads (EPCC methodology) on the
//! host and the Phi (Figures 15–16) and runs OpenMP versions of the NPBs
//! and Cart3D. This crate supplies both sides of that story:
//!
//! * **A real runtime** — [`Team`] executes parallel regions, work-shared
//!   loops with static/dynamic/guided scheduling ([`schedule`]), collapse
//!   ([`loops`]), reductions, and the synchronization constructs
//!   (barrier/critical/single/atomic/ordered/locks in [`team`]). The NPB
//!   kernels in `maia-npb` run on it for real.
//! * **An EPCC measurement harness** ([`epcc`]) that measures *this*
//!   runtime's construct overheads on the build machine using the
//!   `overhead = Tp − Ts/p` formula of the paper's Section 6.5.
//! * **A calibrated overhead model** ([`model`]) that predicts construct
//!   overheads on the simulated Sandy Bridge and Phi, reproducing the
//!   Figure 15/16 orderings and the ~10× host/Phi gap.

pub mod epcc;
pub mod loops;
pub mod model;
pub mod schedule;
pub mod sync;
pub mod team;
pub mod telemetry;

pub use loops::{collapse2, collapse3, LoopState};
pub use model::{OmpConstruct, OverheadModel};
pub use schedule::Schedule;
pub use sync::OmpLock;
pub use team::{atomic_add_f64, block_partition, Team, ThreadCtx};
