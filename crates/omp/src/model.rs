//! Calibrated model of OpenMP construct overheads on the simulated host
//! and Phi (paper Figures 15 and 16).
//!
//! Mechanism: every synchronization construct is built from contended
//! cache-line transfers. The cost of one such transfer (the "sync
//! quantum") is the processor's unloaded memory latency — 81 ns on the
//! host, 295 ns on the Phi — inflated by 1.5× on in-order cores, which
//! cannot overlap the coherence miss with other work. Construct costs are
//! then small multiples of the quantum, with tree-structured operations
//! (barrier, fork/join) scaling as log₂(threads) and reductions adding a
//! serial combine term linear in the thread count. The Phi's ~10× higher
//! overheads (Figure 15) emerge from the larger quantum × deeper tree.

use maia_arch::{ExecutionStyle, ProcessorSpec};

use crate::schedule::Schedule;

/// The constructs measured by the paper's synchronization benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmpConstruct {
    Parallel,
    ParallelFor,
    For,
    Barrier,
    Single,
    Critical,
    LockUnlock,
    Ordered,
    Atomic,
    Reduction,
}

impl OmpConstruct {
    /// All constructs in the order Figure 15 lists them.
    pub const ALL: [OmpConstruct; 10] = [
        OmpConstruct::Parallel,
        OmpConstruct::ParallelFor,
        OmpConstruct::For,
        OmpConstruct::Barrier,
        OmpConstruct::Single,
        OmpConstruct::Critical,
        OmpConstruct::LockUnlock,
        OmpConstruct::Ordered,
        OmpConstruct::Atomic,
        OmpConstruct::Reduction,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            OmpConstruct::Parallel => "PARALLEL",
            OmpConstruct::ParallelFor => "PARALLEL FOR",
            OmpConstruct::For => "DO/FOR",
            OmpConstruct::Barrier => "BARRIER",
            OmpConstruct::Single => "SINGLE",
            OmpConstruct::Critical => "CRITICAL",
            OmpConstruct::LockUnlock => "LOCK/UNLOCK",
            OmpConstruct::Ordered => "ORDERED",
            OmpConstruct::Atomic => "ATOMIC",
            OmpConstruct::Reduction => "REDUCTION",
        }
    }
}

/// Construct-overhead model for one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Cost of one contended cache-line transfer, microseconds.
    pub quantum_us: f64,
}

impl OverheadModel {
    /// Derive the model from the architecture description.
    pub fn for_processor(p: &ProcessorSpec) -> Self {
        let stall_factor = match p.core.execution {
            ExecutionStyle::OutOfOrder => 1.0,
            // In-order cores expose the full coherence miss.
            ExecutionStyle::InOrder => 1.5,
        };
        OverheadModel {
            quantum_us: p.memory.idle_latency_ns / 1000.0 * stall_factor,
        }
    }

    /// Overhead of one execution of `construct` on a team of `threads`,
    /// microseconds (the Figure 15 quantity, `Tp − Ts/p`).
    pub fn construct_overhead_us(&self, construct: OmpConstruct, threads: u32) -> f64 {
        assert!(threads >= 1);
        let q = self.quantum_us;
        let l = (threads as f64).log2().max(1.0);
        match construct {
            OmpConstruct::Atomic => q,
            OmpConstruct::LockUnlock => 2.0 * q,
            OmpConstruct::Critical => 2.5 * q,
            OmpConstruct::Ordered => 3.0 * q,
            OmpConstruct::Single => (l + 1.0) * q,
            OmpConstruct::Barrier => 2.0 * l * q,
            OmpConstruct::For => (2.0 * l + 1.0) * q,
            OmpConstruct::Parallel => 3.0 * l * q,
            OmpConstruct::ParallelFor => (3.0 * l + 1.0) * q,
            // Tree fork/join plus a serial combine per thread.
            OmpConstruct::Reduction => (3.0 * l + 1.0) * q + 0.05 * threads as f64 * q,
        }
    }

    /// Overhead of scheduling a loop of `n_iters` under `sched` on
    /// `threads` threads, microseconds (the Figure 16 quantity): the
    /// parallel-for envelope plus one half-quantum per shared-counter
    /// dispatch (static dispatch is precomputed and free).
    pub fn schedule_overhead_us(&self, sched: Schedule, n_iters: usize, threads: u32) -> f64 {
        let envelope = self.construct_overhead_us(OmpConstruct::ParallelFor, threads);
        let per_dispatch = match sched {
            Schedule::Static { .. } => 0.0,
            Schedule::Dynamic { .. } | Schedule::Guided { .. } => 0.5 * self.quantum_us,
        };
        envelope + sched.dispatch_count(n_iters, threads as usize) as f64 * per_dispatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maia_arch::presets;

    fn host() -> OverheadModel {
        OverheadModel::for_processor(&presets::xeon_e5_2670())
    }
    fn phi() -> OverheadModel {
        OverheadModel::for_processor(&presets::xeon_phi_5110p())
    }

    #[test]
    fn figure15_ordering_on_phi() {
        let m = phi();
        let t = 236;
        let ov = |c| m.construct_overhead_us(c, t);
        // "The most expensive operation is Reduction, followed by PARALLEL
        // FOR and PARALLEL, whereas ATOMIC is the least expensive."
        assert!(ov(OmpConstruct::Reduction) > ov(OmpConstruct::ParallelFor));
        assert!(ov(OmpConstruct::ParallelFor) > ov(OmpConstruct::Parallel));
        assert!(ov(OmpConstruct::Parallel) > ov(OmpConstruct::Barrier));
        for c in OmpConstruct::ALL {
            if c != OmpConstruct::Atomic {
                assert!(ov(c) > ov(OmpConstruct::Atomic), "{} !> ATOMIC", c.label());
            }
        }
    }

    #[test]
    fn figure15_phi_is_order_of_magnitude_worse() {
        let h = host();
        let p = phi();
        // Compare at the paper's thread counts: host 16, Phi 236.
        for c in OmpConstruct::ALL {
            let ratio = p.construct_overhead_us(c, 236) / h.construct_overhead_us(c, 16);
            assert!(
                (4.0..25.0).contains(&ratio),
                "{}: host/Phi overhead ratio {ratio} outside 'order of magnitude'",
                c.label()
            );
        }
        // Aggregate: roughly 10x.
        let mean: f64 = OmpConstruct::ALL
            .iter()
            .map(|&c| p.construct_overhead_us(c, 236) / h.construct_overhead_us(c, 16))
            .sum::<f64>()
            / OmpConstruct::ALL.len() as f64;
        assert!((7.0..15.0).contains(&mean), "mean ratio {mean}");
    }

    #[test]
    fn figure16_schedule_ordering() {
        // STATIC < GUIDED < DYNAMIC on both architectures.
        for m in [host(), phi()] {
            for threads in [16u32, 236] {
                let st = m.schedule_overhead_us(Schedule::static_default(), 1024, threads);
                let gu = m.schedule_overhead_us(Schedule::Guided { min_chunk: 1 }, 1024, threads);
                let dy = m.schedule_overhead_us(Schedule::Dynamic { chunk: 1 }, 1024, threads);
                assert!(st < gu && gu < dy, "{st} !< {gu} !< {dy} at {threads}T");
            }
        }
    }

    #[test]
    fn figure16_phi_schedules_order_of_magnitude_worse() {
        let h = host();
        let p = phi();
        for sched in [
            Schedule::static_default(),
            Schedule::Dynamic { chunk: 1 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            let ratio = p.schedule_overhead_us(sched, 1024, 236)
                / h.schedule_overhead_us(sched, 1024, 16);
            assert!(ratio > 4.0, "{}: ratio {ratio}", sched.label());
        }
    }

    #[test]
    fn larger_chunks_reduce_dynamic_overhead() {
        let m = phi();
        let c1 = m.schedule_overhead_us(Schedule::Dynamic { chunk: 1 }, 1024, 236);
        let c16 = m.schedule_overhead_us(Schedule::Dynamic { chunk: 16 }, 1024, 236);
        let c128 = m.schedule_overhead_us(Schedule::Dynamic { chunk: 128 }, 1024, 236);
        assert!(c1 > c16 && c16 > c128);
    }

    #[test]
    fn quantum_reflects_memory_latency_and_execution_style() {
        assert!((host().quantum_us - 0.081).abs() < 1e-9);
        assert!((phi().quantum_us - 0.4425).abs() < 1e-9);
    }
}
